"""Tests for the unified metrics registry."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.harness.metrics import utilization
from repro.machine import MachineConfig
from repro.obs import Log2Histogram, MetricsRegistry, registry_from_runtime
from repro.obs.registry import REGISTRY_SCHEMA
from repro.runtime.system import RuntimeSystem
from repro.tram import TramConfig, make_scheme


class TestRegistryBasics:
    def test_register_and_read(self):
        reg = MetricsRegistry()
        box = {"v": 0}
        reg.counter("a.count", lambda: box["v"], unit="items")
        box["v"] = 7
        assert reg.snapshot()["a.count"] == 7  # readers are live

    def test_duplicate_name_rejected(self):
        reg = MetricsRegistry()
        reg.gauge("x", lambda: 1)
        with pytest.raises(ConfigError):
            reg.gauge("x", lambda: 2)

    def test_unknown_kind_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigError):
            reg.register("x", "weird", lambda: 1)

    def test_names_sorted_and_membership(self):
        reg = MetricsRegistry()
        reg.counter("b", lambda: 0)
        reg.counter("a", lambda: 0)
        assert reg.names() == ["a", "b"]
        assert "a" in reg
        assert "zzz" not in reg
        assert len(reg) == 2

    def test_histogram_resolves_to_summary(self):
        reg = MetricsRegistry()
        h = Log2Histogram()
        h.record(64.0)
        reg.histogram("lat", lambda: h, unit="ns")
        value = reg.snapshot()["lat"]
        assert value["count"] == 1
        assert value["mean_ns"] == 64.0

    def test_to_json_schema_and_metadata(self):
        reg = MetricsRegistry()
        reg.counter("n", lambda: 3, unit="items", help="how many")
        doc = reg.to_json()
        assert doc["schema"] == REGISTRY_SCHEMA
        assert doc["metrics"]["n"] == {
            "kind": "counter", "unit": "items", "help": "how many", "value": 3,
        }


def _small_run(machine=None):
    rt = RuntimeSystem(machine or MachineConfig(2, 2, 2), seed=0)
    tram = make_scheme(
        "WPs", rt, TramConfig(buffer_items=16),
        deliver_bulk=lambda ctx, w, n, si, sc: None,
    )
    W = rt.machine.total_workers

    def driver(ctx):
        rng = rt.rng.stream(f"reg/{ctx.worker.wid}")
        counts = np.bincount(rng.integers(0, W, 200), minlength=W)
        tram.insert_bulk(ctx, counts)
        tram.flush_when_done(ctx)

    for w in range(W):
        rt.post(w, driver)
    rt.run()
    return rt, tram


class TestRuntimeRegistry:
    def test_component_namespaces_present(self):
        rt, _ = _small_run()
        reg = registry_from_runtime(rt)
        names = reg.names()
        for expected in (
            "run.total_time_ns",
            "workers.tasks_executed",
            "commthreads.out_messages",
            "nics.tx_messages",
            "transport.inter_node.messages",
            "utilization.bottleneck",
            "tram.0.WPs.items_inserted",
            "tram.0.WPs.pending_items",
        ):
            assert expected in names, expected

    def test_values_match_components(self):
        rt, tram = _small_run()
        snap = registry_from_runtime(rt).snapshot()
        assert snap["workers.tasks_executed"] == sum(
            w.stats.tasks_executed for w in rt.workers
        )
        assert snap["tram.0.WPs.items_inserted"] == tram.stats.items_inserted
        assert snap["run.total_time_ns"] == rt.engine.now

    def test_bottleneck_matches_report(self):
        rt, _ = _small_run()
        snap = registry_from_runtime(rt).snapshot()
        assert snap["utilization.bottleneck"] == utilization(rt).bottleneck()

    def test_unrun_runtime_reports_no_utilization(self):
        rt = RuntimeSystem(MachineConfig(1, 1, 2), seed=0)
        snap = registry_from_runtime(rt).snapshot()
        assert snap["utilization.bottleneck"] is None
        assert snap["utilization.worker_mean"] is None

    def test_registry_built_before_run_reads_final_values(self):
        rt = RuntimeSystem(MachineConfig(1, 1, 2), seed=0)
        reg = registry_from_runtime(rt)
        rt.post(0, lambda ctx: ctx.charge(100.0))
        rt.run()
        assert reg.snapshot()["run.total_time_ns"] == rt.engine.now > 0
