"""Tests for ObsConfig gating and the run-capturing ObsSession."""

import numpy as np

from repro.machine import MachineConfig
from repro.obs import ObsConfig, ObsSession, active_session, run_snapshot
from repro.runtime.system import RuntimeSystem
from repro.tram import TramConfig, make_scheme

MACHINE = MachineConfig(2, 2, 2)


def _traffic(rt, tram):
    W = rt.machine.total_workers

    def driver(ctx):
        rng = rt.rng.stream(f"sess/{ctx.worker.wid}")
        counts = np.bincount(rng.integers(0, W, 100), minlength=W)
        tram.insert_bulk(ctx, counts)
        tram.flush_when_done(ctx)

    for w in range(W):
        rt.post(w, driver)


def _build(machine=MACHINE, **rt_kwargs):
    rt = RuntimeSystem(machine, seed=0, **rt_kwargs)
    tram = make_scheme(
        "WPs", rt, TramConfig(buffer_items=16),
        deliver_bulk=lambda ctx, w, n, si, sc: None,
    )
    return rt, tram


class TestGating:
    def test_disabled_by_default(self):
        rt, tram = _build()
        assert not rt.obs_enabled
        assert tram.stages is None

    def test_explicit_config_enables(self):
        rt, tram = _build(obs=ObsConfig())
        assert rt.obs_enabled
        assert tram.stages is not None

    def test_enabled_false_stays_off(self):
        with ObsSession(ObsConfig(enabled=False)) as session:
            rt, tram = _build()
            assert not rt.obs_enabled
            assert tram.stages is None
            _traffic(rt, tram)
            rt.run()
        assert session.records == []  # disabled sessions capture nothing

    def test_session_config_inherited(self):
        with ObsSession():
            rt, tram = _build()
            assert rt.obs_enabled
            assert tram.stages is not None
        rt2, tram2 = _build()  # outside: off again
        assert not rt2.obs_enabled

    def test_disabled_run_attaches_no_spans_and_no_histograms(self):
        rt, tram = _build()
        _traffic(rt, tram)
        rt.run()
        assert tram.stages is None
        assert tram.stats.items_delivered > 0
        # percentiles still work through the reservoir default
        assert tram.stats.latency.mean > 0


class TestSessionCapture:
    def test_one_record_per_runtime(self):
        with ObsSession() as session:
            for _ in range(2):
                rt, tram = _build()
                _traffic(rt, tram)
                rt.run()
        assert len(session.records) == 2
        for snap in session.records:
            assert snap["total_time_ns"] > 0
            assert snap["schemes"][0]["name"] == "WPs"
            assert snap["utilization"]["bottleneck"]

    def test_rerun_same_runtime_replaces_snapshot(self):
        with ObsSession() as session:
            rt, tram = _build()
            _traffic(rt, tram)
            stats1 = rt.run()
            _traffic(rt, tram)
            stats2 = rt.run()
        assert len(session.records) == 1
        snap = session.records[0]
        assert snap["events_fired"] == stats1.events_fired + stats2.events_fired

    def test_nesting_inner_wins_outer_restored(self):
        with ObsSession() as outer:
            with ObsSession() as inner:
                assert active_session() is inner
                rt, tram = _build()
                _traffic(rt, tram)
                rt.run()
            assert active_session() is outer
        assert active_session() is None
        assert len(inner.records) == 1
        assert outer.records == []


class TestSnapshotShape:
    def test_snapshot_keys(self):
        rt, tram = _build(obs=ObsConfig())
        _traffic(rt, tram)
        rt.run()
        snap = run_snapshot(rt)
        assert set(snap) >= {
            "machine", "total_time_ns", "transport", "schemes",
            "utilization", "metrics",
        }
        assert snap["machine"]["total_workers"] == MACHINE.total_workers
        scheme = snap["schemes"][0]
        assert scheme["stages"] is not None
        assert scheme["stats"]["items_delivered"] > 0

    def test_snapshot_without_obs_has_null_stages(self):
        rt, tram = _build()
        _traffic(rt, tram)
        rt.run()
        snap = run_snapshot(rt)
        assert snap["schemes"][0]["stages"] is None

    def test_optional_blocks_explicitly_null(self):
        """Schema /2 contract: disabled subsystems appear as explicit
        nulls, never as missing keys."""
        rt, tram = _build()
        _traffic(rt, tram)
        rt.run()
        snap = run_snapshot(rt)
        for key in ("faults", "reliability", "flow", "timeline"):
            assert key in snap, key
            assert snap[key] is None, key


class TestAbsorb:
    def _run_records(self, n=1):
        with ObsSession() as session:
            for _ in range(n):
                rt, tram = _build()
                _traffic(rt, tram)
                rt.run()
        return session.records

    def test_absorb_empty_is_a_noop(self):
        with ObsSession() as session:
            session.absorb([])
        assert session.records == []

    def test_absorb_preserves_order(self):
        recs = [{"tag": i} for i in range(3)]
        with ObsSession() as session:
            session.absorb(recs)
        assert session.records == recs

    def test_absorbing_twice_appends(self):
        with ObsSession() as session:
            session.absorb([{"tag": "a"}])
            session.absorb([{"tag": "b"}, {"tag": "c"}])
        assert [r["tag"] for r in session.records] == ["a", "b", "c"]
        # Records are stored as-is, not copied or re-keyed.
        assert session.records[0] == {"tag": "a"}

    def test_absorb_into_session_with_local_snapshots(self):
        """Pool-merge scenario: locally captured runs and absorbed
        worker records interleave in arrival order."""
        with ObsSession() as session:
            rt, tram = _build()
            _traffic(rt, tram)
            rt.run()
            shipped = self._run_records(n=1)
            session.absorb(shipped)
            rt2, tram2 = _build()
            _traffic(rt2, tram2)
            rt2.run()
        assert len(session.records) == 3
        assert session.records[1] is shipped[0]
        for snap in session.records:
            assert snap["total_time_ns"] > 0

    def test_absorbed_records_survive_runtime_rerun(self):
        """A later run() on a local runtime must replace only its own
        snapshot, never an absorbed one."""
        with ObsSession() as session:
            rt, tram = _build()
            _traffic(rt, tram)
            rt.run()
            session.absorb([{"tag": "shipped"}])
            _traffic(rt, tram)
            rt.run()  # refreshes the first slot in place
        assert len(session.records) == 2
        assert session.records[1] == {"tag": "shipped"}
