"""Acceptance: the emitted JSON names the same bottleneck as the
UtilizationReport for comm-thread-saturated and NIC-saturated configs."""

import json

from repro.apps import run_histogram
from repro.harness.artifact import (
    build_metrics_payload,
    validate_metrics_payload,
    write_metrics_json,
)
from repro.machine import MachineConfig
from repro.machine.costs import CostModel
from repro.obs import ObsConfig, ObsSession


def _roundtrip(tmp_path, session, target):
    payload = build_metrics_payload(
        target=target, profile="test", runs=session.records,
    )
    path = write_metrics_json(tmp_path / f"{target}.json", payload)
    loaded = json.loads(path.read_text())
    assert validate_metrics_payload(loaded) == []
    return loaded


class TestBottleneckVerdict:
    def test_commthread_saturated(self, tmp_path):
        # One comm thread serving 8 workers of fine-grained WW traffic:
        # the paper's SecIII-A serialization regime.
        with ObsSession(ObsConfig()) as session:
            run_histogram(
                MachineConfig(2, 1, 8), "WW", updates_per_pe=2000,
                buffer_items=8, batch=500,
            )
        loaded = _roundtrip(tmp_path, session, "comm_saturated")
        verdicts = {
            r["utilization"]["bottleneck"] for r in loaded["runs"]
        }
        # JSON verdict is byte-for-byte the report's verdict...
        for run, snap in zip(loaded["runs"], session.records):
            assert run["utilization"]["bottleneck"] == (
                snap["utilization"]["bottleneck"]
            )
        # ...and the regime is diagnosed correctly.
        assert verdicts == {"commthreads"}
        assert loaded["summary"]["bottleneck"] == "commthreads"

    def test_nic_saturated(self, tmp_path):
        costs = CostModel().replace(
            comm_msg_ns=20.0, comm_byte_ns=0.0,
            nic_msg_ns=2000.0, beta_ns_per_byte=2.0,
        )
        with ObsSession(ObsConfig()) as session:
            run_histogram(
                MachineConfig(2, 2, 2), "WPs", updates_per_pe=2000,
                buffer_items=16, batch=500, costs=costs,
            )
        loaded = _roundtrip(tmp_path, session, "nic_saturated")
        for run, snap in zip(loaded["runs"], session.records):
            assert run["utilization"]["bottleneck"] == (
                snap["utilization"]["bottleneck"]
            )
        assert loaded["summary"]["bottleneck"].startswith("nic")
