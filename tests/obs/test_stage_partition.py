"""The stage-partition identity: the core correctness property.

For every delivered item, the non-handler stages of the per-scheme
breakdown must exactly partition the end-to-end latency the scheme's
``LatencyAggregate`` records — nothing double-counted, nothing missing.
The acceptance run is the fig12 path (index-gather), plus per-item and
non-SMP variants.
"""

import numpy as np
import pytest

from repro.apps.indexgather import run_indexgather
from repro.machine import MachineConfig, nonsmp_machine
from repro.machine.costs import CostModel
from repro.obs import ObsConfig, ObsSession
from repro.obs.spans import STAGES
from repro.runtime.system import RuntimeSystem
from repro.tram import SCHEME_NAMES, TramConfig, make_scheme

REL_TOL = 1e-6

MACHINE = MachineConfig(nodes=2, processes_per_node=2, workers_per_process=2)


def nonempty_stages(scheme):
    """Stage names that actually accumulated time (the table pre-creates
    a histogram for every stage, so membership alone means nothing)."""
    return {s for s, h in scheme.stages.hists.items() if h.count}


def assert_partition(scheme):
    """Stages (minus handler) must sum to the recorded latency total."""
    stages = scheme.stages
    assert stages is not None
    total = stages.total_ns(include_handler=False)
    latency = scheme.stats.latency.total
    assert total == pytest.approx(latency, rel=REL_TOL)
    assert set(stages.hists) == set(STAGES)
    # Counts are per recorded *segment*, not per item (a remote item gets
    # e.g. a message-level local_delivery residual plus its own dequeue
    # slice), so we only sanity-check that time never comes count-free.
    for hist in stages.hists.values():
        if hist.total > 0.0:
            assert hist.count > 0


class TestIndexGatherPartition:
    """The fig12 workload (bulk request + item response traffic)."""

    @pytest.mark.parametrize("scheme", SCHEME_NAMES + ("WNs", "NN"))
    def test_partition_holds(self, scheme):
        with ObsSession(ObsConfig()) as session:
            run_indexgather(
                MACHINE, scheme, requests_per_pe=300, buffer_items=32,
                latency_sample=0, seed=1,
            )
        assert session.records, "no runs captured"
        for snap in session.records:
            for sd in snap["schemes"]:
                total = sd["stage_latency_total_ns"]
                latency = sd["latency"]["total_ns"]
                assert total == pytest.approx(latency, rel=REL_TOL)
                assert latency > 0.0


def _per_item_run(scheme_name, machine=MACHINE, bypass_local=True):
    rt = RuntimeSystem(machine, seed=3, obs=ObsConfig())
    tram = make_scheme(
        scheme_name, rt,
        TramConfig(buffer_items=16, idle_flush=True,
                   bypass_local=bypass_local),
        deliver_item=lambda ctx, it: None,
    )
    W = machine.total_workers

    def driver(ctx):
        rng = rt.rng.stream(f"part/{ctx.worker.wid}")
        for _ in range(150):
            tram.insert(ctx, dst=int(rng.integers(0, W)))

    for w in range(W):
        rt.post(w, driver)
    rt.run()
    return tram


class TestPerItemPartition:
    @pytest.mark.parametrize(
        "scheme", ("WW", "WPs", "WsP", "PP", "WNs", "NN", "R2D", "Direct")
    )
    def test_partition_holds(self, scheme):
        tram = _per_item_run(scheme)
        assert tram.stats.items_delivered > 0
        assert_partition(tram)

    def test_partition_without_bypass(self):
        tram = _per_item_run("WPs", bypass_local=False)
        assert tram.stats.items_bypassed_local == 0
        assert_partition(tram)

    def test_bypassed_items_are_local_delivery(self):
        tram = _per_item_run("WPs", machine=MachineConfig(1, 1, 4))
        # Single process: with bypass on, everything is a local bypass.
        assert tram.stats.items_bypassed_local == tram.stats.items_inserted
        assert nonempty_stages(tram) == {"local_delivery", "handler"}
        assert_partition(tram)

    def test_nonsmp_partition(self):
        tram = _per_item_run("WW", machine=nonsmp_machine(2, ranks_per_node=4))
        assert tram.stats.items_delivered > 0
        stages = nonempty_stages(tram)
        assert "ct_queue" not in stages  # no comm threads in non-SMP
        assert "ct_service" not in stages
        assert_partition(tram)


class TestHandlerStage:
    def test_handler_charged_per_item(self):
        tram = _per_item_run("WPs")
        handler = tram.stages.hists.get("handler")
        assert handler is not None
        assert handler.count == tram.stats.items_delivered
        assert handler.mean == pytest.approx(CostModel().handler_ns)


class TestSaturatedPartition:
    """Queueing-heavy regimes exercise the ct/nic wait stages."""

    def test_commthread_saturated_has_ct_queue(self):
        machine = MachineConfig(nodes=2, processes_per_node=1,
                                workers_per_process=8)
        tram = _per_item_run("WW", machine=machine)
        assert "ct_queue" in nonempty_stages(tram)
        assert_partition(tram)

    def test_nic_saturated_has_nic_queue(self):
        costs = CostModel().replace(
            comm_msg_ns=20.0, comm_byte_ns=0.0,
            nic_msg_ns=2000.0, beta_ns_per_byte=2.0,
        )
        rt = RuntimeSystem(MACHINE, costs, seed=3, obs=ObsConfig())
        tram = make_scheme(
            "WW", rt, TramConfig(buffer_items=8, idle_flush=True),
            deliver_item=lambda ctx, it: None,
        )
        W = MACHINE.total_workers

        def driver(ctx):
            rng = rt.rng.stream(f"nic/{ctx.worker.wid}")
            for _ in range(150):
                tram.insert(ctx, dst=int(rng.integers(0, W)))

        for w in range(W):
            rt.post(w, driver)
        rt.run()
        assert "nic_tx_queue" in nonempty_stages(tram)
        assert_partition(tram)
