"""Tests for the fixed-bucket log2 latency histogram."""

from repro.obs.hist import N_BUCKETS, Log2Histogram


class TestRecording:
    def test_exact_moments(self):
        h = Log2Histogram()
        for v in (10.0, 100.0, 1000.0):
            h.record(v)
        assert h.count == 3
        assert h.total == 1110.0
        assert h.mean == 370.0
        assert h.min == 10.0
        assert h.max == 1000.0

    def test_weight_multiplies(self):
        h = Log2Histogram()
        h.record(50.0, weight=4)
        assert h.count == 4
        assert h.total == 200.0
        assert h.mean == 50.0

    def test_bucket_placement(self):
        h = Log2Histogram()
        h.record(0.0)      # bucket 0 (sub-ns)
        h.record(0.5)      # bucket 0
        h.record(1.0)      # bucket 1
        h.record(3.0)      # bucket 2 ([2, 4))
        assert h.counts[0] == 2
        assert h.counts[1] == 1
        assert h.counts[2] == 1

    def test_huge_value_clamps_to_last_bucket(self):
        h = Log2Histogram()
        h.record(2.0 ** 80)
        assert h.counts[N_BUCKETS - 1] == 1

    def test_empty_histogram(self):
        h = Log2Histogram()
        assert h.mean == 0.0
        assert h.percentile(50) is None
        assert h.summary()["min_ns"] == 0.0


class TestPercentiles:
    def test_single_value_returns_it(self):
        h = Log2Histogram()
        h.record(300.0, weight=7)
        # Upper bucket edge is 512, but clamping to [min, max] recovers
        # the exact value when the histogram holds one distinct value.
        assert h.percentile(50) == 300.0
        assert h.percentile(99) == 300.0

    def test_percentiles_monotone_and_bounded(self):
        h = Log2Histogram()
        for v in (10.0, 20.0, 500.0, 5000.0, 100000.0):
            h.record(v)
        ps = [h.percentile(q) for q in (10, 50, 90, 99)]
        assert ps == sorted(ps)
        for p in ps:
            assert h.min <= p <= h.max

    def test_p50_within_factor_two(self):
        h = Log2Histogram()
        for v in range(1, 101):
            h.record(float(v))
        p50 = h.percentile(50)
        assert 25.0 <= p50 <= 100.0  # log2 bucket resolution around 50


class TestMergeAndSummary:
    def test_merge_equals_combined_recording(self):
        a, b, both = Log2Histogram(), Log2Histogram(), Log2Histogram()
        for v in (5.0, 600.0):
            a.record(v)
            both.record(v)
        for v in (70.0, 8000.0):
            b.record(v)
            both.record(v)
        a.merge(b)
        assert a.counts == both.counts
        assert a.count == both.count
        assert a.total == both.total
        assert a.min == both.min
        assert a.max == both.max

    def test_summary_keys(self):
        h = Log2Histogram()
        h.record(123.0, weight=3)
        s = h.summary()
        assert set(s) == {
            "count", "total_ns", "mean_ns", "min_ns", "max_ns",
            "p50_ns", "p90_ns", "p99_ns",
        }
        assert s["count"] == 3
        assert s["mean_ns"] == 123.0
