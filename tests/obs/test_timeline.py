"""Tests for the flight recorder (``repro.obs.timeline``).

Covers activation gating, cadence-boundary sampling from the engine
loop, ring-buffer decimation, final-sample agreement with the metrics
registry, run-to-run determinism, and the overload worked example
(backlog ramp visible in the sampled series).
"""

import json

import numpy as np
import pytest

from repro.flow import FlowConfig
from repro.machine import MachineConfig
from repro.obs import ObsConfig, TimelineConfig
from repro.obs.registry import registry_from_runtime
from repro.runtime.system import RuntimeSystem
from repro.tram import TramConfig, make_scheme

MACHINE = MachineConfig(2, 2, 2)

CADENCE = 1_000.0


def _build(timeline=None, machine=MACHINE, **rt_kwargs):
    obs = ObsConfig(timeline=timeline) if timeline is not None else None
    rt = RuntimeSystem(machine, seed=0, obs=obs, **rt_kwargs)
    tram = make_scheme(
        "WPs", rt, TramConfig(buffer_items=16),
        deliver_bulk=lambda ctx, w, n, si, sc: None,
    )
    return rt, tram


def _traffic(rt, tram, n=100):
    W = rt.machine.total_workers

    def driver(ctx):
        rng = rt.rng.stream(f"tl/{ctx.worker.wid}")
        counts = np.bincount(rng.integers(0, W, n), minlength=W)
        tram.insert_bulk(ctx, counts)
        tram.flush_when_done(ctx)

    for w in range(W):
        rt.post(w, driver)


class TestActivation:
    def test_off_by_default(self):
        rt, _ = _build()
        assert rt.timeline is None
        assert rt.engine.sampler is None

    def test_obs_without_timeline_stays_off(self):
        rt = RuntimeSystem(MACHINE, seed=0, obs=ObsConfig())
        assert rt.timeline is None
        assert rt.engine.sampler is None

    def test_enabled_false_stays_off(self):
        rt, _ = _build(TimelineConfig(enabled=False))
        assert rt.timeline is None
        assert rt.engine.sampler is None

    def test_config_attaches_recorder(self):
        rt, _ = _build(TimelineConfig(cadence_ns=CADENCE))
        assert rt.timeline is not None
        assert rt.engine.sampler is rt.timeline


class TestSampling:
    def test_monotone_times_on_cadence_grid(self):
        rt, tram = _build(TimelineConfig(cadence_ns=CADENCE))
        _traffic(rt, tram)
        rt.run()
        d = rt.timeline.to_dict()
        times = d["times_ns"]
        assert d["n_samples"] == len(times) >= 2
        assert all(b > a for a, b in zip(times, times[1:]))
        for t in times:
            assert t % CADENCE == pytest.approx(0.0)
        # Samples never run past quiescence.
        assert times[-1] <= rt.engine.now
        assert d["final"]["time_ns"] == rt.engine.now

    def test_series_cover_the_subsystems(self):
        rt, tram = _build(TimelineConfig(cadence_ns=CADENCE))
        _traffic(rt, tram)
        rt.run()
        series = rt.timeline.to_dict()["series"]
        for name in (
            "workers.queued_bytes",
            "commthreads.out_messages",
            "commthreads.backlog_ns",
            "nics.tx_messages",
        ):
            assert name in series
        assert any(k.startswith("ct.") for k in series)
        assert any(k.startswith("nic.") for k in series)
        assert any(k.startswith("tram.") for k in series)
        n = len(rt.timeline.to_dict()["times_ns"])
        assert all(len(col) == n for col in series.values())

    def test_sampling_does_not_change_the_run(self):
        rt_plain, tram_plain = _build()
        _traffic(rt_plain, tram_plain)
        rt_plain.run()
        rt_tl, tram_tl = _build(TimelineConfig(cadence_ns=CADENCE))
        _traffic(rt_tl, tram_tl)
        rt_tl.run()
        assert rt_tl.engine.now == rt_plain.engine.now
        assert (
            tram_tl.stats.items_delivered == tram_plain.stats.items_delivered
        )

    def test_final_sample_matches_registry(self):
        rt, tram = _build(TimelineConfig(cadence_ns=CADENCE))
        _traffic(rt, tram)
        rt.run()
        reg = registry_from_runtime(rt).snapshot()
        final = rt.timeline.to_dict()["final"]["values"]
        shadowed = [n for n in final if n in reg]
        assert shadowed, "no timeline series shadows a registry metric"
        for name in shadowed:
            assert final[name] == pytest.approx(float(reg[name])), name

    def test_deterministic_across_identical_runs(self):
        payloads = []
        for _ in range(2):
            rt, tram = _build(TimelineConfig(cadence_ns=CADENCE))
            _traffic(rt, tram)
            rt.run()
            payloads.append(json.dumps(rt.timeline.to_dict(), sort_keys=True))
        assert payloads[0] == payloads[1]


class TestDecimation:
    def test_capacity_respected_with_stride_doubling(self):
        cap = 8
        rt, tram = _build(
            TimelineConfig(cadence_ns=100.0, capacity=cap)
        )
        _traffic(rt, tram, n=400)
        rt.run()
        d = rt.timeline.to_dict()
        assert d["decimations"] >= 1
        assert d["stride"] == 2 ** d["decimations"]
        times = d["times_ns"]
        assert len(times) <= cap
        assert all(b > a for a, b in zip(times, times[1:]))
        # Surviving rows sit on the coarsened grid.
        step = d["stride"] * 100.0
        for t in times:
            assert t % step == pytest.approx(0.0)

    def test_no_decimation_when_capacity_suffices(self):
        rt, tram = _build(TimelineConfig(cadence_ns=CADENCE, capacity=512))
        _traffic(rt, tram)
        rt.run()
        d = rt.timeline.to_dict()
        assert d["decimations"] == 0
        assert d["stride"] == 1


class TestOverloadRamp:
    """The docs' worked example: an overload window shows up as a
    backlog ramp, parked messages, and the overload flag flipping."""

    FLOW = FlowConfig(
        ct_max_msgs=2,
        ct_max_bytes=2048,
        nic_max_msgs=2,
        nic_max_bytes=2048,
        overload_backlog_ns=5_000.0,
        clear_backlog_ns=1_000.0,
    )

    def _saturate(self):
        rt = RuntimeSystem(
            MACHINE, seed=0, flow=self.FLOW,
            obs=ObsConfig(timeline=TimelineConfig(cadence_ns=500.0)),
        )
        tram = make_scheme(
            "WW", rt, TramConfig(buffer_items=4, idle_flush=True),
            deliver_item=lambda ctx, it: None,
        )
        W = MACHINE.total_workers

        def driver(ctx, remaining):
            rng = rt.rng.stream(f"ov/{ctx.worker.wid}/{remaining}")
            for _ in range(50):
                tram.insert(ctx, dst=int(rng.integers(0, W)))
            if remaining:
                ctx.emit(ctx.worker.post_task, driver, remaining - 1)

        for w in range(W):
            rt.post(w, driver, 7)
        rt.run(max_events=50_000_000)
        return rt

    def test_overload_window_visible_in_series(self):
        rt = self._saturate()
        assert rt.flow.stats.overload_escalations >= 1  # workload sanity
        d = rt.timeline.to_dict()
        series = d["series"]
        over = series["flow.overloaded"]
        assert set(over) <= {0.0, 1.0}
        assert 1.0 in over, "overload window never sampled"
        # Backlog ramps up to (at least) the escalation threshold.
        backlog = series["commthreads.backlog_ns"]
        assert max(backlog) >= self.FLOW.overload_backlog_ns
        # Parked messages appear while gates are saturated, and every
        # park is drained by quiescence (last sample or final row).
        parked = series["flow.parked_messages"]
        assert max(parked) > 0
        assert d["final"]["values"]["flow.in_flight_msgs"] == 0.0

    def test_backlog_ramps_then_drains(self):
        rt = self._saturate()
        d = rt.timeline.to_dict()
        over = d["series"]["flow.overloaded"]
        backlog = d["series"]["commthreads.backlog_ns"]
        # The episode has shape: backlog climbs from (near) zero to its
        # peak, the overload flag is observed set while congestion is
        # live, and everything drains by quiescence.
        peak = max(backlog)
        assert peak > 0.0
        assert backlog[0] < peak
        first_over = over.index(1.0)
        assert backlog[first_over] > 0.0  # flag never set on an idle system
        assert d["final"]["values"]["flow.overloaded"] == 0.0
        assert d["final"]["values"]["flow.parked_messages"] == 0.0
