"""Unit tests for the §III-C closed-form analyses."""

import pytest

from repro.analysis import (
    aggregated_send_cost_ns,
    aggregation_speedup,
    buffer_bytes_per_core,
    buffer_bytes_per_process,
    direct_send_cost_ns,
    expected_fill_latency_ns,
    fill_rate_per_buffer,
    message_bounds_per_source,
    message_bounds_total,
    total_buffer_bytes,
)
from repro.errors import ConfigError
from repro.machine import CostModel, MachineConfig

MACHINE = MachineConfig(nodes=4, processes_per_node=2, workers_per_process=4)
N = MACHINE.total_processes  # 8
T = MACHINE.workers_per_process  # 4


class TestMemoryFormulas:
    """The exact §III-C table."""

    def test_ww_per_core(self):
        assert buffer_bytes_per_core("WW", 1024, 8, N, T) == 1024 * 8 * N * T

    def test_ww_per_process(self):
        assert (
            buffer_bytes_per_process("WW", 1024, 8, N, T)
            == 1024 * 8 * N * T * T
        )

    def test_wps_wsp_per_core(self):
        for s in ("WPs", "WsP"):
            assert buffer_bytes_per_core(s, 1024, 8, N, T) == 1024 * 8 * N

    def test_pp_per_process(self):
        assert buffer_bytes_per_process("PP", 1024, 8, N, T) == 1024 * 8 * N

    def test_ordering_ww_gt_wps_gt_pp(self):
        ww = buffer_bytes_per_process("WW", 64, 8, N, T)
        wps = buffer_bytes_per_process("WPs", 64, 8, N, T)
        pp = buffer_bytes_per_process("PP", 64, 8, N, T)
        assert ww == T * wps == T * T * pp

    def test_total(self):
        assert total_buffer_bytes("PP", MACHINE, 64, 8) == 64 * 8 * N * N

    def test_unknown_scheme(self):
        with pytest.raises(ConfigError):
            buffer_bytes_per_core("nope", 1, 1, 1, 1)


class TestMessageBounds:
    def test_per_source_ww(self):
        lo, hi = message_bounds_per_source("WW", 10_000, 100, MACHINE)
        assert lo == 100.0
        assert hi == 100.0 + N * T

    def test_per_source_wps_pp(self):
        for s in ("WPs", "WsP", "PP"):
            lo, hi = message_bounds_per_source(s, 10_000, 100, MACHINE)
            assert lo == 100.0
            assert hi == 100.0 + N

    def test_direct_exact(self):
        lo, hi = message_bounds_per_source("Direct", 500, 100, MACHINE)
        assert lo == hi == 500.0

    def test_streaming_limit_schemes_converge(self):
        """z >> g: the flush term vanishes (paper's streaming argument)."""
        z, g = 10**9, 1024
        ratios = []
        for s in ("WW", "WPs", "PP"):
            lo, hi = message_bounds_per_source(s, z, g, MACHINE)
            ratios.append(hi / lo)
        assert all(r < 1.001 for r in ratios)

    def test_total_bounds_ordering(self):
        lo_ww, hi_ww = message_bounds_total("WW", 10**6, 64, MACHINE)
        lo_pp, hi_pp = message_bounds_total("PP", 10**6, 64, MACHINE)
        assert lo_ww == lo_pp  # same lower bound
        assert hi_ww > hi_pp  # WW has far more flush slots

    def test_unknown_scheme(self):
        with pytest.raises(ConfigError):
            message_bounds_total("nope", 10, 1, MACHINE)


class TestSendCost:
    def test_direct_cost_formula(self):
        costs = CostModel()
        z, b = 1000, 8
        per_msg = costs.message_bytes(1, b)
        expected = z * (costs.alpha_inter_ns + costs.beta_ns_per_byte * per_msg)
        assert direct_send_cost_ns(z, b, costs) == pytest.approx(expected)

    def test_aggregated_divides_alpha_by_g(self):
        costs = CostModel()
        z, g, b = 10_000, 100, 8
        agg = aggregated_send_cost_ns(z, g, b, costs)
        expected = (z / g) * costs.alpha_inter_ns + costs.beta_ns_per_byte * b * z
        assert agg == pytest.approx(expected)

    def test_speedup_large_for_small_items(self):
        assert aggregation_speedup(10_000, 1024, 8) > 50

    def test_speedup_shrinks_for_large_items(self):
        small = aggregation_speedup(1000, 64, 8)
        large = aggregation_speedup(1000, 64, 1 << 20)
        assert large < small
        assert large >= 1.0 or large == pytest.approx(1.0, rel=0.5)

    def test_validation(self):
        with pytest.raises(ConfigError):
            direct_send_cost_ns(-1, 8)
        with pytest.raises(ConfigError):
            aggregated_send_cost_ns(10, 0, 8)


class TestFillLatency:
    def test_fill_rate_ordering_is_the_papers(self):
        """r_WW < r_WPs < r_PP -> latency WW > WPs > PP (Fig 12)."""
        r = 1e-3  # items/ns per worker
        r_ww = fill_rate_per_buffer("WW", r, MACHINE)
        r_wps = fill_rate_per_buffer("WPs", r, MACHINE)
        r_pp = fill_rate_per_buffer("PP", r, MACHINE)
        assert r_ww < r_wps < r_pp
        assert r_wps == pytest.approx(T * r_ww)
        assert r_pp == pytest.approx(T * r_wps)

    def test_latency_inverse_of_rate(self):
        r = 1e-3
        lat_ww = expected_fill_latency_ns("WW", 64, r, MACHINE)
        lat_pp = expected_fill_latency_ns("PP", 64, r, MACHINE)
        assert lat_ww == pytest.approx(T * T * lat_pp)

    def test_direct_has_zero_fill_latency(self):
        assert expected_fill_latency_ns("Direct", 64, 1.0, MACHINE) == 0.0

    def test_zero_rate_infinite_latency(self):
        assert expected_fill_latency_ns("WW", 64, 0.0, MACHINE) == float("inf")

    def test_g_of_one_never_waits(self):
        assert expected_fill_latency_ns("WW", 1, 1e-3, MACHINE) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            fill_rate_per_buffer("WW", -1.0, MACHINE)
        with pytest.raises(ConfigError):
            expected_fill_latency_ns("WW", 0, 1.0, MACHINE)
        with pytest.raises(ConfigError):
            fill_rate_per_buffer("nope", 1.0, MACHINE)
