"""Unit tests for ExecContext mechanics."""

import pytest

from repro.errors import SimulationError


class TestCharges:
    def test_cost_accumulates(self, tiny_rt):
        costs = []

        def task(ctx):
            ctx.charge(100.0)
            ctx.charge(50.5)
            costs.append(ctx.cost)

        tiny_rt.post(0, task)
        tiny_rt.run()
        assert costs == [150.5]

    def test_now_is_task_start(self, tiny_rt):
        observed = []

        def task(ctx):
            ctx.charge(1000.0)
            observed.append(ctx.now)  # still start time after charging

        tiny_rt.post(0, task, delay=500.0)
        tiny_rt.run()
        assert observed == [500.0]

    def test_rt_accessor(self, tiny_rt):
        seen = []
        tiny_rt.post(0, lambda ctx: seen.append(ctx.rt is tiny_rt))
        tiny_rt.run()
        assert seen == [True]


class TestEmissions:
    def test_emissions_ordered_before_next_task(self, tiny_rt):
        """Emissions at completion fire before the worker's next task
        at the same timestamp (insertion order)."""
        order = []

        def first(ctx):
            ctx.charge(100.0)
            ctx.emit(lambda: order.append("emission"))

        def second(ctx):
            order.append("second-task")

        tiny_rt.post(0, first)
        tiny_rt.post(0, second)
        tiny_rt.run()
        assert order == ["emission", "second-task"]

    def test_negative_delay_rejected(self, tiny_rt):
        errors = []

        def task(ctx):
            try:
                ctx.emit(lambda: None, delay=-1.0)
            except SimulationError as e:
                errors.append(e)

        tiny_rt.post(0, task)
        tiny_rt.run()
        assert errors

    def test_post_local_queues_on_same_pe(self, tiny_rt):
        seen = []

        def follow_up(ctx):
            seen.append((ctx.worker.wid, ctx.now))

        def task(ctx):
            ctx.charge(200.0)
            ctx.post_local(follow_up)

        tiny_rt.post(3, task)
        tiny_rt.run()
        assert seen == [(3, 200.0)]

    def test_post_local_expedited(self, tiny_rt):
        order = []

        def urgent(ctx):
            order.append("urgent")

        def normal(ctx):
            order.append("normal")

        def task(ctx):
            ctx.charge(50.0)
            # Queue normal first, then an expedited one; expedited wins.
            ctx.post_local(normal)
            ctx.post_local(urgent, expedited=True)

        tiny_rt.post(0, task)
        tiny_rt.run()
        assert order == ["urgent", "normal"]
