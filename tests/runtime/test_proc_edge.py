"""Edge-case tests for Process and Node helpers."""

import pytest

from repro.machine import MachineConfig
from repro.runtime.system import RuntimeSystem


class TestProcessState:
    def test_shared_heap_is_per_process(self, tiny_rt):
        tiny_rt.process(0).shared["k"] = 1
        assert "k" not in tiny_rt.process(1).shared

    def test_all_workers_idle_during_run(self, tiny_rt):
        observations = []

        def busy_task(ctx):
            ctx.charge(1_000.0)

        def probe():
            observations.append(tiny_rt.process(0).all_workers_idle())

        tiny_rt.post(0, busy_task)
        tiny_rt.engine.after(500.0, probe)   # mid-task
        tiny_rt.engine.after(5_000.0, probe)  # after completion
        tiny_rt.run()
        assert observations == [False, True]

    def test_single_worker_process_receiver(self):
        rt = RuntimeSystem(MachineConfig(1, 2, 1))
        proc = rt.process(0)
        assert proc.next_receiver() == 0
        assert proc.next_receiver() == 0


class TestNodeHelpers:
    def test_node_worker_process_consistency(self, tiny_rt):
        for node in tiny_rt.nodes:
            for pid in node.processes:
                assert tiny_rt.machine.node_of_process(pid) == node.node_id
            for wid in node.workers:
                assert tiny_rt.machine.node_of_worker(wid) == node.node_id

    def test_nic_for_process_single_nic(self, tiny_rt):
        node = tiny_rt.node(0)
        for pid in node.processes:
            assert node.nic_for_process(pid) is node.nic
