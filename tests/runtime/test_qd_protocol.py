"""Tests for the distributed two-wave quiescence detector.

Safety: never declare while items are outstanding. Liveness: always
declare once the system truly drains. Plus the protocol's costs are
real (its polls ride the simulated network).
"""

import pytest

from repro.errors import ConfigError
from repro.machine import MachineConfig
from repro.runtime.qd_protocol import QuiescenceDetector
from repro.runtime.system import RuntimeSystem
from repro.tram import TramConfig, make_scheme

MACHINE = MachineConfig(nodes=2, processes_per_node=2, workers_per_process=2)


def build_app(n_items=40, delay_spread=200_000.0):
    """A tram app whose items are produced over a time window."""
    rt = RuntimeSystem(MACHINE, seed=0)
    detected = []
    qd = QuiescenceDetector(rt, on_quiescence=detected.append,
                            poll_interval_ns=20_000.0)
    state = {"consumed_at": 0.0}

    def deliver(ctx, item):
        qd.note_consumed(ctx)
        state["consumed_at"] = max(state["consumed_at"], ctx.now)

    tram = make_scheme(
        "WPs", rt, TramConfig(buffer_items=4, idle_flush=True),
        deliver_item=deliver,
    )

    def one_send(ctx, dst):
        qd.note_produced(ctx)
        tram.insert(ctx, dst=dst)

    rng = __import__("numpy").random.default_rng(1)
    for i in range(n_items):
        src = int(rng.integers(0, MACHINE.total_workers))
        dst = int(rng.integers(0, MACHINE.total_workers))
        rt.post(src, one_send, dst,
                delay=float(rng.random() * delay_spread))
    qd.start()
    return rt, qd, detected, state


class TestLiveness:
    def test_detects_after_drain(self):
        rt, qd, detected, state = build_app()
        rt.run(max_events=500_000)
        assert qd.detected
        assert len(detected) == 1

    def test_detection_never_precedes_last_consumption(self):
        rt, qd, detected, state = build_app()
        rt.run(max_events=500_000)
        assert detected[0] >= state["consumed_at"]

    def test_callback_fires_exactly_once(self):
        rt, qd, detected, _ = build_app(n_items=10)
        rt.run(max_events=500_000)
        assert detected.count(detected[0]) == len(detected) == 1


class TestSafety:
    def test_no_declaration_while_outstanding(self):
        """Freeze an item in a buffer (no idle flush): the detector must
        keep polling without ever declaring."""
        rt = RuntimeSystem(MACHINE, seed=0)
        detected = []
        qd = QuiescenceDetector(rt, on_quiescence=detected.append,
                                poll_interval_ns=10_000.0)
        tram = make_scheme(
            "WPs", rt, TramConfig(buffer_items=100, idle_flush=False),
            deliver_item=lambda ctx, it: qd.note_consumed(ctx),
        )

        def send(ctx):
            qd.note_produced(ctx)
            tram.insert(ctx, dst=7)  # sits in the buffer forever

        rt.post(0, send)
        qd.start()
        rt.run(until=500_000.0, max_events=500_000)
        assert not qd.detected
        assert detected == []
        assert qd.waves_run >= 5  # it kept trying

    def test_two_wave_rule_blocks_transient_balance(self):
        """Balance observed in one wave must be re-confirmed: a new item
        produced between waves resets the confirmation."""
        rt = RuntimeSystem(MACHINE, seed=0)
        detected = []
        qd = QuiescenceDetector(rt, on_quiescence=detected.append,
                                poll_interval_ns=10_000.0)
        tram = make_scheme(
            "WPs", rt, TramConfig(buffer_items=1, idle_flush=True),
            deliver_item=lambda ctx, it: qd.note_consumed(ctx),
        )

        def send(ctx):
            qd.note_produced(ctx)
            tram.insert(ctx, dst=7)

        rt.post(0, send)                      # drains quickly
        rt.post(1, send, delay=15_000.0)      # second burst mid-detection
        qd.start()
        rt.run(max_events=500_000)
        assert qd.detected
        # Detection happened after the second burst was consumed too.
        assert detected[0] > 15_000.0


class TestProtocolCosts:
    def test_polls_ride_the_network(self):
        rt, qd, detected, _ = build_app(n_items=8, delay_spread=1_000.0)
        rt.run(max_events=500_000)
        # waves * (polls + replies): every wave sends one poll per
        # process and gets one reply back.
        n = MACHINE.total_processes
        assert qd.messages_sent == qd.waves_run * 2 * n
        assert qd.waves_run >= 2  # two-wave confirmation minimum

    def test_validation(self):
        rt = RuntimeSystem(MACHINE, seed=0)
        with pytest.raises(ConfigError):
            QuiescenceDetector(rt, on_quiescence=lambda t: None,
                               poll_interval_ns=0.0)
        qd = QuiescenceDetector(rt, on_quiescence=lambda t: None)
        qd.start()
        with pytest.raises(ConfigError):
            qd.start()
