"""Unit tests for the worker PE server."""

import pytest

from repro.errors import SimulationError


class TestExecution:
    def test_task_charges_occupy_pe(self, tiny_rt):
        rt = tiny_rt
        done = []

        def task(ctx):
            ctx.charge(500.0)
            done.append(ctx.now)

        rt.post(0, task)
        rt.post(0, task)
        rt.run()
        # Second task starts only after the first's 500ns completes.
        assert done == [0.0, 500.0]

    def test_emissions_fire_at_completion(self, tiny_rt):
        rt = tiny_rt
        seen = []

        def task(ctx):
            ctx.charge(300.0)
            ctx.emit(lambda: seen.append(rt.engine.now))

        rt.post(0, task)
        rt.run()
        assert seen == [300.0]

    def test_emission_delay(self, tiny_rt):
        rt = tiny_rt
        seen = []

        def task(ctx):
            ctx.charge(100.0)
            ctx.emit(lambda: seen.append(rt.engine.now), delay=50.0)

        rt.post(0, task)
        rt.run()
        assert seen == [150.0]

    def test_zero_cost_task(self, tiny_rt):
        rt = tiny_rt
        seen = []
        rt.post(0, lambda ctx: seen.append(ctx.now))
        rt.run()
        assert seen == [0.0]

    def test_negative_charge_rejected(self, tiny_rt):
        rt = tiny_rt
        errors = []

        def task(ctx):
            try:
                ctx.charge(-1.0)
            except SimulationError as e:
                errors.append(e)

        rt.post(0, task)
        rt.run()
        assert errors

    def test_stats_accumulate(self, tiny_rt):
        rt = tiny_rt
        rt.post(0, lambda ctx: ctx.charge(100.0))
        rt.post(0, lambda ctx: ctx.charge(200.0))
        rt.run()
        w = rt.worker(0)
        assert w.stats.tasks_executed == 2
        assert w.stats.busy_ns == pytest.approx(300.0)


class TestLanes:
    def test_expedited_overtakes_normal(self, tiny_rt):
        rt = tiny_rt
        order = []

        def kickoff(ctx):
            # While this task runs (cost>0), three more arrive.
            ctx.charge(100.0)
            ctx.emit(enqueue_all)

        def enqueue_all():
            w = rt.worker(0)
            w.post_task(lambda ctx: order.append("n1"))
            w.post_task(lambda ctx: order.append("e1"), expedited=True)
            w.post_task(lambda ctx: order.append("n2"))

        rt.post(0, kickoff)
        rt.run()
        assert order == ["e1", "n1", "n2"]


class TestIdleHooks:
    def test_hook_fires_on_busy_to_idle_transition(self, tiny_rt):
        rt = tiny_rt
        transitions = []
        rt.worker(0).idle_hooks.append(lambda w: transitions.append(rt.now))
        rt.post(0, lambda ctx: ctx.charge(100.0))
        rt.run()
        assert transitions == [100.0]

    def test_hook_posting_work_resumes_pe(self, tiny_rt):
        rt = tiny_rt
        ran = []

        def hook(worker):
            if not ran:
                worker.post_task(lambda ctx: ran.append(ctx.now))

        rt.worker(0).idle_hooks.append(hook)
        rt.post(0, lambda ctx: ctx.charge(10.0))
        rt.run()
        assert ran == [10.0]

    def test_hooks_not_fired_when_never_busy(self, tiny_rt):
        rt = tiny_rt
        fired = []
        rt.worker(1).idle_hooks.append(lambda w: fired.append(1))
        rt.post(0, lambda ctx: None)  # other worker
        rt.run()
        assert fired == []


class TestOsNoise:
    def test_noisy_rank_zero_slower(self, make_rt):
        rt = make_rt(os_noise_factor=0.5)
        times = {}

        def task(ctx):
            ctx.charge(1000.0)
            ctx.emit(lambda w=ctx.worker.wid: times.__setitem__(w, rt.now))

        rt.post(0, task)  # local rank 0 -> noisy
        rt.post(1, task)  # local rank 1 -> clean
        rt.run()
        assert times[0] == pytest.approx(1500.0)
        assert times[1] == pytest.approx(1000.0)

    def test_no_noise_by_default(self, tiny_rt):
        assert tiny_rt.worker(0)._noise_mult == 1.0
