"""Unit tests for RuntimeSystem wiring, Chare and QDCounter."""

import pytest

from repro.errors import ConfigError, QuiescenceError
from repro.runtime.chare import Chare
from repro.runtime.quiescence import QDCounter


class TestRuntimeSystem:
    def test_component_counts(self, tiny_rt):
        assert len(tiny_rt.workers) == 8
        assert len(tiny_rt.processes) == 4
        assert len(tiny_rt.nodes) == 2

    def test_commthreads_wired_in_smp(self, tiny_rt):
        for proc in tiny_rt.processes:
            assert proc.commthread is not None
            assert proc.commthread.on_outbound_done is not None

    def test_nic_sinks_installed(self, tiny_rt):
        for node in tiny_rt.nodes:
            assert node.nic.sink is not None

    def test_duplicate_handler_rejected(self, tiny_rt):
        tiny_rt.register_handler("k", lambda ctx, m: None)
        with pytest.raises(ConfigError):
            tiny_rt.register_handler("k", lambda ctx, m: None)
        tiny_rt.register_handler("k", lambda ctx, m: None, overwrite=True)

    def test_post_with_delay(self, tiny_rt):
        seen = []
        tiny_rt.post(0, lambda ctx: seen.append(ctx.now), delay=250.0)
        tiny_rt.run()
        assert seen == [250.0]

    def test_now_property(self, tiny_rt):
        assert tiny_rt.now == 0.0
        tiny_rt.post(0, lambda ctx: ctx.charge(10.0))
        tiny_rt.run()
        assert tiny_rt.now == 10.0

    def test_process_helpers(self, tiny_rt):
        proc = tiny_rt.process(1)
        assert proc.node_id == 0
        assert list(proc.workers) == [2, 3]
        assert proc.all_workers_idle()

    def test_node_helpers(self, tiny_rt):
        node = tiny_rt.node(1)
        assert list(node.processes) == [2, 3]
        assert list(node.workers) == [4, 5, 6, 7]


class TestChare:
    def test_entry_method_runs_on_home_pe(self, tiny_rt):
        class Counter(Chare):
            def __init__(self, rt, wid):
                super().__init__(rt, wid)
                self.calls = []

            def bump(self, ctx, amount):
                ctx.charge(10.0)
                self.calls.append((ctx.worker.wid, amount))

        c = Counter(tiny_rt, 3)
        c.invoke("bump", 7)
        c.invoke(c.bump, 8)
        tiny_rt.run()
        assert c.calls == [(3, 7), (3, 8)]

    def test_invoke_local_defers_to_completion(self, tiny_rt):
        class Chain(Chare):
            def __init__(self, rt, wid):
                super().__init__(rt, wid)
                self.times = []

            def first(self, ctx):
                ctx.charge(100.0)
                self.invoke_local(ctx, "second")

            def second(self, ctx):
                self.times.append(ctx.now)

        c = Chain(tiny_rt, 0)
        c.invoke("first")
        tiny_rt.run()
        assert c.times == [100.0]


class TestQDCounter:
    def test_balanced_lifecycle(self):
        qd = QDCounter()
        qd.produce(5)
        qd.consume(3)
        assert not qd.balanced
        assert qd.outstanding == 2
        qd.consume(2)
        assert qd.balanced
        qd.require_balanced()

    def test_overconsumption_raises_immediately(self):
        qd = QDCounter()
        qd.produce(1)
        with pytest.raises(QuiescenceError, match="duplicate"):
            qd.consume(2)

    def test_require_balanced_raises_when_outstanding(self):
        qd = QDCounter()
        qd.produce(3)
        with pytest.raises(QuiescenceError, match="undelivered"):
            qd.require_balanced()

    def test_negative_amounts_rejected(self):
        qd = QDCounter()
        with pytest.raises(QuiescenceError):
            qd.produce(-1)
        with pytest.raises(QuiescenceError):
            qd.consume(-1)


class TestReceiverPolicy:
    def test_fixed_policy_pins_first_pe(self, tiny_rt):
        proc = tiny_rt.process(1)
        proc.receiver_policy = "fixed"
        assert [proc.next_receiver() for _ in range(4)] == [2, 2, 2, 2]

    def test_round_robin_cycles(self, tiny_rt):
        proc = tiny_rt.process(1)
        assert [proc.next_receiver() for _ in range(4)] == [2, 3, 2, 3]
