"""Tests for multi-NIC nodes (the Zambre et al. concurrency point)."""

import pytest

from repro.errors import ConfigError
from repro.machine import CostModel, MachineConfig
from repro.network.message import NetMessage
from repro.runtime.system import RuntimeSystem


def build(nics, ppn=4):
    machine = MachineConfig(
        nodes=2, processes_per_node=ppn, workers_per_process=2,
        nics_per_node=nics,
    )
    return RuntimeSystem(machine, seed=0)


def blast(rt, per_worker=20, size=4096):
    """Every node-0 worker sends to its counterpart on node 1."""
    rt.register_handler("mn.probe", lambda ctx, msg: None, overwrite=True)
    wpn = rt.machine.workers_per_node

    def task(ctx):
        wid = ctx.worker.wid
        for _ in range(per_worker):
            ctx.emit(
                rt.transport.send,
                NetMessage(
                    kind="mn.probe",
                    src_worker=wid,
                    dst_process=rt.machine.process_of_worker(wid + wpn),
                    dst_worker=wid + wpn,
                    size_bytes=size,
                ),
            )

    for w in range(wpn):
        rt.post(w, task)
    return rt.run()


class TestMultiNic:
    def test_validation(self):
        with pytest.raises(ConfigError):
            MachineConfig(1, 1, 1, nics_per_node=0)

    def test_node_exposes_all_nics(self):
        rt = build(nics=3)
        assert len(rt.node(0).nics) == 3
        assert rt.node(0).nic is rt.node(0).nics[0]

    def test_round_robin_process_mapping(self):
        rt = build(nics=2, ppn=4)
        node = rt.node(0)
        assert node.nic_for_process(0) is node.nics[0]
        assert node.nic_for_process(1) is node.nics[1]
        assert node.nic_for_process(2) is node.nics[0]

    def test_traffic_spread_across_nics(self):
        rt = build(nics=2)
        blast(rt)
        tx = [nic.stats.tx_messages for nic in rt.node(0).nics]
        assert all(count > 0 for count in tx)
        assert sum(tx) == 4 * 2 * 20  # ppn * wpp * per_worker

    def test_more_nics_less_queueing(self):
        """The §III-A mitigation: more injection concurrency cuts
        NIC queue waits for the same traffic."""
        def total_wait(nics):
            rt = build(nics=nics)
            blast(rt, per_worker=40)
            return sum(
                nic.stats.tx_queue_wait_ns for nic in rt.node(0).nics
            )

        assert total_wait(1) > total_wait(4)

    def test_more_nics_never_slower(self):
        def completion(nics):
            rt = build(nics=nics)
            return blast(rt, per_worker=40).end_time

        assert completion(4) <= completion(1)

    def test_default_single_nic_unchanged(self):
        rt = build(nics=1)
        stats = blast(rt)
        assert stats.end_time > 0
        assert len(rt.node(0).nics) == 1
