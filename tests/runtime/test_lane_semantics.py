"""Documented semantics of the expedited/normal task lanes.

These tests pin down behaviours a user must know about — including the
sharp edge that a saturating expedited stream starves the normal lane
(exactly like Charm++ expedited messages), which is why TramLib's
expedited flag should carry *small control traffic*, not bulk work.
"""

from repro.machine import MachineConfig
from repro.runtime.system import RuntimeSystem


def make_rt():
    return RuntimeSystem(MachineConfig(1, 1, 2), seed=0)


class TestLaneOrdering:
    def test_expedited_fifo_within_lane(self):
        rt = make_rt()
        order = []

        def kickoff(ctx):
            ctx.charge(100.0)
            w = rt.worker(0)
            for i in range(3):
                w.post_task(lambda ctx, i=i: order.append(i), expedited=True)

        rt.post(0, kickoff)
        rt.run()
        assert order == [0, 1, 2]

    def test_expedited_can_starve_normal_lane(self):
        """A self-sustaining expedited chain runs to completion before
        any queued normal task — the documented sharp edge."""
        rt = make_rt()
        order = []

        def expedited_chain(ctx, n):
            order.append(f"e{n}")
            ctx.charge(10.0)
            if n < 4:
                ctx.emit(
                    lambda: rt.worker(0).post_task(
                        expedited_chain, n + 1, expedited=True
                    )
                )

        def kickoff(ctx):
            ctx.charge(10.0)
            w = rt.worker(0)
            w.post_task(lambda ctx: order.append("normal"))
            w.post_task(expedited_chain, 0, expedited=True)

        rt.post(0, kickoff)
        rt.run()
        assert order == ["e0", "e1", "e2", "e3", "e4", "normal"]

    def test_normal_lane_runs_when_expedited_empty(self):
        rt = make_rt()
        order = []

        def kickoff(ctx):
            ctx.charge(10.0)
            w = rt.worker(0)
            w.post_task(lambda ctx: order.append("n1"))
            w.post_task(lambda ctx: order.append("e1"), expedited=True)
            w.post_task(lambda ctx: order.append("n2"))

        rt.post(0, kickoff)
        rt.run()
        assert order == ["e1", "n1", "n2"]

    def test_idle_hooks_fire_after_both_lanes_drain(self):
        rt = make_rt()
        events = []
        rt.worker(0).idle_hooks.append(lambda w: events.append("idle"))

        def kickoff(ctx):
            ctx.charge(10.0)
            w = rt.worker(0)
            w.post_task(lambda ctx: events.append("n"), expedited=False)
            w.post_task(lambda ctx: events.append("e"), expedited=True)

        rt.post(0, kickoff)
        rt.run()
        assert events == ["e", "n", "idle"]
