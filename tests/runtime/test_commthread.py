"""Unit tests for the comm-thread server — the §III-A bottleneck."""

import pytest

from repro.network.message import NetMessage


def probe_msg(rt, src, dst_worker, size=100, kind="ct.probe"):
    return NetMessage(
        kind=kind,
        src_worker=src,
        dst_process=rt.machine.process_of_worker(dst_worker),
        dst_worker=dst_worker,
        size_bytes=size,
    )


class TestSerialization:
    def test_outbound_messages_serialize(self, make_rt):
        """Two workers sending simultaneously queue behind one comm thread."""
        rt = make_rt()
        arrivals = []
        rt.register_handler("ct.probe", lambda ctx, msg: arrivals.append(ctx.now))

        def task(ctx):
            ctx.emit(rt.transport.send, probe_msg(rt, ctx.worker.wid, 4, size=1000))

        rt.post(0, task)
        rt.post(1, task)
        rt.run()
        svc = rt.costs.comm_service_ns(1000)
        assert len(arrivals) == 2
        # Second message left the comm thread one service later.
        assert arrivals[1] - arrivals[0] == pytest.approx(svc)

    def test_busy_and_wait_stats(self, make_rt):
        rt = make_rt()
        rt.register_handler("ct.probe", lambda ctx, msg: None)

        def task(ctx):
            for _ in range(3):
                ctx.emit(rt.transport.send, probe_msg(rt, 0, 4, size=500))

        rt.post(0, task)
        rt.run()
        ct = rt.process(0).commthread
        assert ct.stats.out_messages == 3
        assert ct.stats.busy_ns == pytest.approx(
            3 * rt.costs.comm_service_ns(500)
        )
        assert ct.stats.queue_wait_ns > 0

    def test_inbound_counted_at_destination(self, make_rt):
        rt = make_rt()
        rt.register_handler("ct.probe", lambda ctx, msg: None)

        def task(ctx):
            ctx.emit(rt.transport.send, probe_msg(rt, 0, 4))

        rt.post(0, task)
        rt.run()
        dst_ct = rt.process(rt.machine.process_of_worker(4)).commthread
        assert dst_ct.stats.in_messages == 1

    def test_backlog_drains(self, make_rt):
        rt = make_rt()
        rt.register_handler("ct.probe", lambda ctx, msg: None)

        def task(ctx):
            for _ in range(5):
                ctx.emit(rt.transport.send, probe_msg(rt, 0, 4, size=2000))

        rt.post(0, task)
        rt.run()
        assert rt.process(0).commthread.backlog_ns == 0.0


class TestBottleneckShape:
    def test_more_processes_less_queueing(self):
        """The paper's central SMP observation: fewer workers per comm
        thread means less serialization delay for the same traffic."""
        from repro.machine import MachineConfig
        from repro.runtime.system import RuntimeSystem

        def total_wait(ppn, wpp):
            machine = MachineConfig(
                nodes=2, processes_per_node=ppn, workers_per_process=wpp
            )
            rt = RuntimeSystem(machine, seed=0)
            rt.register_handler("ct.probe", lambda ctx, msg: None)
            wpn = machine.workers_per_node

            def task(ctx):
                wid = ctx.worker.wid
                for _ in range(20):
                    ctx.emit(
                        rt.transport.send, probe_msg(rt, wid, wid + wpn, size=500)
                    )

            for w in range(wpn):
                rt.post(w, task)
            rt.run()
            return sum(
                rt.process(p).commthread.stats.queue_wait_ns
                for p in range(machine.processes_per_node)
            )

        assert total_wait(1, 8) > total_wait(4, 2)
