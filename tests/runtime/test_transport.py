"""Unit tests for message routing across locality classes."""

import pytest

from repro.errors import DeliveryError
from repro.network.message import NetMessage, Route


def send_and_time(rt, src, dst_worker, size=100):
    """Send one runtime message src->dst; return arrival time."""
    arrivals = []
    rt.register_handler(
        "t.probe", lambda ctx, msg: arrivals.append(ctx.now), overwrite=True
    )

    def task(ctx):
        msg = NetMessage(
            kind="t.probe",
            src_worker=src,
            dst_process=rt.machine.process_of_worker(dst_worker),
            dst_worker=dst_worker,
            size_bytes=size,
        )
        if not rt.machine.smp:
            ctx.charge(rt.costs.nonsmp_send_service_ns(size))
        ctx.emit(rt.transport.send, msg)

    rt.post(src, task)
    rt.run()
    assert len(arrivals) == 1
    return arrivals[0]


class TestRouting:
    def test_intra_process_fastest(self, make_rt):
        rt = make_rt()
        t = send_and_time(rt, 0, 1)  # same process
        assert t == pytest.approx(rt.costs.enqueue_ns)
        assert rt.transport.stats.messages[Route.INTRA_PROCESS] == 1

    def test_intra_node_goes_through_commthreads(self, make_rt):
        rt = make_rt()
        t = send_and_time(rt, 0, 2)  # process 0 -> 1, same node
        costs = rt.costs
        expected = (
            costs.comm_service_ns(100)
            + costs.alpha_intra_ns
            + costs.comm_service_ns(100)
            + costs.enqueue_ns
        )
        assert t == pytest.approx(expected)
        assert rt.transport.stats.messages[Route.INTRA_NODE] == 1

    def test_inter_node_goes_through_nics(self, make_rt):
        rt = make_rt()
        t = send_and_time(rt, 0, 4)  # node 0 -> node 1
        costs = rt.costs
        occ = costs.tx_occupancy_ns(100)
        expected = (
            costs.comm_service_ns(100)
            + occ
            + costs.alpha_inter_ns
            + occ
            + costs.comm_service_ns(100)
            + costs.enqueue_ns
        )
        assert t == pytest.approx(expected)
        assert rt.transport.stats.messages[Route.INTER_NODE] == 1
        assert rt.node(0).nic.stats.tx_messages == 1
        assert rt.node(1).nic.stats.rx_messages == 1

    def test_ordering_intra_lt_node_lt_internode(self, make_rt):
        t_proc = send_and_time(make_rt(), 0, 1)
        t_node = send_and_time(make_rt(), 0, 2)
        t_inter = send_and_time(make_rt(), 0, 4)
        assert t_proc < t_node < t_inter


class TestNonSmp:
    def test_inter_node_skips_commthreads(self, make_rt):
        rt = make_rt(ppn=4, wpp=1, smp=False)
        t = send_and_time(rt, 0, 4)  # node 0 -> node 1
        costs = rt.costs
        occ = costs.tx_occupancy_ns(100)
        # Sender charged nonsmp send in-task; the receiver's recv service
        # is charged inside the delivery task (handlers run at task
        # start), so it occupies the PE but does not shift the handler's
        # observed time.
        expected = (
            costs.nonsmp_send_service_ns(100)
            + occ
            + costs.alpha_inter_ns
            + occ
        )
        assert t == pytest.approx(expected)
        assert rt.worker(4).stats.busy_ns >= costs.nonsmp_recv_service_ns(100)

    def test_commthreads_absent(self, make_rt):
        rt = make_rt(ppn=2, wpp=1, smp=False)
        assert rt.process(0).commthread is None


class TestProcessAddressing:
    def test_round_robin_receiver(self, make_rt):
        rt = make_rt()
        receivers = []
        rt.register_handler("t.p", lambda ctx, msg: receivers.append(ctx.worker.wid))

        def task(ctx):
            for _ in range(4):
                ctx.emit(
                    rt.transport.send,
                    NetMessage(
                        kind="t.p", src_worker=0, dst_process=1, size_bytes=10
                    ),
                )

        rt.post(0, task)
        rt.run()
        # Process 1 owns workers 2 and 3; round robin alternates.
        assert sorted(set(receivers)) == [2, 3]
        assert receivers.count(2) == 2
        assert receivers.count(3) == 2


class TestStatsAndErrors:
    def test_bytes_counted(self, make_rt):
        rt = make_rt()
        send_and_time(rt, 0, 4, size=333)
        assert rt.transport.stats.bytes[Route.INTER_NODE] == 333
        assert rt.transport.stats.total_bytes == 333
        assert rt.transport.stats.total_messages == 1

    def test_bad_destination_process(self, make_rt):
        rt = make_rt()
        failures = []

        def task(ctx):
            ctx.emit(
                rt.transport.send,
                NetMessage(kind="x", src_worker=0, dst_process=99, size_bytes=1),
            )

        rt.post(0, task)
        with pytest.raises(DeliveryError):
            rt.run()

    @pytest.mark.parametrize("bad_worker", [-1, 10_000])
    def test_bad_destination_worker(self, make_rt, bad_worker):
        rt = make_rt()

        def task(ctx):
            ctx.emit(
                rt.transport.send,
                NetMessage(
                    kind="x", src_worker=0, dst_process=0,
                    dst_worker=bad_worker, size_bytes=1,
                ),
            )

        rt.post(0, task)
        with pytest.raises(DeliveryError, match="destination worker"):
            rt.run()

    def test_none_dst_worker_is_valid(self, make_rt):
        # ``None`` means "any worker in the process" (round-robin pick),
        # not an addressing error.
        rt = make_rt()
        hits = []
        rt.register_handler(
            "t.any", lambda ctx, msg: hits.append(ctx.worker.wid), overwrite=True
        )

        def task(ctx):
            ctx.emit(
                rt.transport.send,
                NetMessage(
                    kind="t.any", src_worker=0,
                    dst_process=rt.machine.total_processes - 1,
                    size_bytes=1,
                ),
            )

        rt.post(0, task)
        rt.run()
        assert len(hits) == 1

    def test_unregistered_kind_raises(self, make_rt):
        rt = make_rt()

        def task(ctx):
            ctx.emit(
                rt.transport.send,
                NetMessage(
                    kind="nobody", src_worker=0, dst_process=0, dst_worker=1,
                    size_bytes=1,
                ),
            )

        rt.post(0, task)
        with pytest.raises(DeliveryError):
            rt.run()
