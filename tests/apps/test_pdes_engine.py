"""Unit tests for the placeholder optimistic PDES engine."""

import pytest

from repro.apps.pdes.engine import LpState, OptimisticEngine


@pytest.fixture
def engine():
    return OptimisticEngine(lps=[LpState(lp_id=i) for i in range(3)])


class TestExecutionOrder:
    def test_executes_smallest_timestamp_first(self, engine):
        engine.enqueue(0, 30.0)
        engine.enqueue(1, 10.0)
        engine.enqueue(2, 20.0)
        order = [engine.execute_next()[1] for _ in range(3)]
        assert order == [10.0, 20.0, 30.0]

    def test_ties_fifo(self, engine):
        engine.enqueue(0, 5.0)
        engine.enqueue(1, 5.0)
        lp_a, _, _ = engine.execute_next()
        lp_b, _, _ = engine.execute_next()
        assert (lp_a.lp_id, lp_b.lp_id) == (0, 1)

    def test_in_order_advances_clock(self, engine):
        engine.enqueue(0, 10.0)
        lp, ts, in_order = engine.execute_next()
        assert in_order
        assert lp.last_ts == 10.0
        assert lp.executed == 1
        assert lp.rejected == 0

    def test_out_of_order_counts_reject(self, engine):
        engine.enqueue(0, 10.0)
        engine.execute_next()
        engine.enqueue(0, 5.0)  # arrives late
        lp, ts, in_order = engine.execute_next()
        assert not in_order
        assert lp.rejected == 1
        # The placeholder engine does not roll back the clock.
        assert lp.last_ts == 10.0

    def test_per_lp_clocks_independent(self, engine):
        engine.enqueue(0, 10.0)
        engine.execute_next()
        engine.enqueue(1, 5.0)  # different LP: in order for LP 1
        _, _, in_order = engine.execute_next()
        assert in_order


class TestAggregates:
    def test_totals(self, engine):
        for ts in (3.0, 1.0, 2.0, 0.5):
            engine.enqueue(0, ts)
        while engine.has_events:
            engine.execute_next()
        assert engine.total_executed == 4
        # Events executed in ts order from the pool: all in order for a
        # single LP when they were all present before execution began.
        assert engine.total_rejected == 0

    def test_late_arrival_scenario(self, engine):
        engine.enqueue(0, 10.0)
        engine.execute_next()
        engine.enqueue(0, 2.0)
        engine.enqueue(0, 12.0)
        rejects = 0
        while engine.has_events:
            _, _, in_order = engine.execute_next()
            rejects += 0 if in_order else 1
        assert rejects == 1
        assert engine.total_rejected == 1

    def test_has_events(self, engine):
        assert not engine.has_events
        engine.enqueue(0, 1.0)
        assert engine.has_events
