"""Application edge cases: unreachable vertices, non-SMP IG, payload
scaling."""

import numpy as np
import pytest

from repro.apps import run_indexgather, run_pingack, run_sssp
from repro.apps.graphs import Graph
from repro.machine import MachineConfig, nonsmp_machine

SMALL = MachineConfig(nodes=2, processes_per_node=2, workers_per_process=2)


def line_graph_with_island(n=8):
    """0 -> 1 -> ... -> n-2, plus isolated vertex n-1."""
    src = np.arange(n - 2)
    indptr = np.zeros(n + 1, dtype=np.int64)
    indptr[1 : n - 1] = np.arange(1, n - 1)
    indptr[n - 1 :] = n - 2
    indices = np.arange(1, n - 1, dtype=np.int64)
    weights = np.ones(n - 2, dtype=np.float64)
    return Graph(n, indptr, indices, weights)


class TestSsspEdges:
    def test_unreachable_vertex_stays_infinite(self):
        graph = line_graph_with_island()
        r = run_sssp(SMALL, "WPs", graph=graph, buffer_items=4)
        assert r.distances[0] == 0.0
        assert r.distances[6] == pytest.approx(6.0)  # end of the line
        assert np.isinf(r.distances[7])  # the island

    def test_line_graph_distances_exact(self):
        graph = line_graph_with_island()
        r = run_sssp(SMALL, "PP", graph=graph, buffer_items=4)
        for v in range(7):
            assert r.distances[v] == pytest.approx(float(v))

    def test_nonzero_source(self):
        graph = line_graph_with_island()
        r = run_sssp(SMALL, "WPs", graph=graph, buffer_items=4, source=3)
        assert r.distances[3] == 0.0
        assert r.distances[6] == pytest.approx(3.0)
        assert np.isinf(r.distances[0])  # behind the source on a line


class TestIndexGatherNonSmp:
    def test_ig_runs_without_commthreads(self):
        machine = nonsmp_machine(2, ranks_per_node=4)
        r = run_indexgather(machine, "WW", requests_per_pe=200,
                            buffer_items=16)
        assert r.total_time_ns > 0
        assert r.round_trip_latency_ns > 0


class TestPingAckPayload:
    def test_bigger_payload_takes_longer(self):
        small = run_pingack(SMALL, messages_per_pe=60, payload_bytes=64)
        large = run_pingack(SMALL, messages_per_pe=60, payload_bytes=65536)
        assert large.total_time_ns > small.total_time_ns
