"""Unit tests for graph generation."""

import numpy as np
import pytest

from repro.apps.graphs import (
    Graph,
    generate_graph,
    generate_rmat,
    generate_uniform,
    owner_of,
)
from repro.errors import ConfigError


class TestUniform:
    def test_csr_wellformed(self):
        g = generate_uniform(100, 4, seed=1)
        assert g.num_vertices == 100
        assert g.indptr.shape == (101,)
        assert g.indptr[0] == 0
        assert g.indptr[-1] == g.num_edges
        assert (np.diff(g.indptr) >= 0).all()
        assert g.indices.shape == g.weights.shape

    def test_no_self_loops(self):
        g = generate_uniform(50, 8, seed=2)
        for v in range(50):
            targets, _ = g.neighbors(v)
            assert v not in targets

    def test_no_duplicate_edges(self):
        g = generate_uniform(50, 8, seed=3)
        for v in range(50):
            targets, _ = g.neighbors(v)
            assert len(set(targets.tolist())) == len(targets)

    def test_weights_in_range(self):
        g = generate_uniform(100, 4, seed=4)
        assert (g.weights >= 1).all()
        assert (g.weights <= 10).all()

    def test_reproducible(self):
        a = generate_uniform(64, 4, seed=5)
        b = generate_uniform(64, 4, seed=5)
        assert np.array_equal(a.indices, b.indices)
        assert np.array_equal(a.weights, b.weights)

    def test_avg_degree_approximate(self):
        g = generate_uniform(1000, 8, seed=6)
        # Some multi-edges collapse; expect close to but below n*deg.
        assert 0.85 * 8000 < g.num_edges <= 8000


class TestRmat:
    def test_wellformed(self):
        g = generate_rmat(128, 8, seed=1)
        assert g.num_vertices == 128
        assert g.indptr[-1] == g.num_edges
        assert g.num_edges > 0

    def test_skewed_degrees(self):
        g = generate_rmat(512, 16, seed=2)
        degrees = np.diff(g.indptr)
        # RMAT should produce a heavier tail than uniform.
        assert degrees.max() > 3 * degrees.mean()

    def test_bad_params(self):
        with pytest.raises(ConfigError):
            generate_rmat(128, 8, a=0.5, b=0.3, c=0.3)  # a+b+c >= 1


class TestDispatchAndHelpers:
    def test_generate_graph_kinds(self):
        assert generate_graph(64, 4, kind="uniform").num_vertices == 64
        assert generate_graph(64, 4, kind="rmat").num_vertices == 64
        with pytest.raises(ConfigError):
            generate_graph(64, 4, kind="smallworld")

    def test_bad_sizes(self):
        with pytest.raises(ConfigError):
            generate_uniform(1, 4)
        with pytest.raises(ConfigError):
            generate_uniform(10, 0)

    def test_owner_cyclic(self):
        assert owner_of(0, 8) == 0
        assert owner_of(9, 8) == 1

    def test_degree_accessor(self):
        g = generate_uniform(32, 4, seed=7)
        total = sum(g.degree(v) for v in range(32))
        assert total == g.num_edges

    def test_to_networkx(self):
        nx = pytest.importorskip("networkx")
        g = generate_uniform(20, 3, seed=8)
        ng = g_to = None
        ng = __import__("repro.apps.graphs", fromlist=["to_networkx"]).to_networkx(g)
        assert ng.number_of_nodes() == 20
        assert ng.number_of_edges() == g.num_edges
