"""Tests for the all-to-all exchange (short-stream regime)."""

import pytest

from repro.apps import run_alltoall
from repro.machine import MachineConfig

MACHINE = MachineConfig(nodes=2, processes_per_node=2, workers_per_process=2)
MEDIUM = MachineConfig(nodes=4, processes_per_node=2, workers_per_process=4)


class TestAllToAll:
    @pytest.mark.parametrize("scheme", ["WW", "WPs", "WsP", "PP", "WNs", "NN"])
    def test_exchange_completes(self, scheme):
        r = run_alltoall(MACHINE, scheme, items_per_pair=3, buffer_items=16)
        assert r.total_time_ns > 0
        assert r.messages_sent > 0

    def test_flush_message_hierarchy(self):
        """§III-C in one line: flush slots per source scale W*N*t (WW),
        W*N (WPs), N*N (PP) — strictly decreasing totals."""
        msgs = {
            s: run_alltoall(MEDIUM, s, items_per_pair=2,
                            buffer_items=1000).messages_sent
            for s in ("WW", "WPs", "PP", "NN")
        }
        assert msgs["WW"] > msgs["WPs"] > msgs["PP"] > msgs["NN"]

    def test_exact_ww_flush_count(self):
        """Every buffer flushes exactly once: W * (remote workers)."""
        r = run_alltoall(MEDIUM, "WW", items_per_pair=2, buffer_items=1000)
        w = MEDIUM.total_workers
        t = MEDIUM.workers_per_process
        assert r.messages_flush == w * (w - t)

    def test_exact_pp_flush_count(self):
        """Coordinated PP flush: one message per remote process pair."""
        r = run_alltoall(MEDIUM, "PP", items_per_pair=2, buffer_items=1000)
        n = MEDIUM.total_processes
        assert r.messages_flush == n * (n - 1)

    def test_pp_buffers_can_fill_where_wps_cannot(self):
        """PP aggregates across t source workers: with per-pair counts
        sized so t*t*items == g, PP sends full messages while WPs only
        flushes."""
        g = 64  # = 4 workers * 4 dst workers * 4 items
        pp = run_alltoall(MEDIUM, "PP", items_per_pair=4, buffer_items=g)
        wps = run_alltoall(MEDIUM, "WPs", items_per_pair=4, buffer_items=g)
        assert pp.messages_flush == 0
        assert wps.messages_flush > 0

    def test_time_ordering_short_stream(self):
        """In the flush-dominated regime destination-process schemes win."""
        ww = run_alltoall(MEDIUM, "WW", items_per_pair=2, buffer_items=256)
        wps = run_alltoall(MEDIUM, "WPs", items_per_pair=2, buffer_items=256)
        assert wps.total_time_ns < ww.total_time_ns

    def test_deterministic(self):
        a = run_alltoall(MACHINE, "WPs", items_per_pair=3, seed=5)
        b = run_alltoall(MACHINE, "WPs", items_per_pair=3, seed=5)
        assert a.total_time_ns == b.total_time_ns
