"""Application-level tests: correctness and paper-shape assertions.

Shapes asserted here are the load-bearing claims of the paper's
evaluation, exercised at test-friendly scales.
"""

import numpy as np
import pytest

from repro.apps import (
    run_histogram,
    run_indexgather,
    run_phold,
    run_pingack,
    run_sssp,
)
from repro.apps.graphs import generate_graph
from repro.errors import ConfigError
from repro.machine import MachineConfig, nonsmp_machine

SMALL = MachineConfig(nodes=2, processes_per_node=2, workers_per_process=2)
MEDIUM = MachineConfig(nodes=2, processes_per_node=2, workers_per_process=4)


class TestPingAck:
    def test_requires_two_nodes(self):
        with pytest.raises(ConfigError):
            run_pingack(MachineConfig(nodes=3, processes_per_node=1,
                                      workers_per_process=2))

    def test_completes_and_times(self):
        r = run_pingack(SMALL, messages_per_pe=50)
        assert r.total_time_ns > 0
        assert r.events > 0

    def test_smp_one_process_slower_than_nonsmp(self):
        """Fig 3's core claim at test scale."""
        wpn = 8
        smp1 = run_pingack(
            MachineConfig(nodes=2, processes_per_node=1, workers_per_process=wpn),
            messages_per_pe=100,
        )
        nonsmp = run_pingack(nonsmp_machine(2, ranks_per_node=wpn),
                             messages_per_pe=100)
        assert smp1.total_time_ns > 1.5 * nonsmp.total_time_ns

    def test_more_processes_helps(self):
        wpn = 8
        times = []
        for ppn in (1, 2, 4):
            r = run_pingack(
                MachineConfig(nodes=2, processes_per_node=ppn,
                              workers_per_process=wpn // ppn),
                messages_per_pe=100,
            )
            times.append(r.total_time_ns)
        assert times[0] > times[1] > times[2] * 0.99

    def test_labels(self):
        r = run_pingack(SMALL, messages_per_pe=10)
        assert "SMP" in r.label
        r2 = run_pingack(nonsmp_machine(2, 4), messages_per_pe=10)
        assert "non-SMP" in r2.label


class TestHistogram:
    @pytest.mark.parametrize("scheme", ["WW", "WPs", "WsP", "PP"])
    def test_all_updates_arrive(self, scheme):
        r = run_histogram(SMALL, scheme, updates_per_pe=500, buffer_items=32)
        assert r.updates_total == 500 * 8
        assert r.total_time_ns > 0

    def test_deterministic_given_seed(self):
        a = run_histogram(SMALL, "WPs", updates_per_pe=500, seed=9)
        b = run_histogram(SMALL, "WPs", updates_per_pe=500, seed=9)
        assert a.total_time_ns == b.total_time_ns
        assert a.messages_sent == b.messages_sent

    def test_seed_changes_details(self):
        a = run_histogram(SMALL, "WPs", updates_per_pe=500, seed=1)
        b = run_histogram(SMALL, "WPs", updates_per_pe=500, seed=2)
        assert a.total_time_ns != b.total_time_ns

    def test_ww_flush_messages_exceed_wps(self):
        """Flush-heavy regime: WW pays one message per dest *worker*."""
        ww = run_histogram(MEDIUM, "WW", updates_per_pe=200, buffer_items=64)
        wps = run_histogram(MEDIUM, "WPs", updates_per_pe=200, buffer_items=64)
        assert ww.messages_flush > wps.messages_flush

    def test_larger_buffers_fewer_messages(self):
        small_g = run_histogram(SMALL, "WPs", updates_per_pe=2000, buffer_items=16)
        large_g = run_histogram(SMALL, "WPs", updates_per_pe=2000, buffer_items=128)
        assert large_g.messages_sent < small_g.messages_sent

    def test_updates_buffered_accounting(self):
        r = run_histogram(SMALL, "WPs", updates_per_pe=500, buffer_items=32)
        assert r.updates_buffered + r.items_bypassed_local == r.updates_total


class TestIndexGather:
    @pytest.mark.parametrize("scheme", ["WW", "WPs", "PP"])
    def test_every_request_answered(self, scheme):
        r = run_indexgather(SMALL, scheme, requests_per_pe=300, buffer_items=16)
        assert r.total_time_ns > 0
        assert r.request_latency_ns > 0
        assert r.response_latency_ns > 0

    def test_latency_ordering_pp_beats_ww(self):
        """Fig 12's headline at test scale."""
        ww = run_indexgather(MEDIUM, "WW", requests_per_pe=1000, buffer_items=32)
        pp = run_indexgather(MEDIUM, "PP", requests_per_pe=1000, buffer_items=32)
        assert pp.round_trip_latency_ns < ww.round_trip_latency_ns

    def test_round_trip_is_sum_of_legs(self):
        r = run_indexgather(SMALL, "WPs", requests_per_pe=200, buffer_items=16)
        assert r.round_trip_latency_ns == pytest.approx(
            r.request_latency_ns + r.response_latency_ns
        )


class TestSssp:
    @pytest.fixture(scope="class")
    def graph(self):
        return generate_graph(512, 6, seed=11)

    def test_distances_correct_vs_dijkstra(self, graph):
        """The speculative algorithm must converge to exact distances."""
        scipy_sparse = pytest.importorskip("scipy.sparse")
        from scipy.sparse.csgraph import dijkstra

        r = run_sssp(SMALL, "WPs", graph=graph, buffer_items=16)
        matrix = scipy_sparse.csr_matrix(
            (graph.weights, graph.indices, graph.indptr),
            shape=(graph.num_vertices, graph.num_vertices),
        )
        expected = dijkstra(matrix, indices=0)
        assert np.allclose(r.distances, expected, equal_nan=True)

    @pytest.mark.parametrize("scheme", ["WW", "WPs", "WsP", "PP"])
    def test_schemes_agree_on_distances(self, scheme, graph):
        base = run_sssp(SMALL, "WW", graph=graph, buffer_items=16)
        other = run_sssp(SMALL, scheme, graph=graph, buffer_items=16)
        assert np.allclose(base.distances, other.distances, equal_nan=True)

    def test_wasted_updates_counted(self, graph):
        r = run_sssp(SMALL, "WPs", graph=graph, buffer_items=16)
        assert r.wasted_updates > 0
        assert r.total_updates > graph.num_edges * 0.5
        assert 0.0 < r.wasted_fraction < 1.0

    def test_pp_wastes_no_more_than_ww(self, graph):
        """Fig 15 at test scale: lower latency -> less waste."""
        ww = run_sssp(MEDIUM, "WW", graph=graph, buffer_items=16)
        pp = run_sssp(MEDIUM, "PP", graph=graph, buffer_items=16)
        assert pp.wasted_updates <= ww.wasted_updates

    def test_priority_threshold_runs(self, graph):
        r = run_sssp(SMALL, "WPs", graph=graph, buffer_items=16,
                     priority_threshold=5.0)
        assert r.total_time_ns > 0


class TestPhold:
    def test_system_drains_and_counts(self):
        r = run_phold(SMALL, "WPs", lps_per_worker=4, quota_per_worker=200,
                      buffer_items=8)
        assert r.events_executed > 0
        assert 0 <= r.events_rejected <= r.events_executed
        assert r.total_time_ns > 0

    def test_deterministic(self):
        a = run_phold(SMALL, "PP", quota_per_worker=150, seed=3)
        b = run_phold(SMALL, "PP", quota_per_worker=150, seed=3)
        assert a.events_rejected == b.events_rejected
        assert a.total_time_ns == b.total_time_ns

    def test_pp_rejects_fewer_than_ww(self):
        """Fig 18's claim at test scale."""
        m = MachineConfig(nodes=2, processes_per_node=1, workers_per_process=8)
        ww = run_phold(m, "WW", lps_per_worker=8, quota_per_worker=600,
                       buffer_items=32)
        pp = run_phold(m, "PP", lps_per_worker=8, quota_per_worker=600,
                       buffer_items=32)
        assert ww.events_executed == pp.events_executed
        assert pp.events_rejected < ww.events_rejected

    def test_rejected_fraction(self):
        r = run_phold(SMALL, "WPs", quota_per_worker=100)
        assert r.rejected_fraction == pytest.approx(
            r.events_rejected / r.events_executed
        )


class TestHistogramSkew:
    def test_skewed_destinations_create_hotspot(self):
        uniform = run_histogram(SMALL, "WPs", updates_per_pe=1500,
                                buffer_items=32)
        hot = run_histogram(SMALL, "WPs", updates_per_pe=1500,
                            buffer_items=32, skew=1.5)
        assert hot.total_time_ns > uniform.total_time_ns

    def test_skew_preserves_conservation(self):
        r = run_histogram(SMALL, "PP", updates_per_pe=1000,
                          buffer_items=32, skew=2.0)
        assert r.updates_total == 1000 * 8

    def test_zero_skew_matches_default(self):
        a = run_histogram(SMALL, "WPs", updates_per_pe=500, buffer_items=32)
        b = run_histogram(SMALL, "WPs", updates_per_pe=500, buffer_items=32,
                          skew=0.0)
        assert a.total_time_ns == b.total_time_ns


class TestPholdLookahead:
    def test_larger_lookahead_fewer_rejects(self):
        """Classic PDES: lookahead bounds how 'late' a successor can be
        relative to its target LP's clock, so rejects fall as it grows."""
        m = MachineConfig(nodes=2, processes_per_node=1, workers_per_process=8)
        tight = run_phold(m, "WPs", lps_per_worker=8, quota_per_worker=600,
                          buffer_items=32, lookahead=0.1, mean_delay=5.0)
        loose = run_phold(m, "WPs", lps_per_worker=8, quota_per_worker=600,
                          buffer_items=32, lookahead=50.0, mean_delay=5.0)
        assert loose.events_rejected < tight.events_rejected
