"""Scheme-specific buffer placement and message-count behaviour.

These tests pin down exactly what distinguishes the schemes (the
paper's design axis): where buffers live, how many a flush empties,
and who pays grouping/atomic costs.
"""

import numpy as np
import pytest

from repro.machine import MachineConfig
from repro.runtime.system import RuntimeSystem
from repro.tram import TramConfig, make_scheme

# 2 nodes x 2 processes x 2 workers: W=8, N=4 processes, t=2.
MACHINE = MachineConfig(nodes=2, processes_per_node=2, workers_per_process=2)


def run_one_item_per_dest(scheme, **cfg_kwargs):
    """Worker 0 sends one item to every remote worker, then flushes."""
    rt = RuntimeSystem(MACHINE, seed=0)
    tram = make_scheme(
        scheme,
        rt,
        TramConfig(buffer_items=100, item_bytes=8, **cfg_kwargs),
        deliver_item=lambda ctx, it: None,
    )
    W = MACHINE.total_workers

    def driver(ctx):
        for dst in range(2, W):  # all workers outside process 0
            tram.insert(ctx, dst=dst)
        tram.flush(ctx)

    rt.post(0, driver)
    rt.run(max_events=100_000)
    return rt, tram


class TestFlushMessageCounts:
    """One partially-filled buffer per destination -> flush sends one
    message per buffer: the §III-C flush-cost story in miniature."""

    def test_ww_one_message_per_destination_worker(self):
        _, tram = run_one_item_per_dest("WW")
        assert tram.stats.messages_flush == 6  # 6 remote workers
        assert tram.stats.buffers_allocated == 6

    def test_wps_one_message_per_destination_process(self):
        _, tram = run_one_item_per_dest("WPs")
        assert tram.stats.messages_flush == 3  # 3 remote processes
        assert tram.stats.buffers_allocated == 3

    def test_wsp_matches_wps_buffering(self):
        _, tram = run_one_item_per_dest("WsP")
        assert tram.stats.messages_flush == 3
        assert tram.stats.buffers_allocated == 3

    def test_pp_one_message_per_destination_process(self):
        _, tram = run_one_item_per_dest("PP")
        assert tram.stats.messages_flush == 3
        assert tram.stats.buffers_allocated == 3

    def test_direct_sends_immediately(self):
        _, tram = run_one_item_per_dest("Direct")
        assert tram.stats.messages_full == 6
        assert tram.stats.messages_flush == 0


class TestPPSharing:
    def test_pp_buffers_shared_within_process(self):
        """Both workers of process 0 fill the same shared buffer."""
        rt = RuntimeSystem(MACHINE, seed=0)
        tram = make_scheme(
            "PP", rt, TramConfig(buffer_items=4, item_bytes=8),
            deliver_item=lambda ctx, it: None,
        )
        sent_at = []
        orig = tram._emit_message

        def spy(ctx, payload, count, dst_process, dst_worker, *, full):
            sent_at.append((ctx.now, count, full))
            orig(ctx, payload, count, dst_process, dst_worker, full=full)

        tram._emit_message = spy

        def driver(ctx):
            tram.insert(ctx, dst=7)  # remote process 3
            tram.insert(ctx, dst=7)

        rt.post(0, driver)
        rt.post(1, driver)
        rt.run(max_events=100_000)
        # 4 inserts from two different workers fill the one g=4 buffer.
        assert len(sent_at) == 1
        assert sent_at[0][1] == 4
        assert sent_at[0][2] is True
        assert tram.stats.buffers_allocated == 1
        assert tram.stats.atomic_inserts == 4

    def test_pp_buffers_live_in_process_shared_heap(self):
        rt = RuntimeSystem(MACHINE, seed=0)
        tram = make_scheme(
            "PP", rt, TramConfig(buffer_items=10),
            deliver_item=lambda ctx, it: None,
        )
        rt.post(0, lambda ctx: tram.insert(ctx, dst=7))
        rt.run(max_events=10_000)
        assert any(
            key == tram._shared_key for key in rt.process(0).shared
        )

    def test_pp_flush_when_done_waits_for_all_workers(self):
        rt = RuntimeSystem(MACHINE, seed=0)
        tram = make_scheme(
            "PP", rt, TramConfig(buffer_items=100),
            deliver_item=lambda ctx, it: None,
        )

        def driver(ctx):
            tram.insert(ctx, dst=7)
            tram.flush_when_done(ctx)

        rt.post(0, driver)
        rt.post(1, driver, delay=1000.0)
        rt.run(max_events=10_000)
        # Exactly one flush message carrying both items.
        assert tram.stats.messages_flush == 1
        assert tram.stats.items_delivered == 2


class TestGroupingCosts:
    def test_wsp_pays_grouping_at_source(self):
        _, wsp = run_one_item_per_dest("WsP")
        _, wps = run_one_item_per_dest("WPs")
        # Both group the same element count overall, but WsP records the
        # work at emission (source side).
        assert wsp.stats.group_elements > 0
        assert wps.stats.group_elements > 0

    def test_ww_never_groups(self):
        _, tram = run_one_item_per_dest("WW")
        assert tram.stats.group_elements == 0

    def test_only_pp_uses_atomics(self):
        for scheme, expect in [("WW", 0), ("WPs", 0), ("WsP", 0)]:
            _, tram = run_one_item_per_dest(scheme)
            assert tram.stats.atomic_inserts == expect
        _, pp = run_one_item_per_dest("PP")
        assert pp.stats.atomic_inserts == 6


class TestMessageAddressing:
    def test_ww_messages_are_worker_addressed(self):
        rt = RuntimeSystem(MACHINE, seed=0)
        tram = make_scheme(
            "WW", rt, TramConfig(buffer_items=1),
            deliver_item=lambda ctx, it: None,
        )
        seen = []
        kind = tram._ns + ".w"
        original = rt.handler_for(kind)

        def spy(ctx, msg):
            seen.append(msg)
            original(ctx, msg)

        rt.register_handler(kind, spy, overwrite=True)
        rt.post(0, lambda ctx: tram.insert(ctx, dst=5))
        rt.run(max_events=10_000)
        assert seen[0].dst_worker == 5

    def test_wps_messages_are_process_addressed(self):
        rt = RuntimeSystem(MACHINE, seed=0)
        tram = make_scheme(
            "WPs", rt, TramConfig(buffer_items=1),
            deliver_item=lambda ctx, it: None,
        )
        seen = []
        kind = tram._ns + ".p"
        original = rt.handler_for(kind)

        def spy(ctx, msg):
            seen.append(msg)
            original(ctx, msg)

        rt.register_handler(kind, spy, overwrite=True)
        rt.post(0, lambda ctx: tram.insert(ctx, dst=5))
        rt.run(max_events=10_000)
        assert seen[0].dst_worker is None
        assert seen[0].dst_process == MACHINE.process_of_worker(5)


class TestResizedFlush:
    def test_flush_message_bytes_match_fill(self):
        """Flushed messages are resized to the filled portion (§III-B)."""
        rt = RuntimeSystem(MACHINE, seed=0)
        tram = make_scheme(
            "WPs", rt, TramConfig(buffer_items=1000, item_bytes=8),
            deliver_item=lambda ctx, it: None,
        )

        def driver(ctx):
            for _ in range(3):
                tram.insert(ctx, dst=7)
            tram.flush(ctx)

        rt.post(0, driver)
        rt.run(max_events=10_000)
        expected = rt.costs.message_bytes(3, 8)
        assert tram.stats.bytes_sent == expected  # not 1000 items' worth
