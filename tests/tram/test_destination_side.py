"""Destination-side mechanics: receiver rotation, self-sections,
pre-grouped WsP payloads, non-SMP operation."""

import numpy as np
import pytest

from repro.machine import MachineConfig, nonsmp_machine
from repro.runtime.system import RuntimeSystem
from repro.tram import TramConfig, make_scheme

MACHINE = MachineConfig(nodes=2, processes_per_node=2, workers_per_process=4)


class TestReceiverRotation:
    def test_process_messages_spread_across_pes(self):
        """WPs receiver grouping work rotates over the dest process's
        PEs instead of hot-spotting one (Process.next_receiver)."""
        rt = RuntimeSystem(MACHINE, seed=0)
        tram = make_scheme(
            "WPs", rt, TramConfig(buffer_items=2),
            deliver_item=lambda ctx, it: None,
        )

        def driver(ctx):
            for i in range(16):
                # All to process 3 (workers 12..15), full every 2 items.
                tram.insert(ctx, dst=12 + (i % 4))

        rt.post(0, driver)
        rt.run(max_events=100_000)
        receivers = [
            rt.worker(w).stats.messages_received for w in range(12, 16)
        ]
        assert sum(receivers) == 8  # 16 items / g=2
        assert max(receivers) <= 3  # spread, not all on one PE


class TestSelfSection:
    def test_receiver_keeps_its_own_items_inline(self):
        """When the rotating receiver is itself a destination, its
        section is delivered inline without a local send."""
        rt = RuntimeSystem(MACHINE, seed=0)
        delivered = []
        tram = make_scheme(
            "WPs", rt, TramConfig(buffer_items=8),
            deliver_item=lambda ctx, it: delivered.append(ctx.worker.wid),
        )

        def driver(ctx):
            # 8 items, two per PE of process 3 -> exactly one message.
            for dst in (12, 13, 14, 15, 12, 13, 14, 15):
                tram.insert(ctx, dst=dst)

        rt.post(0, driver)
        rt.run(max_events=100_000)
        assert sorted(delivered) == [12, 12, 13, 13, 14, 14, 15, 15]
        # 4 sections, one of which (the receiver's own) is inline.
        assert tram.stats.local_sections == 3


class TestWsPSections:
    def test_pregrouped_sections_reach_right_pes(self):
        rt = RuntimeSystem(MACHINE, seed=0)
        arrivals = []
        tram = make_scheme(
            "WsP", rt, TramConfig(buffer_items=6),
            deliver_item=lambda ctx, it: arrivals.append(
                (ctx.worker.wid, it.dst)
            ),
        )

        def driver(ctx):
            for dst in (12, 13, 12, 14, 13, 12):  # one full buffer
                tram.insert(ctx, dst=dst)

        rt.post(0, driver)
        rt.run(max_events=100_000)
        assert len(arrivals) == 6
        for worker, dst in arrivals:
            assert worker == dst

    def test_wsp_destination_skips_group_cost(self):
        """WsP receivers only dispatch; WPs receivers group. The group
        work shows up at different ends but totals the same elements."""
        def group_elements(scheme):
            rt = RuntimeSystem(MACHINE, seed=0)
            tram = make_scheme(
                scheme, rt, TramConfig(buffer_items=4),
                deliver_item=lambda ctx, it: None,
            )

            def driver(ctx):
                for i in range(8):
                    tram.insert(ctx, dst=12 + (i % 4))

            rt.post(0, driver)
            rt.run(max_events=100_000)
            return tram.stats.group_elements

        assert group_elements("WsP") == group_elements("WPs")


class TestNonSmpOperation:
    @pytest.mark.parametrize("scheme", ["WW", "WPs", "PP"])
    def test_schemes_work_without_commthreads(self, scheme):
        machine = nonsmp_machine(2, ranks_per_node=4)
        rt = RuntimeSystem(machine, seed=0)
        got = []
        tram = make_scheme(
            scheme, rt, TramConfig(buffer_items=4),
            deliver_item=lambda ctx, it: got.append(it.payload),
        )

        def driver(ctx):
            for i in range(10):
                tram.insert(ctx, dst=(ctx.worker.wid + 1 + i) % 8,
                            payload=(ctx.worker.wid, i))
            tram.flush(ctx)

        for w in range(8):
            rt.post(w, driver)
        rt.run(max_events=200_000)
        assert len(got) == 80
        assert tram.pending_items() == 0

    def test_nonsmp_send_cost_charged_to_worker(self):
        machine = nonsmp_machine(2, ranks_per_node=2)
        rt = RuntimeSystem(machine, seed=0)
        tram = make_scheme(
            "WW", rt, TramConfig(buffer_items=1),
            deliver_item=lambda ctx, it: None,
        )
        rt.post(0, lambda ctx: tram.insert(ctx, dst=3))
        rt.run(max_events=10_000)
        # Worker 0 paid pack + nonsmp send service.
        min_cost = rt.costs.pack_msg_ns + rt.costs.nonsmp_send_ns
        assert rt.worker(0).stats.busy_ns >= min_cost


class TestBulkSelfSection:
    def test_bulk_message_with_receiver_as_destination(self):
        rt = RuntimeSystem(MACHINE, seed=0)
        received = np.zeros(16, dtype=np.int64)
        tram = make_scheme(
            "WPs", rt, TramConfig(buffer_items=16),
            deliver_bulk=lambda ctx, w, n, si, sc: np.add.at(
                received, [w], [n]
            ),
        )

        def driver(ctx):
            counts = np.zeros(16, dtype=np.int64)
            counts[12:16] = 4  # all PEs of process 3, incl. receiver
            tram.insert_bulk(ctx, counts)

        rt.post(0, driver)
        rt.run(max_events=100_000)
        assert (received[12:16] == 4).all()
        assert received.sum() == 16
