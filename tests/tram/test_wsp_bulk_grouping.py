"""WsP bulk-mode grouping: the sort cost moves to the source side."""

import numpy as np

from repro.machine import MachineConfig
from repro.runtime.system import RuntimeSystem
from repro.tram import TramConfig, make_scheme

MACHINE = MachineConfig(nodes=2, processes_per_node=2, workers_per_process=4)


def run_bulk(scheme):
    rt = RuntimeSystem(MACHINE, seed=0)
    tram = make_scheme(
        scheme, rt, TramConfig(buffer_items=16),
        deliver_bulk=lambda ctx, w, n, si, sc: None,
    )

    def driver(ctx):
        counts = np.zeros(MACHINE.total_workers, dtype=np.int64)
        counts[12:16] = 8  # remote process 3, 32 items = 2 messages
        tram.insert_bulk(ctx, counts)
        tram.flush(ctx)

    rt.post(0, driver)
    rt.run(max_events=100_000)
    return rt, tram


class TestWsPBulkGrouping:
    def test_same_group_element_totals(self):
        """WsP and WPs do the same total grouping work — on opposite
        ends of the wire."""
        _, wsp = run_bulk("WsP")
        _, wps = run_bulk("WPs")
        assert wsp.stats.group_elements == wps.stats.group_elements > 0

    def test_wsp_sender_pays_the_sort(self):
        """The sending PE's busy time carries the grouping charge under
        WsP; under WPs the receiving process's PEs carry it."""
        rt_wsp, _ = run_bulk("WsP")
        rt_wps, _ = run_bulk("WPs")
        sender_wsp = rt_wsp.worker(0).stats.busy_ns
        sender_wps = rt_wps.worker(0).stats.busy_ns
        assert sender_wsp > sender_wps
        receivers_wsp = sum(
            rt_wsp.worker(w).stats.busy_ns for w in range(12, 16)
        )
        receivers_wps = sum(
            rt_wps.worker(w).stats.busy_ns for w in range(12, 16)
        )
        assert receivers_wps > receivers_wsp

    def test_identical_delivery_counts(self):
        _, wsp = run_bulk("WsP")
        _, wps = run_bulk("WPs")
        assert wsp.stats.items_delivered == wps.stats.items_delivered == 32
        assert wsp.stats.messages_sent == wps.stats.messages_sent
