"""Tests for the 2D topological-routing scheme (legacy-TRAM extension)."""

import pytest

from repro.errors import ConfigError
from repro.machine import MachineConfig
from repro.runtime.system import RuntimeSystem
from repro.tram import TramConfig, make_scheme
from repro.tram.schemes.routed2d import grid_shape

MACHINE = MachineConfig(nodes=4, processes_per_node=2, workers_per_process=2)


def build(g=8, **cfg):
    rt = RuntimeSystem(MACHINE, seed=0)
    got = []
    tram = make_scheme(
        "R2D", rt,
        TramConfig(buffer_items=g, item_bytes=8, idle_flush=True, **cfg),
        deliver_item=lambda ctx, it: got.append((ctx.worker.wid, it.payload)),
    )
    return rt, tram, got


class TestGridShape:
    @pytest.mark.parametrize(
        "n,expected", [(1, (1, 1)), (4, (2, 2)), (8, (2, 4)), (16, (4, 4)),
                       (12, (3, 4)), (7, (1, 7))]
    )
    def test_factorizations(self, n, expected):
        assert grid_shape(n) == expected
        rows, cols = grid_shape(n)
        assert rows * cols == n


class TestRouting:
    def test_next_hop_two_hops_max(self):
        rt, tram, _ = build()
        n = MACHINE.total_processes
        for src in range(n):
            for dst in range(n):
                if src == dst:
                    continue
                hop1 = tram.next_hop(src, dst)
                if hop1 == dst:
                    continue
                hop2 = tram.next_hop(hop1, dst)
                assert hop2 == dst, (src, hop1, dst)

    def test_no_self_hop(self):
        rt, tram, _ = build()
        n = MACHINE.total_processes
        for src in range(n):
            for dst in range(n):
                if src != dst:
                    assert tram.next_hop(src, dst) != src

    def test_same_column_goes_direct(self):
        rt, tram, _ = build()
        # Processes 0 and 4 share column 0 on the 2x4 grid.
        assert tram.next_hop(0, 4) == 4


class TestDelivery:
    def test_exactly_once_through_hops(self):
        rt, tram, got = build(g=4)
        W = MACHINE.total_workers

        def driver(ctx):
            wid = ctx.worker.wid
            for i in range(15):
                tram.insert(ctx, dst=(wid * 5 + i) % W, payload=(wid, i))

        for w in range(W):
            rt.post(w, driver)
        rt.run(max_events=1_000_000)
        assert len(got) == 15 * W
        assert tram.pending_items() == 0

    def test_forwarding_happens(self):
        """Cross-row traffic must transit an intermediate."""
        rt, tram, got = build(g=2)

        def driver(ctx):
            # worker 0 (process 0, row 0) -> worker 15 (process 7, row 1,
            # different column): needs a hop.
            tram.insert(ctx, dst=15)
            tram.insert(ctx, dst=15)

        rt.post(0, driver)
        rt.run(max_events=100_000)
        assert len(got) == 2
        assert tram.stats.messages_forwarded >= 1

    def test_fewer_source_buffers_than_wps(self):
        """The point of routing: O(cols) next hops, not O(N) dests."""
        rt, tram, _ = build(g=1000)
        W = MACHINE.total_workers

        def driver(ctx):
            for dst in range(W):
                if MACHINE.process_of_worker(dst) != MACHINE.process_of_worker(
                    ctx.worker.wid
                ):
                    tram.insert(ctx, dst=dst)
            tram.flush(ctx)

        rt.post(0, driver)
        rt.run(max_events=100_000)
        # Worker 0 (process 0, row 0) reaches every process via its
        # row-mates (4 columns): at most cols next hops, vs 7 for WPs.
        source_bufs = len(tram._by_worker[0])
        assert source_bufs <= tram.cols
        assert source_bufs < MACHINE.total_processes - 1


class TestConstraints:
    def test_bulk_mode_rejected(self):
        rt = RuntimeSystem(MACHINE, seed=0)
        with pytest.raises(ConfigError, match="per-item"):
            make_scheme("R2D", rt, TramConfig(),
                        deliver_bulk=lambda ctx, w, n, si, sc: None)

    def test_flat_fabric_makes_routing_slower(self):
        """The paper's §I claim: on distance-insensitive fabrics the
        extra hop costs more than the buffer savings are worth for
        steady traffic."""
        def run(scheme):
            rt = RuntimeSystem(MACHINE, seed=0)
            tram = make_scheme(
                scheme, rt,
                TramConfig(buffer_items=16, item_bytes=8, idle_flush=True),
                deliver_item=lambda ctx, it: None,
            )
            W = MACHINE.total_workers

            def driver(ctx):
                rng = rt.rng.stream(f"r/{ctx.worker.wid}")
                for _ in range(300):
                    tram.insert(ctx, dst=int(rng.integers(0, W)))

            for w in range(W):
                rt.post(w, driver)
            stats = rt.run(max_events=2_000_000)
            return stats.end_time, tram.stats.latency.mean

        t_r2d, lat_r2d = run("R2D")
        t_wps, lat_wps = run("WPs")
        assert lat_r2d > lat_wps  # the extra hop shows up in latency
