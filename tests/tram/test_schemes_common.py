"""Behaviour shared by all aggregation schemes (parametrized)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.machine import MachineConfig
from repro.runtime.system import RuntimeSystem
from repro.tram import SCHEME_NAMES, TramConfig, make_scheme

# Paper schemes + baseline + extensions (node-level, 2D routing).
ALL_SCHEMES = list(SCHEME_NAMES) + ["Direct", "WNs", "NN", "R2D"]
BULK_SCHEMES = [s for s in ALL_SCHEMES if s != "R2D"]  # R2D is per-item only


def build(scheme, g=4, wpp=2, ppn=2, nodes=2, seed=0, deliver_item=None,
          deliver_bulk=None, **cfg):
    machine = MachineConfig(nodes=nodes, processes_per_node=ppn,
                            workers_per_process=wpp)
    rt = RuntimeSystem(machine, seed=seed)
    # Multi-hop schemes park forwarded items at intermediates; idle
    # flushing guarantees drainage without requiring app cooperation.
    cfg.setdefault("idle_flush", scheme == "R2D")
    tram = make_scheme(
        scheme, rt, TramConfig(buffer_items=g, item_bytes=8, **cfg),
        deliver_item=deliver_item, deliver_bulk=deliver_bulk,
    )
    return rt, tram


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
class TestPerItemConservation:
    def test_every_item_delivered_exactly_once(self, scheme):
        got = []
        rt, tram = build(scheme, deliver_item=lambda ctx, it: got.append(it.payload))
        W = rt.machine.total_workers

        def driver(ctx):
            wid = ctx.worker.wid
            for i in range(13):
                tram.insert(ctx, dst=(wid * 13 + i) % W, payload=(wid, i))
            tram.flush(ctx)

        for w in range(W):
            rt.post(w, driver)
        rt.run(max_events=200_000)
        assert sorted(got) == sorted((w, i) for w in range(W) for i in range(13))
        assert tram.stats.items_delivered == tram.stats.items_inserted == 13 * W
        assert tram.pending_items() == 0

    def test_items_arrive_at_correct_worker(self, scheme):
        arrivals = []
        rt, tram = build(
            scheme,
            deliver_item=lambda ctx, it: arrivals.append((ctx.worker.wid, it.dst)),
        )
        W = rt.machine.total_workers

        def driver(ctx):
            for dst in range(W):
                tram.insert(ctx, dst=dst, payload=None)
            tram.flush(ctx)

        rt.post(0, driver)
        rt.run(max_events=100_000)
        assert len(arrivals) == W
        for worker, dst in arrivals:
            assert worker == dst


@pytest.mark.parametrize("scheme", BULK_SCHEMES)
class TestBulkConservation:
    def test_counts_conserved(self, scheme):
        received = np.zeros(8, dtype=np.int64)

        def deliver(ctx, wid, count, src_ids, src_counts):
            received[wid] += count
            assert src_counts.sum() == count

        rt, tram = build(scheme, g=16, deliver_bulk=deliver)
        W = rt.machine.total_workers

        def driver(ctx):
            rng = rt.rng.stream(f"d/{ctx.worker.wid}")
            counts = np.bincount(rng.integers(0, W, 200), minlength=W)
            tram.insert_bulk(ctx, counts)
            tram.flush(ctx)

        for w in range(W):
            rt.post(w, driver)
        rt.run(max_events=500_000)
        assert received.sum() == 200 * W
        assert tram.stats.items_delivered == 200 * W

    def test_source_attribution_conserved(self, scheme):
        per_src = np.zeros(8, dtype=np.int64)

        def deliver(ctx, wid, count, src_ids, src_counts):
            per_src[src_ids] += src_counts

        rt, tram = build(scheme, g=16, deliver_bulk=deliver)
        W = rt.machine.total_workers

        def driver(ctx):
            counts = np.full(W, 25, dtype=np.int64)  # 25 to everyone
            tram.insert_bulk(ctx, counts)
            tram.flush(ctx)

        for w in range(W):
            rt.post(w, driver)
        rt.run(max_events=500_000)
        # Every worker contributed exactly 25 * W items.
        assert (per_src == 25 * W).all()


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
class TestLocalBypass:
    def test_intra_process_items_bypass_network(self, scheme):
        rt, tram = build(scheme, deliver_item=lambda ctx, it: None)

        def driver(ctx):
            tram.insert(ctx, dst=1, payload=None)  # same process as worker 0

        rt.post(0, driver)
        rt.run(max_events=10_000)
        assert tram.stats.items_bypassed_local == 1
        assert tram.stats.items_delivered == 1
        assert rt.transport.stats.total_messages == 0

    def test_bypass_disabled_routes_through_buffers(self, scheme):
        if scheme == "Direct":
            pytest.skip("Direct never buffers")
        rt, tram = build(
            scheme, bypass_local=False, deliver_item=lambda ctx, it: None
        )

        def driver(ctx):
            tram.insert(ctx, dst=1, payload=None)
            tram.flush(ctx)

        rt.post(0, driver)
        rt.run(max_events=10_000)
        assert tram.stats.items_bypassed_local == 0
        assert tram.stats.items_delivered == 1
        assert tram.stats.messages_sent == 1


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
class TestCallbacks:
    def test_missing_callbacks_rejected(self, scheme):
        machine = MachineConfig(nodes=1, processes_per_node=1,
                                workers_per_process=2)
        rt = RuntimeSystem(machine)
        with pytest.raises(ConfigError):
            make_scheme(scheme, rt, TramConfig())

    def test_mode_mixing_rejected(self, scheme):
        if scheme in ("Direct", "R2D"):
            pytest.skip("no mixed-mode buffers for this scheme")
        errors = []
        rt, tram = build(
            scheme, deliver_item=lambda c, i: None,
            deliver_bulk=lambda c, w, n, si, sc: None,
        )
        W = rt.machine.total_workers

        def driver(ctx):
            tram.insert(ctx, dst=W - 1)  # remote: goes into a buffer
            counts = np.zeros(W, dtype=np.int64)
            counts[W - 1] = 1
            try:
                tram.insert_bulk(ctx, counts)
            except ConfigError as e:
                errors.append(e)

        rt.post(0, driver)
        rt.run(max_events=10_000)
        assert errors


class TestRegistry:
    def test_unknown_scheme_rejected(self):
        machine = MachineConfig(nodes=1, processes_per_node=1,
                                workers_per_process=1)
        rt = RuntimeSystem(machine)
        with pytest.raises(ConfigError, match="unknown scheme"):
            make_scheme("bogus", rt, deliver_item=lambda c, i: None)

    def test_case_insensitive(self):
        machine = MachineConfig(nodes=1, processes_per_node=1,
                                workers_per_process=2)
        rt = RuntimeSystem(machine)
        tram = make_scheme("wps", rt, deliver_item=lambda c, i: None)
        assert tram.name == "WPs"

    def test_scheme_names_in_paper_order(self):
        assert SCHEME_NAMES == ("WW", "WPs", "WsP", "PP")
