"""Unit tests for aggregation buffers and the proportional split."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.tram.buffer import CountBuffer, ItemBuffer, proportional_take
from repro.tram.item import Item


def item(dst=0, src=1, t=0.0, priority=None):
    return Item(dst, src, t, None, priority)


class TestProportionalTake:
    def test_exact_fractions(self):
        arr = np.array([10, 20, 30], dtype=np.int64)
        take = proportional_take(arr, 30, 60)
        assert list(take) == [5, 10, 15]

    def test_sum_invariant_with_remainders(self):
        arr = np.array([7, 11, 3, 19], dtype=np.int64)
        take = proportional_take(arr, 13, int(arr.sum()))
        assert take.sum() == 13
        assert (take >= 0).all()
        assert (take <= arr).all()

    def test_take_all(self):
        arr = np.array([4, 0, 6], dtype=np.int64)
        take = proportional_take(arr, 10, 10)
        assert list(take) == [4, 0, 6]

    def test_take_more_than_total_rejected(self):
        with pytest.raises(SimulationError):
            proportional_take(np.array([1, 2]), 5, 3)

    def test_deterministic(self):
        arr = np.array([5, 5, 5], dtype=np.int64)
        a = proportional_take(arr.copy(), 7, 15)
        b = proportional_take(arr.copy(), 7, 15)
        assert list(a) == list(b)

    def test_zero_slots_untouched(self):
        arr = np.array([0, 10, 0, 10], dtype=np.int64)
        take = proportional_take(arr, 11, 20)
        assert take[0] == 0 and take[2] == 0
        assert take.sum() == 11


class TestItemBuffer:
    def test_add_reports_full(self):
        buf = ItemBuffer(3)
        assert not buf.add(item())
        assert not buf.add(item())
        assert buf.add(item())
        assert buf.count == 3

    def test_drain_all(self):
        buf = ItemBuffer(4)
        items = [item(dst=i) for i in range(3)]
        for it in items:
            buf.add(it)
        out = buf.drain()
        assert out == items
        assert buf.empty

    def test_drain_partial_keeps_order(self):
        buf = ItemBuffer(10)
        for i in range(5):
            buf.add(item(dst=i))
        out = buf.drain(2)
        assert [it.dst for it in out] == [0, 1]
        assert [it.dst for it in buf.items] == [2, 3, 4]

    def test_min_priority(self):
        buf = ItemBuffer(10)
        buf.add(item(priority=5.0))
        buf.add(item(priority=2.0))
        buf.add(item())  # unprioritized
        assert buf.min_priority() == 2.0

    def test_min_priority_none_when_unprioritized(self):
        buf = ItemBuffer(10)
        buf.add(item())
        assert buf.min_priority() is None


class TestCountBuffer:
    def test_plain_counting(self):
        buf = CountBuffer(8)
        buf.add_counts(3, now=10.0)
        buf.add_counts(5, now=20.0)
        assert buf.full
        assert buf.count == 8
        assert buf.t_sum == pytest.approx(3 * 10.0 + 5 * 20.0)
        assert buf.t_min == 10.0

    def test_take_splits_moments(self):
        buf = CountBuffer(100)
        buf.add_counts(10, now=10.0)
        batch = buf.take(4)
        assert batch.count == 4
        assert batch.t_sum == pytest.approx(40.0)
        assert buf.count == 6
        assert buf.t_sum == pytest.approx(60.0)

    def test_take_all_resets(self):
        buf = CountBuffer(10)
        buf.add_counts(7, now=1.0)
        batch = buf.take_all()
        assert batch.count == 7
        assert buf.empty
        assert buf.t_sum == 0.0
        assert buf.t_min == float("inf")

    def test_destination_slots(self):
        dst_ids = np.array([4, 5, 6, 7])
        buf = CountBuffer(100, dst_ids=dst_ids)
        buf.add_counts(6, now=0.0, dst_slot_counts=np.array([1, 2, 3, 0]))
        buf.add_counts(4, now=0.0, dst_slot_counts=np.array([0, 0, 0, 4]))
        batch = buf.take(5)
        assert batch.dst_counts.sum() == 5
        assert (batch.dst_counts <= np.array([1, 2, 3, 4])).all()
        assert list(batch.dst_ids) == [4, 5, 6, 7]
        assert buf.dst_counts.sum() == 5

    def test_source_slots(self):
        src_ids = np.array([0, 1])
        buf = CountBuffer(100, src_ids=src_ids)
        buf.add_counts(4, now=0.0, src_slot=0)
        buf.add_counts(6, now=0.0, src_slot=1)
        batch = buf.take(5)
        assert batch.src_counts.sum() == 5

    def test_missing_slot_info_rejected(self):
        buf = CountBuffer(10, dst_ids=np.array([0, 1]))
        with pytest.raises(SimulationError):
            buf.add_counts(1, now=0.0)
        buf2 = CountBuffer(10, src_ids=np.array([0, 1]))
        with pytest.raises(SimulationError):
            buf2.add_counts(1, now=0.0)

    def test_invalid_amounts_rejected(self):
        buf = CountBuffer(10)
        with pytest.raises(SimulationError):
            buf.add_counts(0, now=0.0)
        buf.add_counts(2, now=0.0)
        with pytest.raises(SimulationError):
            buf.take(3)
        with pytest.raises(SimulationError):
            buf.take(0)
