"""Unit tests for TramConfig validation and statistics containers."""

import pytest

from repro.errors import ConfigError
from repro.tram.config import TramConfig
from repro.tram.stats import LatencyAggregate, TramStats


class TestTramConfig:
    def test_defaults_valid(self):
        cfg = TramConfig()
        assert cfg.buffer_items == 1024
        assert cfg.bypass_local
        assert cfg.expedited

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(buffer_items=0),
            dict(item_bytes=0),
            dict(flush_timeout_ns=0.0),
            dict(flush_timeout_ns=-5.0),
            dict(latency_sample=-1),
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            TramConfig(**kwargs)

    def test_with_copies(self):
        cfg = TramConfig(buffer_items=64)
        cfg2 = cfg.with_(buffer_items=128, idle_flush=True)
        assert cfg2.buffer_items == 128
        assert cfg2.idle_flush
        assert cfg.buffer_items == 64


class TestLatencyAggregate:
    def test_exact_moments(self):
        agg = LatencyAggregate()
        agg.record(100.0)
        agg.record(300.0, weight=3)
        assert agg.count == 4
        assert agg.mean == pytest.approx(250.0)
        assert agg.min == 100.0
        assert agg.max == 300.0

    def test_record_bulk_mean_exact(self):
        agg = LatencyAggregate()
        # 4 items created at t=10 each, delivered at t=110.
        agg.record_bulk(count=4, t_sum=40.0, t_min=10.0, now=110.0)
        assert agg.mean == pytest.approx(100.0)
        assert agg.max == pytest.approx(100.0)

    def test_record_bulk_tracks_oldest(self):
        agg = LatencyAggregate()
        agg.record_bulk(count=2, t_sum=30.0, t_min=5.0, now=100.0)
        assert agg.max == pytest.approx(95.0)  # oldest item's latency

    def test_empty_bulk_ignored(self):
        agg = LatencyAggregate()
        agg.record_bulk(0, 0.0, 0.0, 10.0)
        assert agg.count == 0
        assert agg.mean == 0.0

    def test_percentile_requires_sampling(self):
        agg = LatencyAggregate()
        agg.record(5.0)
        assert agg.percentile(50) is None

    def test_percentile_with_reservoir(self):
        agg = LatencyAggregate(sample_size=64, seed=1)
        for v in range(100):
            agg.record(float(v))
        p50 = agg.percentile(50)
        assert p50 is not None
        assert 10.0 < p50 < 90.0

    def test_percentile_with_histogram_backend(self):
        agg = LatencyAggregate(histogram=True)
        agg.record(100.0, weight=5)
        agg.record_bulk(count=5, t_sum=0.0, t_min=0.0, now=100.0)
        assert agg.percentile(50) == pytest.approx(100.0)

    def test_reservoir_wins_over_histogram(self):
        agg = LatencyAggregate(sample_size=8, histogram=True)
        agg.record(10.0)
        assert agg._hist is None
        assert agg.percentile(50) == pytest.approx(10.0)


class TestTramStats:
    def test_messages_sent_sums_lanes(self):
        s = TramStats()
        s.messages_full = 3
        s.messages_flush = 2
        assert s.messages_sent == 5

    def test_pending_items(self):
        s = TramStats()
        s.items_inserted = 10
        s.items_delivered = 7
        assert s.pending_items == 3

    def test_summary_keys(self):
        s = TramStats()
        summary = s.summary()
        for key in (
            "items_inserted",
            "items_bypassed_local",
            "pending_items",
            "messages_sent",
            "bytes_sent",
            "mean_latency_ns",
            "min_latency_ns",
            "buffer_bytes_allocated",
        ):
            assert key in summary

    def test_empty_summary_min_latency_finite(self):
        # Empty aggregate keeps min == inf internally; the summary must
        # not leak a non-JSON-serializable infinity.
        summary = TramStats().summary()
        assert summary["min_latency_ns"] == 0.0

    def test_summary_reports_bypass_and_pending(self):
        s = TramStats()
        s.items_inserted = 10
        s.items_delivered = 6
        s.items_bypassed_local = 2
        s.latency.record(40.0)
        summary = s.summary()
        assert summary["items_bypassed_local"] == 2
        assert summary["pending_items"] == 4
        assert summary["min_latency_ns"] == 40.0
