"""Tests for the node-level extension schemes (WNs / NN)."""

import numpy as np
import pytest

from repro.machine import MachineConfig
from repro.runtime.system import RuntimeSystem
from repro.tram import TramConfig, make_scheme

MACHINE = MachineConfig(nodes=2, processes_per_node=2, workers_per_process=2)


def build(scheme, g=8, **cfg):
    rt = RuntimeSystem(MACHINE, seed=0)
    got = []
    tram = make_scheme(
        scheme, rt, TramConfig(buffer_items=g, item_bytes=8, **cfg),
        deliver_item=lambda ctx, it: got.append((ctx.worker.wid, it.payload)),
    )
    return rt, tram, got


@pytest.mark.parametrize("scheme", ["WNs", "NN"])
class TestNodeLevelDelivery:
    def test_exactly_once_right_worker(self, scheme):
        rt, tram, got = build(scheme)
        W = MACHINE.total_workers

        def driver(ctx):
            wid = ctx.worker.wid
            for i in range(11):
                tram.insert(ctx, dst=(wid + 1 + i) % W, payload=(wid, i, (wid + 1 + i) % W))
            tram.flush(ctx)

        for w in range(W):
            rt.post(w, driver)
        rt.run(max_events=500_000)
        assert len(got) == 11 * W
        for worker, (src, i, dst) in got:
            assert worker == dst
        assert tram.pending_items() == 0

    def test_bulk_conservation_with_sources(self, scheme):
        rt = RuntimeSystem(MACHINE, seed=0)
        per_src = np.zeros(8, dtype=np.int64)
        tram = make_scheme(
            scheme, rt, TramConfig(buffer_items=16, item_bytes=8),
            deliver_bulk=lambda ctx, w, n, si, sc: np.add.at(per_src, si, sc),
        )
        W = MACHINE.total_workers

        def driver(ctx):
            counts = np.full(W, 30, dtype=np.int64)
            tram.insert_bulk(ctx, counts)
            tram.flush_when_done(ctx)

        for w in range(W):
            rt.post(w, driver)
        rt.run(max_events=500_000)
        assert tram.stats.items_delivered == 30 * W * W
        assert (per_src == 30 * W).all()

    def test_idle_flush_supported(self, scheme):
        rt, tram, got = build(scheme, idle_flush=True)
        rt.post(0, lambda ctx: tram.insert(ctx, dst=7, payload="x"))
        rt.run(max_events=100_000)
        assert [p for _, p in got] == ["x"]


class TestNodeLevelPlacement:
    def test_wns_buffers_per_node(self):
        """One item to every remote worker -> one buffer per remote node."""
        rt, tram, _ = build("WNs", g=100)

        def driver(ctx):
            for dst in range(2, MACHINE.total_workers):
                tram.insert(ctx, dst=dst)
            tram.flush(ctx)

        rt.post(0, driver)
        rt.run(max_events=100_000)
        # Destinations: 2 workers in sibling process (node 0) + 4 on
        # node 1 -> buffers for node 0 and node 1 only.
        assert tram.stats.buffers_allocated == 2
        assert tram.stats.messages_flush == 2

    def test_wns_forwards_cross_process_sections(self):
        rt, tram, got = build("WNs", g=100)

        def driver(ctx):
            for dst in (4, 5, 6, 7):  # both processes of node 1
                tram.insert(ctx, dst=dst)
            tram.flush(ctx)

        rt.post(0, driver)
        rt.run(max_events=100_000)
        assert len(got) == 4
        # The receiving process keeps its own sections and forwards one
        # intra-node message to the sibling process.
        assert tram.stats.messages_forwarded == 1

    def test_nn_node_shared_buffers(self):
        """All four workers of node 0 share one buffer per dest node."""
        rt, tram, _ = build("NN", g=100)

        def driver(ctx):
            tram.insert(ctx, dst=7)

        for w in range(4):  # node 0's workers
            rt.post(w, driver)
        rt.post(0, lambda ctx: tram.flush(ctx), delay=10_000.0)
        rt.run(max_events=100_000)
        assert tram.stats.buffers_allocated == 1
        assert tram.stats.atomic_inserts == 4
        assert tram.stats.messages_flush == 1  # one message, 4 items

    def test_nn_fewer_flush_messages_than_pp(self):
        """NN's end-of-phase flush sends per (node, node) pair."""

        def flush_msgs(scheme):
            rt = RuntimeSystem(MACHINE, seed=0)
            tram = make_scheme(
                scheme, rt, TramConfig(buffer_items=1000, item_bytes=8),
                deliver_item=lambda ctx, it: None,
            )
            W = MACHINE.total_workers

            def driver(ctx):
                for dst in range(W):
                    if not MACHINE.same_process(ctx.worker.wid, dst):
                        tram.insert(ctx, dst=dst)
                tram.flush_when_done(ctx)

            for w in range(W):
                rt.post(w, driver)
            rt.run(max_events=500_000)
            assert tram.pending_items() == 0
            return tram.stats.messages_flush

        assert flush_msgs("NN") < flush_msgs("PP") < flush_msgs("WW")

    def test_nn_contention_exceeds_pp(self):
        """NN atomics span the whole node: costlier than PP's."""
        rt = RuntimeSystem(MACHINE, seed=0)
        costs = rt.costs
        nn_cost = costs.pp_insert_ns(MACHINE.workers_per_node)
        pp_cost = costs.pp_insert_ns(MACHINE.workers_per_process)
        assert nn_cost > pp_cost


class TestNodeLevelLatency:
    def test_extra_hop_vs_wps_single_item(self):
        """A single flushed item pays the forwarding hop under WNs when
        it lands on the wrong process of the destination node."""
        lat = {}
        for scheme in ("WPs", "WNs"):
            rt, tram, got = build(scheme, g=100)

            def driver(ctx, tram=tram):
                tram.insert(ctx, dst=6)
                tram.flush(ctx)

            rt.post(0, driver)
            rt.run(max_events=100_000)
            lat[scheme] = tram.stats.latency.mean
        # WPs routes straight to process 3; WNs may land on process 2
        # first. Either way WNs is never faster for a lone item.
        assert lat["WNs"] >= lat["WPs"]
