"""Flush policies: explicit, idle, timeout, priority (paper §III-B and
the future-work prioritization feature)."""

import pytest

from repro.machine import MachineConfig
from repro.runtime.system import RuntimeSystem
from repro.tram import TramConfig, make_scheme

MACHINE = MachineConfig(nodes=2, processes_per_node=2, workers_per_process=2)


def build(scheme="WPs", **cfg):
    rt = RuntimeSystem(MACHINE, seed=0)
    delivered = []
    tram = make_scheme(
        scheme, rt, TramConfig(buffer_items=100, item_bytes=8, **cfg),
        deliver_item=lambda ctx, it: delivered.append((ctx.now, it.payload)),
    )
    return rt, tram, delivered


class TestExplicitFlush:
    def test_without_flush_items_stay_buffered(self):
        rt, tram, delivered = build()
        rt.post(0, lambda ctx: tram.insert(ctx, dst=7))
        rt.run(max_events=10_000)
        assert delivered == []
        assert tram.pending_items() == 1

    def test_flush_delivers_buffered_items(self):
        rt, tram, delivered = build()

        def driver(ctx):
            tram.insert(ctx, dst=7, payload="x")
            tram.flush(ctx)

        rt.post(0, driver)
        rt.run(max_events=10_000)
        assert [p for _, p in delivered] == ["x"]
        assert tram.stats.messages_flush == 1

    def test_flush_on_empty_buffers_sends_nothing(self):
        rt, tram, delivered = build()
        rt.post(0, lambda ctx: tram.flush(ctx))
        rt.run(max_events=10_000)
        assert tram.stats.messages_sent == 0


class TestIdleFlush:
    def test_idle_worker_flushes_pending(self):
        rt, tram, delivered = build(idle_flush=True)
        rt.post(0, lambda ctx: tram.insert(ctx, dst=7, payload="y"))
        rt.run(max_events=10_000)
        # No explicit flush; idle hook pushed the item out.
        assert [p for _, p in delivered] == ["y"]
        assert tram.stats.messages_flush == 1

    def test_idle_flush_does_not_fire_when_empty(self):
        rt, tram, delivered = build(idle_flush=True)
        rt.post(0, lambda ctx: ctx.charge(100.0))
        rt.run(max_events=10_000)
        assert tram.stats.messages_sent == 0


class TestTimeoutFlush:
    def test_timer_flushes_after_timeout(self):
        rt, tram, delivered = build(flush_timeout_ns=5_000.0)
        rt.post(0, lambda ctx: tram.insert(ctx, dst=7, payload="t"))
        rt.run(max_events=10_000)
        assert [p for _, p in delivered] == ["t"]
        # Delivery happened after the timeout elapsed.
        assert delivered[0][0] >= 5_000.0

    def test_timer_cancelled_when_buffer_fills(self):
        rt, tram, delivered = build(flush_timeout_ns=1e9)
        # g=100; fill the buffer so it is sent as full long before the
        # (huge) timeout. Engine must still drain (timer cancelled).
        def driver(ctx):
            for i in range(100):
                tram.insert(ctx, dst=7, payload=i)

        rt.post(0, driver)
        stats = rt.run(max_events=100_000)
        assert tram.stats.messages_full == 1
        assert len(delivered) == 100
        # Quiescence well before the timer horizon proves cancellation.
        assert stats.end_time < 1e9

    def test_timer_rearms_for_later_inserts(self):
        rt, tram, delivered = build(flush_timeout_ns=5_000.0)
        rt.post(0, lambda ctx: tram.insert(ctx, dst=7, payload="a"))
        rt.post(0, lambda ctx: tram.insert(ctx, dst=7, payload="b"),
                delay=20_000.0)
        rt.run(max_events=10_000)
        assert [p for _, p in delivered] == ["a", "b"]
        assert tram.stats.messages_flush == 2


class TestPriorityFlush:
    def test_urgent_item_flushes_immediately(self):
        rt, tram, delivered = build(priority_threshold=10.0)

        def driver(ctx):
            tram.insert(ctx, dst=7, payload="slow", priority=100.0)
            tram.insert(ctx, dst=7, payload="fast", priority=1.0)

        rt.post(0, driver)
        rt.run(max_events=10_000)
        # The urgent insert flushed both buffered items.
        assert sorted(p for _, p in delivered) == ["fast", "slow"]
        assert tram.stats.messages_flush == 1

    def test_non_urgent_items_stay(self):
        rt, tram, delivered = build(priority_threshold=10.0)

        def driver(ctx):
            tram.insert(ctx, dst=7, payload="slow", priority=100.0)

        rt.post(0, driver)
        rt.run(max_events=10_000)
        assert delivered == []
        assert tram.pending_items() == 1

    def test_unprioritized_items_unaffected(self):
        rt, tram, delivered = build(priority_threshold=10.0)
        rt.post(0, lambda ctx: tram.insert(ctx, dst=7))
        rt.run(max_events=10_000)
        assert tram.pending_items() == 1


class TestExpedited:
    def test_tram_messages_overtake_normal_tasks(self):
        """Expedited TramLib delivery runs before queued app tasks."""
        rt = RuntimeSystem(MACHINE, seed=0)
        order = []
        tram = make_scheme(
            "WW", rt, TramConfig(buffer_items=1, expedited=True),
            deliver_item=lambda ctx, it: order.append("tram"),
        )
        # Occupy worker 7 with a long task, then queue a slow app task;
        # the tram message arriving meanwhile must run first.
        rt.post(7, lambda ctx: ctx.charge(100_000.0))
        rt.post(7, lambda ctx: order.append("app"), delay=50_000.0)
        rt.post(0, lambda ctx: tram.insert(ctx, dst=7), delay=1_000.0)
        rt.run(max_events=10_000)
        assert order == ["tram", "app"]


class TestPriorityFlushStats:
    def test_priority_flushes_counted(self):
        rt, tram, delivered = build(priority_threshold=10.0)

        def driver(ctx):
            tram.insert(ctx, dst=7, payload="a", priority=50.0)
            tram.insert(ctx, dst=7, payload="b", priority=1.0)  # urgent
            tram.insert(ctx, dst=7, payload="c", priority=0.5)  # urgent

        rt.post(0, driver)
        rt.run(max_events=10_000)
        assert tram.stats.priority_flushes == 2
        assert tram.stats.messages_flush == 2

    def test_summary_includes_percentiles_when_sampled(self):
        from repro.machine import MachineConfig
        from repro.runtime.system import RuntimeSystem
        from repro.tram import TramConfig, make_scheme

        rt = RuntimeSystem(MACHINE, seed=0)
        tram = make_scheme(
            "WPs", rt, TramConfig(buffer_items=4, latency_sample=128),
            deliver_item=lambda ctx, it: None,
        )

        def driver(ctx):
            for i in range(16):
                tram.insert(ctx, dst=4 + (i % 4))
            tram.flush(ctx)

        rt.post(0, driver)
        rt.run(max_events=100_000)
        summary = tram.stats.summary()
        assert summary["latency_p50_ns"] is not None
        assert summary["latency_p99_ns"] >= summary["latency_p50_ns"]
