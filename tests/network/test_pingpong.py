"""Tests for the ping-pong measurement (paper Fig 1 behaviour)."""

import pytest

from repro.machine.costs import CostModel
from repro.network.pingpong import measure_pingpong


class TestPingPongShape:
    def test_small_messages_alpha_dominated(self):
        results = measure_pingpong([8, 64, 512])
        times = [r.one_way_ns for r in results]
        # Flat within 15% across small sizes: alpha dominates.
        assert max(times) / min(times) < 1.15
        # Microsecond order, as the paper measures.
        assert 500 < times[0] < 20_000

    def test_large_messages_bandwidth_bound(self):
        small, large = measure_pingpong([8, 1 << 20])
        assert large.one_way_ns > 10 * small.one_way_ns

    def test_effective_beta_near_tenth_ns_per_byte(self):
        a, b = measure_pingpong([1 << 16, 1 << 20])
        delta_bytes = (1 << 20) - (1 << 16)
        beta_eff = (b.one_way_ns - a.one_way_ns) / delta_bytes
        assert 0.05 < beta_eff < 0.2  # ~12 GB/s end to end

    def test_rtt_is_twice_oneway(self):
        (r,) = measure_pingpong([128])
        assert r.rtt_ns == pytest.approx(2 * r.one_way_ns)

    def test_monotone_in_size(self):
        results = measure_pingpong([64, 4096, 65536, 1 << 20])
        times = [r.one_way_ns for r in results]
        assert times == sorted(times)


class TestPingPongModes:
    def test_nonsmp_mode_runs(self):
        (r,) = measure_pingpong([256], smp=False)
        assert r.one_way_ns > 0

    def test_custom_costs(self):
        slow = CostModel(alpha_inter_ns=50_000.0)
        (r,) = measure_pingpong([8], costs=slow)
        assert r.one_way_ns > 50_000.0

    def test_results_ordered_like_input(self):
        sizes = [1024, 8, 65536]
        results = measure_pingpong(sizes)
        assert [r.size_bytes for r in results] == sizes
