"""Unit tests for the fabric latency oracle and message envelope."""

import pytest

from repro.machine.costs import CostModel
from repro.machine.topology import MachineConfig
from repro.network.fabric import Fabric
from repro.network.message import NetMessage, Route


@pytest.fixture
def fabric():
    machine = MachineConfig(nodes=2, processes_per_node=2, workers_per_process=2)
    return Fabric(machine, CostModel())


class TestFabric:
    def test_same_node_uses_intra_alpha(self, fabric):
        assert (
            fabric.latency_between_processes(0, 1)
            == fabric.costs.alpha_intra_ns
        )

    def test_cross_node_uses_inter_alpha(self, fabric):
        assert (
            fabric.latency_between_processes(0, 2)
            == fabric.costs.alpha_inter_ns
        )

    def test_node_level(self, fabric):
        assert fabric.latency_between_nodes(0, 0) == fabric.costs.alpha_intra_ns
        assert fabric.latency_between_nodes(0, 1) == fabric.costs.alpha_inter_ns


class TestNetMessage:
    def test_worker_addressing(self):
        m = NetMessage(kind="k", src_worker=0, dst_process=1, size_bytes=10)
        assert not m.addressed_to_worker()
        m2 = NetMessage(
            kind="k", src_worker=0, dst_process=1, size_bytes=10, dst_worker=3
        )
        assert m2.addressed_to_worker()

    def test_message_ids_unique(self):
        a = NetMessage(kind="k", src_worker=0, dst_process=0, size_bytes=1)
        b = NetMessage(kind="k", src_worker=0, dst_process=0, size_bytes=1)
        assert a.msg_id != b.msg_id

    def test_route_enum_members(self):
        assert {r.value for r in Route} == {
            "intra_process",
            "intra_node",
            "inter_node",
        }
