"""Multiple scheme instances sharing one runtime (the IG pattern)."""

import numpy as np

from repro.machine import MachineConfig
from repro.runtime.system import RuntimeSystem
from repro.tram import TramConfig, make_scheme

MACHINE = MachineConfig(nodes=2, processes_per_node=2, workers_per_process=2)


class TestInstanceIsolation:
    def test_two_instances_do_not_cross_deliver(self):
        rt = RuntimeSystem(MACHINE, seed=0)
        got_a, got_b = [], []
        tram_a = make_scheme(
            "WPs", rt, TramConfig(buffer_items=2),
            deliver_item=lambda ctx, it: got_a.append(it.payload),
        )
        tram_b = make_scheme(
            "WPs", rt, TramConfig(buffer_items=2),
            deliver_item=lambda ctx, it: got_b.append(it.payload),
        )

        def driver(ctx):
            tram_a.insert(ctx, dst=7, payload="a1")
            tram_a.insert(ctx, dst=7, payload="a2")
            tram_b.insert(ctx, dst=6, payload="b1")
            tram_b.insert(ctx, dst=6, payload="b2")

        rt.post(0, driver)
        rt.run(max_events=100_000)
        assert sorted(got_a) == ["a1", "a2"]
        assert sorted(got_b) == ["b1", "b2"]
        assert tram_a.stats.items_delivered == 2
        assert tram_b.stats.items_delivered == 2

    def test_different_schemes_coexist(self):
        rt = RuntimeSystem(MACHINE, seed=0)
        got = {"pp": 0, "ww": 0}
        pp = make_scheme(
            "PP", rt, TramConfig(buffer_items=4),
            deliver_item=lambda ctx, it: got.__setitem__("pp", got["pp"] + 1),
        )
        ww = make_scheme(
            "WW", rt, TramConfig(buffer_items=4),
            deliver_item=lambda ctx, it: got.__setitem__("ww", got["ww"] + 1),
        )

        def driver(ctx):
            for _ in range(4):
                pp.insert(ctx, dst=7)
                ww.insert(ctx, dst=7)

        rt.post(0, driver)
        rt.run(max_events=100_000)
        assert got == {"pp": 4, "ww": 4}

    def test_stats_are_per_instance(self):
        rt = RuntimeSystem(MACHINE, seed=0)
        a = make_scheme("WPs", rt, TramConfig(buffer_items=1),
                        deliver_item=lambda ctx, it: None)
        b = make_scheme("WPs", rt, TramConfig(buffer_items=1),
                        deliver_item=lambda ctx, it: None)
        rt.post(0, lambda ctx: a.insert(ctx, dst=7))
        rt.run(max_events=10_000)
        assert a.stats.messages_sent == 1
        assert b.stats.messages_sent == 0
