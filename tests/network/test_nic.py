"""Unit tests for the NIC server model."""

import pytest

from repro.errors import SimulationError
from repro.machine.costs import CostModel
from repro.network.message import NetMessage
from repro.network.nic import Nic
from repro.sim.engine import Engine


def make_pair(costs=None):
    engine = Engine()
    costs = costs or CostModel()
    src = Nic(engine=engine, costs=costs, node_id=0)
    dst = Nic(engine=engine, costs=costs, node_id=1)
    delivered = []
    dst.sink = lambda msg: delivered.append((engine.now, msg))
    return engine, costs, src, dst, delivered


def msg(size=100, mid=0):
    return NetMessage(
        kind="t", src_worker=0, dst_process=1, size_bytes=size, dst_worker=1
    )


class TestTransmission:
    def test_single_message_timing(self):
        engine, costs, src, dst, delivered = make_pair()
        m = msg(size=1000)
        engine.after(0.0, src.inject, m, dst, 500.0)
        engine.run()
        occupancy = costs.tx_occupancy_ns(1000)
        expected = occupancy + 500.0 + occupancy  # tx + wire + rx
        assert delivered[0][0] == pytest.approx(expected)

    def test_tx_serialization_queues_messages(self):
        engine, costs, src, dst, delivered = make_pair()
        for _ in range(3):
            engine.after(0.0, src.inject, msg(size=10_000), dst, 0.0)
        engine.run()
        occ = costs.tx_occupancy_ns(10_000)
        times = [t for t, _ in delivered]
        # Arrivals separated by one tx occupancy each (pipeline).
        assert times[1] - times[0] == pytest.approx(occ)
        assert times[2] - times[1] == pytest.approx(occ)
        assert src.stats.tx_queue_wait_ns > 0

    def test_rx_serialization(self):
        engine, costs, src1, dst, delivered = make_pair()
        src2 = Nic(engine=engine, costs=costs, node_id=2)
        engine.after(0.0, src1.inject, msg(size=10_000), dst, 0.0)
        engine.after(0.0, src2.inject, msg(size=10_000), dst, 0.0)
        engine.run()
        assert dst.stats.rx_queue_wait_ns > 0
        assert len(delivered) == 2

    def test_stats_counters(self):
        engine, costs, src, dst, delivered = make_pair()
        engine.after(0.0, src.inject, msg(size=256), dst, 100.0)
        engine.run()
        assert src.stats.tx_messages == 1
        assert src.stats.tx_bytes == 256
        assert dst.stats.rx_messages == 1
        assert dst.stats.rx_bytes == 256

    def test_missing_sink_raises(self):
        engine = Engine()
        nic = Nic(engine=engine, costs=CostModel(), node_id=0)
        engine.after(0.0, nic.receive, msg())
        with pytest.raises(SimulationError):
            engine.run()

    def test_backlog_properties(self):
        engine, costs, src, dst, _ = make_pair()
        engine.after(0.0, src.inject, msg(size=100_000), dst, 0.0)
        engine.after(0.0, src.inject, msg(size=100_000), dst, 0.0)

        def check():
            assert src.tx_backlog_ns > 0

        engine.after(1.0, check)
        engine.run()
        assert src.tx_backlog_ns == 0.0  # drained at the end


class TestAsymmetricRxCosts:
    def test_receive_uses_rx_occupancy(self):
        costs = CostModel().replace(rx_nic_msg_ns=5_000.0, rx_beta_ns_per_byte=1.0)
        engine, costs, src, dst, delivered = make_pair(costs)
        engine.after(0.0, src.inject, msg(size=1000), dst, 500.0)
        engine.run()
        expected = (
            costs.tx_occupancy_ns(1000) + 500.0 + costs.rx_occupancy_ns(1000)
        )
        assert delivered[0][0] == pytest.approx(expected)
        assert costs.rx_occupancy_ns(1000) != costs.tx_occupancy_ns(1000)

    def test_rx_defaults_mirror_tx(self):
        costs = CostModel()
        assert costs.rx_occupancy_ns(4096) == costs.tx_occupancy_ns(4096)


class TestBurstInjection:
    """Same-timestamp bursts: the virtual-clock FIFO must charge exact
    cumulative queue waits on both sides."""

    N = 5

    def test_tx_queue_wait_is_exact_for_same_time_burst(self):
        engine, costs, src, dst, delivered = make_pair()
        for _ in range(self.N):
            engine.after(0.0, src.inject, msg(size=10_000), dst, 0.0)
        engine.run()
        occ = costs.tx_occupancy_ns(10_000)
        # Message i waits i occupancies: 0 + 1 + ... + (N-1).
        expected = occ * self.N * (self.N - 1) / 2
        assert src.stats.tx_queue_wait_ns == pytest.approx(expected)
        assert len(delivered) == self.N

    def test_rx_queue_wait_is_exact_for_simultaneous_arrivals(self):
        # N sources inject at the same instant towards one destination:
        # tx sides are independent, so all copies hit rx simultaneously
        # and the rx server charges the same arithmetic-series wait.
        engine = Engine()
        costs = CostModel()
        dst = Nic(engine=engine, costs=costs, node_id=99)
        delivered = []
        dst.sink = lambda m: delivered.append(engine.now)
        for i in range(self.N):
            src = Nic(engine=engine, costs=costs, node_id=i)
            engine.after(0.0, src.inject, msg(size=10_000), dst, 0.0)
        engine.run()
        occ = costs.rx_occupancy_ns(10_000)
        expected = occ * self.N * (self.N - 1) / 2
        assert dst.stats.rx_queue_wait_ns == pytest.approx(expected)
        # Deliveries drain one rx occupancy apart.
        gaps = [b - a for a, b in zip(delivered, delivered[1:])]
        assert gaps == pytest.approx([occ] * (self.N - 1))

    def test_rx_backlog_during_burst(self):
        engine = Engine()
        costs = CostModel()
        dst = Nic(engine=engine, costs=costs, node_id=99)
        dst.sink = lambda m: None
        for i in range(3):
            src = Nic(engine=engine, costs=costs, node_id=i)
            engine.after(0.0, src.inject, msg(size=100_000), dst, 0.0)

        probed = []

        def probe():
            probed.append(dst.rx_backlog_ns)

        # Probe right after the burst lands at rx (tx occupancy later).
        engine.after(costs.tx_occupancy_ns(100_000) + 1.0, probe)
        engine.run()
        assert probed[0] > 0.0
        assert dst.rx_backlog_ns == 0.0  # drained at the end

    def test_queue_wait_zero_when_spaced_out(self):
        engine, costs, src, dst, _ = make_pair()
        occ = costs.tx_occupancy_ns(1000)
        for i in range(3):
            # Inject strictly after the previous message finished tx.
            engine.after(i * (occ + 10.0), src.inject, msg(size=1000), dst, 0.0)
        engine.run()
        assert src.stats.tx_queue_wait_ns == 0.0
        assert dst.stats.rx_queue_wait_ns == 0.0
