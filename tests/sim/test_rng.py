"""Unit tests for named RNG streams."""

import pytest

from repro.sim.rng import RngStreams


class TestReproducibility:
    def test_same_seed_same_stream(self):
        a = RngStreams(42).stream("worker/3")
        b = RngStreams(42).stream("worker/3")
        assert list(a.integers(0, 1000, 10)) == list(b.integers(0, 1000, 10))

    def test_different_seeds_differ(self):
        a = RngStreams(1).stream("x")
        b = RngStreams(2).stream("x")
        assert list(a.integers(0, 10**9, 8)) != list(b.integers(0, 10**9, 8))

    def test_different_names_differ(self):
        streams = RngStreams(0)
        a = streams.stream("worker/0")
        b = streams.stream("worker/1")
        assert list(a.integers(0, 10**9, 8)) != list(b.integers(0, 10**9, 8))

    def test_creation_order_irrelevant(self):
        s1 = RngStreams(7)
        _ = s1.stream("b")
        a1 = s1.stream("a")
        s2 = RngStreams(7)
        a2 = s2.stream("a")
        assert a1.random() == a2.random()


class TestCaching:
    def test_stream_is_cached(self):
        streams = RngStreams(0)
        assert streams.stream("x") is streams.stream("x")

    def test_fresh_resets_state(self):
        streams = RngStreams(0)
        first = streams.stream("x").random()
        streams.stream("x").random()
        assert streams.fresh("x").random() == first


class TestSpawn:
    def test_spawn_children_independent(self):
        children = RngStreams(0).spawn("pool", 4)
        assert len(children) == 4
        draws = [c.random() for c in children]
        assert len(set(draws)) == 4

    def test_spawn_reproducible(self):
        a = [g.random() for g in RngStreams(5).spawn("p", 3)]
        b = [g.random() for g in RngStreams(5).spawn("p", 3)]
        assert a == b


class TestValidation:
    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            RngStreams(-1)
