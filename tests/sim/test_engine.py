"""Unit tests for the DES engine."""

import pytest

from repro.errors import SchedulingError, SimulationError
from repro.sim.engine import Engine
from repro.sim.trace import Tracer


class TestScheduling:
    def test_after_advances_clock(self):
        eng = Engine()
        fired = []
        eng.after(100.0, fired.append, 1)
        stats = eng.run()
        assert fired == [1]
        assert eng.now == 100.0
        assert stats.events_fired == 1
        assert stats.end_time == 100.0

    def test_at_absolute_time(self):
        eng = Engine()
        seen = []
        eng.at(50.0, lambda: seen.append(eng.now))
        eng.run()
        assert seen == [50.0]

    def test_past_scheduling_rejected(self):
        eng = Engine()
        eng.after(10.0, lambda: None)
        eng.run()
        with pytest.raises(SchedulingError):
            eng.at(5.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SchedulingError):
            Engine().after(-1.0, lambda: None)

    def test_fifo_among_simultaneous_events(self):
        eng = Engine()
        order = []
        for i in range(5):
            eng.at(1.0, order.append, i)
        eng.run()
        assert order == [0, 1, 2, 3, 4]

    def test_events_fire_in_time_order(self):
        eng = Engine()
        order = []
        eng.at(30.0, order.append, "c")
        eng.at(10.0, order.append, "a")
        eng.at(20.0, order.append, "b")
        eng.run()
        assert order == ["a", "b", "c"]

    def test_handler_can_schedule_more(self):
        eng = Engine()
        seen = []

        def chain(n):
            seen.append((eng.now, n))
            if n > 0:
                eng.after(10.0, chain, n - 1)

        eng.after(0.0, chain, 3)
        eng.run()
        assert seen == [(0.0, 3), (10.0, 2), (20.0, 1), (30.0, 0)]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        eng = Engine()
        fired = []
        handle = eng.after(10.0, fired.append, "x")
        eng.cancel(handle)
        eng.run()
        assert fired == []
        assert eng.pending == 0

    def test_double_cancel_is_safe(self):
        eng = Engine()
        handle = eng.after(10.0, lambda: None)
        eng.cancel(handle)
        eng.cancel(handle)
        assert eng.pending == 0


class TestRunControl:
    def test_until_horizon_preserves_future_events(self):
        eng = Engine()
        fired = []
        eng.after(10.0, fired.append, "early")
        eng.after(100.0, fired.append, "late")
        stats = eng.run(until=50.0)
        assert fired == ["early"]
        assert stats.horizon_reached
        assert eng.now == 50.0
        assert eng.pending == 1
        eng.run()
        assert fired == ["early", "late"]

    def test_stop_from_handler(self):
        eng = Engine()
        fired = []
        eng.after(1.0, lambda: (fired.append(1), eng.stop()))
        eng.after(2.0, fired.append, 2)
        stats = eng.run()
        assert stats.stopped_early
        assert fired == [1]
        assert eng.pending == 1

    def test_max_events_guard(self):
        eng = Engine()

        def loop():
            eng.after(1.0, loop)

        eng.after(0.0, loop)
        with pytest.raises(SimulationError, match="max_events"):
            eng.run(max_events=100)

    def test_run_not_reentrant(self):
        eng = Engine()
        err = {}

        def reenter():
            try:
                eng.run()
            except SimulationError as exc:
                err["e"] = exc

        eng.after(0.0, reenter)
        eng.run()
        assert "e" in err

    def test_reset(self):
        eng = Engine()
        eng.after(5.0, lambda: None)
        eng.run()
        eng.reset()
        assert eng.now == 0.0
        assert eng.pending == 0

    def test_empty_run(self):
        stats = Engine().run()
        assert stats.events_fired == 0
        assert stats.end_time == 0.0


class TestDeterminism:
    def test_identical_runs_identical_traces(self):
        def build():
            tracer = Tracer(["event"])
            eng = Engine(tracer=tracer)
            for i in range(20):
                eng.at(float(i % 7), lambda: None)
            eng.run()
            return [f for _, f in tracer.records("event")]

        assert build() == build()


class TestRunStats:
    def test_merge(self):
        from repro.sim.engine import RunStats

        a = RunStats(events_fired=3, end_time=10.0)
        b = RunStats(events_fired=2, end_time=5.0, stopped_early=True)
        a.merge(b)
        assert a.events_fired == 5
        assert a.end_time == 10.0
        assert a.stopped_early
