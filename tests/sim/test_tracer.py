"""Tests for the bounded in-memory Tracer."""

import pytest

from repro.sim.trace import Tracer


class TestCapacity:
    def test_evicts_oldest_first(self):
        tracer = Tracer(capacity=3)
        for i in range(5):
            tracer.record("cat", i=i)
        kept = [f["i"] for _, f in tracer.records("cat")]
        assert kept == [2, 3, 4]

    def test_dropped_counts_evictions(self):
        tracer = Tracer(capacity=3)
        for i in range(5):
            tracer.record("cat", i=i)
        assert tracer.dropped == 2
        assert len(tracer) == 3

    def test_no_drops_under_capacity(self):
        tracer = Tracer(capacity=10)
        for i in range(5):
            tracer.record("cat", i=i)
        assert tracer.dropped == 0

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)


class TestFiltering:
    def test_wants_respects_categories(self):
        tracer = Tracer(categories=["task", "msg"])
        assert tracer.wants("task")
        assert tracer.wants("msg")
        assert not tracer.wants("event")

    def test_wants_everything_by_default(self):
        tracer = Tracer()
        assert tracer.wants("anything")

    def test_unwanted_records_not_captured(self):
        tracer = Tracer(categories=["task"])
        tracer.record("msg", x=1)
        tracer.record("task", x=2)
        assert len(tracer) == 1
        assert tracer.count("msg") == 0
        assert tracer.count("task") == 1

    def test_records_filter_by_category(self):
        tracer = Tracer()
        tracer.record("a", i=0)
        tracer.record("b", i=1)
        tracer.record("a", i=2)
        assert [f["i"] for _, f in tracer.records("a")] == [0, 2]
        assert len(tracer.records()) == 3


class TestClear:
    def test_clear_resets_records_and_dropped(self):
        tracer = Tracer(capacity=2)
        for i in range(4):
            tracer.record("cat", i=i)
        assert tracer.dropped == 2
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.dropped == 0
        assert tracer.records() == []

    def test_usable_after_clear(self):
        tracer = Tracer(capacity=2)
        tracer.record("cat", i=0)
        tracer.clear()
        tracer.record("cat", i=1)
        assert [f["i"] for _, f in tracer.records("cat")] == [1]
        assert tracer.dropped == 0
