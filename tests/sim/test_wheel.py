"""Unit tests for the hierarchical timer wheel and its engine merge."""

import pytest

from repro.errors import SchedulingError
from repro.sim.engine import Engine
from repro.sim.event import EV_SEQ, EV_TIME, Event
from repro.sim.wheel import TimerWheel


def ev(time, seq):
    return Event(time, seq, lambda: None, ())


def drain(wheel):
    out = []
    while wheel.peek() is not None:
        e = wheel.pop()
        out.append((e[EV_TIME], e[EV_SEQ]))
    return out


class TestWheelStructure:
    def test_granularity_rounds_up_to_power_of_two(self):
        assert TimerWheel(granularity=1000.0).granularity == 1024.0
        assert TimerWheel(granularity=1024.0).granularity == 1024.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TimerWheel(granularity=0.0)
        with pytest.raises(ValueError):
            TimerWheel(slots=1)

    def test_cross_level_and_overflow_ordering(self):
        # Tiny wheel: level-0 slot 2 ns, horizon 2*4=8 ns (level 0),
        # 2*4*4=32 ns (level 1); anything >= 32 ns lands in overflow.
        w = TimerWheel(granularity=2.0, slots=4, levels=2)
        times = [0.0, 1.0, 3.0, 7.0, 9.0, 15.0, 31.0, 40.0, 1000.0, 5.0]
        for i, t in enumerate(times):
            w.push(ev(t, i))
        assert w.live_count == len(times)
        expected = sorted((t, i) for i, t in enumerate(times))
        assert drain(w) == expected

    def test_ties_fifo_by_seq(self):
        w = TimerWheel(granularity=2.0, slots=4, levels=2)
        for seq in (0, 1, 2):
            w.push(ev(6.0, seq))
        assert drain(w) == [(6.0, 0), (6.0, 1), (6.0, 2)]

    def test_arm_inside_materialized_window(self):
        w = TimerWheel(granularity=2.0, slots=4, levels=2)
        w.push(ev(20.0, 0))
        assert w.peek()[EV_SEQ] == 0  # cursor advanced toward t=20
        # Late arm earlier than the cursor's bucket must still win.
        w.push(ev(19.0, 1))
        assert drain(w) == [(19.0, 1), (20.0, 0)]

    def test_cascade_beats_later_ring0_bucket(self):
        """Regression: a pending level-1 bucket whose span the cursor
        has entered must cascade before any *later* level-0 bucket
        materializes. The old advance only cascaded when ring 0 was
        completely empty, so the sequence below fired t=12 before t=9
        (observed as 'time went backwards' in long flush-timer runs)."""
        w = TimerWheel(granularity=2.0, slots=4, levels=3)
        w.push(ev(0.0, 0))
        w.push(ev(9.0, 1))  # level-1 bucket spanning [8, 16)
        assert w.peek()[EV_SEQ] == 0
        w.pop()
        w.push(ev(6.0, 2))  # ring 0, ahead of the cursor
        assert w.peek()[EV_TIME] == 6.0  # cursor advances to [6, 8)
        w.pop()
        # Ring 0 can now hold times in [8, 14) — *inside and beyond*
        # the still-pending level-1 bucket.
        w.push(ev(12.0, 3))
        assert drain(w) == [(9.0, 1), (12.0, 3)]

    def test_equal_start_prefers_higher_level(self):
        """When a level-1 bucket and a level-0 bucket start together,
        the level-1 bucket must cascade first: its span encloses the
        level-0 slot, so it can hold strictly earlier events."""
        w = TimerWheel(granularity=2.0, slots=4, levels=3)
        w.push(ev(0.0, 0))
        w.push(ev(8.0, 1))  # level-1 bucket [8, 16)
        assert w.peek()[EV_SEQ] == 0
        w.pop()
        w.push(ev(6.0, 2))
        assert w.peek()[EV_TIME] == 6.0
        w.pop()
        w.push(ev(8.0, 3))  # ring-0 bucket also starting at 8
        assert drain(w) == [(8.0, 1), (8.0, 3)]  # seq order preserved

    def test_peek_empty_returns_none(self):
        w = TimerWheel()
        assert w.peek() is None
        assert w.peek_time() is None


class TestWheelCancellation:
    def test_cancel_is_lazy_and_exact(self):
        w = TimerWheel(granularity=2.0, slots=4, levels=2)
        a, b = ev(4.0, 0), ev(9.0, 1)
        w.push(a)
        w.push(b)
        assert w.cancel(a)
        assert not w.cancel(a)  # double cancel reports False
        assert w.live_count == 1
        assert w.raw_size == 2  # corpse still inside
        assert w.peek_time() == 9.0

    def test_idle_sweep_clears_debris(self):
        w = TimerWheel(granularity=2.0, slots=4, levels=2)
        events = [ev(float(10 + i), i) for i in range(6)]
        for e in events:
            w.push(e)
        for e in events:
            w.cancel(e)
        assert w.live_count == 0
        # Rearming while idle snaps the cursor and sweeps the corpses.
        w.push(ev(3.0, 99))
        assert w.raw_size == 1
        assert drain(w) == [(3.0, 99)]


class TestEngineWheelMerge:
    def test_merge_preserves_time_seq_order_across_sources(self):
        eng = Engine()
        order = []
        eng.at(10.0, order.append, "h1")       # seq 0
        eng.timer_at(10.0, order.append, "w1")  # seq 1: tie broken by seq
        eng.at(10.0, order.append, "h2")       # seq 2
        eng.timer_at(5.0, order.append, "w0")   # seq 3: earliest time
        eng.run()
        assert order == ["w0", "h1", "w1", "h2"]

    def test_timer_validation_matches_at(self):
        eng = Engine()
        eng.at(10.0, lambda: None)
        eng.run()
        with pytest.raises(SchedulingError):
            eng.timer_at(5.0, lambda: None)
        with pytest.raises(SchedulingError):
            eng.timer_after(-1.0, lambda: None)

    def test_timer_cancel_via_engine(self):
        eng = Engine()
        fired = []
        h = eng.timer_after(10.0, fired.append, "x")
        eng.timer_after(20.0, fired.append, "y")
        eng.cancel(h)
        eng.cancel(h)  # double cancel safe
        eng.run()
        assert fired == ["y"]
        assert eng.pending == 0

    def test_wheel_event_deferred_past_horizon_keeps_handle(self):
        eng = Engine()
        fired = []
        h = eng.timer_at(100.0, fired.append, "x")
        stats = eng.run(until=50.0)
        assert stats.horizon_reached
        assert eng.pending == 1
        eng.cancel(h)
        eng.run()
        assert fired == []

    def test_pending_and_peek_time_span_both_sources(self):
        eng = Engine()
        eng.at(30.0, lambda: None)
        eng.timer_at(20.0, lambda: None)
        assert eng.pending == 2
        assert eng.peek_time() == 20.0


class TestEventPool:
    def test_internal_events_are_pooled_after_firing(self):
        eng = Engine()
        eng.call_after(1.0, lambda _: None, (0,))
        eng.run()
        assert len(eng._pool) == 1

    def test_handle_bearing_events_are_never_pooled(self):
        eng = Engine()
        h = eng.at(1.0, lambda: None)
        eng.timer_at(2.0, lambda: None)
        eng.run()
        assert h not in eng._pool
        assert eng._pool == []

    def test_recycled_event_fires_with_new_payload(self):
        eng = Engine()
        order = []
        eng.call_after(1.0, order.append, ("x",))
        eng.run()
        recycled = eng._pool[-1]
        eng.call_after(1.0, order.append, ("y",))
        assert eng._pool == []  # the pooled list was taken back out
        assert recycled[EV_TIME] == 2.0  # now(=1.0) + 1.0 delay
        eng.run()
        assert order == ["x", "y"]

    def test_pool_reuse_cannot_resurrect_cancelled_events(self):
        """A cancelled handle must stay dead through pool churn: pooled
        lists are only ever the engine's own no-handle events, so a
        recycled list can never be one a caller still points at."""
        eng = Engine()
        fired = []
        h = eng.at(5.0, fired.append, "cancelled")
        eng.cancel(h)
        # Churn the pool across the same timestamps.
        for i in range(10):
            eng.call_after(float(i), fired.append, (i,))
        eng.run()
        assert "cancelled" not in fired
        assert fired == list(range(10))
        # The dead handle's list was dropped, not pooled.
        assert h not in eng._pool
        # Stale cancel of the long-fired handle is still a safe noop.
        eng.cancel(h)
        eng.call_after(1.0, fired.append, ("tail",))
        eng.run()
        assert fired[-1] == "tail"
