"""Unit tests for time units/formatting and the tracer."""

import pytest

from repro.sim.simtime import MS, NS, SEC, US, fmt_time, to_ms, to_seconds, to_us
from repro.sim.trace import Tracer


class TestUnits:
    def test_constants(self):
        assert US == 1000 * NS
        assert MS == 1000 * US
        assert SEC == 1000 * MS

    def test_conversions(self):
        assert to_us(1500.0) == 1.5
        assert to_ms(2_500_000.0) == 2.5
        assert to_seconds(SEC) == 1.0


class TestFmtTime:
    @pytest.mark.parametrize(
        "ns,expected",
        [
            (0.0, "0ns"),
            (1.0, "1.000ns"),
            (999.0, "999.000ns"),
            (1500.0, "1.500us"),
            (2_000_000.0, "2.000ms"),
            (3 * SEC, "3.000s"),
            (-1500.0, "-1.500us"),
        ],
    )
    def test_formatting(self, ns, expected):
        assert fmt_time(ns) == expected


class TestTracer:
    def test_records_enabled_categories_only(self):
        t = Tracer(categories=["send"])
        t.record("send", x=1)
        t.record("recv", x=2)
        assert t.count("send") == 1
        assert t.count("recv") == 0

    def test_none_captures_everything(self):
        t = Tracer()
        t.record("a")
        t.record("b")
        assert len(t) == 2

    def test_capacity_evicts_oldest(self):
        t = Tracer(capacity=3)
        for i in range(5):
            t.record("x", i=i)
        assert len(t) == 3
        assert t.dropped == 2
        values = [f["i"] for _, f in t.records("x")]
        assert values == [2, 3, 4]

    def test_clear(self):
        t = Tracer()
        t.record("x")
        t.clear()
        assert len(t) == 0
        assert t.dropped == 0

    def test_records_filter(self):
        t = Tracer()
        t.record("a", v=1)
        t.record("b", v=2)
        assert t.records("a") == [("a", {"v": 1})]

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_wants(self):
        t = Tracer(categories=["x"])
        assert t.wants("x")
        assert not t.wants("y")
