"""Edge cases of the engine's run-control semantics."""

import pytest

from repro.sim.engine import Engine


class TestHorizonBoundaries:
    def test_event_exactly_at_horizon_deferred(self):
        """An event AT the horizon belongs to the next window.

        ``run(until=h)`` fires strictly-less-than ``h`` — the window
        semantics the partitioned engine builds on: successive horizons
        ``h1 < h2 < ...`` fire every event exactly once, in the window
        ``[h_{k-1}, h_k)`` containing it. (Regression: the general and
        sampled loops used to disagree on this boundary.)
        """
        eng = Engine()
        fired = []
        eng.at(50.0, fired.append, "x")
        stats = eng.run(until=50.0)
        assert fired == []
        assert stats.horizon_reached
        assert eng.now == 50.0
        eng.run(until=50.0 + 1e-9)
        assert fired == ["x"]

    def test_event_just_after_horizon_deferred(self):
        eng = Engine()
        fired = []
        eng.at(50.0 + 1e-9, fired.append, "x")
        stats = eng.run(until=50.0)
        assert fired == []
        assert stats.horizon_reached
        assert eng.pending == 1

    def test_boundary_agrees_between_general_and_window_loops(self):
        """The lean window loop and the general (max_events) loop fire
        the same strictly-less-than boundary set."""
        for kwargs in ({}, {"max_events": 100}):
            eng = Engine()
            fired = []
            for t in (10.0, 50.0, 50.0, 90.0):
                eng.at(t, fired.append, t)
            eng.run(until=50.0, **kwargs)
            assert fired == [10.0]
            eng.run(until=90.0, **kwargs)
            assert fired == [10.0, 50.0, 50.0]
            eng.run(**kwargs)
            assert fired == [10.0, 50.0, 50.0, 90.0]

    def test_wheel_event_at_horizon_deferred(self):
        eng = Engine()
        fired = []
        eng.timer_at(50.0, fired.append, "x")
        stats = eng.run(until=50.0)
        assert fired == []
        assert stats.horizon_reached
        assert eng.pending == 1
        eng.run()
        assert fired == ["x"]

    def test_last_event_time_not_advanced_to_horizon(self):
        eng = Engine()
        eng.at(10.0, lambda: None)
        eng.at(200.0, lambda: None)
        stats = eng.run(until=100.0)
        assert stats.last_event_time == 10.0
        assert stats.end_time == 100.0

    def test_successive_horizons(self):
        eng = Engine()
        fired = []
        for t in (10.0, 20.0, 30.0):
            eng.at(t, fired.append, t)
        eng.run(until=15.0)
        assert fired == [10.0]
        eng.run(until=25.0)
        assert fired == [10.0, 20.0]
        eng.run()
        assert fired == [10.0, 20.0, 30.0]

    def test_horizon_with_empty_queue(self):
        eng = Engine()
        stats = eng.run(until=100.0)
        assert stats.events_fired == 0
        # With nothing to do the clock does not jump to the horizon.
        assert eng.now == 0.0

    def test_clock_does_not_retreat_after_horizon(self):
        eng = Engine()
        eng.at(200.0, lambda: None)
        eng.run(until=100.0)
        assert eng.now == 100.0
        eng.run()
        assert eng.now == 200.0


class TestRequeuedEventIdentity:
    def test_deferred_event_not_duplicated(self):
        eng = Engine()
        count = [0]
        eng.at(100.0, lambda: count.__setitem__(0, count[0] + 1))
        eng.run(until=50.0)
        eng.run(until=75.0)
        eng.run()
        assert count[0] == 1

    def test_cancel_after_defer_still_works(self):
        """Handles survive horizon deferral: run() never pops an event
        beyond the horizon, so the handle still refers to the queued
        event and cancelling it really cancels it."""
        eng = Engine()
        fired = []
        handle = eng.at(100.0, fired.append, "x")
        eng.at(200.0, fired.append, "y")
        eng.run(until=50.0)
        eng.cancel(handle)
        assert eng.pending == 1
        eng.run()
        assert fired == ["y"]


class TestZeroDurationChains:
    def test_many_zero_delay_events_same_time(self):
        eng = Engine()
        order = []

        def chain(n):
            order.append(n)
            if n:
                eng.after(0.0, chain, n - 1)

        eng.after(0.0, chain, 100)
        eng.run(max_events=500)
        assert order == list(range(100, -1, -1))
        assert eng.now == 0.0
