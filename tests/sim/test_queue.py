"""Unit tests for the event queue (ordering, lazy deletion, compaction)."""

import pytest

from repro.sim.event import EV_SEQ, EV_STATE, EV_TIME, Event, describe
from repro.sim.queue import EventQueue


def ev(time, seq):
    return Event(time, seq, lambda: None, ())


class TestOrdering:
    def test_pops_in_time_order(self):
        q = EventQueue()
        for t in (5.0, 1.0, 3.0, 2.0, 4.0):
            q.push(ev(t, int(t)))
        times = [q.pop()[EV_TIME] for _ in range(5)]
        assert times == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_ties_broken_by_seq_fifo(self):
        q = EventQueue()
        for seq in (0, 1, 2):
            q.push(ev(7.0, seq))
        seqs = [q.pop()[EV_SEQ] for _ in range(3)]
        assert seqs == [0, 1, 2]

    def test_pop_empty_returns_none(self):
        assert EventQueue().pop() is None

    def test_peek_returns_earliest_time_without_removing(self):
        q = EventQueue()
        q.push(ev(9.0, 0))
        q.push(ev(2.0, 1))
        assert q.peek_time() == 2.0
        assert len(q) == 2

    def test_peek_empty_returns_none(self):
        assert EventQueue().peek_time() is None


class TestCancellation:
    def test_cancelled_event_is_skipped(self):
        q = EventQueue()
        first = ev(1.0, 0)
        q.push(first)
        q.push(ev(2.0, 1))
        assert q.cancel(first)
        popped = q.pop()
        assert popped[EV_TIME] == 2.0

    def test_live_count_tracks_cancellation(self):
        q = EventQueue()
        a, b = ev(1.0, 0), ev(2.0, 1)
        q.push(a)
        q.push(b)
        assert q.live_count == 2
        q.cancel(a)
        assert q.live_count == 1
        assert bool(q)

    def test_double_cancel_reports_false(self):
        q = EventQueue()
        a = ev(1.0, 0)
        q.push(a)
        assert q.cancel(a)
        assert not q.cancel(a)
        assert q.live_count == 0

    def test_peek_discards_dead_heads(self):
        q = EventQueue()
        a = ev(1.0, 0)
        q.push(a)
        q.push(ev(5.0, 1))
        q.cancel(a)
        assert q.peek_time() == 5.0

    def test_compact_drops_corpses(self):
        q = EventQueue()
        events = [ev(float(i), i) for i in range(10)]
        for e in events:
            q.push(e)
        for e in events[:5]:
            q.cancel(e)
        assert q.raw_size == 10
        q.compact()
        assert q.raw_size == 5
        assert q.live_count == 5
        assert q.pop()[EV_TIME] == 5.0

    def test_all_cancelled_means_empty(self):
        q = EventQueue()
        a = ev(1.0, 0)
        q.push(a)
        q.cancel(a)
        assert not q
        assert q.pop() is None


class TestAutoCompaction:
    def test_triggers_once_corpses_reach_half(self):
        q = EventQueue(compact_min=16)
        events = [ev(float(i), i) for i in range(32)]
        for e in events:
            q.push(e)
        # Cancel 15: below compact_min, no rebuild yet.
        for e in events[:15]:
            q.cancel(e)
        assert q.raw_size == 32
        # The 16th cancel reaches compact_min AND half the heap.
        q.cancel(events[15])
        assert q.raw_size == 16
        assert q.live_count == 16
        assert q.pop()[EV_TIME] == 16.0

    def test_respects_compact_min_floor(self):
        q = EventQueue(compact_min=256)
        events = [ev(float(i), i) for i in range(10)]
        for e in events:
            q.push(e)
        for e in events:
            q.cancel(e)
        # All corpses, but far below the floor: no rebuild.
        assert q.raw_size == 10
        assert q.live_count == 0

    def test_order_preserved_across_auto_compaction(self):
        q = EventQueue(compact_min=8)
        events = [ev(float(i % 5), i) for i in range(64)]
        for e in events:
            q.push(e)
        cancelled = set(range(0, 64, 2))
        for i in cancelled:
            q.cancel(events[i])
        expected = sorted(
            (e[EV_TIME], e[EV_SEQ]) for i, e in enumerate(events)
            if i not in cancelled
        )
        popped = []
        while q:
            e = q.pop()
            popped.append((e[EV_TIME], e[EV_SEQ]))
        assert popped == expected


class TestEventRepresentation:
    def test_lt_uses_time_then_seq(self):
        assert ev(1.0, 5) < ev(2.0, 0)
        assert ev(1.0, 0) < ev(1.0, 1)
        assert not (ev(2.0, 0) < ev(1.0, 9))

    def test_cancel_clears_state(self):
        q = EventQueue()
        e = ev(1.0, 0)
        q.push(e)
        assert e[EV_STATE]
        q.cancel(e)
        assert not e[EV_STATE]

    def test_describe(self):
        assert "seq=0" in describe(ev(1.0, 0))
