"""Unit tests for the event queue (ordering, lazy deletion)."""

import pytest

from repro.sim.event import Event
from repro.sim.queue import EventQueue


def ev(time, seq):
    return Event(time, seq, lambda: None, ())


class TestOrdering:
    def test_pops_in_time_order(self):
        q = EventQueue()
        for t in (5.0, 1.0, 3.0, 2.0, 4.0):
            q.push(ev(t, int(t)))
        times = [q.pop().time for _ in range(5)]
        assert times == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_ties_broken_by_seq_fifo(self):
        q = EventQueue()
        for seq in (0, 1, 2):
            q.push(ev(7.0, seq))
        seqs = [q.pop().seq for _ in range(3)]
        assert seqs == [0, 1, 2]

    def test_pop_empty_returns_none(self):
        assert EventQueue().pop() is None

    def test_peek_returns_earliest_time_without_removing(self):
        q = EventQueue()
        q.push(ev(9.0, 0))
        q.push(ev(2.0, 1))
        assert q.peek_time() == 2.0
        assert len(q) == 2

    def test_peek_empty_returns_none(self):
        assert EventQueue().peek_time() is None


class TestCancellation:
    def test_cancelled_event_is_skipped(self):
        q = EventQueue()
        first = ev(1.0, 0)
        q.push(first)
        q.push(ev(2.0, 1))
        first.cancel()
        q.note_cancelled()
        popped = q.pop()
        assert popped.time == 2.0

    def test_live_count_tracks_cancellation(self):
        q = EventQueue()
        a, b = ev(1.0, 0), ev(2.0, 1)
        q.push(a)
        q.push(b)
        assert q.live_count == 2
        a.cancel()
        q.note_cancelled()
        assert q.live_count == 1
        assert bool(q)

    def test_peek_discards_dead_heads(self):
        q = EventQueue()
        a = ev(1.0, 0)
        q.push(a)
        q.push(ev(5.0, 1))
        a.cancel()
        q.note_cancelled()
        assert q.peek_time() == 5.0

    def test_compact_drops_corpses(self):
        q = EventQueue()
        events = [ev(float(i), i) for i in range(10)]
        for e in events:
            q.push(e)
        for e in events[:5]:
            e.cancel()
            q.note_cancelled()
        assert q.raw_size == 10
        q.compact()
        assert q.raw_size == 5
        assert q.live_count == 5
        assert q.pop().time == 5.0

    def test_all_cancelled_means_empty(self):
        q = EventQueue()
        a = ev(1.0, 0)
        q.push(a)
        a.cancel()
        q.note_cancelled()
        assert not q
        assert q.pop() is None


class TestEventRepr:
    def test_lt_uses_time_then_seq(self):
        assert ev(1.0, 5) < ev(2.0, 0)
        assert ev(1.0, 0) < ev(1.0, 1)
        assert not (ev(2.0, 0) < ev(1.0, 9))

    def test_cancel_sets_flag(self):
        e = ev(1.0, 0)
        assert e.alive
        e.cancel()
        assert not e.alive
