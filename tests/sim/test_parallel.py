"""Conservative-PDES partitioned execution (repro.sim.parallel).

The load-bearing contract: a run under ``PdesSession`` produces results
— every app-visible field, every component counter, the full ``(time,
seq)`` fire sequence — identical to the sequential engine, for any
partition count, while actually executing the partitions in forked
worker processes. Plus the safety rails: fallback reasons, session
nesting, cross-partition post detection, and provenance accounting.
"""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.machine import MachineConfig
from repro.machine.costs import CostModel
from repro.runtime.quiescence import QDCounter
from repro.runtime.system import RuntimeSystem
from repro.sim.parallel import (
    PdesConfig,
    PdesSession,
    _partition_nodes,
    active_pdes_session,
)
from repro.tram import TramConfig, make_scheme

MACHINE = MachineConfig(nodes=4, processes_per_node=2, workers_per_process=2)


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _run_random_traffic(machine, scheme, *, seed=0, items=40, fire_log=False,
                        idle_flush=True, g=8, max_events=None):
    """One deterministic random-destination insert workload; returns a
    dict of everything comparable plus the runtime."""
    rt = RuntimeSystem(machine, seed=seed)
    if fire_log and rt.engine.fire_log is None:
        rt.engine.fire_log = []
    W = machine.total_workers
    qd = rt.pdes_share(QDCounter())
    received = rt.pdes_share(np.zeros(W, dtype=np.int64))

    def deliver(ctx, wid, count, src_ids, src_counts):
        received[wid] += count
        qd.consume(count)

    tram = make_scheme(
        scheme, rt,
        TramConfig(buffer_items=g, item_bytes=8, idle_flush=idle_flush),
        deliver_bulk=deliver,
    )

    def driver(ctx):
        wid = ctx.worker.wid
        rng = rt.rng.stream(f"traffic/{wid}")
        counts = np.bincount(rng.integers(0, W, items), minlength=W)
        qd.produce(items)
        tram.insert_bulk(ctx, counts)
        if not idle_flush:
            tram.flush_when_done(ctx)

    for wid in range(W):
        rt.post(wid, driver)
    stats = rt.run(max_events=max_events)
    qd.require_balanced()
    return {
        "end_time": stats.end_time,
        "events": stats.events_fired,
        "received": received.copy(),
        "messages_sent": tram.stats.messages_sent,
        "bytes_sent": tram.stats.bytes_sent,
        "latency_mean": tram.stats.latency.mean,
        "latency_count": tram.stats.latency.count,
        "fire_log": list(rt.engine.fire_log or []),
        "rt": rt,
    }


def _compare(seq, par):
    for key in ("end_time", "events", "messages_sent", "bytes_sent",
                "latency_mean", "latency_count"):
        assert seq[key] == par[key], (
            f"{key}: sequential={seq[key]!r} partitioned={par[key]!r}"
        )
    assert np.array_equal(seq["received"], par["received"])


# ----------------------------------------------------------------------
# Partition math and config validation
# ----------------------------------------------------------------------
class TestPartitioning:
    def test_partition_nodes_cover_exactly(self):
        for n_nodes in (2, 3, 4, 7, 16):
            for n_parts in (2, 3, 4):
                ranges = _partition_nodes(n_nodes, n_parts)
                assert len(ranges) == n_parts
                flat = [n for r in ranges for n in r]
                assert flat == list(range(n_nodes))

    def test_partition_nodes_balanced(self):
        for n_nodes, n_parts in ((16, 4), (7, 3), (5, 2)):
            sizes = [len(r) for r in _partition_nodes(n_nodes, n_parts)]
            assert max(sizes) - min(sizes) <= 1

    def test_config_rejects_nonpositive_partitions(self):
        with pytest.raises(ConfigError):
            PdesConfig(partitions=0)

    def test_pdes_share_rejects_unknown_rule(self):
        rt = RuntimeSystem(MACHINE, seed=0)
        with pytest.raises(ConfigError):
            rt.pdes_share(QDCounter(), merge="average")


# ----------------------------------------------------------------------
# Session semantics
# ----------------------------------------------------------------------
class TestSession:
    def test_sessions_nest_innermost_wins(self):
        assert active_pdes_session() is None
        with PdesSession(PdesConfig(partitions=2)) as outer:
            assert active_pdes_session() is outer
            with PdesSession(PdesConfig(partitions=4)) as inner:
                assert active_pdes_session() is inner
                rt = RuntimeSystem(MACHINE, seed=0)
                assert rt.pdes.partitions == 4
            assert active_pdes_session() is outer
        assert active_pdes_session() is None

    def test_runtime_outside_session_has_no_config(self):
        rt = RuntimeSystem(MACHINE, seed=0)
        assert rt.pdes is None
        assert rt.pdes_info is None

    def test_provenance_counts_runs(self):
        with PdesSession(PdesConfig(partitions=2)) as sess:
            _run_random_traffic(MACHINE, "pp", seed=1)
            # Single-node machine: guaranteed fallback.
            single = MachineConfig(
                nodes=1, processes_per_node=2, workers_per_process=2
            )
            _run_random_traffic(single, "pp", seed=1)
        payload = sess.provenance_payload()
        assert payload["sim_parallel"] == 2
        assert payload["runs_partitioned"] == 1
        assert payload["runs_sequential"] == 1
        assert payload["fallback_reasons"] == {"single simulated node": 1}


# ----------------------------------------------------------------------
# Fallback gating
# ----------------------------------------------------------------------
class TestFallback:
    def _info_for(self, **rt_kwargs):
        rt = RuntimeSystem(MACHINE, seed=0, **rt_kwargs)
        rt.pdes_ready()
        rt.post(0, lambda ctx: None)
        rt.run()
        return rt.pdes_info

    def test_bounded_run_falls_back(self):
        with PdesSession(PdesConfig(partitions=2)):
            rt = RuntimeSystem(MACHINE, seed=0)
            rt.pdes_ready()
            rt.post(0, lambda ctx: None)
            rt.run(max_events=10)
            assert rt.pdes_info.mode == "sequential"
            assert "bounded" in rt.pdes_info.fallback

    def test_unregistered_app_falls_back(self):
        with PdesSession(PdesConfig(partitions=2)):
            rt = RuntimeSystem(MACHINE, seed=0)
            rt.post(0, lambda ctx: None)
            rt.run()
            assert rt.pdes_info.mode == "sequential"
            assert "register" in rt.pdes_info.fallback

    def test_faults_fall_back(self):
        from repro.faults import FaultPlan

        with PdesSession(PdesConfig(partitions=2)):
            info = self._info_for(faults=FaultPlan(drop=0.01))
            assert info.mode == "sequential"
            assert info.fallback == "fault fabric active"

    def test_timeline_falls_back(self):
        from repro.obs import ObsConfig, TimelineConfig

        with PdesSession(PdesConfig(partitions=2)):
            info = self._info_for(obs=ObsConfig(timeline=TimelineConfig()))
            assert info.mode == "sequential"
            assert info.fallback == "timeline recorder active"

    def test_zero_lookahead_falls_back(self):
        costs = CostModel(alpha_inter_ns=0.0)
        with PdesSession(PdesConfig(partitions=2)):
            rt = RuntimeSystem(MACHINE, costs, seed=0)
            rt.pdes_ready()
            rt.post(0, lambda ctx: None)
            rt.run()
            assert rt.pdes_info.mode == "sequential"
            assert "lookahead" in rt.pdes_info.fallback

    def test_fallback_still_produces_correct_results(self):
        seq = _run_random_traffic(MACHINE, "ww", seed=5)
        # An explicit event budget forces the sequential fallback inside
        # the session; generous enough that the workload still completes.
        with PdesSession(PdesConfig(partitions=2)) as sess:
            par = _run_random_traffic(MACHINE, "ww", seed=5,
                                      max_events=10_000_000)
        assert par["rt"].pdes_info.mode == "sequential"
        assert sess.runs_partitioned == 0
        _compare(seq, par)


# ----------------------------------------------------------------------
# Equivalence: partitioned == sequential
# ----------------------------------------------------------------------
class TestEquivalence:
    @pytest.mark.parametrize("scheme", ["ww", "wps", "wsp", "pp", "direct"])
    def test_all_schemes_partitions_2(self, scheme):
        seq = _run_random_traffic(MACHINE, scheme, seed=2)
        with PdesSession(PdesConfig(partitions=2)) as sess:
            par = _run_random_traffic(MACHINE, scheme, seed=2)
        assert sess.runs_partitioned == 1
        _compare(seq, par)

    @pytest.mark.parametrize("partitions", [2, 3, 4])
    def test_partition_counts(self, partitions):
        seq = _run_random_traffic(MACHINE, "wps", seed=3)
        with PdesSession(PdesConfig(partitions=partitions)) as sess:
            par = _run_random_traffic(MACHINE, "wps", seed=3)
        assert sess.runs_partitioned == 1
        _compare(seq, par)

    def test_partitions_clamped_to_nodes(self):
        machine = MachineConfig(
            nodes=2, processes_per_node=2, workers_per_process=2
        )
        seq = _run_random_traffic(machine, "pp", seed=4)
        with PdesSession(PdesConfig(partitions=16)):
            par = _run_random_traffic(machine, "pp", seed=4)
        assert par["rt"].pdes_info.mode == "partitioned"
        assert par["rt"].pdes_info.partitions == 2
        _compare(seq, par)

    def test_fire_sequence_identical(self):
        seq = _run_random_traffic(MACHINE, "pp", seed=6, fire_log=True)
        with PdesSession(PdesConfig(partitions=3, record_fires=True)):
            par = _run_random_traffic(MACHINE, "pp", seed=6)
        assert len(seq["fire_log"]) == len(par["fire_log"]) > 0
        assert seq["fire_log"] == par["fire_log"]

    def test_three_node_machine_odd_split(self):
        machine = MachineConfig(
            nodes=3, processes_per_node=1, workers_per_process=3
        )
        seq = _run_random_traffic(machine, "ww", seed=7, idle_flush=False)
        with PdesSession(PdesConfig(partitions=2)):
            par = _run_random_traffic(machine, "ww", seed=7, idle_flush=False)
        _compare(seq, par)

    def test_apps_histogram_and_sssp(self):
        from repro.apps import run_histogram, run_sssp

        machine = MachineConfig(
            nodes=4, processes_per_node=1, workers_per_process=2
        )
        seq_h = run_histogram(machine, "wps", updates_per_pe=200, seed=9)
        seq_s = run_sssp(machine, "pp", num_vertices=128, seed=9)
        with PdesSession(PdesConfig(partitions=2)):
            par_h = run_histogram(machine, "wps", updates_per_pe=200, seed=9)
            par_s = run_sssp(machine, "pp", num_vertices=128, seed=9)
        assert seq_h == par_h
        assert seq_s.total_time_ns == par_s.total_time_ns
        assert seq_s.wasted_updates == par_s.wasted_updates
        assert seq_s.events == par_s.events
        assert np.array_equal(seq_s.distances, par_s.distances)


# ----------------------------------------------------------------------
# Run info and accounting
# ----------------------------------------------------------------------
class TestRunInfo:
    def test_partitioned_info_fields(self):
        with PdesSession(PdesConfig(partitions=2)):
            out = _run_random_traffic(MACHINE, "pp", seed=8)
        info = out["rt"].pdes_info
        assert info.mode == "partitioned"
        assert info.partitions == 2
        assert info.fallback is None
        assert info.lookahead_ns == out["rt"].costs.min_inter_node_latency_ns()
        assert info.rounds >= 1
        assert len(info.events_per_partition) == 2
        # Every event of the run fired in exactly one partition.
        assert sum(info.events_per_partition) == out["events"]
        assert 0.0 <= info.partition_imbalance < 1.0

    def test_info_to_dict_roundtrips(self):
        with PdesSession(PdesConfig(partitions=2)):
            out = _run_random_traffic(MACHINE, "pp", seed=8)
        d = out["rt"].pdes_info.to_dict()
        assert d["mode"] == "partitioned"
        assert isinstance(d["events_per_partition"], list)

    def test_second_run_call_is_trivial(self):
        with PdesSession(PdesConfig(partitions=2)):
            out = _run_random_traffic(MACHINE, "pp", seed=8)
            rt = out["rt"]
            info = rt.pdes_info
            stats = rt.run()  # nothing pending: no re-fork, info kept
            assert stats.events_fired == 0
            assert rt.pdes_info is info

    def test_engine_clock_matches_sequential(self):
        seq = _run_random_traffic(MACHINE, "wsp", seed=10)
        with PdesSession(PdesConfig(partitions=4)):
            par = _run_random_traffic(MACHINE, "wsp", seed=10)
        assert seq["rt"].engine.now == par["rt"].engine.now


# ----------------------------------------------------------------------
# Safety rails
# ----------------------------------------------------------------------
class TestSafety:
    def test_mid_run_cross_partition_post_raises(self):
        from repro.errors import SimulationError

        with PdesSession(PdesConfig(partitions=2)):
            rt = RuntimeSystem(MACHINE, seed=0)
            rt.pdes_ready()

            def cross(ctx):
                # Worker 0 lives on node 0; the last worker lives on the
                # last node — owned by the other partition. The child
                # raises DeliveryError, surfaced by the coordinator.
                rt.post(MACHINE.total_workers - 1, lambda c: None)

            rt.post(0, cross)
            with pytest.raises(SimulationError, match="cross-node"):
                rt.run()

    def test_child_failure_surfaces_as_simulation_error(self):
        from repro.errors import SimulationError

        with PdesSession(PdesConfig(partitions=2)):
            rt = RuntimeSystem(MACHINE, seed=0)
            rt.pdes_ready()

            def die(ctx):
                raise RuntimeError("injected child failure")

            rt.post(0, die)
            with pytest.raises(SimulationError, match="injected child"):
                rt.run()

    def test_qd_counter_strict_restored_in_parent(self):
        with PdesSession(PdesConfig(partitions=2)):
            out = _run_random_traffic(MACHINE, "pp", seed=11)
        qd = next(
            obj for obj, _ in out["rt"]._pdes_states
            if isinstance(obj, QDCounter)
        )
        # The merged parent counter balances globally.
        qd.require_balanced()
        assert qd.consumed == qd.produced > 0
