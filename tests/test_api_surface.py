"""API-surface guarantees: exports resolve, doctests pass.

A downstream user's first contact is ``from repro import ...`` and the
docstring examples; both are contract-tested here.
"""

import doctest
import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.sim",
    "repro.machine",
    "repro.network",
    "repro.runtime",
    "repro.obs",
    "repro.tram",
    "repro.tram.schemes",
    "repro.analysis",
    "repro.apps",
    "repro.harness",
    "repro.util",
]

DOCTEST_MODULES = [
    "repro.sim.simtime",
    "repro.sim.rng",
    "repro.util.tables",
    "repro.harness.sweep",
]


class TestExports:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_names_resolve(self, package):
        mod = importlib.import_module(package)
        assert hasattr(mod, "__all__"), f"{package} lacks __all__"
        for name in mod.__all__:
            assert hasattr(mod, name), f"{package}.{name} missing"

    def test_version_string(self):
        import repro

        assert repro.__version__.count(".") == 2

    def test_top_level_quickstart_objects(self):
        from repro import CostModel, MachineConfig, RuntimeSystem
        from repro.tram import TramConfig, make_scheme

        rt = RuntimeSystem(MachineConfig(1, 1, 2), CostModel())
        tram = make_scheme("WPs", rt, TramConfig(),
                           deliver_item=lambda c, i: None)
        assert tram.name == "WPs"

    def test_scheme_registry_names(self):
        """Every scheme constructible by its canonical name."""
        from repro import MachineConfig, RuntimeSystem
        from repro.tram import make_scheme

        for name in ("WW", "WPs", "WsP", "PP", "Direct", "WNs", "NN", "R2D"):
            rt = RuntimeSystem(MachineConfig(2, 2, 2))
            tram = make_scheme(name, rt, deliver_item=lambda c, i: None)
            assert tram.name == name


class TestDoctests:
    @pytest.mark.parametrize("module", DOCTEST_MODULES)
    def test_module_doctests(self, module):
        mod = importlib.import_module(module)
        results = doctest.testmod(mod, verbose=False)
        assert results.failed == 0
        assert results.attempted > 0
