"""Every shipped example must run end-to-end (smoke + output checks)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "items per network message" in out
        assert "True" in out  # all delivered

    def test_scheme_comparison(self, capsys):
        out = run_example("scheme_comparison.py", capsys)
        for scheme in ("WW", "WPs", "WsP", "PP"):
            assert scheme in out

    def test_commthread_bottleneck(self, capsys):
        out = run_example("commthread_bottleneck.py", capsys)
        assert "non-SMP" in out
        assert "workers/commthread" in out

    @pytest.mark.slow
    def test_sssp_wasted_updates(self, capsys):
        out = run_example("sssp_wasted_updates.py", capsys)
        assert "identical shortest-path distances" in out
        assert "priority flushing" in out

    @pytest.mark.slow
    def test_pdes_rollbacks(self, capsys):
        out = run_example("pdes_rollbacks.py", capsys)
        assert "rejected" in out
        assert "PP" in out

    def test_custom_hybrid_scheme(self, capsys):
        out = run_example("custom_hybrid_scheme.py", capsys)
        assert "hybrid" in out
        assert "Direct" in out

    def test_distributed_quiescence(self, capsys):
        out = run_example("distributed_quiescence.py", capsys)
        assert "quiescence declared" in out
        assert "detection lag" in out
