"""Cross-module integration tests: full stack, paper-shape claims."""

import numpy as np
import pytest

from repro.analysis import expected_fill_latency_ns
from repro.apps import run_histogram, run_indexgather
from repro.machine import CostModel, MachineConfig
from repro.runtime.system import RuntimeSystem
from repro.tram import SCHEME_NAMES, TramConfig, make_scheme

MEDIUM = MachineConfig(nodes=4, processes_per_node=2, workers_per_process=4)


class TestSchemeOrderings:
    """The paper's headline relative results, asserted end to end."""

    def test_histogram_scaling_ordering_at_moderate_scale(self):
        results = {
            s: run_histogram(MEDIUM, s, updates_per_pe=4000, buffer_items=64,
                             batch=1000)
            for s in SCHEME_NAMES
        }
        # WPs is the best scheme at scale; WW is never better than WPs.
        assert results["WPs"].total_time_ns <= results["WW"].total_time_ns
        # PP pays atomics relative to WPs.
        assert results["PP"].total_time_ns >= results["WPs"].total_time_ns

    def test_ig_latency_full_ordering(self):
        results = {
            s: run_indexgather(MEDIUM, s, requests_per_pe=3000,
                               buffer_items=64, batch=500)
            for s in SCHEME_NAMES
        }
        lat = {s: r.round_trip_latency_ns for s, r in results.items()}
        assert lat["PP"] < lat["WPs"] < lat["WW"]
        assert lat["PP"] < lat["WsP"] < lat["WW"]

    def test_aggregation_beats_direct_per_item(self):
        """The library's raison d'etre: Direct pays alpha per item."""
        machine = MachineConfig(nodes=2, processes_per_node=2,
                                workers_per_process=2)

        def run(scheme):
            rt = RuntimeSystem(machine, seed=0)
            tram = make_scheme(
                scheme, rt, TramConfig(buffer_items=32, idle_flush=True),
                deliver_item=lambda ctx, it: None,
            )
            W = machine.total_workers

            def driver(ctx):
                rng = rt.rng.stream(f"x/{ctx.worker.wid}")
                for _ in range(200):
                    tram.insert(ctx, dst=int(rng.integers(0, W)))

            for w in range(W):
                rt.post(w, driver)
            stats = rt.run(max_events=2_000_000)
            return stats.end_time

        assert run("Direct") > 1.5 * run("WPs")


class TestAnalyticSimAgreement:
    def test_fill_latency_model_matches_sim_ordering(self):
        """The §III-C fill-rate model predicts the simulated latency
        ordering (it ignores queueing, so only the ordering is checked)."""
        machine = MEDIUM
        rate = 1.0 / 200.0  # one item per 200ns per worker
        model = {
            s: expected_fill_latency_ns(s, 64, rate, machine)
            for s in ("WW", "WPs", "PP")
        }
        sim = {
            s: run_indexgather(machine, s, requests_per_pe=3000,
                               buffer_items=64).round_trip_latency_ns
            for s in ("WW", "WPs", "PP")
        }
        model_order = sorted(model, key=model.get)
        sim_order = sorted(sim, key=sim.get)
        assert model_order == sim_order == ["PP", "WPs", "WW"]


class TestCostModelKnobs:
    def test_slower_commthread_hurts_smp_more(self):
        slow = CostModel(comm_msg_ns=2000.0)
        fast = CostModel(comm_msg_ns=100.0)
        t_slow = run_histogram(MEDIUM, "WPs", updates_per_pe=2000,
                               buffer_items=64, costs=slow).total_time_ns
        t_fast = run_histogram(MEDIUM, "WPs", updates_per_pe=2000,
                               buffer_items=64, costs=fast).total_time_ns
        assert t_slow > 1.2 * t_fast

    def test_zero_contention_makes_pp_match_wps_insert_costs(self):
        costs = CostModel(contention_coeff=0.0, atomic_ns=0.0)
        pp = run_histogram(MEDIUM, "PP", updates_per_pe=2000,
                           buffer_items=64, costs=costs)
        wps = run_histogram(MEDIUM, "WPs", updates_per_pe=2000,
                            buffer_items=64, costs=costs)
        # Without atomics PP is at least as fast as WPs (fewer messages).
        assert pp.total_time_ns <= 1.1 * wps.total_time_ns

    def test_higher_alpha_increases_runtime(self):
        cheap = CostModel(alpha_inter_ns=200.0)
        pricey = CostModel(alpha_inter_ns=20_000.0)
        t_cheap = run_histogram(MEDIUM, "WPs", updates_per_pe=1000,
                                buffer_items=16, costs=cheap).total_time_ns
        t_pricey = run_histogram(MEDIUM, "WPs", updates_per_pe=1000,
                                 buffer_items=16, costs=pricey).total_time_ns
        assert t_pricey > t_cheap


class TestDeterminismAcrossStack:
    @pytest.mark.parametrize("scheme", SCHEME_NAMES)
    def test_full_run_bitwise_reproducible(self, scheme):
        a = run_histogram(MEDIUM, scheme, updates_per_pe=1000,
                          buffer_items=32, seed=7)
        b = run_histogram(MEDIUM, scheme, updates_per_pe=1000,
                          buffer_items=32, seed=7)
        assert a.total_time_ns == b.total_time_ns
        assert a.messages_sent == b.messages_sent
        assert a.bytes_sent == b.bytes_sent
        assert a.events == b.events
