"""Unit tests for cluster topology index maps."""

import pytest

from repro.errors import ConfigError
from repro.machine.topology import MachineConfig


@pytest.fixture
def cfg():
    return MachineConfig(nodes=3, processes_per_node=2, workers_per_process=4)


class TestSizes:
    def test_totals(self, cfg):
        assert cfg.total_processes == 6
        assert cfg.total_workers == 24
        assert cfg.workers_per_node == 8

    def test_describe_mentions_mode(self, cfg):
        assert "SMP" in cfg.describe()
        nonsmp = MachineConfig(2, 4, 1, smp=False)
        assert "non-SMP" in nonsmp.describe()


class TestMaps:
    def test_process_of_worker_blocked(self, cfg):
        assert cfg.process_of_worker(0) == 0
        assert cfg.process_of_worker(3) == 0
        assert cfg.process_of_worker(4) == 1
        assert cfg.process_of_worker(23) == 5

    def test_node_of_worker(self, cfg):
        assert cfg.node_of_worker(0) == 0
        assert cfg.node_of_worker(7) == 0
        assert cfg.node_of_worker(8) == 1
        assert cfg.node_of_worker(23) == 2

    def test_node_of_process(self, cfg):
        assert cfg.node_of_process(0) == 0
        assert cfg.node_of_process(1) == 0
        assert cfg.node_of_process(2) == 1

    def test_workers_of_process(self, cfg):
        assert list(cfg.workers_of_process(1)) == [4, 5, 6, 7]

    def test_processes_of_node(self, cfg):
        assert list(cfg.processes_of_node(2)) == [4, 5]

    def test_workers_of_node(self, cfg):
        assert list(cfg.workers_of_node(1)) == list(range(8, 16))

    def test_local_rank(self, cfg):
        assert cfg.local_rank_of_worker(0) == 0
        assert cfg.local_rank_of_worker(5) == 1
        assert cfg.local_rank_of_worker(7) == 3

    def test_worker_id_inverse_of_maps(self, cfg):
        for w in range(cfg.total_workers):
            p = cfg.process_of_worker(w)
            r = cfg.local_rank_of_worker(w)
            assert cfg.worker_id(p, r) == w


class TestPredicates:
    def test_same_process(self, cfg):
        assert cfg.same_process(0, 3)
        assert not cfg.same_process(3, 4)

    def test_same_node(self, cfg):
        assert cfg.same_node(0, 7)
        assert not cfg.same_node(7, 8)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(nodes=0, processes_per_node=1, workers_per_process=1),
            dict(nodes=1, processes_per_node=0, workers_per_process=1),
            dict(nodes=1, processes_per_node=1, workers_per_process=0),
        ],
    )
    def test_bad_sizes_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            MachineConfig(**kwargs)

    def test_nonsmp_requires_single_worker(self):
        with pytest.raises(ConfigError):
            MachineConfig(1, 2, 2, smp=False)
        MachineConfig(1, 2, 1, smp=False)  # fine

    def test_out_of_range_worker(self, cfg):
        with pytest.raises(ConfigError):
            cfg.process_of_worker(24)
        with pytest.raises(ConfigError):
            cfg.process_of_worker(-1)

    def test_out_of_range_process(self, cfg):
        with pytest.raises(ConfigError):
            cfg.workers_of_process(6)

    def test_out_of_range_node(self, cfg):
        with pytest.raises(ConfigError):
            cfg.processes_of_node(3)

    def test_bad_local_rank(self, cfg):
        with pytest.raises(ConfigError):
            cfg.worker_id(0, 4)

    def test_frozen(self, cfg):
        with pytest.raises(Exception):
            cfg.nodes = 5
