"""Unit tests for the cost model."""

import pytest

from repro.errors import ConfigError
from repro.machine.costs import CostModel
from repro.machine.presets import delta_costs, delta_machine, nonsmp_machine, small_test_machine


@pytest.fixture
def costs():
    return CostModel()


class TestDerivedCharges:
    def test_wire_latency_selects_alpha(self, costs):
        assert costs.wire_latency_ns(same_node=False) == costs.alpha_inter_ns
        assert costs.wire_latency_ns(same_node=True) == costs.alpha_intra_ns
        assert costs.alpha_intra_ns < costs.alpha_inter_ns

    def test_tx_occupancy_linear_in_bytes(self, costs):
        base = costs.tx_occupancy_ns(0)
        assert costs.tx_occupancy_ns(1000) == pytest.approx(
            base + 1000 * costs.beta_ns_per_byte
        )

    def test_comm_service(self, costs):
        assert costs.comm_service_ns(0) == costs.comm_msg_ns
        assert costs.comm_service_ns(100) > costs.comm_msg_ns

    def test_nonsmp_services(self, costs):
        assert costs.nonsmp_send_service_ns(0) == costs.nonsmp_send_ns
        assert costs.nonsmp_recv_service_ns(0) == costs.nonsmp_recv_ns

    def test_pp_insert_grows_with_contention(self, costs):
        c1 = costs.pp_insert_ns(1)
        c8 = costs.pp_insert_ns(8)
        assert c1 == pytest.approx(costs.item_insert_ns + costs.atomic_ns)
        assert c8 > c1

    def test_pp_insert_floor_at_one_worker(self, costs):
        assert costs.pp_insert_ns(0) == costs.pp_insert_ns(1)

    def test_group_cost_is_g_plus_t(self, costs):
        assert costs.group_cost_ns(100, 8) == pytest.approx(
            costs.group_elem_ns * 108
        )

    def test_message_bytes_resized(self, costs):
        assert costs.message_bytes(0, 8) == costs.header_bytes
        assert costs.message_bytes(10, 8) == costs.header_bytes + 80


class TestCachePenalty:
    def test_within_cache_no_penalty(self, costs):
        assert costs.cache_penalty(0) == 1.0
        assert costs.cache_penalty(costs.cache_bytes_per_worker) == 1.0

    def test_grows_then_saturates(self, costs):
        cache = costs.cache_bytes_per_worker
        mid = costs.cache_penalty(1.5 * cache)
        assert 1.0 < mid < costs.cache_miss_factor
        assert costs.cache_penalty(100 * cache) == costs.cache_miss_factor

    def test_disabled_when_zero_cache(self):
        costs = CostModel(cache_bytes_per_worker=0.0)
        assert costs.cache_penalty(10**9) == 1.0


class TestValidationAndCopy:
    def test_negative_field_rejected(self):
        with pytest.raises(ConfigError):
            CostModel(alpha_inter_ns=-1.0)

    def test_replace(self, costs):
        faster = costs.replace(comm_msg_ns=100.0)
        assert faster.comm_msg_ns == 100.0
        assert costs.comm_msg_ns != 100.0  # original untouched


class TestPresets:
    def test_delta_machine_layout(self):
        m = delta_machine(4)
        assert m.nodes == 4
        assert m.processes_per_node == 8
        assert m.workers_per_process == 8
        assert m.smp

    def test_nonsmp_machine(self):
        m = nonsmp_machine(2, ranks_per_node=64)
        assert not m.smp
        assert m.workers_per_node == 64
        assert m.workers_per_process == 1

    def test_small_test_machine(self):
        m = small_test_machine()
        assert m.total_workers == 8

    def test_delta_costs_overrides(self):
        c = delta_costs(comm_msg_ns=123.0)
        assert c.comm_msg_ns == 123.0
        assert delta_costs().comm_msg_ns != 123.0
