"""Unit tests for table rendering and trial statistics."""

import pytest

from repro.util.stats import mean_std, summarize_trials
from repro.util.tables import render_table


class TestRenderTable:
    def test_basic_layout(self):
        out = render_table(["x", "value"], [[1, 2.5], [10, 3.25]])
        lines = out.splitlines()
        assert lines[0].startswith("x")
        assert "-" in lines[1]
        assert len(lines) == 4

    def test_column_alignment(self):
        out = render_table(["n"], [[1], [100]])
        rows = out.splitlines()[2:]
        assert all(len(r) == len(rows[0]) for r in rows)

    def test_float_formatting(self):
        out = render_table(["v"], [[0.000001], [123456.0], [1.5], [0.0]])
        assert "1e-06" in out
        assert "1.23e+05" in out or "123456" in out
        assert "1.500" in out

    def test_strings_pass_through(self):
        out = render_table(["scheme"], [["WW"], ["WPs"]])
        assert "WPs" in out


class TestMeanStd:
    def test_single_value(self):
        assert mean_std([5.0]) == (5.0, 0.0)

    def test_known_values(self):
        mean, std = mean_std([2.0, 4.0, 6.0])
        assert mean == pytest.approx(4.0)
        assert std == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_std([])

    def test_summarize_trials(self):
        mean, std = summarize_trials(lambda seed: float(seed * 2), [1, 2, 3])
        assert mean == pytest.approx(4.0)
        assert std > 0
