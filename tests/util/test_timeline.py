"""Tests for Chrome-trace export."""

import json

import pytest

from repro.machine import MachineConfig
from repro.runtime.system import RuntimeSystem
from repro.sim.trace import Tracer
from repro.tram import TramConfig, make_scheme
from repro.util.timeline import (
    attach_task_tracing,
    chrome_trace_events,
    write_chrome_trace,
)


@pytest.fixture
def traced_run():
    tracer = Tracer(categories=["task"])
    rt = RuntimeSystem(MachineConfig(2, 2, 2), seed=0)
    attach_task_tracing(rt, tracer)
    tram = make_scheme(
        "WPs", rt, TramConfig(buffer_items=4),
        deliver_item=lambda ctx, it: None,
    )

    def driver(ctx):
        for dst in range(8):
            tram.insert(ctx, dst=dst)
        tram.flush(ctx)

    rt.post(0, driver)
    rt.run()
    return rt, tracer


class TestTimeline:
    def test_tasks_recorded(self, traced_run):
        rt, tracer = traced_run
        assert tracer.count("task") == sum(
            w.stats.tasks_executed for w in rt.workers
        )

    def test_event_fields(self, traced_run):
        _, tracer = traced_run
        events = chrome_trace_events(tracer)
        assert events
        for ev in events:
            assert ev["ph"] == "X"
            assert ev["ts"] >= 0
            assert ev["dur"] > 0
            assert isinstance(ev["tid"], int)

    def test_events_cover_multiple_workers(self, traced_run):
        _, tracer = traced_run
        tids = {ev["tid"] for ev in chrome_trace_events(tracer)}
        assert len(tids) > 1  # driver PE plus destinations

    def test_write_file(self, traced_run, tmp_path):
        _, tracer = traced_run
        path = tmp_path / "trace.json"
        n = write_chrome_trace(tracer, path)
        data = json.loads(path.read_text())
        assert len(data["traceEvents"]) == n
        assert data["displayTimeUnit"] == "ns"

    def test_untraced_run_produces_nothing(self):
        tracer = Tracer(categories=["task"])
        rt = RuntimeSystem(MachineConfig(1, 1, 2), seed=0)
        rt.post(0, lambda ctx: ctx.charge(10.0))
        rt.run()
        assert chrome_trace_events(tracer) == []
