"""Tests for Chrome-trace export."""

import json

import pytest

from repro.machine import MachineConfig
from repro.runtime.system import RuntimeSystem
from repro.sim.trace import Tracer
from repro.tram import TramConfig, make_scheme
from repro.util.timeline import (
    attach_task_tracing,
    chrome_trace_events,
    counter_trace_events,
    flow_trace_events,
    write_chrome_trace,
)


@pytest.fixture
def traced_run():
    tracer = Tracer(categories=["task"])
    rt = RuntimeSystem(MachineConfig(2, 2, 2), seed=0)
    attach_task_tracing(rt, tracer)
    tram = make_scheme(
        "WPs", rt, TramConfig(buffer_items=4),
        deliver_item=lambda ctx, it: None,
    )

    def driver(ctx):
        for dst in range(8):
            tram.insert(ctx, dst=dst)
        tram.flush(ctx)

    rt.post(0, driver)
    rt.run()
    return rt, tracer


class TestTimeline:
    def test_tasks_recorded(self, traced_run):
        rt, tracer = traced_run
        assert tracer.count("task") == sum(
            w.stats.tasks_executed for w in rt.workers
        )

    def test_event_fields(self, traced_run):
        _, tracer = traced_run
        events = chrome_trace_events(tracer)
        assert events
        for ev in events:
            assert ev["ph"] == "X"
            assert ev["ts"] >= 0
            assert ev["dur"] > 0
            assert isinstance(ev["tid"], int)

    def test_events_cover_multiple_workers(self, traced_run):
        _, tracer = traced_run
        tids = {ev["tid"] for ev in chrome_trace_events(tracer)}
        assert len(tids) > 1  # driver PE plus destinations

    def test_write_file(self, traced_run, tmp_path):
        _, tracer = traced_run
        path = tmp_path / "trace.json"
        n = write_chrome_trace(tracer, path)
        data = json.loads(path.read_text())
        assert len(data["traceEvents"]) == n
        assert data["displayTimeUnit"] == "ns"

    def test_untraced_run_produces_nothing(self):
        tracer = Tracer(categories=["task"])
        rt = RuntimeSystem(MachineConfig(1, 1, 2), seed=0)
        rt.post(0, lambda ctx: ctx.charge(10.0))
        rt.run()
        assert chrome_trace_events(tracer) == []


@pytest.fixture
def msg_traced_run():
    tracer = Tracer(categories=["task", "msg"])
    rt = RuntimeSystem(MachineConfig(2, 2, 2), seed=0, tracer=tracer)
    attach_task_tracing(rt, tracer)
    tram = make_scheme(
        "WPs", rt, TramConfig(buffer_items=4),
        deliver_item=lambda ctx, it: None,
    )

    def driver(ctx):
        for dst in range(8):
            tram.insert(ctx, dst=dst)
        tram.flush(ctx)

    rt.post(0, driver)
    rt.run()
    return rt, tracer


class TestMessageFlows:
    def test_hop_slices_present(self, msg_traced_run):
        _, tracer = msg_traced_run
        slices = [e for e in flow_trace_events(tracer) if e["ph"] == "X"]
        names = {e["name"] for e in slices}
        # WPs on an SMP machine exercises the whole path.
        assert {"send", "ct_out", "nic_tx", "nic_rx", "ct_in",
                "recv"} <= names

    def test_slice_row_layout(self, msg_traced_run):
        _, tracer = msg_traced_run
        for ev in flow_trace_events(tracer):
            if ev["ph"] != "X":
                continue
            if ev["name"] in ("send", "recv"):
                assert ev["pid"] == 2
            elif ev["name"] in ("ct_out", "ct_in"):
                assert ev["pid"] == 1
                assert ev["tid"] < 1000
            else:  # nic_tx / nic_rx rows sit at 1000 + node
                assert ev["pid"] == 1
                assert ev["tid"] >= 1000

    def test_flow_events_link_hops(self, msg_traced_run):
        _, tracer = msg_traced_run
        flows = [e for e in flow_trace_events(tracer)
                 if e["ph"] in ("s", "t", "f")]
        assert flows
        by_id = {}
        for ev in flows:
            by_id.setdefault(ev["id"], []).append(ev)
        for chain in by_id.values():
            # exactly one start and one finish, monotone timestamps
            assert [e["ph"] for e in chain].count("s") == 1
            assert chain[-1]["ph"] == "f"
            assert chain[-1]["bp"] == "e"
            ts = [e["ts"] for e in chain]
            assert ts == sorted(ts)

    def test_flow_ids_match_message_slices(self, msg_traced_run):
        _, tracer = msg_traced_run
        events = flow_trace_events(tracer)
        slice_ids = {e["args"]["msg_id"] for e in events if e["ph"] == "X"}
        flow_ids = {e["id"] for e in events if e["ph"] == "s"}
        assert flow_ids <= slice_ids

    def test_send_args_describe_message(self, msg_traced_run):
        _, tracer = msg_traced_run
        sends = [e for e in flow_trace_events(tracer)
                 if e["ph"] == "X" and e["name"] == "send"]
        assert sends
        for ev in sends:
            assert ev["args"]["size"] > 0
            assert ev["args"]["dst_process"] is not None

    def test_write_includes_flows_and_metadata(self, msg_traced_run,
                                               tmp_path):
        _, tracer = msg_traced_run
        path = tmp_path / "trace.json"
        n = write_chrome_trace(tracer, path)
        data = json.loads(path.read_text())
        events = data["traceEvents"]
        assert len(events) == n
        phases = {e["ph"] for e in events}
        assert {"X", "s", "f", "M"} <= phases
        meta = {e["pid"]: e["args"]["name"] for e in events
                if e["ph"] == "M"}
        assert set(meta) == {0, 1, 2}

    def test_task_only_tracer_has_no_flows(self, traced_run):
        _, tracer = traced_run
        assert flow_trace_events(tracer) == []


class TestCounterTracks:
    TL = {
        "times_ns": [1000.0, 2000.0, 3000.0],
        "series": {
            "flow.parked_messages": [0.0, 2.0, 0.0],
            "workers.queued_bytes": [128.0, 64.0, 0.0],
            "flow.overloaded": [0.0, 0.0, 0.0],  # flat zero: skipped
        },
    }

    def test_counter_events_shape(self):
        events = counter_trace_events(self.TL)
        assert len(events) == 6  # 2 live series x 3 samples
        for ev in events:
            assert ev["ph"] == "C"
            assert ev["pid"] == 3
            assert ev["cat"] == "telemetry"
            assert "value" in ev["args"]
        names = {e["name"] for e in events}
        assert names == {"flow.parked_messages", "workers.queued_bytes"}

    def test_timestamps_in_microseconds(self):
        events = counter_trace_events(self.TL)
        parked = [e for e in events if e["name"] == "flow.parked_messages"]
        assert [e["ts"] for e in parked] == [1.0, 2.0, 3.0]
        assert [e["args"]["value"] for e in parked] == [0.0, 2.0, 0.0]

    def test_empty_timeline_produces_nothing(self):
        assert counter_trace_events({"times_ns": [], "series": {}}) == []

    def test_merged_write_adds_counter_row(self, traced_run, tmp_path):
        _, tracer = traced_run
        path = tmp_path / "merged.json"
        n = write_chrome_trace(tracer, path, timeline=self.TL)
        events = json.loads(path.read_text())["traceEvents"]
        assert len(events) == n
        assert any(e["ph"] == "C" for e in events)
        meta = {e["pid"]: e["args"]["name"] for e in events
                if e["ph"] == "M"}
        assert meta[3] == "telemetry (counters)"

    def test_plain_write_unchanged_without_timeline(self, traced_run,
                                                    tmp_path):
        _, tracer = traced_run
        path = tmp_path / "plain.json"
        write_chrome_trace(tracer, path)
        events = json.loads(path.read_text())["traceEvents"]
        assert not any(e["ph"] == "C" for e in events)
        assert 3 not in {e["pid"] for e in events}
