"""Acceptance run: the fault soup across all schemes, SMP and non-SMP.

Under ``drop=0.05, dup=0.01, corrupt=0.005`` with the reliability layer
on, every scheme on both machine shapes must deliver every item exactly
once, drain to quiescence, and keep the stage-partition identity — the
non-handler stages (now including ``retransmit``) summing exactly to the
end-to-end latency total.
"""

import pytest

from repro.faults import FaultPlan, FaultWindow
from repro.machine import MachineConfig, nonsmp_machine
from repro.obs import ObsConfig
from repro.obs.spans import STAGES
from repro.runtime.reliability import ReliabilityConfig
from repro.runtime.system import RuntimeSystem
from repro.tram import SCHEME_NAMES, TramConfig, make_scheme

REL_TOL = 1e-6

SOUP = FaultPlan(drop=0.05, dup=0.01, corrupt=0.005)

#: Timeout short enough that drops are repaired within these small runs.
REL = ReliabilityConfig(retransmit_timeout_ns=20_000.0, ack_delay_ns=1_000.0)

SMP = MachineConfig(nodes=2, processes_per_node=2, workers_per_process=2)
NONSMP = nonsmp_machine(2, ranks_per_node=4)


def run_faulty(scheme, machine, plan=SOUP, reliability=REL, seed=3):
    rt = RuntimeSystem(
        machine, seed=seed, obs=ObsConfig(), faults=plan, reliability=reliability
    )
    tram = make_scheme(
        scheme, rt,
        TramConfig(buffer_items=16, idle_flush=True),
        deliver_item=lambda ctx, it: None,
    )
    W = machine.total_workers

    def driver(ctx):
        rng = rt.rng.stream(f"soup/{ctx.worker.wid}")
        for _ in range(150):
            tram.insert(ctx, dst=int(rng.integers(0, W)))

    for w in range(W):
        rt.post(w, driver)
    rt.run(max_events=20_000_000)
    return rt, tram


def assert_partition(tram):
    stages = tram.stages
    assert stages is not None
    assert set(stages.hists) == set(STAGES)
    total = stages.total_ns(include_handler=False)
    latency = tram.stats.latency.total
    assert total == pytest.approx(latency, rel=REL_TOL)


class TestFaultSoupPartition:
    @pytest.mark.parametrize("scheme", SCHEME_NAMES)
    @pytest.mark.parametrize(
        "machine", [SMP, NONSMP], ids=["smp", "nonsmp"]
    )
    def test_exactly_once_and_partition(self, scheme, machine):
        rt, tram = run_faulty(scheme, machine)
        st = tram.stats
        # Exactly once, despite drops, duplicates and corruption.
        assert st.items_delivered == st.items_inserted
        assert st.pending_items == 0
        assert rt.reliable.pending_count() == 0
        assert rt.reliable.stats.channels_degraded == 0
        # The fabric actually interfered (the test is not vacuous).
        fstats = rt.faults.stats
        assert (
            fstats.messages_dropped
            + fstats.messages_duplicated
            + fstats.messages_corrupted
        ) > 0
        # Stage-partition identity holds, retransmit stage included.
        assert_partition(tram)


class TestRetransmitStage:
    def test_retransmitted_delivery_lands_in_retransmit_stage(self):
        # Deterministic repair: every message injected before t=50us is
        # dropped, so the first buffers' deliveries all arrive through
        # retransmission after the window closes.
        plan = FaultPlan(
            windows=(FaultWindow(0.0, 50_000.0, "drop", magnitude=1.0),)
        )
        rt, tram = run_faulty("WPs", SMP, plan=plan)
        assert tram.stats.items_delivered == tram.stats.items_inserted
        assert rt.reliable.stats.retransmits > 0
        retransmit = tram.stages.hists["retransmit"]
        assert retransmit.count > 0
        assert retransmit.total > 0.0
        assert_partition(tram)

    def test_clean_run_has_empty_retransmit_stage(self):
        rt, tram = run_faulty("WPs", SMP, plan=None, reliability=REL)
        assert rt.faults is None
        retransmit = tram.stages.hists["retransmit"]
        assert retransmit.count == 0
        assert_partition(tram)
