"""Graceful degradation: retry-budget exhaustion falls back to direct sends.

The acceptance property: under a permanent 100%-drop window towards one
node, the reliability layer trips its retry budget, the affected
channels degrade, the schemes record the degradation in ``TramStats``
and route later inserts as direct per-item sends — and the run still
completes (quiescence through natural event-queue drain), with every
inserted item accounted for as delivered, abandoned or fabric-lost.
"""

import pytest

from repro.faults import FOREVER, FaultPlan, FaultWindow
from repro.machine import MachineConfig
from repro.runtime.reliability import ReliabilityConfig
from repro.runtime.system import RuntimeSystem
from repro.tram import SCHEME_NAMES, TramConfig, make_scheme

MACHINE = MachineConfig(nodes=2, processes_per_node=1, workers_per_process=4)

#: Trip the budget fast: 3 attempts spanning ~7 * 1000ns of backoff.
TRIP_FAST = ReliabilityConfig(
    retransmit_timeout_ns=1_000.0, max_retries=2, ack_delay_ns=500.0
)

#: Node 1 is unreachable for the whole run.
BLACKHOLE = FaultPlan(
    windows=(FaultWindow(0.0, FOREVER, "drop", target=1, magnitude=1.0),)
)


def run_degraded(scheme="WPs", flush_timeout_ns=None, late_items=60):
    rt = RuntimeSystem(
        MACHINE, seed=5, faults=BLACKHOLE, reliability=TRIP_FAST
    )
    tram = make_scheme(
        scheme, rt,
        TramConfig(
            buffer_items=16, idle_flush=True, flush_timeout_ns=flush_timeout_ns
        ),
        deliver_item=lambda ctx, it: None,
    )
    W = MACHINE.total_workers

    def driver(ctx):
        rng = rt.rng.stream(f"deg/{ctx.worker.wid}")
        for _ in range(80):
            tram.insert(ctx, dst=int(rng.integers(0, W)))

    for w in range(W):
        rt.post(w, driver)

    # A second wave of inserts long after the budget has tripped
    # (~7us with TRIP_FAST) exercises the per-insert fallback path.
    def late_driver(ctx):
        rng = rt.rng.stream(f"deg-late/{ctx.worker.wid}")
        for _ in range(late_items):
            tram.insert(ctx, dst=int(rng.integers(0, W)))

    rt.engine.after(200_000.0, rt.worker(0).post_task, late_driver)
    stats = rt.run(max_events=10_000_000)
    return rt, tram, stats


class TestDegradedMode:
    @pytest.mark.parametrize("scheme", SCHEME_NAMES)
    def test_budget_trip_degrades_and_run_completes(self, scheme):
        rt, tram, _ = run_degraded(scheme)
        rel = rt.reliable.stats
        st = tram.stats
        # The channel towards node 1 tripped and was recorded by the scheme.
        assert rel.channels_degraded >= 1
        assert rel.messages_abandoned > 0
        assert st.degraded_destinations >= 1
        # Inserts after the trip bypass aggregation entirely.
        assert st.direct_fallback_sends > 0
        # The run drained: every insert is delivered, abandoned with the
        # channel, or destroyed by the fabric after the fallback (direct
        # sends on a degraded channel travel unprotected).
        assert st.items_delivered + rel.items_abandoned + (
            rt.faults.stats.items_lost
        ) == st.items_inserted
        assert rt.reliable.pending_count() == 0

    def test_flush_timer_escalates_on_degrade(self):
        rt, tram, _ = run_degraded("WPs", flush_timeout_ns=50_000.0)
        st = tram.stats
        assert st.degraded_destinations >= 1
        assert st.flush_escalations >= 1
        divisor = tram.config.degraded_flush_divisor
        assert tram._flush_timeout_scale == pytest.approx(1.0 / divisor)

    def test_no_escalation_without_flush_timer(self):
        _, tram, _ = run_degraded("WPs", flush_timeout_ns=None)
        assert tram.stats.degraded_destinations >= 1
        assert tram.stats.flush_escalations == 0
        assert tram._flush_timeout_scale == 1.0

    def test_healthy_destinations_stay_aggregated(self):
        # Three nodes, node 1 blackholed: every channel whose data *or*
        # ack path crosses the node-1 wire degrades, but the 0<->2
        # channels never involve it and must stay protected+aggregated.
        machine = MachineConfig(nodes=3, processes_per_node=1,
                                workers_per_process=4)
        # Timeout well above the healthy-channel RTT (so congestion never
        # trips the budget) but small enough that the blackholed channels
        # exhaust within the run's timer horizon.
        trip = ReliabilityConfig(
            retransmit_timeout_ns=50_000.0, max_retries=2, ack_delay_ns=500.0
        )
        rt = RuntimeSystem(machine, seed=5, faults=BLACKHOLE, reliability=trip)
        tram = make_scheme(
            "WPs", rt, TramConfig(buffer_items=16, idle_flush=True),
            deliver_item=lambda ctx, it: None,
        )
        W = machine.total_workers

        def driver(ctx):
            rng = rt.rng.stream(f"deg3/{ctx.worker.wid}")
            for _ in range(80):
                tram.insert(ctx, dst=int(rng.integers(0, W)))

        for w in range(W):
            rt.post(w, driver)
        rt.run(max_events=10_000_000)
        assert tram.stats.degraded_destinations >= 1
        # Degradation never spreads past channels touching process 1
        # (data towards it dropped, or acks from it dropped).
        for (src, dst) in tram._degraded:
            assert 1 in (src, dst)
        assert not rt.reliable.is_degraded(0, 2)
        assert not rt.reliable.is_degraded(2, 0)


class TestLossAccounting:
    def test_wire_loss_accounting_reaches_counter(self):
        from repro.runtime.quiescence import QDCounter

        rt = RuntimeSystem(
            MACHINE, seed=5, faults=BLACKHOLE, reliability=TRIP_FAST
        )
        qd = QDCounter()
        rt.wire_loss_accounting(qd)
        tram = make_scheme(
            "WPs", rt, TramConfig(buffer_items=16, idle_flush=True),
            deliver_item=lambda ctx, it: qd.consume(1),
        )
        W = MACHINE.total_workers

        def driver(ctx):
            rng = rt.rng.stream(f"qd/{ctx.worker.wid}")
            for _ in range(80):
                qd.produce(1)
                tram.insert(ctx, dst=int(rng.integers(0, W)))

        for w in range(W):
            rt.post(w, driver)
        rt.run(max_events=10_000_000)
        # Abandoned + fabric-destroyed items land in qd.lost, so the
        # counter balances despite the blackhole.
        assert qd.lost > 0
        assert qd.balanced
