"""End-to-end tests of the ack/retransmit reliable-delivery layer.

The workload is the per-item scheme driver from the stage-partition
suite: every worker inserts remote-bound items through a TramLib scheme,
and exactly-once delivery is asserted through the scheme's own counters
(inserted == delivered + bypassed, nothing pending).
"""

import pytest

from repro.errors import ConfigError, RetryExhaustedError
from repro.faults import FOREVER, FaultPlan, FaultSession, FaultWindow
from repro.machine import MachineConfig
from repro.runtime.reliability import ReliabilityConfig
from repro.runtime.system import RuntimeSystem
from repro.tram import TramConfig, make_scheme

MACHINE = MachineConfig(nodes=2, processes_per_node=2, workers_per_process=2)

#: Short timeout so retransmissions (and budget trips) happen within the
#: few-ms horizon of these small runs.
FAST = ReliabilityConfig(retransmit_timeout_ns=20_000.0, ack_delay_ns=1_000.0)


def run_workload(
    machine=MACHINE,
    faults=None,
    reliability=None,
    scheme="WPs",
    items=150,
    seed=3,
):
    rt = RuntimeSystem(machine, seed=seed, faults=faults, reliability=reliability)
    tram = make_scheme(
        scheme, rt,
        TramConfig(buffer_items=16, idle_flush=True),
        deliver_item=lambda ctx, it: None,
    )
    W = machine.total_workers

    def driver(ctx):
        rng = rt.rng.stream(f"rel/{ctx.worker.wid}")
        for _ in range(items):
            tram.insert(ctx, dst=int(rng.integers(0, W)))

    for w in range(W):
        rt.post(w, driver)
    stats = rt.run()
    return rt, tram, stats


def assert_exactly_once(tram):
    st = tram.stats
    # Local bypasses are counted within items_delivered.
    assert st.items_delivered == st.items_inserted
    assert st.pending_items == 0


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(retransmit_timeout_ns=0.0),
            dict(backoff_factor=0.5),
            dict(max_retries=0),
            dict(ack_delay_ns=-1.0),
            dict(dedup_window=0),
        ],
    )
    def test_bad_config_raises(self, kwargs):
        with pytest.raises(ConfigError):
            ReliabilityConfig(**kwargs)


class TestExactlyOnce:
    def test_drops_are_repaired_by_retransmission(self):
        rt, tram, _ = run_workload(
            faults=FaultPlan(drop=0.1), reliability=FAST
        )
        assert_exactly_once(tram)
        rel = rt.reliable.stats
        assert rt.faults.stats.messages_dropped > 0
        assert rel.retransmits > 0
        assert rt.reliable.pending_count() == 0
        # Protected data is never counted as fabric loss.
        assert rt.faults.stats.items_lost == 0

    def test_duplicates_are_discarded(self):
        rt, tram, _ = run_workload(faults=FaultPlan(dup=0.3), reliability=FAST)
        assert_exactly_once(tram)
        assert rt.faults.stats.messages_duplicated > 0
        assert rt.reliable.stats.duplicates_discarded > 0

    def test_corruption_triggers_nack_and_recovery(self):
        rt, tram, _ = run_workload(
            faults=FaultPlan(corrupt=0.2), reliability=FAST
        )
        assert_exactly_once(tram)
        rel = rt.reliable.stats
        assert rel.corrupt_discarded > 0
        assert rel.nacks_sent > 0
        assert rel.retransmits > 0

    def test_reordering_is_absorbed(self):
        rt, tram, _ = run_workload(
            faults=FaultPlan(reorder=0.3, reorder_max_ns=20_000.0),
            reliability=FAST,
        )
        assert_exactly_once(tram)
        assert rt.faults.stats.messages_reordered > 0

    def test_combined_fault_soup(self):
        rt, tram, _ = run_workload(
            faults=FaultPlan(drop=0.05, dup=0.01, corrupt=0.005),
            reliability=FAST,
        )
        assert_exactly_once(tram)
        assert rt.reliable.pending_count() == 0


class TestUnprotectedLoss:
    def test_drops_without_reliability_lose_items(self):
        rt, tram, _ = run_workload(
            faults=FaultPlan(drop=0.2), reliability=None
        )
        st = tram.stats
        lost = rt.faults.stats.items_lost
        assert lost > 0
        assert st.items_delivered + lost == st.items_inserted


class TestRetryExhaustion:
    def test_strict_mode_raises_on_budget_trip(self):
        # Every message towards node 1 vanishes forever: the channel can
        # never recover, and strict mode surfaces that as an error.
        plan = FaultPlan(
            windows=(
                FaultWindow(0.0, FOREVER, "drop", target=1, magnitude=1.0),
            )
        )
        strict = ReliabilityConfig(
            retransmit_timeout_ns=5_000.0, max_retries=2, degrade=False
        )
        with pytest.raises(RetryExhaustedError):
            run_workload(faults=plan, reliability=strict)


class TestDisabledAndDeterminism:
    def test_noop_plan_matches_plain_run(self):
        _, tram_a, stats_a = run_workload()
        _, tram_b, stats_b = run_workload(faults=FaultPlan())  # noop plan
        assert stats_a.end_time == stats_b.end_time
        assert tram_a.stats.summary() == tram_b.stats.summary()

    def test_disabled_config_is_equivalent_to_none(self):
        _, tram_a, stats_a = run_workload()
        _, tram_b, stats_b = run_workload(
            reliability=ReliabilityConfig(enabled=False)
        )
        assert stats_a.end_time == stats_b.end_time
        assert tram_a.stats.summary() == tram_b.stats.summary()

    def test_faulty_runs_are_deterministic(self):
        plan = FaultPlan(drop=0.05, dup=0.02, corrupt=0.01)
        rt_a, tram_a, stats_a = run_workload(faults=plan, reliability=FAST)
        rt_b, tram_b, stats_b = run_workload(faults=plan, reliability=FAST)
        assert stats_a.end_time == stats_b.end_time
        assert tram_a.stats.summary() == tram_b.stats.summary()
        assert rt_a.faults.stats.to_dict() == rt_b.faults.stats.to_dict()
        assert rt_a.reliable.stats.to_dict() == rt_b.reliable.stats.to_dict()


class TestFaultSession:
    def test_session_installs_plan_and_reliability(self):
        with FaultSession(FaultPlan(drop=0.1)):
            rt = RuntimeSystem(MACHINE, seed=0)
        assert rt.faults is not None
        assert rt.reliable is not None

    def test_session_reliability_opt_out(self):
        with FaultSession(FaultPlan(drop=0.1), reliability=None):
            rt = RuntimeSystem(MACHINE, seed=0)
        assert rt.faults is not None
        assert rt.reliable is None

    def test_explicit_argument_overrides_session(self):
        with FaultSession(FaultPlan(drop=0.5)):
            rt = RuntimeSystem(MACHINE, seed=0, faults=FaultPlan(dup=1.0))
        assert rt.faults.plan.dup == 1.0
        assert rt.faults.plan.drop == 0.0

    def test_no_session_no_faults(self):
        rt = RuntimeSystem(MACHINE, seed=0)
        assert rt.faults is None
        assert rt.reliable is None

    def test_session_run_delivers_exactly_once(self):
        with FaultSession(FaultPlan(drop=0.05)):
            _, tram, _ = run_workload()
        assert_exactly_once(tram)
