"""Process-failure fabric: crash/restart events end to end.

A scripted or seeded ``proc_crash`` kills a simulated process mid-run:
its workers stop scheduling, hosted aggregation buffers die with its
heap, and traffic towards it is dropped — all of it accounted into the
conservation ledger (``produced == delivered + lost_to_crash + ...``).
With the reliability layer on, retransmit-budget exhaustion turns into
peer-death suspicion, probe confirmation and channel teardown; a mere
reordering storm must never take that path (the suspicion trigger is
the retry budget, not the wire dice).

The workload trickles inserts across a simulated horizon (rather than
one burst at t=0) so that death confirmation lands *mid-traffic* and
the post-confirmation paths — insert-site drops, R2D alternate-hop
reroutes, WNs round-robin skips — actually execute.
"""

import numpy as np
import pytest

from repro.faults import FOREVER, FaultPlan, FaultWindow
from repro.flow import conservation_ledger
from repro.machine import MachineConfig
from repro.runtime.reliability import ReliabilityConfig
from repro.runtime.system import RuntimeSystem
from repro.tram import SCHEME_NAMES, TramConfig, make_scheme

MACHINE = MachineConfig(nodes=2, processes_per_node=2, workers_per_process=2)

FAST = ReliabilityConfig(retransmit_timeout_ns=20_000.0, ack_delay_ns=1_000.0)

#: Short budgets so peer death is confirmed a few tens of us after the
#: crash, well inside the insert horizon.  The retransmit timeout stays
#: above the loaded ack round-trip: an over-aggressive budget exhausts
#: on *live* channels too, degrading them to direct sends and starving
#: the aggregated paths this class exists to exercise.
CONFIRM_FAST = ReliabilityConfig(
    retransmit_timeout_ns=12_000.0,
    ack_delay_ns=500.0,
    max_retries=2,
    probe_timeout_ns=5_000.0,
    probe_retries=1,
)

#: Process 3 dies 10us in — early in the insert horizon.
CRASH_P3 = FaultPlan(
    windows=(FaultWindow(10_000.0, FOREVER, "proc_crash", target=3),)
)

#: Same crash, but the process rejoins 80us later.
CRASH_RESTART_P3 = CRASH_P3.with_window(
    FaultWindow(90_000.0, FOREVER, "proc_restart", target=3)
)


def run_workload(
    machine=MACHINE,
    faults=None,
    reliability=None,
    scheme="WPs",
    items=400,
    horizon_ns=150_000.0,
    seed=3,
    until=None,
):
    """Trickle ``items`` randomly-addressed inserts over ``horizon_ns``."""
    rt = RuntimeSystem(
        machine, seed=seed, faults=faults, reliability=reliability
    )
    tram = make_scheme(
        scheme, rt,
        TramConfig(buffer_items=16, idle_flush=True),
        deliver_item=lambda ctx, it: None,
    )
    W = machine.total_workers

    def one_send(ctx, dst):
        tram.insert(ctx, dst=dst)

    rng = np.random.default_rng(seed)
    for _ in range(items):
        src = int(rng.integers(0, W))
        dst = int(rng.integers(0, W))
        rt.post(src, one_send, dst, delay=float(rng.random() * horizon_ns))
    stats = rt.run(until=until, max_events=5_000_000)
    return rt, tram, stats


def assert_ledger_closed(rt):
    led = conservation_ledger(rt)
    assert led["balanced"] is True, led
    assert led["buffered"] == 0, led
    assert led["parked"] == 0, led
    return led


class TestCrashEvents:
    @pytest.mark.parametrize("scheme", SCHEME_NAMES + ("R2D", "WNs", "NN"))
    def test_scripted_crash_closes_the_ledger(self, scheme):
        rt, tram, _ = run_workload(faults=CRASH_P3, scheme=scheme)
        assert rt.dead_procs == {3}
        assert not rt.process(3).alive
        assert rt.faults.stats.proc_crashes == 1
        led = assert_ledger_closed(rt)
        # Mid-horizon death must actually cost items, and the loss must
        # be attributed to the crash (the wire dice are all zero here).
        assert led["lost_to_crash"] > 0
        assert led["lost"] == 0
        assert led["delivered"] + led["lost_to_crash"] == led["produced"]

    def test_restart_revives_the_process(self):
        rt, tram, _ = run_workload(faults=CRASH_RESTART_P3)
        assert rt.dead_procs == set()
        assert rt.process(3).alive
        assert rt.faults.stats.proc_crashes == 1
        assert rt.faults.stats.proc_restarts == 1
        led = assert_ledger_closed(rt)
        # Work lost during the outage stays lost (and stays accounted).
        assert led["lost_to_crash"] > 0

    def test_seeded_crashes_are_deterministic(self):
        plan = FaultPlan(
            crash_procs=1, crash_t_min_ns=5_000.0, crash_t_max_ns=40_000.0
        )
        rt_a, tram_a, stats_a = run_workload(faults=plan)
        rt_b, tram_b, stats_b = run_workload(faults=plan)
        assert rt_a.dead_procs == rt_b.dead_procs
        assert stats_a.end_time == stats_b.end_time
        assert tram_a.stats.summary() == tram_b.stats.summary()
        assert tram_a.stats.crash_summary() == tram_b.stats.crash_summary()
        assert conservation_ledger(rt_a) == conservation_ledger(rt_b)

    def test_seeded_victims_never_include_process_zero(self):
        # Process 0 hosts the quiescence coordinator; killing it would
        # take the referee down with the players.
        for seed in range(8):
            plan = FaultPlan(crash_procs=3, crash_t_max_ns=20_000.0)
            rt, _, _ = run_workload(faults=plan, seed=seed, items=40)
            assert 0 not in rt.dead_procs
            assert len(rt.dead_procs) == 3

    def test_wire_only_plan_keeps_fabric_unbuilt(self):
        rt, tram, _ = run_workload(faults=FaultPlan(drop=0.05))
        assert rt.dead_procs is None
        led = conservation_ledger(rt)
        assert "lost_to_crash" not in led
        from repro.obs.snapshot import run_snapshot

        snap = run_snapshot(rt)
        assert "proc_crashes" not in snap["faults"]
        assert "dead_peer_drops" not in snap["schemes"][0]["stats"]

    def test_crash_keys_serialized_when_armed(self):
        rt, tram, _ = run_workload(faults=CRASH_P3)
        from repro.obs.snapshot import run_snapshot

        snap = run_snapshot(rt)
        assert snap["faults"]["proc_crashes"] == 1
        assert snap["faults"]["items_lost_to_crash"] > 0
        assert "dead_peer_drops" in snap["schemes"][0]["stats"]
        assert "faults.dead_processes" in snap["metrics"]["metrics"]


class TestSuspicionProtocol:
    def test_dead_peer_is_suspected_confirmed_and_torn_down(self):
        rt, tram, _ = run_workload(faults=CRASH_P3, reliability=CONFIRM_FAST)
        st = rt.reliable.stats
        assert st.peers_suspected >= 1
        assert st.peers_confirmed_dead >= 1
        assert st.channels_torn_down >= 1
        # Confirmation told the scheme, which now drops at insert time
        # instead of burning retransmit budget.
        assert tram._dead_peers == {3}
        assert_ledger_closed(rt)

    def test_suspicion_does_not_fire_on_reordering(self):
        # The satellite case: heavy reorder + duplicate dice with the
        # crash fabric armed (a scripted crash parked far beyond the
        # horizon arms it; ``until`` stops the run before it fires).
        # Retransmit timeouts may trip, but every ack eventually lands
        # inside the backed-off retry budget — peer-death suspicion
        # must never trigger on a live peer.
        plan = FaultPlan(
            reorder=0.4,
            reorder_max_ns=30_000.0,
            dup=0.2,
            windows=(FaultWindow(1e12, FOREVER, "proc_crash", target=1),),
        )
        rt, tram, _ = run_workload(
            faults=plan, reliability=FAST, until=5_000_000.0
        )
        assert rt.dead_procs == set()  # armed, nobody died
        st = rt.reliable.stats
        assert rt.faults.stats.messages_reordered > 0
        assert rt.faults.stats.messages_duplicated > 0
        assert st.peers_suspected == 0
        assert st.peers_confirmed_dead == 0
        assert st.probes_sent == 0
        # Exactly-once delivery still holds.
        assert tram.stats.items_delivered == tram.stats.items_inserted
        assert tram.stats.pending_items == 0

    def test_restart_after_confirmation_resumes_delivery(self):
        rt, tram, _ = run_workload(
            faults=CRASH_RESTART_P3, reliability=CONFIRM_FAST, items=600,
            horizon_ns=250_000.0,
        )
        assert rt.dead_procs == set()
        # The restart cleared the scheme's dead mark: inserts pool
        # behind process 3 again.
        assert not tram._dead_peers
        led = assert_ledger_closed(rt)
        assert led["delivered"] > 0
        assert led["lost_to_crash"] > 0


class TestFailoverRouting:
    def _crash_with_confirmation(self, scheme, items=600):
        return run_workload(
            faults=CRASH_P3, reliability=CONFIRM_FAST, scheme=scheme,
            items=items,
        )

    def test_r2d_reroutes_around_dead_intermediary(self):
        rt, tram, _ = self._crash_with_confirmation("R2D")
        assert tram.stats.failover_reroutes > 0
        assert_ledger_closed(rt)

    def test_wns_skips_dead_sibling_in_round_robin(self):
        rt, tram, _ = self._crash_with_confirmation("WNs")
        # Node-addressed buffers survive: the dead process's node
        # sibling is alive, so chunks reroute to it.
        assert tram.stats.failover_reroutes > 0
        assert_ledger_closed(rt)

    @pytest.mark.parametrize("scheme", ("WW", "WPs", "PP", "NN"))
    def test_dead_destination_drops_at_insert_site(self, scheme):
        rt, tram, _ = self._crash_with_confirmation(scheme)
        # Post-confirmation inserts towards the dead peer are dropped
        # (and loss-accounted) before buffering anything.
        assert tram.stats.dead_peer_drops > 0
        assert_ledger_closed(rt)
