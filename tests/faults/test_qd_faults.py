"""Quiescence detection under faults: loss-aware books, degraded verdicts.

Three regimes:

* losses reported through ``wire_loss_accounting`` — the books close at
  ``produced == consumed + lost`` and the verdict is clean;
* losses *not* reported — complete waves stay stuck on identical
  unbalanced totals, and after ``STRIKE_LIMIT`` strikes the detector
  declares a *degraded* quiescence instead of polling forever;
* the wire eats the detector's own replies — stalled-wave watchdog
  strikes produce the degraded verdict.
"""

import numpy as np

from repro.faults import FOREVER, FaultPlan, FaultWindow
from repro.machine import MachineConfig
from repro.runtime.qd_protocol import QuiescenceDetector
from repro.runtime.quiescence import QDCounter
from repro.runtime.system import RuntimeSystem
from repro.tram import TramConfig, make_scheme

MACHINE = MachineConfig(nodes=2, processes_per_node=2, workers_per_process=2)

#: Items dropped only during the first 30us; the wire then heals so the
#: detector's own traffic runs cleanly.
EARLY_LOSS = FaultPlan(
    windows=(FaultWindow(0.0, 30_000.0, "drop", magnitude=1.0),)
)


def build_lossy_app(plan, wire_losses, n_items=60):
    rt = RuntimeSystem(MACHINE, seed=0, faults=plan, reliability=None)
    detected = []
    qd = QuiescenceDetector(rt, on_quiescence=detected.append,
                            poll_interval_ns=20_000.0)
    if wire_losses:
        rt.wire_loss_accounting(qd)
    tram = make_scheme(
        "WPs", rt, TramConfig(buffer_items=4, idle_flush=True),
        deliver_item=lambda ctx, it: qd.note_consumed(ctx),
    )

    def one_send(ctx, dst):
        qd.note_produced(ctx)
        tram.insert(ctx, dst=dst)

    rng = np.random.default_rng(1)
    for _ in range(n_items):
        src = int(rng.integers(0, MACHINE.total_workers))
        dst = int(rng.integers(0, MACHINE.total_workers))
        rt.post(src, one_send, dst, delay=float(rng.random() * 20_000.0))
    qd.start()
    return rt, qd, detected, tram


class TestLossAwareQuiescence:
    def test_reported_losses_close_the_books(self):
        rt, qd, detected, tram = build_lossy_app(EARLY_LOSS, wire_losses=True)
        rt.run(max_events=1_000_000)
        assert qd.detected
        assert len(detected) == 1
        assert not qd.degraded  # losses were accounted: clean verdict
        assert rt.faults.stats.items_lost > 0

    def test_unreported_losses_yield_degraded_verdict(self):
        rt, qd, detected, tram = build_lossy_app(EARLY_LOSS, wire_losses=False)
        rt.run(max_events=1_000_000)
        assert rt.faults.stats.items_lost > 0
        assert qd.detected  # it did terminate...
        assert qd.degraded  # ...but honestly flagged the imbalance
        assert len(detected) == 1

    def test_lost_detector_replies_trip_the_watchdog(self):
        # Everything inter-node vanishes forever, detector traffic
        # included: waves stall, the watchdog strikes out, and the
        # detector still terminates (degraded).
        blackhole = FaultPlan(
            windows=(FaultWindow(0.0, FOREVER, "drop", magnitude=1.0),)
        )
        rt, qd, detected, _ = build_lossy_app(blackhole, wire_losses=True)
        rt.run(max_events=1_000_000)
        assert qd.detected
        assert qd.degraded
        assert len(detected) == 1

    def test_clean_run_verdict_is_not_degraded(self):
        rt, qd, detected, _ = build_lossy_app(None, wire_losses=False)
        assert rt.faults is None
        rt.run(max_events=1_000_000)
        assert qd.detected
        assert not qd.degraded


class TestQDCounterLoss:
    def test_lost_items_balance_the_counter(self):
        qd = QDCounter()
        qd.produce(10)
        qd.consume(7)
        assert not qd.balanced
        assert qd.outstanding == 3
        qd.note_lost(3)
        assert qd.balanced
        assert qd.outstanding == 0
        assert qd.lost == 3

    def test_require_balanced_reports_loss(self):
        qd = QDCounter()
        qd.produce(5)
        qd.consume(5)
        qd.require_balanced()  # no raise
