"""Unit tests for the seeded FaultInjector dice."""

import numpy as np

from repro.faults import FOREVER, FaultPlan, FaultWindow
from repro.faults.injector import FaultInjector
from repro.network.message import NetMessage


def make_injector(plan, seed=0):
    return FaultInjector(plan=plan, rng=np.random.default_rng(seed))


def msg(count=5, seq=None):
    class Payload:
        pass

    p = Payload()
    p.count = count
    return NetMessage(
        kind="t", src_worker=0, dst_process=1, size_bytes=64, payload=p, seq=seq
    )


class TestWireOutcomes:
    def test_certain_drop_destroys_message(self):
        inj = make_injector(FaultPlan(drop=1.0))
        assert inj.wire_outcomes(msg(), dst_node=1, now=0.0) == []
        assert inj.stats.messages_dropped == 1
        assert inj.stats.messages_lost == 1
        assert inj.stats.items_lost == 5

    def test_protected_drop_is_not_counted_lost(self):
        # A message with a sequence number will be retransmitted; its
        # loss is the reliability layer's to account, not the fabric's.
        inj = make_injector(FaultPlan(drop=1.0))
        assert inj.wire_outcomes(msg(seq=7), dst_node=1, now=0.0) == []
        assert inj.stats.messages_dropped == 1
        assert inj.stats.messages_lost == 0
        assert inj.stats.items_lost == 0

    def test_certain_dup_yields_two_copies(self):
        inj = make_injector(FaultPlan(dup=1.0))
        m = msg()
        outcomes = inj.wire_outcomes(m, dst_node=1, now=0.0)
        assert len(outcomes) == 2
        (orig, d0), (copy, d1) = outcomes
        assert orig is m
        assert copy is not m
        assert copy.msg_id == m.msg_id  # same logical message
        assert copy.payload is m.payload
        assert (d0, d1) == (0.0, 0.0)
        assert inj.stats.messages_duplicated == 1

    def test_certain_corrupt_clears_checksum(self):
        inj = make_injector(FaultPlan(corrupt=1.0))
        m = msg()
        [(out, _)] = inj.wire_outcomes(m, dst_node=1, now=0.0)
        assert out is m
        assert not m.checksum_ok
        assert inj.stats.messages_corrupted == 1

    def test_certain_reorder_adds_bounded_delay(self):
        inj = make_injector(FaultPlan(reorder=1.0, reorder_max_ns=2_000.0))
        for _ in range(50):
            [(_, extra)] = inj.wire_outcomes(msg(), dst_node=1, now=0.0)
            assert 0.0 <= extra <= 2_000.0
        assert inj.stats.messages_reordered == 50

    def test_clean_plan_passes_message_through(self):
        inj = make_injector(FaultPlan(drop=0.0, dup=0.0))
        m = msg()
        assert inj.wire_outcomes(m, dst_node=1, now=0.0) == [(m, 0.0)]
        assert m.checksum_ok

    def test_on_loss_callback_fires_for_unprotected_drops(self):
        inj = make_injector(FaultPlan(drop=1.0))
        seen = []
        inj.on_loss = lambda m, items: seen.append(items)
        inj.wire_outcomes(msg(count=3), dst_node=1, now=0.0)
        assert seen == [3]


class TestDiceIndependence:
    """Enabling one fault must not reshuffle another's placement."""

    def drops(self, plan, n=400, seed=42):
        inj = make_injector(plan, seed=seed)
        out = []
        for _ in range(n):
            out.append(inj.wire_outcomes(msg(), dst_node=1, now=0.0) == [])
        return out

    def test_drop_placement_invariant_under_dup_and_corrupt(self):
        baseline = self.drops(FaultPlan(drop=0.2))
        with_dup = self.drops(FaultPlan(drop=0.2, dup=0.5, corrupt=0.3))
        assert baseline == with_dup

    def test_same_seed_same_outcomes(self):
        plan = FaultPlan(drop=0.1, dup=0.1, corrupt=0.1, reorder=0.1)
        assert self.drops(plan, seed=7) == self.drops(plan, seed=7)


class TestWindows:
    def test_drop_window_raises_probability_while_active(self):
        plan = FaultPlan(
            windows=(FaultWindow(100.0, 200.0, "drop", magnitude=1.0),)
        )
        inj = make_injector(plan)
        assert inj.wire_outcomes(msg(), dst_node=1, now=50.0) != []
        assert inj.wire_outcomes(msg(), dst_node=1, now=150.0) == []
        assert inj.wire_outcomes(msg(), dst_node=1, now=250.0) != []

    def test_drop_window_scoped_to_destination_node(self):
        plan = FaultPlan(
            windows=(
                FaultWindow(0.0, FOREVER, "drop", target=2, magnitude=1.0),
            )
        )
        inj = make_injector(plan)
        assert inj.wire_outcomes(msg(), dst_node=2, now=0.0) == []
        assert inj.wire_outcomes(msg(), dst_node=1, now=0.0) != []

    def test_nic_degrade_multiplier(self):
        plan = FaultPlan(
            windows=(
                FaultWindow(0.0, 100.0, "nic_degrade", target=0, magnitude=4.0),
                FaultWindow(0.0, 100.0, "nic_degrade", target=None, magnitude=2.0),
            )
        )
        inj = make_injector(plan)
        assert inj.nic_occupancy_multiplier(0, 50.0) == 8.0  # both stack
        assert inj.nic_occupancy_multiplier(1, 50.0) == 2.0  # broadcast only
        assert inj.nic_occupancy_multiplier(0, 150.0) == 1.0  # expired

    def test_ct_stall_until(self):
        plan = FaultPlan(
            windows=(
                FaultWindow(100.0, 300.0, "ct_stall", target=1),
                FaultWindow(100.0, 500.0, "ct_stall", target=1),
            )
        )
        inj = make_injector(plan)
        assert inj.ct_stall_until(1, 200.0) == 500.0  # longest covering wins
        assert inj.ct_stall_until(0, 200.0) == 200.0  # other process untouched
        assert inj.ct_stall_until(1, 600.0) == 600.0  # after the windows

    def test_has_wire_faults(self):
        assert make_injector(FaultPlan(drop=0.1)).has_wire_faults()
        assert make_injector(
            FaultPlan(windows=(FaultWindow(0.0, 1.0, "dup"),))
        ).has_wire_faults()
        assert not make_injector(
            FaultPlan(windows=(FaultWindow(0.0, 1.0, "ct_stall"),))
        ).has_wire_faults()
