"""Unit tests for the declarative fault model (FaultPlan / FaultWindow)."""

import pytest

from repro.errors import FaultInjectionError
from repro.faults import FOREVER, KINDS, PROCESS_KINDS, FaultPlan, FaultWindow


class TestFaultWindow:
    def test_active_interval_is_half_open(self):
        w = FaultWindow(100.0, 200.0, "drop")
        assert not w.active(99.0)
        assert w.active(100.0)
        assert w.active(199.9)
        assert not w.active(200.0)

    def test_forever_window(self):
        w = FaultWindow(0.0, FOREVER, "ct_stall", target=3)
        assert w.active(1e18)

    def test_target_matching(self):
        scoped = FaultWindow(0.0, 1.0, "drop", target=2)
        assert scoped.matches(2)
        assert not scoped.matches(1)
        broadcast = FaultWindow(0.0, 1.0, "drop", target=None)
        assert broadcast.matches(0) and broadcast.matches(7)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(t_start=0.0, t_end=1.0, kind="meteor"),
            dict(t_start=-1.0, t_end=1.0, kind="drop"),
            dict(t_start=5.0, t_end=5.0, kind="drop"),
            dict(t_start=0.0, t_end=1.0, kind="drop", magnitude=1.5),
            dict(t_start=0.0, t_end=1.0, kind="nic_degrade", magnitude=0.5),
        ],
    )
    def test_invalid_windows_raise(self, kwargs):
        with pytest.raises(FaultInjectionError):
            FaultWindow(**kwargs)

    def test_all_kinds_constructible(self):
        for kind in KINDS:
            mag = 2.0 if kind == "nic_degrade" else 0.5
            target = 1 if kind in PROCESS_KINDS else None
            FaultWindow(0.0, 1.0, kind, magnitude=mag, target=target)


class TestFaultPlan:
    def test_defaults_are_noop(self):
        assert FaultPlan().is_noop()

    def test_any_probability_breaks_noop(self):
        assert not FaultPlan(drop=0.01).is_noop()
        assert not FaultPlan(reorder=0.1).is_noop()

    def test_windows_break_noop(self):
        plan = FaultPlan(windows=(FaultWindow(0.0, 1.0, "ct_stall"),))
        assert not plan.is_noop()

    @pytest.mark.parametrize("name", ["drop", "dup", "corrupt", "reorder"])
    def test_probability_bounds(self, name):
        with pytest.raises(FaultInjectionError):
            FaultPlan(**{name: 1.5})
        with pytest.raises(FaultInjectionError):
            FaultPlan(**{name: -0.1})

    def test_reorder_max_must_be_positive(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan(reorder_max_ns=0.0)

    def test_with_window_appends(self):
        base = FaultPlan(drop=0.1)
        w1 = FaultWindow(0.0, 1.0, "drop")
        w2 = FaultWindow(1.0, 2.0, "dup")
        plan = base.with_window(w1).with_window(w2)
        assert plan.windows == (w1, w2)
        assert base.windows == ()  # original untouched (frozen)
        assert plan.drop == 0.1


class TestParse:
    def test_parse_full_spec(self):
        plan = FaultPlan.parse(
            "drop=0.05, dup=0.01,corrupt=0.005,reorder=0.02,reorder_max=8000"
        )
        assert plan.drop == 0.05
        assert plan.dup == 0.01
        assert plan.corrupt == 0.005
        assert plan.reorder == 0.02
        assert plan.reorder_max_ns == 8000.0

    def test_parse_empty_is_noop(self):
        assert FaultPlan.parse("").is_noop()

    def test_parse_bad_key(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan.parse("explode=0.5")

    def test_parse_bad_value(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan.parse("drop=lots")

    def test_parse_missing_equals(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan.parse("drop")

    def test_parse_out_of_range_value(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan.parse("drop=2.0")
