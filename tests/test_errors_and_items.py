"""Tests for the error hierarchy and item containers."""

import pytest

from repro.errors import (
    ConfigError,
    DeliveryError,
    HarnessError,
    QuiescenceError,
    ReproError,
    SchedulingError,
    SimulationError,
)
from repro.tram.item import BulkBatch, Item, ItemBatch


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [ConfigError, DeliveryError, HarnessError, QuiescenceError,
         SchedulingError, SimulationError],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_scheduling_is_simulation_error(self):
        assert issubclass(SchedulingError, SimulationError)
        assert issubclass(DeliveryError, SimulationError)
        assert issubclass(QuiescenceError, SimulationError)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise ConfigError("x")


class TestItem:
    def test_fields(self):
        item = Item(dst=3, src=1, created=5.0, payload="p", priority=2.0)
        assert (item.dst, item.src, item.created) == (3, 1, 5.0)
        assert item.payload == "p"
        assert item.priority == 2.0

    def test_defaults(self):
        item = Item(dst=0, src=0, created=0.0)
        assert item.payload is None
        assert item.priority is None


class TestItemBatch:
    def test_count(self):
        batch = ItemBatch([Item(0, 0, 0.0), Item(1, 0, 0.0)])
        assert batch.count == 2
        assert not batch.grouped
        assert batch.sections is None

    def test_grouped_sections(self):
        items = [Item(0, 0, 0.0)]
        batch = ItemBatch(items, grouped=True, sections=[(0, items)])
        assert batch.grouped
        assert batch.sections[0][0] == 0


class TestBulkBatch:
    def test_minimal(self):
        batch = BulkBatch(
            count=5, dst_ids=None, dst_counts=None, src_ids=None,
            src_counts=None, t_sum=10.0, t_min=1.0,
        )
        assert batch.count == 5
        assert not batch.grouped
