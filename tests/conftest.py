"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.machine import CostModel, MachineConfig
from repro.runtime.system import RuntimeSystem


@pytest.fixture
def tiny_machine() -> MachineConfig:
    """2 nodes x 2 processes x 2 workers (8 workers), SMP."""
    return MachineConfig(nodes=2, processes_per_node=2, workers_per_process=2)


@pytest.fixture
def tiny_rt(tiny_machine) -> RuntimeSystem:
    """Runtime on the tiny machine, seed 0."""
    return RuntimeSystem(tiny_machine, seed=0)


@pytest.fixture
def make_rt():
    """Factory: ``make_rt(nodes=2, ppn=2, wpp=2, smp=True, **cost_overrides)``."""

    def _make(
        nodes: int = 2,
        ppn: int = 2,
        wpp: int = 2,
        smp: bool = True,
        seed: int = 0,
        **cost_overrides,
    ) -> RuntimeSystem:
        machine = MachineConfig(
            nodes=nodes,
            processes_per_node=ppn,
            workers_per_process=wpp,
            smp=smp,
        )
        costs = CostModel(**cost_overrides) if cost_overrides else None
        return RuntimeSystem(machine, costs, seed=seed)

    return _make
