"""Stage-partition identity with ``bp_stall``, all schemes, under load.

Every scheme on both machine shapes runs with tiny credit caps, the
fault soup and the reliability layer at once: the non-handler stages —
now including the ``bp_stall`` wait parked at a credit gate — must still
sum exactly to the end-to-end latency total, and every item must arrive
exactly once.
"""

import pytest

from repro.faults import FaultPlan
from repro.flow import FlowConfig
from repro.machine import MachineConfig, nonsmp_machine
from repro.obs import ObsConfig
from repro.obs.spans import STAGES
from repro.runtime.reliability import ReliabilityConfig
from repro.runtime.system import RuntimeSystem
from repro.tram import SCHEME_NAMES, TramConfig, make_scheme

REL_TOL = 1e-6

SOUP = FaultPlan(drop=0.05, dup=0.01, corrupt=0.005)
REL = ReliabilityConfig(retransmit_timeout_ns=40_000.0, ack_delay_ns=1_000.0)
FLOW = FlowConfig(
    ct_max_msgs=2,
    ct_max_bytes=2048,
    nic_max_msgs=2,
    nic_max_bytes=2048,
    overload_backlog_ns=10_000.0,
    clear_backlog_ns=2_000.0,
)

SMP = MachineConfig(nodes=2, processes_per_node=2, workers_per_process=2)
NONSMP = nonsmp_machine(2, ranks_per_node=4)


def run_loaded(scheme, machine, faults=SOUP, reliability=REL, flow=FLOW):
    rt = RuntimeSystem(
        machine, seed=3, obs=ObsConfig(), faults=faults,
        reliability=reliability, flow=flow,
    )
    tram = make_scheme(
        scheme, rt,
        TramConfig(buffer_items=16, idle_flush=True),
        deliver_item=lambda ctx, it: None,
    )
    W = machine.total_workers

    def driver(ctx):
        rng = rt.rng.stream(f"flowsoup/{ctx.worker.wid}")
        for _ in range(150):
            tram.insert(ctx, dst=int(rng.integers(0, W)))

    for w in range(W):
        rt.post(w, driver)
    rt.run(max_events=30_000_000)
    return rt, tram


def assert_partition(tram):
    stages = tram.stages
    assert stages is not None
    assert set(stages.hists) == set(STAGES)
    assert "bp_stall" in stages.hists
    total = stages.total_ns(include_handler=False)
    latency = tram.stats.latency.total
    assert total == pytest.approx(latency, rel=REL_TOL)


class TestFlowSoupPartition:
    @pytest.mark.parametrize("scheme", SCHEME_NAMES)
    @pytest.mark.parametrize("machine", [SMP, NONSMP], ids=["smp", "nonsmp"])
    def test_exactly_once_and_partition(self, scheme, machine):
        rt, tram = run_loaded(scheme, machine)
        st = tram.stats
        assert st.items_delivered == st.items_inserted
        assert st.pending_items == 0
        assert rt.reliable.pending_count() == 0
        # Both the fabric and the gates actually interfered.
        fstats = rt.faults.stats
        assert (
            fstats.messages_dropped
            + fstats.messages_duplicated
            + fstats.messages_corrupted
        ) > 0
        assert rt.flow.stats.messages_parked > 0
        assert_partition(tram)
        cons = rt.flow.conservation()
        assert cons["balanced"] is True
        assert cons["parked"] == 0

    def test_bp_stall_stage_populated_under_pressure(self):
        rt, tram = run_loaded("WPs", SMP)
        bp = tram.stages.hists["bp_stall"]
        assert bp.count > 0
        assert bp.total > 0.0

    def test_clean_run_has_empty_bp_stall_stage(self):
        rt, tram = run_loaded("WPs", SMP, faults=None, flow=None)
        assert rt.flow is None
        bp = tram.stages.hists["bp_stall"]
        assert bp.count == 0
        assert_partition(tram)
