"""Harness surface: snapshots, registry metrics, artifacts and the CLI."""

import json

import pytest

from repro.flow import FlowConfig
from repro.machine import MachineConfig
from repro.obs import ObsConfig
from repro.obs.registry import registry_from_runtime
from repro.obs.snapshot import run_snapshot
from repro.runtime.system import RuntimeSystem
from repro.tram import TramConfig, make_scheme

SMP = MachineConfig(nodes=2, processes_per_node=2, workers_per_process=2)

TINY = FlowConfig(
    ct_max_msgs=2, ct_max_bytes=2048, nic_max_msgs=2, nic_max_bytes=2048,
    overload_backlog_ns=5_000.0, clear_backlog_ns=1_000.0,
)


def run_flowed(flow=TINY):
    rt = RuntimeSystem(SMP, seed=0, obs=ObsConfig(), flow=flow)
    tram = make_scheme(
        "WPs", rt, TramConfig(buffer_items=4, idle_flush=True),
        deliver_item=lambda ctx, it: None,
    )
    W = SMP.total_workers

    def driver(ctx, remaining):
        rng = rt.rng.stream(f"h/{ctx.worker.wid}/{remaining}")
        for _ in range(50):
            tram.insert(ctx, dst=int(rng.integers(0, W)))
        if remaining:
            ctx.emit(ctx.worker.post_task, driver, remaining - 1)

    for w in range(W):
        rt.post(w, driver, 5)
    rt.run(max_events=50_000_000)
    return rt, tram


class TestRegistry:
    def test_flow_metrics_present(self):
        rt, _ = run_flowed()
        names = registry_from_runtime(rt).to_json()["metrics"]
        for key in (
            "flow.messages_admitted", "flow.messages_parked",
            "flow.messages_shed", "flow.items_shed", "flow.bytes_shed",
            "flow.park_wait_ns", "flow.source_stall_ns",
            "flow.parked_messages", "flow.overloaded",
            "flow.overload_escalations", "flow.overload_clears",
        ):
            assert key in names, key
        assert names["flow.messages_parked"]["value"] > 0

    def test_worker_and_ct_gauges_present(self):
        rt, _ = run_flowed()
        names = registry_from_runtime(rt).to_json()["metrics"]
        assert names["workers.queued_bytes_hwm"]["value"] > 0
        assert names["commthreads.max_backlog_ns"]["value"] > 0.0

    def test_no_flow_metrics_when_off(self):
        rt, _ = run_flowed(flow=None)
        names = registry_from_runtime(rt).to_json()["metrics"]
        assert not any(k.startswith("flow.") for k in names)


class TestSnapshot:
    def test_flow_block_round_trips(self):
        rt, _ = run_flowed()
        snap = run_snapshot(rt)
        flow = snap["flow"]
        assert flow is not None
        assert flow["conservation"]["balanced"] is True
        assert flow["stats"]["messages_parked"] > 0
        assert snap["utilization"]["worker_queued_bytes_hwm"] > 0
        assert "bottleneck_detail" in snap["utilization"]
        json.dumps(snap)  # must be JSON-clean

    def test_flow_block_none_when_off(self):
        rt, _ = run_flowed(flow=None)
        assert run_snapshot(rt)["flow"] is None


class TestArtifactValidation:
    def _payload(self, rt):
        from repro.harness.artifact import build_metrics_payload

        return build_metrics_payload(
            target="test", profile="quick", runs=[run_snapshot(rt)]
        )

    def test_valid_flow_artifact_passes(self):
        from repro.harness.artifact import validate_metrics_payload

        rt, _ = run_flowed()
        assert validate_metrics_payload(self._payload(rt)) == []

    def test_conservation_violation_flagged(self):
        from repro.harness.artifact import validate_metrics_payload

        rt, _ = run_flowed()
        payload = self._payload(rt)
        payload["runs"][0]["flow"]["conservation"]["balanced"] = False
        errors = validate_metrics_payload(payload)
        assert any("conservation violated" in e for e in errors)

    def test_stranded_parked_items_flagged(self):
        from repro.harness.artifact import validate_metrics_payload

        rt, _ = run_flowed()
        payload = self._payload(rt)
        payload["runs"][0]["flow"]["conservation"]["parked"] = 3
        errors = validate_metrics_payload(payload)
        assert any("still parked" in e for e in errors)

    def test_missing_flow_metrics_flagged(self):
        from repro.harness.artifact import validate_metrics_payload

        rt, _ = run_flowed()
        payload = self._payload(rt)
        del payload["runs"][0]["metrics"]["metrics"]["flow.items_shed"]
        errors = validate_metrics_payload(payload)
        assert any("flow.* metrics missing" in e for e in errors)


class TestRunFigure:
    def test_figure_under_flow_writes_valid_artifact(self, tmp_path):
        from repro.harness.artifact import validate_metrics_payload
        from repro.harness.figures import run_figure

        out = tmp_path / "fig3.json"
        run_figure("fig3", "quick", metrics_path=out,
                   flow="ct_msgs=4,ct_bytes=8192")
        payload = json.loads(out.read_text())
        assert validate_metrics_payload(payload) == []
        assert payload["config"]["flow"]["ct_max_msgs"] == 4
        flowed = [r for r in payload["runs"] if r["flow"] is not None]
        assert flowed  # every simulated run carried the controller
        for run in flowed:
            assert run["flow"]["conservation"]["balanced"] in (True, None)

    def test_disabled_spec_is_fast_path(self):
        from repro.harness.figures import run_figure

        data = run_figure("fig3", "quick", flow=FlowConfig(enabled=False))
        assert data.fig_id == "fig3"


class TestCli:
    def test_bad_flow_spec_rejected_early(self, capsys):
        from repro.harness.cli import main

        assert main(["fig3", "--flow", "ct_msgs=0"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_flow_key_rejected(self, capsys):
        from repro.harness.cli import main

        assert main(["fig3", "--flow", "bogus=1"]) == 2


class TestSweep:
    def test_sweep_runs_under_flow_session(self):
        from repro.harness.sweep import run_sweep

        calls = []

        def fn(x, seed):
            from repro.flow import active_flow_config

            calls.append(active_flow_config())
            return float(x)

        res = run_sweep(fn, {"x": [1, 2]}, flow="ct_msgs=3")
        assert [c.mean for c in res.cells] == [1.0, 2.0]
        assert all(c is not None and c.ct_max_msgs == 3 for c in calls)
