"""Chaos/soak: faults + overload + shedding, item conservation exact.

Drives every scheme under saturating multi-round load with the fault
fabric and the flow controller active at once, then closes the item
ledger::

    produced == delivered + shed + lost + abandoned + buffered + parked

Variant A runs *without* the reliability layer (drop + corrupt only —
no duplication, which would make conservation unclosable) and with
shedding armed, so both loss paths are exercised. Variant B runs the
full soup behind the reliability layer: nothing may be shed or lost,
every item arrives exactly once.
"""

import pytest

from repro.faults import FaultPlan, FaultWindow
from repro.flow import FlowConfig
from repro.machine import MachineConfig
from repro.runtime.reliability import ReliabilityConfig
from repro.runtime.system import RuntimeSystem
from repro.tram import SCHEME_NAMES, TramConfig, make_scheme

SMP = MachineConfig(nodes=2, processes_per_node=2, workers_per_process=2)

#: Loss-tolerant chaos: no dup (keeps the ledger closable without
#: reliability), plus component windows so overload and faults compose.
CHAOS = FaultPlan(
    drop=0.03,
    corrupt=0.01,
    windows=(
        FaultWindow(5_000.0, 40_000.0, "ct_stall", target=0),
        FaultWindow(10_000.0, 60_000.0, "nic_degrade", target=1,
                    magnitude=4.0),
    ),
)

SHEDDING = FlowConfig(
    ct_max_msgs=2,
    ct_max_bytes=1024,
    nic_max_msgs=2,
    nic_max_bytes=1024,
    overload_backlog_ns=3_000.0,
    clear_backlog_ns=500.0,
    shed_backlog_ns=4_000.0,
    max_parked_per_dest=2,
    max_stall_ns=10_000.0,
)

CAPS_ONLY = SHEDDING.with_(shed_backlog_ns=None)

REL = ReliabilityConfig(retransmit_timeout_ns=60_000.0, ack_delay_ns=1_000.0)

SOUP = FaultPlan(drop=0.05, dup=0.01, corrupt=0.005)


def soak(scheme, *, faults, reliability, flow, rounds=6, per_round=60):
    rt = RuntimeSystem(
        SMP, seed=7, faults=faults, reliability=reliability, flow=flow
    )
    tram = make_scheme(
        scheme, rt,
        TramConfig(buffer_items=8, idle_flush=True),
        deliver_item=lambda ctx, it: None,
    )
    W = SMP.total_workers

    def driver(ctx, remaining):
        rng = rt.rng.stream(f"soak/{ctx.worker.wid}/{remaining}")
        for _ in range(per_round):
            tram.insert(ctx, dst=int(rng.integers(0, W)))
        if remaining:
            ctx.emit(ctx.worker.post_task, driver, remaining - 1)

    for w in range(W):
        rt.post(w, driver, rounds - 1)
    rt.run(max_events=50_000_000)
    return rt, tram


class TestLossyConservation:
    """Variant A: unprotected chaos with shedding armed."""

    @pytest.mark.parametrize("scheme", SCHEME_NAMES)
    def test_ledger_closes_exactly(self, scheme):
        rt, tram = soak(
            scheme, faults=CHAOS, reliability=None, flow=SHEDDING
        )
        cons = rt.flow.conservation()
        assert cons["balanced"] is True
        assert cons["produced"] == tram.stats.items_inserted
        assert cons["parked"] == 0
        assert cons["buffered"] == 0
        # Chaos actually destroyed something on at least one path.
        assert cons["lost"] + cons["shed"] > 0
        assert (
            cons["delivered"] + cons["shed"] + cons["lost"]
            == cons["produced"]
        )

    def test_shedding_triggers_and_is_attributed(self):
        rt, _ = soak("WW", faults=CHAOS, reliability=None, flow=SHEDDING)
        stats = rt.flow.stats
        assert stats.messages_shed > 0
        assert stats.items_shed > 0
        assert stats.bytes_shed > 0
        assert sum(rt.flow.shed_by_dest.values()) == stats.messages_shed

    def test_shed_drops_feed_loss_accounting(self):
        """Shed messages flow through the same on_loss hook the fault
        fabric uses, so loss-aware quiescence sees them."""
        rt = RuntimeSystem(SMP, seed=7, faults=CHAOS, flow=SHEDDING)
        seen = []
        rt.flow.on_loss = lambda msg, items: seen.append(items)
        tram = make_scheme(
            "WW", rt, TramConfig(buffer_items=8, idle_flush=True),
            deliver_item=lambda ctx, it: None,
        )
        W = SMP.total_workers

        def driver(ctx, remaining):
            rng = rt.rng.stream(f"soak/{ctx.worker.wid}/{remaining}")
            for _ in range(60):
                tram.insert(ctx, dst=int(rng.integers(0, W)))
            if remaining:
                ctx.emit(ctx.worker.post_task, driver, remaining - 1)

        for w in range(W):
            rt.post(w, driver, 5)
        rt.run(max_events=50_000_000)
        assert sum(seen) == rt.flow.stats.items_shed
        assert rt.flow.stats.messages_shed == len(seen)


class TestProtectedConservation:
    """Variant B: full soup behind reliability — exactly once, no loss."""

    @pytest.mark.parametrize("scheme", SCHEME_NAMES)
    def test_exactly_once_under_soup(self, scheme):
        rt, tram = soak(
            scheme, faults=SOUP, reliability=REL, flow=CAPS_ONLY
        )
        cons = rt.flow.conservation()
        assert cons["balanced"] is True
        assert cons["shed"] == 0  # shedding disarmed: caps only
        assert cons["delivered"] == cons["produced"]
        assert tram.stats.items_delivered == tram.stats.items_inserted
        assert rt.reliable.pending_count() == 0
        assert rt.flow.stats.messages_parked > 0

    def test_retransmits_respect_credits(self):
        """Recovery traffic re-enters the gated transport: the message
        caps hold even while retransmission storms repair drops."""
        rt, tram = soak("WPs", faults=SOUP, reliability=REL, flow=CAPS_ONLY)
        assert rt.reliable.stats.retransmits > 0
        for gate in rt.flow.gates():
            assert gate.hwm_msgs <= gate.max_msgs

    def test_dup_without_reliability_is_unclosable(self):
        """Duplication with nobody deduplicating delivers twice — the
        controller reports the ledger as unclosable, not as violated."""
        rt, _ = soak(
            "WW", faults=FaultPlan(dup=0.05), reliability=None,
            flow=CAPS_ONLY, rounds=3,
        )
        assert rt.flow.conservation()["balanced"] is None
