"""Integration: bounded occupancy, backpressure and overload behavior.

Covers the tentpole mechanics (caps honored under saturating load,
parked messages drained by quiescence, source stalls) plus the worker
queue-accounting and comm-thread backlog satellites, expedited-lane
ordering under backpressure stalls, and overload escalation composed
with scripted comm-thread stalls.
"""

import pytest

from repro.faults import FaultPlan, FaultWindow
from repro.flow import FlowConfig
from repro.machine import MachineConfig, nonsmp_machine
from repro.network.message import NetMessage
from repro.runtime.system import RuntimeSystem
from repro.tram import TramConfig, make_scheme

TINY = FlowConfig(
    ct_max_msgs=2,
    ct_max_bytes=2048,
    nic_max_msgs=2,
    nic_max_bytes=2048,
    overload_backlog_ns=5_000.0,
    clear_backlog_ns=1_000.0,
)

SMP = MachineConfig(nodes=2, processes_per_node=2, workers_per_process=2)


def saturate(machine, flow, scheme="WW", rounds=8, per_round=50, **tram_kw):
    """Drive every worker with ``rounds`` insert tasks (multi-task so
    later tasks observe the congestion earlier emissions created)."""
    rt = RuntimeSystem(machine, seed=0, flow=flow)
    tram = make_scheme(
        scheme, rt,
        TramConfig(buffer_items=4, idle_flush=True, **tram_kw),
        deliver_item=lambda ctx, it: None,
    )
    W = machine.total_workers

    def driver(ctx, remaining):
        rng = rt.rng.stream(f"sat/{ctx.worker.wid}/{remaining}")
        for _ in range(per_round):
            tram.insert(ctx, dst=int(rng.integers(0, W)))
        if remaining:
            ctx.emit(ctx.worker.post_task, driver, remaining - 1)

    for w in range(W):
        rt.post(w, driver, rounds - 1)
    rt.run(max_events=50_000_000)
    return rt, tram


class TestBoundedOccupancy:
    @pytest.mark.parametrize(
        "machine", [SMP, nonsmp_machine(2, ranks_per_node=4)],
        ids=["smp", "nonsmp"],
    )
    def test_caps_honored_under_saturation(self, machine):
        rt, tram = saturate(machine, TINY)
        assert tram.stats.items_delivered == tram.stats.items_inserted
        assert rt.flow.stats.messages_parked > 0
        for gate in rt.flow.gates():
            assert gate.hwm_msgs <= gate.max_msgs
            assert not gate.parked  # everything drained by quiescence
        cons = rt.flow.conservation()
        assert cons["balanced"] is True
        assert cons["parked"] == 0

    def test_source_stalls_charged_under_congestion(self):
        rt, _ = saturate(SMP, TINY)
        assert rt.flow.stats.source_stalls > 0
        assert rt.flow.stats.source_stall_ns > 0.0

    def test_flow_off_runs_identically_to_seed(self):
        base_rt, base = saturate(SMP, None)
        assert base_rt.flow is None
        flow_rt, flowed = saturate(SMP, TINY)
        # Backpressure changes timing but never loses or invents items.
        assert (
            flowed.stats.items_delivered == base.stats.items_delivered
        )


class TestWorkerQueueAccounting:
    def test_queued_bytes_hwm_tracked_and_drains(self):
        rt, _ = saturate(SMP, TINY)
        hwms = [w.stats.queued_bytes_hwm for w in rt.workers]
        assert max(hwms) > 0
        for w in rt.workers:
            assert w.stats.queued_bytes == 0  # all handlers ran

    def test_surfaced_in_utilization_report(self):
        from repro.harness.metrics import utilization

        rt, _ = saturate(SMP, TINY)
        report = utilization(rt)
        assert report.worker_queued_bytes_hwm == max(
            w.stats.queued_bytes_hwm for w in rt.workers
        )
        assert "worker queued bytes" in report.to_table()


class TestCommThreadBacklog:
    def test_max_backlog_recorded(self):
        rt, _ = saturate(SMP, TINY)
        backlogs = [
            p.commthread.stats.max_backlog_ns
            for p in rt.processes
            if p.commthread is not None
        ]
        assert max(backlogs) > 0.0

    def test_bottleneck_detail_names_backlog(self):
        from repro.harness.metrics import UtilizationReport

        report = UtilizationReport(
            total_time_ns=1e6,
            worker_mean=0.1, worker_max=0.2,
            commthread_mean=0.8, commthread_max=0.9,
            nic_tx_mean=0.3, nic_rx_mean=0.3,
            commthread_queue_wait_ns=0.0, nic_queue_wait_ns=0.0,
            commthread_max_backlog_ns=123_456.0,
            worker_queued_bytes_hwm=42,
        )
        assert report.bottleneck() == "commthreads"
        assert "123,456" in report.bottleneck_detail()


class TestExpeditedBypass:
    def test_expedited_overtakes_stalled_normal_queue(self):
        """An expedited message delivered while the PE grinds through a
        backpressure-stalled task must run before normal tasks that were
        queued ahead of it. A scripted comm-thread stall supplies the
        pressure that makes the source stalls long enough to observe."""
        flow = TINY.with_(max_stall_ns=200_000.0)
        plan = FaultPlan(
            windows=(FaultWindow(0.0, 100_000.0, "ct_stall", target=0),)
        )
        rt = RuntimeSystem(SMP, seed=0, flow=flow, faults=plan)
        tram = make_scheme(
            "WW", rt, TramConfig(buffer_items=1, idle_flush=True),
            deliver_item=lambda ctx, it: None,
        )
        order = []
        rt.register_handler("test.exp", lambda ctx, msg: order.append("exp"))
        W = SMP.total_workers

        def driver(ctx, remaining):
            for i in range(20):
                tram.insert(ctx, dst=(ctx.worker.wid + 1 + i) % W)
            if remaining:
                ctx.emit(ctx.worker.post_task, driver, remaining - 1)

        rt.post(0, driver, 6)

        def poke():
            w0 = rt.worker(0)
            assert w0.busy  # mid-stall: the queue behind it is real
            w0.post_task(lambda ctx: order.append("n1"))
            w0.post_task(lambda ctx: order.append("n2"))
            w0.deliver_message(
                NetMessage(
                    kind="test.exp", src_worker=3, dst_process=0,
                    dst_worker=0, size_bytes=32, payload=None,
                    expedited=True,
                )
            )

        rt.engine.at(30_000.0, poke)
        rt.run(max_events=50_000_000)
        assert rt.flow.stats.source_stalls > 0
        assert order.index("exp") < order.index("n1")
        assert order.index("exp") < order.index("n2")


class TestOverload:
    def test_escalates_and_clears_under_ct_stall(self):
        """A scripted comm-thread stall composes with flow control: the
        stall inflates the pressure signal, trips the detector, and the
        detector clears with hysteresis once the backlog drains."""
        plan = FaultPlan(
            windows=(FaultWindow(10_000.0, 60_000.0, "ct_stall", target=0),)
        )
        rt = RuntimeSystem(SMP, seed=0, flow=TINY, faults=plan)
        tram = make_scheme(
            "WW", rt, TramConfig(buffer_items=4, idle_flush=True),
            deliver_item=lambda ctx, it: None,
        )
        W = SMP.total_workers

        def driver(ctx, remaining):
            rng = rt.rng.stream(f"ovl/{ctx.worker.wid}/{remaining}")
            for _ in range(40):
                tram.insert(ctx, dst=int(rng.integers(0, W)))
            if remaining:
                ctx.emit(ctx.worker.post_task, driver, remaining - 1)

        for w in range(W):
            rt.post(w, driver, 5)
        rt.run(max_events=50_000_000)
        stats = rt.flow.stats
        assert stats.overload_escalations >= 1
        assert stats.overload_clears >= 1
        assert not rt.flow.overloaded  # cleared by the end of the run
        assert tram.stats.overload_escalations >= 1
        assert tram.stats.items_delivered == tram.stats.items_inserted
        # Escalation state resets when the overload clears.
        assert tram._overload_flush_scale == 1.0
        assert tram._overload_capacity_mult == 1.0

    def test_escalation_stretches_flush_timer(self):
        rt = RuntimeSystem(SMP, seed=0, flow=TINY)
        tram = make_scheme(
            "WW", rt,
            TramConfig(buffer_items=4, overload_flush_stretch=8.0,
                       overload_buffer_growth=3.0),
            deliver_item=lambda ctx, it: None,
        )
        tram.on_overload()
        assert tram._overload_flush_scale == 8.0
        assert tram._overload_capacity_mult == 3.0
        tram.on_overload_cleared()
        assert tram._overload_flush_scale == 1.0
        assert tram._overload_capacity_mult == 1.0
