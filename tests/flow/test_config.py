"""FlowConfig validation, spec parsing and the ambient session."""

import pytest

from repro.errors import ConfigError, FlowControlError
from repro.flow import (
    FlowConfig,
    FlowSession,
    active_flow_config,
    active_flow_session,
)


class TestValidation:
    def test_defaults_valid(self):
        cfg = FlowConfig()
        assert cfg.enabled
        assert cfg.ct_max_msgs >= 1
        assert cfg.clear_backlog_ns <= cfg.overload_backlog_ns

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"ct_max_msgs": 0},
            {"ct_max_bytes": 0},
            {"nic_max_msgs": -1},
            {"nic_max_bytes": 0},
            {"overload_backlog_ns": 0.0},
            {"overload_backlog_ns": -1.0},
            {"clear_backlog_ns": -1.0},
            {"overload_backlog_ns": 100.0, "clear_backlog_ns": 200.0},
            {"shed_backlog_ns": 0.0},
            {"max_parked_per_dest": 0},
            {"max_stall_ns": -1.0},
        ],
    )
    def test_bad_values_raise(self, kwargs):
        with pytest.raises(FlowControlError):
            FlowConfig(**kwargs)

    def test_flow_error_is_config_error(self):
        with pytest.raises(ConfigError):
            FlowConfig(ct_max_msgs=0)

    def test_with_copies(self):
        cfg = FlowConfig().with_(ct_max_msgs=7, shed_backlog_ns=1e6)
        assert cfg.ct_max_msgs == 7
        assert cfg.shed_backlog_ns == 1e6
        assert FlowConfig().ct_max_msgs != 7  # original untouched


class TestParse:
    def test_full_spec(self):
        cfg = FlowConfig.parse(
            "ct_msgs=8,ct_bytes=4096,nic_msgs=16,nic_bytes=8192,"
            "overload=100000,clear=20000,shed=500000,parked_per_dest=4,"
            "stall_max=30000"
        )
        assert cfg.ct_max_msgs == 8
        assert cfg.ct_max_bytes == 4096
        assert cfg.nic_max_msgs == 16
        assert cfg.nic_max_bytes == 8192
        assert cfg.overload_backlog_ns == 100000.0
        assert cfg.clear_backlog_ns == 20000.0
        assert cfg.shed_backlog_ns == 500000.0
        assert cfg.max_parked_per_dest == 4
        assert cfg.max_stall_ns == 30000.0

    def test_empty_spec_is_defaults(self):
        assert FlowConfig.parse("") == FlowConfig()

    @pytest.mark.parametrize(
        "spec", ["bogus=1", "ct_msgs", "ct_msgs=abc", "ct_msgs=0"]
    )
    def test_bad_spec_raises(self, spec):
        with pytest.raises(FlowControlError):
            FlowConfig.parse(spec)


class TestSession:
    def test_session_sets_and_restores(self):
        assert active_flow_session() is None
        cfg = FlowConfig(ct_max_msgs=3)
        with FlowSession(cfg) as session:
            assert active_flow_session() is session
            assert active_flow_config() == cfg
        assert active_flow_session() is None
        assert active_flow_config() is None

    def test_sessions_nest(self):
        outer, inner = FlowConfig(ct_max_msgs=3), FlowConfig(ct_max_msgs=5)
        with FlowSession(outer):
            with FlowSession(inner):
                assert active_flow_config() == inner
            assert active_flow_config() == outer

    def test_runtime_picks_up_session(self):
        from repro.machine import MachineConfig
        from repro.runtime.system import RuntimeSystem

        machine = MachineConfig(1, 2, 2)
        with FlowSession(FlowConfig(ct_max_msgs=3)):
            rt = RuntimeSystem(machine, seed=0)
            assert rt.flow is not None
            assert rt.flow.config.ct_max_msgs == 3
        assert RuntimeSystem(machine, seed=0).flow is None

    def test_disabled_config_builds_no_controller(self):
        from repro.machine import MachineConfig
        from repro.runtime.system import RuntimeSystem

        machine = MachineConfig(1, 2, 2)
        with FlowSession(FlowConfig(enabled=False)):
            assert RuntimeSystem(machine, seed=0).flow is None
        rt = RuntimeSystem(machine, seed=0, flow=FlowConfig(enabled=False))
        assert rt.flow is None
