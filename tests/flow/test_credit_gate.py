"""CreditGate unit behavior: caps, parking FIFO, per-dest accounting."""

from repro.flow.credit import CreditGate, ParkedMessage


class _Msg:
    def __init__(self, size=100):
        self.size_bytes = size


def _entry(dst=0, t=0.0, size=100):
    return ParkedMessage(_Msg(size), lambda: None, dst, t)


class TestAdmission:
    def test_admits_under_both_caps(self):
        gate = CreditGate("g", max_msgs=2, max_bytes=1000)
        assert gate.can_admit(100)
        gate.acquire(100)
        assert gate.can_admit(100)
        gate.acquire(100)
        assert not gate.can_admit(100)  # message cap reached

    def test_byte_cap_blocks(self):
        gate = CreditGate("g", max_msgs=10, max_bytes=150)
        gate.acquire(100)
        assert not gate.can_admit(100)

    def test_oversized_message_admitted_when_empty(self):
        # Liveness: a message larger than the byte cap must not deadlock.
        gate = CreditGate("g", max_msgs=4, max_bytes=64)
        assert gate.can_admit(10_000)
        gate.acquire(10_000)
        assert not gate.can_admit(1)
        gate.release(10_000)
        assert gate.can_admit(10_000)

    def test_release_restores_credits(self):
        gate = CreditGate("g", max_msgs=1, max_bytes=1000)
        gate.acquire(100)
        assert gate.blocked
        gate.release(100)
        assert not gate.blocked
        assert gate.in_flight_msgs == 0
        assert gate.in_flight_bytes == 0

    def test_high_water_marks(self):
        gate = CreditGate("g", max_msgs=4, max_bytes=10_000)
        gate.acquire(100)
        gate.acquire(200)
        gate.release(100)
        gate.acquire(50)
        assert gate.hwm_msgs == 2
        assert gate.hwm_bytes == 300


class TestParking:
    def test_fifo_order(self):
        gate = CreditGate("g", max_msgs=1, max_bytes=1000)
        a, b = _entry(dst=0), _entry(dst=1)
        gate.park(a)
        gate.park(b)
        assert gate.pop_parked() is a
        assert gate.pop_parked() is b

    def test_parked_makes_gate_blocked(self):
        gate = CreditGate("g", max_msgs=4, max_bytes=1000)
        assert not gate.blocked
        gate.park(_entry())
        assert gate.blocked

    def test_per_dest_counts(self):
        gate = CreditGate("g", max_msgs=1, max_bytes=1000)
        gate.park(_entry(dst=0))
        gate.park(_entry(dst=0))
        gate.park(_entry(dst=3))
        assert gate.parked_for(0) == 2
        assert gate.parked_for(3) == 1
        assert gate.parked_for(7) == 0
        gate.pop_parked()
        assert gate.parked_for(0) == 1
        assert gate.hwm_parked == 3

    def test_to_dict(self):
        gate = CreditGate("ct:0", max_msgs=2, max_bytes=256)
        gate.acquire(100)
        gate.park(_entry())
        d = gate.to_dict()
        assert d["name"] == "ct:0"
        assert d["in_flight_msgs"] == 1
        assert d["parked"] == 1
        assert d["hwm_msgs"] == 1
