"""Chaos property: random mid-run process crashes never break accounting.

For ANY routed scheme, ANY non-coordinator victim and ANY crash time
inside the traffic horizon, the run must reach quiescence with the
conservation ledger closed exactly::

    produced == delivered + lost_to_crash + lost + shed
                + abandoned + buffered + parked

with nothing left buffered or parked — and the whole story must be
bit-for-bit reproducible from the seed (same victims, same losses,
same end time).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FOREVER, FaultPlan, FaultWindow
from repro.flow import conservation_ledger
from repro.machine import MachineConfig
from repro.runtime.reliability import ReliabilityConfig
from repro.runtime.system import RuntimeSystem
from repro.tram import TramConfig, make_scheme

MACHINE = MachineConfig(nodes=2, processes_per_node=2, workers_per_process=2)

#: Every aggregation topology with a forwarding hop or shared buffer —
#: the ones where a dying endpoint strands in-flight work unless the
#: crash fabric reroutes or loss-accounts it.
ROUTED_SCHEMES = ("WW", "WPs", "WsP", "PP", "R2D", "WNs", "NN")

#: Budgeted reliability so the crash is *confirmed* (suspicion, probes,
#: teardown) rather than merely dropped at the transport.
CONFIRM = ReliabilityConfig(
    retransmit_timeout_ns=12_000.0,
    ack_delay_ns=500.0,
    max_retries=2,
    probe_timeout_ns=5_000.0,
    probe_retries=1,
)


def run_chaos(scheme, victim, crash_t_ns, seed, *, reliability=None,
              items=200, horizon_ns=120_000.0):
    plan = FaultPlan(
        windows=(FaultWindow(crash_t_ns, FOREVER, "proc_crash",
                             target=victim),)
    )
    rt = RuntimeSystem(MACHINE, seed=seed, faults=plan,
                       reliability=reliability)
    tram = make_scheme(
        scheme, rt,
        TramConfig(buffer_items=16, item_bytes=8, idle_flush=True),
        deliver_item=lambda ctx, it: None,
    )
    w = MACHINE.total_workers

    def one_send(ctx, dst):
        tram.insert(ctx, dst=dst)

    rng = np.random.default_rng(seed)
    for _ in range(items):
        src = int(rng.integers(0, w))
        dst = int(rng.integers(0, w))
        rt.post(src, one_send, dst, delay=float(rng.random() * horizon_ns))
    stats = rt.run(max_events=5_000_000)
    return rt, tram, stats


def fingerprint(rt, tram, stats):
    return (
        stats.end_time,
        sorted(rt.dead_procs),
        conservation_ledger(rt),
        tram.stats.summary(),
        tram.stats.crash_summary(),
    )


class TestCrashChaosProperties:
    @given(
        scheme=st.sampled_from(ROUTED_SCHEMES),
        victim=st.integers(1, 3),
        crash_t=st.floats(5_000.0, 90_000.0),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=30, deadline=None)
    def test_ledger_closes_exactly_under_random_crash(
        self, scheme, victim, crash_t, seed
    ):
        rt, tram, _ = run_chaos(scheme, victim, crash_t, seed)
        led = conservation_ledger(rt)
        assert led["balanced"] is True, led
        assert led["buffered"] == 0, led
        assert led["parked"] == 0, led
        # Re-derive the closure by hand rather than trusting the flag.
        assert led["produced"] == (
            led["delivered"] + led["lost_to_crash"] + led["lost"]
            + led["shed"] + led["abandoned"]
        ), led
        assert rt.dead_procs == {victim}

    @given(
        scheme=st.sampled_from(("R2D", "WNs", "NN")),
        victim=st.integers(1, 3),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=10, deadline=None)
    def test_confirmed_crash_closes_ledger_with_reliability(
        self, scheme, victim, seed
    ):
        rt, tram, _ = run_chaos(
            scheme, victim, 10_000.0, seed, reliability=CONFIRM, items=300,
        )
        led = conservation_ledger(rt)
        assert led["balanced"] is True, led
        assert led["buffered"] == 0, led
        assert led["parked"] == 0, led
        assert rt.reliable.pending_count() == 0

    @given(
        scheme=st.sampled_from(ROUTED_SCHEMES),
        victim=st.integers(1, 3),
        crash_t=st.floats(5_000.0, 90_000.0),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=10, deadline=None)
    def test_crash_runs_are_bit_for_bit_reproducible(
        self, scheme, victim, crash_t, seed
    ):
        a = run_chaos(scheme, victim, crash_t, seed)
        b = run_chaos(scheme, victim, crash_t, seed)
        assert fingerprint(*a) == fingerprint(*b)
