"""Property-based tests for buffers and the proportional split."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.tram.buffer import CountBuffer, ItemBuffer, proportional_take
from repro.tram.item import Item

count_arrays = hnp.arrays(
    dtype=np.int64,
    shape=st.integers(1, 32),
    elements=st.integers(0, 1000),
).filter(lambda a: a.sum() > 0)


class TestProportionalTakeProperties:
    @given(count_arrays, st.data())
    def test_take_invariants(self, arr, data):
        total = int(arr.sum())
        k = data.draw(st.integers(1, total))
        take = proportional_take(arr.copy(), k, total)
        assert int(take.sum()) == k
        assert (take >= 0).all()
        assert (take <= arr).all()

    @given(count_arrays)
    def test_repeated_takes_drain_exactly(self, arr):
        """Carving g-chunks until empty conserves every slot's count."""
        total = int(arr.sum())
        remaining = arr.copy()
        g = max(1, total // 7)
        taken = np.zeros_like(arr)
        left = total
        while left > 0:
            k = min(g, left)
            part = proportional_take(remaining, k, left)
            remaining -= part
            taken += part
            left -= k
        assert (taken == arr).all()
        assert (remaining == 0).all()


class TestCountBufferProperties:
    @given(
        st.lists(
            st.tuples(st.integers(1, 50), st.floats(0, 1e6, allow_nan=False)),
            min_size=1,
            max_size=30,
        ),
        st.integers(1, 64),
    )
    @settings(max_examples=50)
    def test_chunked_drain_conserves_count_and_tsum(self, adds, g):
        buf = CountBuffer(10**9)
        total = 0
        t_sum = 0.0
        for n, t in adds:
            buf.add_counts(n, now=t)
            total += n
            t_sum += n * t
        drained = 0
        drained_tsum = 0.0
        while not buf.empty:
            batch = buf.take(min(g, buf.count))
            drained += batch.count
            drained_tsum += batch.t_sum
        assert drained == total
        np.testing.assert_allclose(drained_tsum, t_sum, rtol=1e-9)

    @given(st.lists(st.integers(0, 7), min_size=1, max_size=300))
    def test_item_buffer_fifo(self, dsts):
        buf = ItemBuffer(10**9)
        for i, d in enumerate(dsts):
            buf.add(Item(d, 0, float(i)))
        out = buf.drain()
        assert [it.dst for it in out] == dsts
