"""Cross-scheme equivalence properties.

All schemes implement the same abstract contract: the multiset of
(destination, payload) deliveries is identical regardless of the scheme
(only *when* and *through what* differ). WsP must deliver exactly what
WPs delivers; node-level schemes must match too.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import MachineConfig
from repro.runtime.system import RuntimeSystem
from repro.tram import TramConfig, make_scheme

MACHINE = MachineConfig(nodes=2, processes_per_node=2, workers_per_process=2)

traffic = st.lists(
    st.tuples(st.integers(0, 7), st.integers(0, 7)),
    min_size=1,
    max_size=40,
)


def deliveries_for(scheme, sends, g):
    rt = RuntimeSystem(MACHINE, seed=0)
    got = []
    tram = make_scheme(
        scheme, rt, TramConfig(buffer_items=g, item_bytes=8, idle_flush=True),
        deliver_item=lambda ctx, it: got.append((ctx.worker.wid, it.payload)),
    )

    def driver(ctx, my):
        for ident, dst in my:
            tram.insert(ctx, dst=dst, payload=ident)

    by_src = {}
    for i, (src, dst) in enumerate(sends):
        by_src.setdefault(src, []).append((i, dst))
    for src, my in by_src.items():
        rt.post(src, driver, my)
    rt.run(max_events=1_000_000)
    return sorted(got)


class TestDeliveryEquivalence:
    @given(traffic, st.integers(1, 8))
    @settings(max_examples=30, deadline=None)
    def test_wsp_equals_wps(self, sends, g):
        assert deliveries_for("WsP", sends, g) == deliveries_for(
            "WPs", sends, g
        )

    @given(traffic, st.integers(1, 8))
    @settings(max_examples=20, deadline=None)
    def test_all_schemes_same_delivery_multiset(self, sends, g):
        reference = deliveries_for("Direct", sends, g)
        for scheme in ("WW", "WPs", "PP", "WNs", "NN"):
            assert deliveries_for(scheme, sends, g) == reference


class TestBulkEquivalence:
    @given(
        st.lists(st.integers(0, 200), min_size=8, max_size=8),
        st.integers(1, 32),
    )
    @settings(max_examples=30, deadline=None)
    def test_bulk_totals_match_across_schemes(self, per_dst, g):
        counts = np.array(per_dst, dtype=np.int64)
        totals = {}
        for scheme in ("WW", "WPs", "WsP", "PP", "WNs", "NN"):
            rt = RuntimeSystem(MACHINE, seed=0)
            received = np.zeros(8, dtype=np.int64)

            def deliver(ctx, wid, n, si, sc, received=received):
                received[wid] += n

            tram = make_scheme(
                scheme, rt, TramConfig(buffer_items=g, item_bytes=8),
                deliver_bulk=deliver,
            )

            def driver(ctx, tram=tram):
                if counts.sum():
                    tram.insert_bulk(ctx, counts)
                tram.flush(ctx)

            rt.post(0, driver)
            rt.run(max_events=1_000_000)
            totals[scheme] = received.copy()
        reference = totals["WW"]
        for scheme, received in totals.items():
            assert (received == reference).all(), scheme
