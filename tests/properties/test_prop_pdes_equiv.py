"""Property: partitioned PDES execution is invisible in the results.

For random machine shapes, schemes, traffic patterns and partition
counts, a run under ``PdesSession`` must reproduce the sequential
engine exactly — the same ``(time, seq)`` fire sequence, the same
app-visible counters, and (through the harness) canonically
byte-identical metrics artifacts.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import MachineConfig
from repro.runtime.quiescence import QDCounter
from repro.runtime.system import RuntimeSystem
from repro.sim.parallel import PdesConfig, PdesSession
from repro.tram import TramConfig, make_scheme

SCHEMES = ("ww", "wps", "wsp", "pp", "direct")

machines = st.builds(
    MachineConfig,
    st.integers(2, 4),  # nodes
    st.integers(1, 2),  # processes per node
    st.integers(1, 2),  # workers per process
)

configs = st.tuples(
    machines,
    st.sampled_from(SCHEMES),
    st.integers(1, 12),      # buffer_items g
    st.integers(1, 50),      # items per worker
    st.integers(0, 2**16),   # seed
    st.booleans(),           # idle_flush
)


def _run(machine, scheme, g, items, seed, idle_flush, *, fire_log=False):
    rt = RuntimeSystem(machine, seed=seed)
    if fire_log and rt.engine.fire_log is None:
        rt.engine.fire_log = []
    W = machine.total_workers
    qd = rt.pdes_share(QDCounter())
    received = rt.pdes_share(np.zeros(W, dtype=np.int64))

    def deliver(ctx, wid, count, src_ids, src_counts):
        received[wid] += count
        qd.consume(count)

    tram = make_scheme(
        scheme, rt,
        TramConfig(buffer_items=g, item_bytes=8, idle_flush=idle_flush),
        deliver_bulk=deliver,
    )

    def driver(ctx):
        wid = ctx.worker.wid
        rng = rt.rng.stream(f"traffic/{wid}")
        counts = np.bincount(rng.integers(0, W, items), minlength=W)
        qd.produce(items)
        tram.insert_bulk(ctx, counts)
        if not idle_flush:
            tram.flush_when_done(ctx)

    for wid in range(W):
        rt.post(wid, driver)
    stats = rt.run()
    qd.require_balanced()
    return {
        "end_time": stats.end_time,
        "events": stats.events_fired,
        "received": received.tolist(),
        "messages_sent": tram.stats.messages_sent,
        "bytes_sent": tram.stats.bytes_sent,
        "latency_mean": tram.stats.latency.mean,
        "fire_log": list(rt.engine.fire_log or []),
        "mode": rt.pdes_info.mode if rt.pdes_info else None,
    }


@given(configs, st.integers(2, 4))
@settings(max_examples=25, deadline=None)
def test_partitioned_run_is_bit_identical(config, partitions):
    machine, scheme, g, items, seed, idle_flush = config
    seq = _run(machine, scheme, g, items, seed, idle_flush, fire_log=True)
    with PdesSession(PdesConfig(partitions=partitions, record_fires=True)):
        par = _run(machine, scheme, g, items, seed, idle_flush)
    assert par["mode"] == "partitioned"
    assert par["fire_log"] == seq["fire_log"]
    for key in ("end_time", "events", "received", "messages_sent",
                "bytes_sent", "latency_mean"):
        assert par[key] == seq[key], key


@given(
    st.sampled_from(("ww", "wps", "wsp", "pp")),
    st.integers(2, 4),        # nodes
    st.integers(2, 4),        # partitions
    st.integers(16, 96),      # updates per PE
    st.integers(0, 2**16),    # seed
)
@settings(max_examples=10, deadline=None)
def test_artifact_bytes_identical(scheme, nodes, partitions, updates, seed):
    from repro.apps import run_histogram
    from repro.harness.artifact import (
        build_metrics_payload,
        canonical_metrics_bytes,
        validate_metrics_payload,
    )
    from repro.obs import ObsConfig, ObsSession

    machine = MachineConfig(nodes, 2, 2)

    def artifact(sim_parallel):
        with ObsSession(ObsConfig()) as obs:
            if sim_parallel == 1:
                run_histogram(
                    machine, scheme, updates_per_pe=updates, seed=seed
                )
            else:
                with PdesSession(PdesConfig(partitions=sim_parallel)):
                    run_histogram(
                        machine, scheme, updates_per_pe=updates, seed=seed
                    )
            return build_metrics_payload(
                target="prop-pdes", profile="test", runs=obs.records
            )

    seq = artifact(1)
    par = artifact(partitions)
    assert validate_metrics_payload(seq) == []
    assert validate_metrics_payload(par) == []
    # The pdes block itself differs by construction (mode, rounds, ...);
    # the canonical bytes — everything the paper cares about — must not.
    assert par["runs"][0]["pdes"]["mode"] == "partitioned"
    assert canonical_metrics_bytes(par) == canonical_metrics_bytes(seq)
