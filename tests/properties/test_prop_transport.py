"""Transport-level conservation properties."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import MachineConfig
from repro.network.message import Route
from repro.runtime.system import RuntimeSystem
from repro.tram import TramConfig, make_scheme

machines = st.builds(
    MachineConfig,
    nodes=st.integers(1, 3),
    processes_per_node=st.integers(1, 3),
    workers_per_process=st.integers(1, 3),
    nics_per_node=st.integers(1, 3),
)


class TestTransportConservation:
    @given(machines, st.integers(1, 16), st.integers(20, 150))
    @settings(max_examples=40, deadline=None)
    def test_nic_traffic_matches_inter_node_messages(self, machine, g, z):
        """Every inter-node transport message crosses exactly one tx NIC
        and one rx NIC; intra-node traffic never touches a NIC."""
        rt = RuntimeSystem(machine, seed=0)
        tram = make_scheme(
            "WPs", rt, TramConfig(buffer_items=g),
            deliver_bulk=lambda ctx, w, n, si, sc: None,
        )
        w = machine.total_workers

        def driver(ctx):
            rng = rt.rng.stream(f"tc/{ctx.worker.wid}")
            counts = np.bincount(rng.integers(0, w, z), minlength=w)
            tram.insert_bulk(ctx, counts)
            tram.flush_when_done(ctx)

        for wid in range(w):
            rt.post(wid, driver)
        rt.run(max_events=2_000_000)

        inter = rt.transport.stats.messages[Route.INTER_NODE]
        tx_total = sum(
            nic.stats.tx_messages for node in rt.nodes for nic in node.nics
        )
        rx_total = sum(
            nic.stats.rx_messages for node in rt.nodes for nic in node.nics
        )
        assert tx_total == inter
        assert rx_total == inter
        # Bytes conserved across the wire too.
        tx_bytes = sum(
            nic.stats.tx_bytes for node in rt.nodes for nic in node.nics
        )
        assert tx_bytes == rt.transport.stats.bytes[Route.INTER_NODE]

    @given(machines)
    @settings(max_examples=20, deadline=None)
    def test_intra_process_traffic_skips_everything(self, machine):
        """Messages within a process touch neither comm thread nor NIC."""
        rt = RuntimeSystem(machine, seed=0)
        tram = make_scheme(
            "WW", rt, TramConfig(buffer_items=1, bypass_local=False),
            deliver_item=lambda ctx, it: None,
        )

        def driver(ctx):
            # Send to a sibling within the same process (self if alone).
            own = machine.workers_of_process(
                machine.process_of_worker(ctx.worker.wid)
            )
            tram.insert(ctx, dst=own.start)

        rt.post(0, driver)
        rt.run(max_events=100_000)
        assert rt.transport.stats.messages[Route.INTRA_PROCESS] == 1
        for node in rt.nodes:
            for nic in node.nics:
                assert nic.stats.tx_messages == 0
        if machine.smp:
            for proc in rt.processes:
                assert proc.commthread.stats.out_messages == 0
