"""Property-based tests for the analytic models and topology maps."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    aggregated_send_cost_ns,
    buffer_bytes_per_core,
    buffer_bytes_per_process,
    direct_send_cost_ns,
    expected_fill_latency_ns,
    message_bounds_per_source,
)
from repro.machine import CostModel, MachineConfig

machines = st.builds(
    MachineConfig,
    nodes=st.integers(1, 16),
    processes_per_node=st.integers(1, 8),
    workers_per_process=st.integers(1, 8),
)


class TestTopologyProperties:
    @given(machines, st.data())
    def test_worker_roundtrip(self, m, data):
        w = data.draw(st.integers(0, m.total_workers - 1))
        p = m.process_of_worker(w)
        r = m.local_rank_of_worker(w)
        assert m.worker_id(p, r) == w
        assert w in m.workers_of_process(p)
        assert w in m.workers_of_node(m.node_of_worker(w))

    @given(machines)
    def test_partitions_cover_exactly(self, m):
        seen = []
        for p in range(m.total_processes):
            seen.extend(m.workers_of_process(p))
        assert seen == list(range(m.total_workers))
        seen_nodes = []
        for n in range(m.nodes):
            seen_nodes.extend(m.processes_of_node(n))
        assert seen_nodes == list(range(m.total_processes))

    @given(machines, st.data())
    def test_same_process_implies_same_node(self, m, data):
        a = data.draw(st.integers(0, m.total_workers - 1))
        b = data.draw(st.integers(0, m.total_workers - 1))
        if m.same_process(a, b):
            assert m.same_node(a, b)


class TestAnalysisProperties:
    @given(st.integers(1, 10**6), st.integers(1, 4096), st.integers(1, 1024))
    @settings(max_examples=60)
    def test_aggregation_never_loses_on_alpha(self, z, g, b):
        """Aggregated send cost <= direct send cost whenever g >= 1 and
        the per-item payload is what travels (header amortized)."""
        direct = direct_send_cost_ns(z, b)
        agg = aggregated_send_cost_ns(z, g, b)
        assert agg <= direct + 1e-6

    @given(st.integers(1, 4096), st.integers(1, 64), st.integers(1, 64),
           st.integers(1, 64))
    def test_memory_hierarchy_invariant(self, g, m, n, t):
        """WW/core >= WPs/core >= PP/core for every configuration."""
        ww = buffer_bytes_per_core("WW", g, m, n, t)
        wps = buffer_bytes_per_core("WPs", g, m, n, t)
        pp = buffer_bytes_per_core("PP", g, m, n, t)
        assert ww >= wps >= pp
        assert buffer_bytes_per_process("WW", g, m, n, t) == t * ww

    @given(machines, st.integers(1, 10**6), st.integers(1, 4096))
    @settings(max_examples=60)
    def test_message_bound_ordering(self, machine, z, g):
        """Lower <= upper always; WW's flush slack >= WPs' >= stream
        limit."""
        lo_ww, hi_ww = message_bounds_per_source("WW", z, g, machine)
        lo_wps, hi_wps = message_bounds_per_source("WPs", z, g, machine)
        assert lo_ww <= hi_ww
        assert lo_ww == lo_wps
        assert hi_ww >= hi_wps

    @given(machines, st.integers(2, 4096), st.floats(1e-6, 1.0))
    @settings(max_examples=60)
    def test_fill_latency_scheme_ordering(self, machine, g, rate):
        ww = expected_fill_latency_ns("WW", g, rate, machine)
        wps = expected_fill_latency_ns("WPs", g, rate, machine)
        pp = expected_fill_latency_ns("PP", g, rate, machine)
        assert ww >= wps >= pp >= 0.0


class TestCostModelProperties:
    @given(st.floats(0, 1e9, allow_nan=False))
    def test_cache_penalty_bounded_monotone(self, footprint):
        costs = CostModel()
        p = costs.cache_penalty(footprint)
        assert 1.0 <= p <= costs.cache_miss_factor
        assert costs.cache_penalty(footprint * 2) >= p

    @given(st.integers(1, 128))
    def test_pp_insert_monotone_in_workers(self, t):
        costs = CostModel()
        assert costs.pp_insert_ns(t + 1) >= costs.pp_insert_ns(t)

    @given(st.integers(0, 10**7), st.integers(0, 10**7))
    def test_tx_occupancy_superadditive_split(self, a, b):
        """Splitting a payload into two messages never costs less on
        the NIC (per-message overhead)."""
        costs = CostModel()
        whole = costs.tx_occupancy_ns(a + b)
        split = costs.tx_occupancy_ns(a) + costs.tx_occupancy_ns(b)
        assert split >= whole
