"""Property-based end-to-end invariants of the aggregation schemes.

The strongest correctness statement in the library: for ANY machine
shape, scheme, buffer depth and traffic pattern, every inserted item is
delivered exactly once, to the right worker, and message counts respect
the §III-C analytic bounds.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import message_bounds_total
from repro.machine import MachineConfig
from repro.runtime.system import RuntimeSystem
from repro.tram import TramConfig, make_scheme

schemes = st.sampled_from(["WW", "WPs", "WsP", "PP"])
machines = st.builds(
    MachineConfig,
    nodes=st.integers(1, 3),
    processes_per_node=st.integers(1, 3),
    workers_per_process=st.integers(1, 3),
)


@st.composite
def traffic(draw):
    machine = draw(machines)
    w = machine.total_workers
    sends = draw(
        st.lists(
            st.tuples(st.integers(0, w - 1), st.integers(0, w - 1)),
            min_size=1,
            max_size=60,
        )
    )
    return machine, sends


class TestDeliveryProperties:
    @given(schemes, traffic(), st.integers(1, 16))
    @settings(max_examples=60, deadline=None)
    def test_exactly_once_to_right_worker(self, scheme, tm, g):
        machine, sends = tm
        rt = RuntimeSystem(machine, seed=0)
        received = []
        tram = make_scheme(
            scheme,
            rt,
            TramConfig(buffer_items=g, item_bytes=8, idle_flush=True),
            deliver_item=lambda ctx, it: received.append(
                (ctx.worker.wid, it.payload)
            ),
        )

        def driver(ctx, my_sends):
            for i, dst in my_sends:
                tram.insert(ctx, dst=dst, payload=(ctx.worker.wid, i, dst))

        by_src = {}
        for i, (src, dst) in enumerate(sends):
            by_src.setdefault(src, []).append((i, dst))
        for src, my in by_src.items():
            rt.post(src, driver, my)
        rt.run(max_events=2_000_000)

        assert len(received) == len(sends)
        for worker, (src, i, dst) in received:
            assert worker == dst
        assert tram.stats.items_delivered == len(sends)
        assert tram.pending_items() == 0

    @given(schemes, machines, st.integers(1, 12), st.integers(10, 200))
    @settings(max_examples=40, deadline=None)
    def test_message_counts_within_analytic_bounds(
        self, scheme, machine, g, z_per_worker
    ):
        rt = RuntimeSystem(machine, seed=1)
        w = machine.total_workers
        tram = make_scheme(
            scheme,
            rt,
            TramConfig(buffer_items=g, item_bytes=8),
            deliver_bulk=lambda ctx, wid, n, si, sc: None,
        )

        def driver(ctx):
            rng = rt.rng.stream(f"p/{ctx.worker.wid}")
            counts = np.bincount(
                rng.integers(0, w, z_per_worker), minlength=w
            )
            tram.insert_bulk(ctx, counts)
            tram.flush_when_done(ctx)

        for wid in range(w):
            rt.post(wid, driver)
        rt.run(max_events=2_000_000)

        buffered = tram.stats.items_inserted - tram.stats.items_bypassed_local
        if buffered == 0:
            assert tram.stats.messages_sent == 0
            return
        lower, upper = message_bounds_total(scheme, buffered, g, machine)
        assert lower <= tram.stats.messages_sent <= upper

    @given(schemes, st.integers(1, 8))
    @settings(max_examples=20, deadline=None)
    def test_latency_nonnegative_and_bounded_by_makespan(self, scheme, g):
        machine = MachineConfig(nodes=2, processes_per_node=2,
                                workers_per_process=2)
        rt = RuntimeSystem(machine, seed=2)
        tram = make_scheme(
            scheme,
            rt,
            TramConfig(buffer_items=g, item_bytes=8, idle_flush=True),
            deliver_item=lambda ctx, it: None,
        )

        def driver(ctx):
            for dst in range(machine.total_workers):
                tram.insert(ctx, dst=dst)

        rt.post(0, driver)
        stats = rt.run(max_events=1_000_000)
        lat = tram.stats.latency
        if lat.count:
            assert lat.min >= 0.0
            assert lat.max <= stats.end_time
