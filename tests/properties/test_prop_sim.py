"""Property-based tests for the DES substrate."""

import heapq

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Engine
from repro.sim.event import Event
from repro.sim.queue import EventQueue

times = st.floats(min_value=0.0, max_value=1e9, allow_nan=False,
                  allow_infinity=False)


class TestQueueProperties:
    @given(st.lists(times, min_size=1, max_size=200))
    def test_pop_order_matches_sorted(self, ts):
        q = EventQueue()
        for i, t in enumerate(ts):
            q.push(Event(t, i, lambda: None, ()))
        popped = []
        while q:
            popped.append(q.pop().time)
        assert popped == sorted(ts)

    @given(
        st.lists(times, min_size=1, max_size=100),
        st.data(),
    )
    def test_cancellation_preserves_remaining_order(self, ts, data):
        q = EventQueue()
        events = [Event(t, i, lambda: None, ()) for i, t in enumerate(ts)]
        for e in events:
            q.push(e)
        to_cancel = data.draw(
            st.sets(st.integers(0, len(events) - 1), max_size=len(events))
        )
        for idx in to_cancel:
            events[idx].cancel()
            q.note_cancelled()
        survivors = sorted(
            (e.time, e.seq) for i, e in enumerate(events) if i not in to_cancel
        )
        popped = []
        while q:
            e = q.pop()
            popped.append((e.time, e.seq))
        assert popped == survivors

    @given(st.lists(st.tuples(times, times), min_size=1, max_size=50))
    def test_engine_clock_never_goes_backwards(self, pairs):
        eng = Engine()
        observed = []

        def record():
            observed.append(eng.now)

        for t0, dt in pairs:
            eng.at(t0, record)
        eng.run()
        assert observed == sorted(observed)


class TestEngineChaining:
    @given(st.integers(1, 50), st.floats(0.1, 100.0))
    @settings(max_examples=25)
    def test_chained_events_count(self, n, step):
        eng = Engine()
        count = [0]

        def tick(remaining):
            count[0] += 1
            if remaining > 1:
                eng.after(step, tick, remaining - 1)

        eng.after(0.0, tick, n)
        stats = eng.run()
        assert count[0] == n
        assert stats.events_fired == n
        assert eng.now <= (n - 1) * step + 1e-6
