"""Property-based tests for the DES substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Engine
from repro.sim.event import EV_SEQ, EV_TIME, Event
from repro.sim.queue import EventQueue

times = st.floats(min_value=0.0, max_value=1e9, allow_nan=False,
                  allow_infinity=False)


class TestQueueProperties:
    @given(st.lists(times, min_size=1, max_size=200))
    def test_pop_order_matches_sorted(self, ts):
        q = EventQueue()
        for i, t in enumerate(ts):
            q.push(Event(t, i, lambda: None, ()))
        popped = []
        while q:
            popped.append(q.pop()[EV_TIME])
        assert popped == sorted(ts)

    @given(
        st.lists(times, min_size=1, max_size=100),
        st.data(),
    )
    def test_cancellation_preserves_remaining_order(self, ts, data):
        q = EventQueue(compact_min=8)  # low floor: exercise auto-compaction
        events = [Event(t, i, lambda: None, ()) for i, t in enumerate(ts)]
        for e in events:
            q.push(e)
        to_cancel = data.draw(
            st.sets(st.integers(0, len(events) - 1), max_size=len(events))
        )
        for idx in to_cancel:
            q.cancel(events[idx])
        survivors = sorted(
            (e[EV_TIME], e[EV_SEQ])
            for i, e in enumerate(events)
            if i not in to_cancel
        )
        popped = []
        while q:
            e = q.pop()
            popped.append((e[EV_TIME], e[EV_SEQ]))
        assert popped == survivors

    @given(st.lists(st.tuples(times, times), min_size=1, max_size=50))
    def test_engine_clock_never_goes_backwards(self, pairs):
        eng = Engine()
        observed = []

        def record():
            observed.append(eng.now)

        for t0, dt in pairs:
            eng.at(t0, record)
        eng.run()
        assert observed == sorted(observed)


class TestEngineChaining:
    @given(st.integers(1, 50), st.floats(0.1, 100.0))
    @settings(max_examples=25)
    def test_chained_events_count(self, n, step):
        eng = Engine()
        count = [0]

        def tick(remaining):
            count[0] += 1
            if remaining > 1:
                eng.after(step, tick, remaining - 1)

        eng.after(0.0, tick, n)
        stats = eng.run()
        assert count[0] == n
        assert stats.events_fired == n
        assert eng.now <= (n - 1) * step + 1e-6


# ----------------------------------------------------------------------
# Wheel/heap determinism equivalence
# ----------------------------------------------------------------------
# Delays are multiples of 250 ns so exact deadline ties (and shared wheel
# slots) are common, and the script interleaves arms, cancels, and
# horizon-split runs — the workload shape of flush/retransmit timers.
arm_st = st.tuples(st.integers(0, 40), st.booleans())  # (delay/250ns, timer?)
step_st = st.tuples(
    st.integers(0, 8),                       # driver advance (x250 ns)
    st.lists(arm_st, max_size=5),            # arms this step
    st.lists(st.integers(0, 40), max_size=4),  # cancel targets (arm index)
)
script_st = st.lists(step_st, min_size=1, max_size=25)
horizons_st = st.lists(st.integers(1, 60), max_size=3)


def _run_script(script, horizons, use_wheel: bool):
    """Interpret the script on one engine; return the fired sequence."""
    eng = Engine()
    fired = []
    handles = []

    def payload(tag):
        fired.append((eng.now, tag))

    def step(i):
        advance, arms, cancels = script[i]
        for delay, is_timer in arms:
            tag = len(handles)
            if is_timer and use_wheel:
                handles.append(eng.timer_after(delay * 250.0, payload, tag))
            else:
                handles.append(eng.after(delay * 250.0, payload, tag))
        for target in cancels:
            if target < len(handles):
                eng.cancel(handles[target])  # may already have fired: noop
        if i + 1 < len(script):
            next_adv = script[i + 1][0]
            eng.after(next_adv * 250.0, step, i + 1)

    eng.after(script[0][0] * 250.0, step, 0)
    for h in sorted(horizons):
        eng.run(until=h * 250.0)  # deferred events keep their handles
    eng.run()
    assert eng.pending == 0
    return fired


class TestWheelHeapEquivalence:
    @given(script_st, horizons_st)
    @settings(max_examples=80, deadline=None)
    def test_identical_fire_sequence(self, script, horizons):
        """A wheel+heap engine fires the exact (time, seq, fn) sequence
        of a heap-only engine under randomized arm/cancel/requeue: the
        fired (now, tag) streams — tags encode arm order, i.e. seq —
        must match element for element."""
        heap_only = _run_script(script, horizons, use_wheel=False)
        wheel = _run_script(script, horizons, use_wheel=True)
        assert wheel == heap_only
