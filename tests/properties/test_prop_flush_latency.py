"""Property: flush policies bound item latency.

With a flush timeout of tau and buffers that never fill (huge g), no
item may wait in a buffer longer than tau — so its end-to-end latency
is bounded by tau plus a transit allowance. This is the guarantee a
latency-sensitive application buys with the timeout knob.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import MachineConfig
from repro.runtime.system import RuntimeSystem
from repro.tram import TramConfig, make_scheme

MACHINE = MachineConfig(nodes=2, processes_per_node=2, workers_per_process=2)

#: Generous transit allowance: two comm-thread services + NIC + wire +
#: handler work on an otherwise idle machine.
TRANSIT_NS = 50_000.0


class TestTimeoutBoundsLatency:
    @given(
        st.sampled_from(["WW", "WPs", "WsP", "PP"]),
        st.floats(1_000.0, 1_000_000.0),
        st.lists(st.tuples(st.integers(0, 7), st.integers(0, 7),
                           st.floats(0, 500_000.0)),
                 min_size=1, max_size=15),
    )
    @settings(max_examples=40, deadline=None)
    def test_latency_bounded_by_timeout_plus_transit(self, scheme, tau, sends):
        rt = RuntimeSystem(MACHINE, seed=0)
        tram = make_scheme(
            scheme, rt,
            TramConfig(buffer_items=10**6, item_bytes=8,
                       flush_timeout_ns=tau),
            deliver_item=lambda ctx, it: None,
        )

        def one(ctx, dst):
            tram.insert(ctx, dst=dst)

        for src, dst, delay in sends:
            rt.post(src, one, dst, delay=delay)
        rt.run(max_events=500_000)
        assert tram.pending_items() == 0
        lat = tram.stats.latency
        assert lat.count == len(sends)
        assert lat.max <= tau + TRANSIT_NS

    @given(st.sampled_from(["WW", "WPs", "PP"]), st.integers(1, 6))
    @settings(max_examples=20, deadline=None)
    def test_idle_flush_always_drains(self, scheme, fan):
        """Idle flushing alone must reach quiescence with zero pending
        items, whatever the traffic shape."""
        rt = RuntimeSystem(MACHINE, seed=1)
        tram = make_scheme(
            scheme, rt,
            TramConfig(buffer_items=64, item_bytes=8, idle_flush=True),
            deliver_item=lambda ctx, it: None,
        )

        def driver(ctx):
            for dst in range(fan):
                tram.insert(ctx, dst=dst)

        for w in range(MACHINE.total_workers):
            rt.post(w, driver, delay=float(w) * 100.0)
        rt.run(max_events=500_000)
        assert tram.pending_items() == 0
        assert tram.stats.items_delivered == fan * MACHINE.total_workers
