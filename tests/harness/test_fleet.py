"""Tests for the live fleet telemetry (``repro.harness.fleet``)."""

import io
import json

from repro.harness.fleet import STATUS_SCHEMA, FleetStatus, make_fleet_status
from repro.harness.pool import PoolConfig
from repro.harness.sweep import run_sweep


class TestAccounting:
    def test_initial_state(self):
        fs = FleetStatus(10, cache_hits=3, nworkers=2)
        assert fs.done == 3  # upfront hits count as completed
        assert fs.queue_depth == 7
        assert fs.hit_rate == 0.3
        assert fs.eta_s() is None  # nothing executed yet

    def test_point_completion_updates_workers(self):
        fs = FleetStatus(4, nworkers=2, interval_s=1e9)
        fs.on_heartbeat(1, {"params": {"x": 1}})
        assert fs.workers[1]["current"] == {"x": 1}
        fs.on_point_done(1, 0.25)
        assert fs.workers[1] == {"points": 1, "wall_s": 0.25, "current": None}
        assert fs.done == 1
        assert fs.executed == 1
        assert fs.queue_depth == 3

    def test_cache_hit_not_charged_to_a_worker(self):
        fs = FleetStatus(2, interval_s=1e9)
        fs.on_point_done(0, 0.0, cache_hit=True)
        assert fs.cache_hits == 1
        assert fs.executed == 0
        assert fs.workers == {}

    def test_supervision_counters(self):
        fs = FleetStatus(4, nworkers=2, interval_s=1e9)
        fs.on_heartbeat(1, {"params": {"x": 1}})
        fs.on_retry(0)
        fs.on_retry(0)
        fs.on_restart("worker 1 died")
        fs.on_poisoned(1)
        assert fs.retries == 2
        assert fs.restarts == 1
        assert fs.poisoned == 1
        assert fs.done == 1  # a poisoned point is resolved, not executed
        assert fs.executed == 0
        assert fs.workers[1]["current"] is None  # quarantine clears it
        p = fs.status_payload()
        assert p["retries"] == 2
        assert p["poisoned"] == 1
        assert p["restarts"] == 1
        line = fs.render_line()
        assert "poisoned 1" in line and "restarts 1" in line


class TestPayload:
    def test_status_payload_shape(self):
        fs = FleetStatus(8, cache_hits=2, nworkers=2, interval_s=1e9)
        fs.on_heartbeat(1, {"params": {"nodes": 2}})
        fs.on_point_done(1, 0.5)
        p = fs.status_payload()
        assert p["schema"] == STATUS_SCHEMA
        assert p["points_total"] == 8
        assert p["points_done"] == 3
        assert p["queue_depth"] == 5
        assert p["cache_hits"] == 2
        assert p["executed"] == 1
        assert p["workers"]["1"]["points"] == 1
        assert p["throughput_pts_per_s"] >= 0
        assert json.loads(json.dumps(p)) == p  # JSON-serializable

    def test_render_line_mentions_the_essentials(self):
        fs = FleetStatus(64, cache_hits=8, nworkers=2, interval_s=1e9)
        fs.on_heartbeat(1, {"params": {}})
        for _ in range(4):
            fs.on_point_done(1, 0.01)
        line = fs.render_line()
        assert "[sweep 12/64]" in line
        assert "queue 52" in line
        assert "hits 8 (12%)" in line
        assert "pt/s" in line
        assert "eta" in line
        assert "workers" in line


class TestEmission:
    def test_json_file_written_atomically(self, tmp_path):
        path = tmp_path / "nested" / "status.json"
        fs = FleetStatus(2, path=path, interval_s=0.0)
        fs.on_point_done(0, 0.1)
        doc = json.loads(path.read_text())
        assert doc["schema"] == STATUS_SCHEMA
        assert doc["points_done"] == 1
        assert not list(tmp_path.glob("**/*.tmp.*"))  # no torn temp files

    def test_throttle_suppresses_rapid_updates(self, tmp_path):
        path = tmp_path / "status.json"
        fs = FleetStatus(100, path=path, interval_s=1e9)
        for _ in range(51):
            fs.on_point_done(0, 0.0)
        assert not path.exists()  # throttled: nothing written yet
        fs.finish()  # forced final emission flushes the true state
        assert json.loads(path.read_text())["points_done"] == 51

    def test_stream_line_rewrites_in_place(self):
        buf = io.StringIO()
        fs = FleetStatus(2, stream=buf, interval_s=0.0)
        fs.on_point_done(0, 0.0)
        fs.finish()
        out = buf.getvalue()
        assert out.startswith("\r\x1b[2K")
        assert out.endswith("\n")


class TestFactory:
    def test_disabled_without_flags(self):
        assert make_fleet_status(PoolConfig(), 4, 0, 0) is None

    def test_status_json_enables_file_only(self, tmp_path):
        cfg = PoolConfig(status_json=tmp_path / "s.json")
        fs = make_fleet_status(cfg, 4, 1, 2)
        assert fs is not None
        assert fs.stream is None
        assert fs.path == tmp_path / "s.json"
        assert fs.cache_hits == 1


def _square(x, seed):
    return float(x * x)


class TestSweepIntegration:
    def test_serial_sweep_writes_complete_status(self, tmp_path):
        path = tmp_path / "status.json"
        run_sweep(_square, {"x": [1, 2, 3]}, seeds=(0, 1),
                  status_json=path, tag="fleet-int")
        doc = json.loads(path.read_text())
        assert doc["schema"] == STATUS_SCHEMA
        assert doc["points_done"] == doc["points_total"] == 6
        assert doc["queue_depth"] == 0
        assert doc["eta_s"] in (None, 0.0)

    def test_parallel_sweep_reports_worker_fleet(self, tmp_path):
        path = tmp_path / "status.json"
        run_sweep(_square, {"x": [1, 2, 3, 4]}, seeds=(0, 1),
                  parallel=2, status_json=path, tag="fleet-int")
        doc = json.loads(path.read_text())
        assert doc["points_done"] == 8
        assert doc["executed"] == 8
        assert sum(w["points"] for w in doc["workers"].values()) == 8
        # Worker ids are the pool's (1-based), not the serial 0.
        assert all(int(wid) >= 1 for wid in doc["workers"])

    def test_status_does_not_perturb_results(self, tmp_path):
        quiet = run_sweep(_square, {"x": [1, 2]}, seeds=(0,), tag="fleet-int")
        loud = run_sweep(_square, {"x": [1, 2]}, seeds=(0,),
                         status_json=tmp_path / "s.json", tag="fleet-int")
        assert [c.values for c in quiet.cells] == [
            c.values for c in loud.cells
        ]
