"""Tests for the --metrics-out JSON artifact pipeline."""

import json

import pytest

from repro.harness import cli
from repro.harness.artifact import (
    METRICS_SCHEMA,
    build_metrics_payload,
    canonical_metrics_bytes,
    validate_metrics_payload,
    write_metrics_json,
)
from repro.harness.figures import run_figure
from repro.harness.sweep import run_sweep


class TestPayloadBuilding:
    def test_minimal_payload_validates(self):
        payload = build_metrics_payload(
            target="t", profile="quick", runs=[],
        )
        assert payload["schema"] == METRICS_SCHEMA
        assert validate_metrics_payload(payload) == []

    def test_summary_counts_bottlenecks(self):
        runs = [
            {"machine": {}, "total_time_ns": 1, "transport": {},
             "schemes": [], "metrics": {},
             "utilization": {"bottleneck": "workers"}},
            {"machine": {}, "total_time_ns": 1, "transport": {},
             "schemes": [], "metrics": {},
             "utilization": {"bottleneck": "workers"}},
            {"machine": {}, "total_time_ns": 1, "transport": {},
             "schemes": [], "metrics": {},
             "utilization": {"bottleneck": "nic_tx"}},
        ]
        payload = build_metrics_payload(target="t", profile="p", runs=runs)
        assert payload["summary"]["n_runs"] == 3
        assert payload["summary"]["bottleneck"] == "workers"
        assert payload["summary"]["bottleneck_counts"] == {
            "workers": 2, "nic_tx": 1,
        }

    def test_write_creates_parents(self, tmp_path):
        payload = build_metrics_payload(target="t", profile="p", runs=[])
        path = write_metrics_json(tmp_path / "a" / "b" / "m.json", payload)
        assert path.exists()
        assert json.loads(path.read_text())["target"] == "t"


class TestValidation:
    def _good(self):
        # Schema /2: optional blocks are explicitly null when disabled.
        return build_metrics_payload(target="t", profile="p", runs=[
            {"machine": {}, "total_time_ns": 1.0, "transport": {},
             "schemes": [], "metrics": {}, "utilization": None,
             "faults": None, "reliability": None, "flow": None,
             "timeline": None},
        ])

    def test_good_payload_clean(self):
        assert validate_metrics_payload(self._good()) == []

    def test_not_an_object(self):
        assert validate_metrics_payload([1, 2]) == [
            "payload is not a JSON object"
        ]

    def test_schema_mismatch_detected(self):
        bad = self._good()
        bad["schema"] = "something/else"
        assert any("schema mismatch" in e
                   for e in validate_metrics_payload(bad))

    def test_missing_run_key_detected(self):
        bad = self._good()
        del bad["runs"][0]["metrics"]
        assert any("missing 'metrics'" in e
                   for e in validate_metrics_payload(bad))

    def test_utilization_without_bottleneck_detected(self):
        bad = self._good()
        bad["runs"][0]["utilization"] = {"worker_mean": 0.5}
        assert any("bottleneck" in e for e in validate_metrics_payload(bad))

    def test_broken_stage_sum_detected(self):
        bad = self._good()
        bad["runs"][0]["schemes"] = [{
            "name": "WW",
            "stats": {},
            "latency": {"total_ns": 1000.0},
            "stages": {"wire": {"total_ns": 1.0}},
        }]
        assert any("does not sum" in e for e in validate_metrics_payload(bad))

    def test_summary_count_mismatch_detected(self):
        bad = self._good()
        bad["summary"]["n_runs"] = 99
        assert any("n_runs" in e for e in validate_metrics_payload(bad))


class TestProvenanceValidation:
    def _with_provenance(self, points, summary=None):
        payload = build_metrics_payload(target="t", profile="p", runs=[])
        prov = {"parallel": 2, "cache_dir": None, "points": points}
        if summary is not None:
            prov["summary"] = summary
        payload["provenance"] = prov
        return payload

    def _point(self, index, hit=False):
        return {"index": index, "cache_hit": hit, "worker": 1,
                "wall_s": 0.1, "seed": 0}

    def test_absent_provenance_ok(self):
        payload = build_metrics_payload(target="t", profile="p", runs=[])
        assert payload["provenance"] is None
        assert validate_metrics_payload(payload) == []

    def test_well_formed_provenance_ok(self):
        payload = self._with_provenance(
            [self._point(0), self._point(1, hit=True)],
            summary={"n_points": 2, "cache_hits": 1, "executed": 1},
        )
        assert validate_metrics_payload(payload) == []

    def test_missing_point_key_detected(self):
        point = self._point(0)
        del point["worker"]
        payload = self._with_provenance([point])
        assert any("missing 'worker'" in e
                   for e in validate_metrics_payload(payload))

    def test_points_list_required(self):
        payload = build_metrics_payload(target="t", profile="p", runs=[])
        payload["provenance"] = {"parallel": 1}
        assert any("points" in e for e in validate_metrics_payload(payload))

    def test_summary_inconsistency_detected(self):
        payload = self._with_provenance(
            [self._point(0)],
            summary={"n_points": 1, "cache_hits": 5, "executed": 1},
        )
        assert any("cache_hits" in e
                   for e in validate_metrics_payload(payload))


class TestCanonicalBytes:
    def _payload(self):
        from repro.harness.sweep import run_sweep

        path_free = run_sweep(
            lambda x, seed: float(x), {"x": [1, 2]},
        )
        payload = build_metrics_payload(
            target="t", profile="p", runs=[], sweep=path_free,
            provenance={"parallel": 1, "points": [], "summary": {}},
        )
        return payload

    def test_strips_provenance_and_volatile_cell_keys(self):
        a = self._payload()
        b = json.loads(json.dumps(a))
        b["provenance"] = {"parallel": 8, "points": [{"worker": 3}]}
        for cell in b["sweep"]["cells"]:
            cell["wall_s"] = [99.0]
            cell["cache_hits"] = 7
        assert canonical_metrics_bytes(a) == canonical_metrics_bytes(b)

    def test_detects_result_changes(self):
        a = self._payload()
        b = json.loads(json.dumps(a))
        b["sweep"]["cells"][0]["values"] = [123.0]
        assert canonical_metrics_bytes(a) != canonical_metrics_bytes(b)

    def test_key_order_irrelevant(self):
        a = self._payload()
        b = json.loads(json.dumps(a))
        b["sweep"] = dict(reversed(list(b["sweep"].items())))
        assert canonical_metrics_bytes(a) == canonical_metrics_bytes(b)


class TestRunFigureArtifact:
    """Acceptance path: fig12 (index-gather) with --metrics-out."""

    @pytest.fixture(scope="class")
    def fig12_artifact(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("metrics") / "fig12.json"
        data = run_figure("fig12", "quick", metrics_path=path)
        return data, json.loads(path.read_text())

    def test_validates_clean(self, fig12_artifact):
        _, payload = fig12_artifact
        assert validate_metrics_payload(payload) == []

    def test_embeds_figure_data(self, fig12_artifact):
        data, payload = fig12_artifact
        assert payload["target"] == "fig12"
        assert payload["profile"] == "quick"
        fig = payload["figure"]
        assert fig["fig_id"] == "fig12"
        assert [s["name"] for s in fig["series"]] == [
            s.name for s in data.series
        ]

    def test_runs_carry_stage_breakdowns(self, fig12_artifact):
        _, payload = fig12_artifact
        assert payload["runs"], "no run snapshots captured"
        for run in payload["runs"]:
            assert run["utilization"]["bottleneck"]
            for scheme in run["schemes"]:
                assert scheme["stages"], "stage breakdown missing"
                total = sum(
                    h["total_ns"] for name, h in scheme["stages"].items()
                    if name != "handler"
                )
                assert total == pytest.approx(
                    scheme["latency"]["total_ns"], rel=1e-6
                )

    def test_without_metrics_path_no_session(self):
        # plain call still works and instrumentation stays off
        data = run_figure("fig1", "quick")
        assert data.fig_id == "fig1"


class TestRunSweepArtifact:
    def test_sweep_writes_artifact(self, tmp_path):
        from repro.apps import run_histogram
        from repro.machine import MachineConfig

        def metric(z, seed):
            r = run_histogram(
                MachineConfig(1, 2, 2), "WPs", updates_per_pe=z,
                buffer_items=16, batch=200, seed=seed,
            )
            return r.total_time_ns

        path = tmp_path / "sweep.json"
        result = run_sweep(
            metric, {"z": [100, 200]}, metrics_path=path, metric="time_ns",
        )
        assert len(result.cells) == 2
        payload = json.loads(path.read_text())
        assert validate_metrics_payload(payload) == []
        assert payload["sweep"]["axes"] == {"z": [100, 200]}
        assert len(payload["runs"]) == 2  # one runtime per cell


class TestCli:
    def test_metrics_out_flag(self, tmp_path, capsys):
        path = tmp_path / "fig1.json"
        rc = cli.main(["fig1", "--profile", "quick",
                       "--metrics-out", str(path)])
        assert rc == 0
        payload = json.loads(path.read_text())
        assert validate_metrics_payload(payload) == []
        assert "metrics artifact written" in capsys.readouterr().out

    def test_validate_metrics_ok(self, tmp_path, capsys):
        path = tmp_path / "m.json"
        write_metrics_json(
            path, build_metrics_payload(target="t", profile="p", runs=[]),
        )
        rc = cli.main(["validate-metrics", str(path)])
        assert rc == 0
        assert "OK" in capsys.readouterr().out

    def test_validate_metrics_invalid_payload(self, tmp_path, capsys):
        path = tmp_path / "m.json"
        path.write_text(json.dumps({"schema": "nope"}))
        rc = cli.main(["validate-metrics", str(path)])
        assert rc == 1
        assert "INVALID" in capsys.readouterr().out

    def test_validate_metrics_missing_file(self, tmp_path):
        rc = cli.main(["validate-metrics", str(tmp_path / "absent.json")])
        assert rc == 2

    def test_validate_metrics_needs_path(self):
        rc = cli.main(["validate-metrics"])
        assert rc == 2
