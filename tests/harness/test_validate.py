"""Tests for the programmatic reproduction validator."""

import pytest

from repro.errors import HarnessError
from repro.harness.experiment import FigureData, Series
from repro.harness.validate import (
    CHECKERS,
    CheckResult,
    render_results,
    validate_figure,
    validate_reproduction,
)
from repro.harness.figures import FIGURES


class TestCheckerRegistry:
    def test_every_experiment_has_a_checker(self):
        assert set(CHECKERS) == set(FIGURES)

    def test_unknown_figure_raises(self):
        with pytest.raises(HarnessError):
            validate_figure("fig99")


class TestCheckers:
    def test_fast_checks_pass_on_quick_profile(self):
        results = validate_reproduction(
            profile="quick", figures=["fig1", "fig3", "tabA", "tabB"]
        )
        assert all(r.passed for r in results)

    def test_checker_detects_violations(self):
        """A checker must actually fail on counterfeit data."""
        bogus = FigureData(
            fig_id="fig12", title="t", xlabel="nodes", ylabel="us",
            x=[1],
            series=[
                Series("WW", [1.0]),   # WW fastest: wrong ordering
                Series("WPs", [2.0]),
                Series("WsP", [2.0]),
                Series("PP", [3.0]),
            ],
        )
        passed, _ = CHECKERS["fig12"](bogus)
        assert not passed

    def test_tabb_checker_detects_bound_violation(self):
        bogus = FigureData(
            fig_id="tabB", title="t", xlabel="scheme", ylabel="msgs",
            x=["WW"],
            series=[
                Series("lower_bound", [100.0]),
                Series("measured", [99.0]),  # below lower bound
                Series("upper_bound", [200.0]),
            ],
        )
        passed, _ = CHECKERS["tabB"](bogus)
        assert not passed


class TestRendering:
    def test_render_results_table(self):
        results = [
            CheckResult("figX", True, "ok"),
            CheckResult("figY", False, "broken"),
        ]
        out = render_results(results)
        assert "PASS" in out and "FAIL" in out
        assert "figY" in out
