"""Tests for post-run utilization metrics."""

import numpy as np
import pytest

from repro.harness.metrics import utilization
from repro.machine import MachineConfig
from repro.runtime.system import RuntimeSystem
from repro.tram import TramConfig, make_scheme


def run_traffic(machine, items=400, seed=0):
    rt = RuntimeSystem(machine, seed=seed)
    tram = make_scheme(
        "WPs", rt, TramConfig(buffer_items=16),
        deliver_bulk=lambda ctx, w, n, si, sc: None,
    )
    W = machine.total_workers

    def driver(ctx):
        rng = rt.rng.stream(f"m/{ctx.worker.wid}")
        counts = np.bincount(rng.integers(0, W, items), minlength=W)
        tram.insert_bulk(ctx, counts)
        tram.flush_when_done(ctx)

    for w in range(W):
        rt.post(w, driver)
    rt.run()
    return rt


class TestUtilization:
    def test_requires_completed_run(self):
        rt = RuntimeSystem(MachineConfig(1, 1, 2))
        with pytest.raises(ValueError):
            utilization(rt)

    def test_fractions_in_unit_interval(self):
        rt = run_traffic(MachineConfig(2, 2, 2))
        rep = utilization(rt)
        for frac in (rep.worker_mean, rep.worker_max, rep.commthread_mean,
                     rep.commthread_max, rep.nic_tx_mean, rep.nic_rx_mean):
            assert 0.0 <= frac <= 1.0
        assert rep.worker_max >= rep.worker_mean
        assert rep.commthread_max >= rep.commthread_mean

    def test_nonsmp_has_no_commthread_utilization(self):
        rt = run_traffic(MachineConfig(2, 4, 1, smp=False))
        rep = utilization(rt)
        assert rep.commthread_mean == 0.0
        assert rep.commthread_max == 0.0

    def test_commthread_load_grows_with_workers_per_process(self):
        few = utilization(run_traffic(MachineConfig(2, 4, 2)))
        many = utilization(run_traffic(MachineConfig(2, 1, 8)))
        assert many.commthread_max > few.commthread_max

    def test_bottleneck_names_component(self):
        rep = utilization(run_traffic(MachineConfig(2, 1, 8)))
        assert rep.bottleneck() in {"workers", "commthreads", "nic_tx", "nic_rx"}

    def test_table_renders(self):
        rep = utilization(run_traffic(MachineConfig(2, 2, 2)))
        out = rep.to_table()
        assert "comm threads" in out
        assert "%" in out

    def test_table_headers_named(self):
        rep = utilization(run_traffic(MachineConfig(2, 2, 2)))
        header = rep.to_table().splitlines()[0]
        assert "component" in header
        assert "mean" in header
        assert "max" in header

    def test_table_includes_queue_waits(self):
        rep = utilization(run_traffic(MachineConfig(2, 2, 2)))
        out = rep.to_table()
        assert "comm-thread queue wait" in out
        assert "NIC queue wait" in out

    def test_to_dict_round_trips_fields(self):
        rep = utilization(run_traffic(MachineConfig(2, 2, 2)))
        d = rep.to_dict()
        assert d["total_time_ns"] == rep.total_time_ns
        assert d["worker_mean"] == rep.worker_mean
        assert d["commthread_queue_wait_ns"] == rep.commthread_queue_wait_ns
        assert d["nic_queue_wait_ns"] == rep.nic_queue_wait_ns

    def test_queue_waits_nonzero_under_load(self):
        rep = utilization(run_traffic(MachineConfig(2, 1, 8), items=2000))
        assert rep.commthread_queue_wait_ns > 0.0
