"""Tests for the parallel sweep executor and its result cache."""

import functools
import json
import os
import random
import signal
import time
from pathlib import Path

import pytest

from repro.errors import HarnessError
from repro.harness import cli
from repro.harness.artifact import (
    canonical_metrics_bytes,
    validate_metrics_payload,
)
from repro.harness.cache import CACHE_SCHEMA, ResultCache, point_key
from repro.harness.pool import (
    PoolConfig,
    SweepInterrupted,
    _scramble_ambient_rng,
    map_points,
    pool_session,
    run_app_point,
)
from repro.harness.sweep import run_sweep

# ----------------------------------------------------------------------
# Module-level point functions (stable tags; visible to forked workers)
# ----------------------------------------------------------------------
_CALLS = []


def _square(seed, *, x):
    _CALLS.append((x, seed))
    return float(x * x + seed)


def _boom(seed, *, x):
    raise ValueError(f"point {x} exploded")


def _ambient(seed, *, x):
    # Deliberately leaks dependence on the global RNG the executor
    # scrambles — results must differ between serial and parallel.
    return random.random()


# Chaos point functions keyed off an out-of-band marker directory (env
# var, never a point param) so the degraded runs keep the exact params
# — and therefore the exact canonical artifact bytes — of clean runs.
_FAILDIR_ENV = "REPRO_TEST_FAILDIR"


def _marker_once(name):
    """True exactly once per marker name (False with chaos disabled)."""
    faildir = os.environ.get(_FAILDIR_ENV)
    if not faildir:
        return False
    marker = Path(faildir) / name
    if marker.exists():
        return False
    marker.touch()
    return True


def _flaky(seed, *, x):
    # Transient failure: the first attempt at every point fails.
    if _marker_once(f"flaky-{x}-{seed}"):
        raise ValueError(f"transient failure at x={x}")
    return float(x * x + seed)


def _kamikaze(seed, *, x):
    # One point SIGKILLs its worker mid-execution, once.
    if x == 2 and _marker_once("kamikaze"):
        os.kill(os.getpid(), signal.SIGKILL)
    return float(x * x + seed)


def _sleeper(seed, *, x):
    # One point hangs far past any sane timeout, once.
    if x == 1 and _marker_once("sleeper"):
        time.sleep(300)
    return float(x * x + seed)


#: Tiny histogram config so app-backed tests stay fast.
_HISTO = functools.partial(
    run_app_point, "histogram", "total_time_ns",
    updates_per_pe=200, buffer_items=16, batch=100,
)
_HISTO_TAG = "test:histo-tiny"
_AXES = {"nodes": [1], "scheme": ["WW", "WPs"]}


# ----------------------------------------------------------------------
# Content-addressed keys
# ----------------------------------------------------------------------
class TestPointKey:
    def test_stable(self):
        a = point_key(tag="t", params={"x": 1}, seed=0)
        b = point_key(tag="t", params={"x": 1}, seed=0)
        assert a == b
        assert len(a) == 64  # sha256 hex

    def test_param_order_irrelevant(self):
        a = point_key(tag="t", params={"x": 1, "y": 2}, seed=0)
        b = point_key(tag="t", params={"y": 2, "x": 1}, seed=0)
        assert a == b

    def test_sensitive_to_every_ingredient(self):
        base = point_key(tag="t", params={"x": 1}, seed=0)
        assert point_key(tag="u", params={"x": 1}, seed=0) != base
        assert point_key(tag="t", params={"x": 2}, seed=0) != base
        assert point_key(tag="t", params={"x": 1}, seed=1) != base

    def test_fault_plan_folds_in(self):
        from repro.faults import FaultPlan

        clean = point_key(tag="t", params={}, seed=0)
        faulty = point_key(
            tag="t", params={}, seed=0, faults=FaultPlan.parse("drop=0.01"),
        )
        assert clean != faulty

    def test_flow_config_folds_in(self):
        from repro.flow import FlowConfig

        clean = point_key(tag="t", params={}, seed=0)
        flowed = point_key(
            tag="t", params={}, seed=0, flow=FlowConfig.parse("ct_msgs=8"),
        )
        assert clean != flowed

    def test_cost_model_folds_in(self):
        from repro.machine.costs import CostModel

        default = point_key(tag="t", params={}, seed=0)
        field = next(iter(CostModel.__dataclass_fields__))
        tweaked = CostModel(
            **{field: getattr(CostModel(), field) * 2}
        )
        assert point_key(tag="t", params={}, seed=0, costs=tweaked) != default


class TestResultCache:
    def test_roundtrip_and_layout(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = point_key(tag="t", params={"x": 1}, seed=0)
        path = cache.put(key, {"value": 42.0, "records": []})
        assert path == tmp_path / key[:2] / f"{key}.json"
        entry = cache.get(key)
        assert entry["value"] == 42.0
        assert entry["schema"] == CACHE_SCHEMA
        assert entry["key"] == key

    def test_missing_is_miss(self, tmp_path):
        assert ResultCache(tmp_path).get("0" * 64) is None

    def test_corrupt_file_is_miss_and_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ab" + "0" * 62
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_text("{not json")
        assert cache.get(key) is None
        # Quarantined to <key>.bad: the corrupt JSON is parsed at most
        # once and the evidence survives for inspection.
        assert not path.exists()
        bad = path.with_suffix(".bad")
        assert bad.read_text() == "{not json"
        assert cache.get(key) is None  # still a miss, nothing re-parsed

    def test_quarantined_entry_can_be_rewritten(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = point_key(tag="t", params={"x": 1}, seed=0)
        cache.put(key, {"value": 1.0})
        cache.path_for(key).write_text("garbage")
        assert cache.get(key) is None
        cache.put(key, {"value": 2.0})
        assert cache.get(key)["value"] == 2.0

    def test_foreign_schema_is_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ab" + "0" * 62
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps({"schema": "other/1", "key": key}))
        assert cache.get(key) is None
        assert path.with_suffix(".bad").exists()

    def test_key_mismatch_is_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ab" + "0" * 62
        cache.put(key, {"value": 1.0})
        moved = "cd" + "0" * 62
        cache.path_for(moved).parent.mkdir(parents=True, exist_ok=True)
        cache.path_for(key).rename(cache.path_for(moved))
        assert cache.get(moved) is None

    def test_len_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        for seed in range(3):
            cache.put(point_key(tag="t", params={}, seed=seed), {"value": 0})
        assert len(cache) == 3
        assert cache.clear() == 3
        assert len(cache) == 0


# ----------------------------------------------------------------------
# The executor
# ----------------------------------------------------------------------
class TestMapPointsSerial:
    def test_grid_major_order(self):
        outcomes = map_points(_square, [{"x": 1}, {"x": 2}], seeds=(0, 1))
        assert [o.spec.index for o in outcomes] == [0, 1, 2, 3]
        assert [o.value for o in outcomes] == [1.0, 2.0, 4.0, 5.0]
        assert all(not o.cache_hit for o in outcomes)

    def test_lambda_without_cache_ok(self):
        outcomes = map_points(lambda seed, x: float(x), [{"x": 7}])
        assert outcomes[0].value == 7.0

    def test_lambda_with_cache_needs_tag(self, tmp_path):
        with pool_session(PoolConfig(cache_dir=tmp_path)):
            with pytest.raises(HarnessError, match="stable point tag"):
                map_points(lambda seed, x: float(x), [{"x": 1}])

    def test_cache_hit_skips_execution(self, tmp_path):
        grid = [{"x": 3}, {"x": 4}]
        _CALLS.clear()
        with pool_session(PoolConfig(cache_dir=tmp_path)):
            cold = map_points(_square, grid)
        assert len(_CALLS) == 2
        with pool_session(PoolConfig(cache_dir=tmp_path)) as ctx:
            warm = map_points(_square, grid)
            assert ctx.cache_hits == 2 and ctx.executed == 0
        assert len(_CALLS) == 2  # nothing re-ran
        assert [o.value for o in warm] == [o.value for o in cold]
        assert all(o.cache_hit for o in warm)

    def test_fresh_ignores_cache_but_rewrites(self, tmp_path):
        grid = [{"x": 5}]
        with pool_session(PoolConfig(cache_dir=tmp_path)):
            map_points(_square, grid)
        _CALLS.clear()
        with pool_session(
            PoolConfig(cache_dir=tmp_path, cache_read=False)
        ) as ctx:
            map_points(_square, grid)
            assert ctx.executed == 1 and ctx.cache_hits == 0
        assert len(_CALLS) == 1

    def test_budget_interrupts_then_resumes(self, tmp_path):
        grid = [{"x": i} for i in range(4)]
        with pool_session(
            PoolConfig(cache_dir=tmp_path, max_executions=2)
        ):
            with pytest.raises(SweepInterrupted) as exc:
                map_points(_square, grid)
        assert exc.value.executed == 2
        assert exc.value.remaining == 2
        assert len(ResultCache(tmp_path)) == 2  # finished points persisted
        with pool_session(PoolConfig(cache_dir=tmp_path)) as ctx:
            outcomes = map_points(_square, grid)
            assert ctx.cache_hits == 2 and ctx.executed == 2
        assert [o.value for o in outcomes] == [0.0, 1.0, 4.0, 9.0]

    def test_provenance_recorded(self):
        with pool_session() as ctx:
            map_points(_square, [{"x": 1}], seeds=(0, 1))
            payload = ctx.provenance_payload()
        assert [p["index"] for p in payload["points"]] == [0, 1]
        assert payload["summary"]["n_points"] == 2
        assert payload["summary"]["executed"] == 2
        assert payload["summary"]["cache_hits"] == 0


class TestMapPointsParallel:
    def test_matches_serial(self):
        grid = [{"x": i} for i in range(6)]
        serial = map_points(_square, grid, seeds=(0, 1))
        with pool_session(PoolConfig(parallel=3)) as ctx:
            par = map_points(_square, grid, seeds=(0, 1))
            workers = {p["worker"] for p in ctx.provenance}
        assert [o.value for o in par] == [o.value for o in serial]
        assert [o.spec.index for o in par] == list(range(12))
        assert workers <= {1, 2, 3} and workers  # pool workers, not parent

    def test_worker_error_propagates(self):
        with pool_session(PoolConfig(parallel=2)):
            with pytest.raises(HarnessError, match="exploded"):
                map_points(_boom, [{"x": 0}, {"x": 1}])

    def test_ambient_rng_leak_diverges(self):
        """A point fn reading global RNG must not survive the identity
        tests: serial (token 0) and workers (tokens 1..N) scramble the
        ambient RNGs differently on purpose."""
        serial = map_points(_ambient, [{"x": 0}])
        with pool_session(PoolConfig(parallel=2)):
            par = map_points(_ambient, [{"x": 0}, {"x": 1}])
        assert par[0].value != serial[0].value

    def test_parallel_populates_shared_cache(self, tmp_path):
        grid = [{"x": i} for i in range(4)]
        with pool_session(PoolConfig(parallel=2, cache_dir=tmp_path)):
            map_points(_square, grid)
        assert len(ResultCache(tmp_path)) == 4
        with pool_session(PoolConfig(cache_dir=tmp_path)) as ctx:
            map_points(_square, grid)
            assert ctx.cache_hits == 4 and ctx.executed == 0


class TestScramble:
    def test_deterministic_per_token(self):
        _scramble_ambient_rng(1)
        a = random.random()
        _scramble_ambient_rng(1)
        b = random.random()
        assert a == b

    def test_tokens_diverge(self):
        _scramble_ambient_rng(0)
        a = random.random()
        _scramble_ambient_rng(1)
        b = random.random()
        assert a != b


# ----------------------------------------------------------------------
# End-to-end determinism and resumability (satellites 1 and 3)
# ----------------------------------------------------------------------
class TestSweepDeterminism:
    def test_parallel_artifact_byte_identical_to_serial(self, tmp_path):
        """--parallel 1 and --parallel 8 must produce byte-identical
        artifacts modulo the volatile provenance fields."""
        kw = dict(seeds=(0, 1), metrics_path=None, tag=_HISTO_TAG)
        p1 = tmp_path / "serial.json"
        p8 = tmp_path / "par8.json"
        r1 = run_sweep(_HISTO, _AXES, metrics_path=p1, **{
            k: v for k, v in kw.items() if k != "metrics_path"})
        r8 = run_sweep(_HISTO, _AXES, metrics_path=p8, parallel=8, **{
            k: v for k, v in kw.items() if k != "metrics_path"})
        assert [c.values for c in r8.cells] == [c.values for c in r1.cells]
        a = json.loads(p1.read_text())
        b = json.loads(p8.read_text())
        assert validate_metrics_payload(a) == []
        assert validate_metrics_payload(b) == []
        assert canonical_metrics_bytes(a) == canonical_metrics_bytes(b)
        # Provenance itself legitimately differs (worker ids, wall).
        assert a["provenance"]["parallel"] == 1
        assert b["provenance"]["parallel"] == 8

    def test_warm_cache_executes_nothing(self, tmp_path):
        cache = tmp_path / "cache"
        cold_p = tmp_path / "cold.json"
        warm_p = tmp_path / "warm.json"
        run_sweep(_HISTO, _AXES, seeds=(0,), tag=_HISTO_TAG,
                  cache_dir=cache, metrics_path=cold_p)
        warm = run_sweep(_HISTO, _AXES, seeds=(0,), tag=_HISTO_TAG,
                         cache_dir=cache, metrics_path=warm_p)
        assert warm.total_cache_hits == warm.total_points == 2
        a = json.loads(cold_p.read_text())
        b = json.loads(warm_p.read_text())
        assert b["provenance"]["summary"]["executed"] == 0
        assert canonical_metrics_bytes(a) == canonical_metrics_bytes(b)

    def test_interrupted_sweep_resumes_to_identical_artifact(self, tmp_path):
        ref_p = tmp_path / "ref.json"
        res_p = tmp_path / "resumed.json"
        cache = tmp_path / "cache"
        run_sweep(_HISTO, _AXES, tag=_HISTO_TAG, metrics_path=ref_p)
        with pytest.raises(SweepInterrupted) as exc:
            run_sweep(_HISTO, _AXES, tag=_HISTO_TAG, cache_dir=cache,
                      max_executions=1)
        assert exc.value.executed == 1 and exc.value.remaining == 1
        resumed = run_sweep(_HISTO, _AXES, tag=_HISTO_TAG, cache_dir=cache,
                            metrics_path=res_p)
        assert resumed.total_cache_hits == 1  # only the missing point ran
        ref = json.loads(ref_p.read_text())
        res = json.loads(res_p.read_text())
        assert canonical_metrics_bytes(res) == canonical_metrics_bytes(ref)


# ----------------------------------------------------------------------
# App-backed points and the `sweep` CLI target
# ----------------------------------------------------------------------
class TestRunAppPoint:
    def test_returns_float_metric(self):
        value = run_app_point(
            "histogram", "total_time_ns", seed=0,
            nodes=1, scheme="WPs", updates_per_pe=100, buffer_items=16,
            batch=100,
        )
        assert isinstance(value, float) and value > 0

    def test_unknown_app(self):
        with pytest.raises(HarnessError, match="unknown sweep app"):
            run_app_point("nope", "total_time_ns")

    def test_unknown_metric(self):
        with pytest.raises(HarnessError, match="no metric"):
            run_app_point(
                "histogram", "nope", nodes=1, updates_per_pe=100,
                buffer_items=16, batch=100,
            )


class TestSweepCli:
    ARGS = [
        "sweep", "--app", "histogram",
        "--axes", "nodes=1;scheme=WW,WPs",
        "--fixed", "updates_per_pe=200,buffer_items=16,batch=100",
    ]

    def test_sweep_no_cache(self, capsys):
        rc = cli.main(self.ARGS + ["--no-cache"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "total_time_ns (mean)" in out
        assert "0 cache hit(s), 2 executed" in out

    def test_sweep_interrupt_then_resume(self, tmp_path, capsys):
        cached = self.ARGS + ["--cache-dir", str(tmp_path)]
        rc = cli.main(cached + ["--max-points", "1"])
        assert rc == 3
        assert "sweep interrupted" in capsys.readouterr().err
        rc = cli.main(cached + ["--resume"])
        assert rc == 0
        assert "1 cache hit(s), 1 executed" in capsys.readouterr().out

    def test_sweep_warm_cache_all_hits(self, tmp_path, capsys):
        cached = self.ARGS + ["--cache-dir", str(tmp_path)]
        assert cli.main(cached) == 0
        capsys.readouterr()
        assert cli.main(cached) == 0
        assert "2 cache hit(s), 0 executed" in capsys.readouterr().out

    def test_sweep_metrics_artifact(self, tmp_path, capsys):
        path = tmp_path / "sweep.json"
        rc = cli.main(self.ARGS + ["--no-cache", "--metrics-out", str(path)])
        assert rc == 0
        payload = json.loads(path.read_text())
        assert validate_metrics_payload(payload) == []
        assert payload["provenance"]["summary"]["n_points"] == 2

    def test_sweep_needs_axes(self, capsys):
        rc = cli.main(["sweep", "--app", "histogram"])
        assert rc == 2
        assert "--axes" in capsys.readouterr().err

    def test_sweep_bad_axes(self, capsys):
        rc = cli.main(["sweep", "--axes", "garbage"])
        assert rc == 2


# ----------------------------------------------------------------------
# Supervision: crash/hang recovery, retries, poison quarantine
# ----------------------------------------------------------------------
def _chaos(seed, *, x):
    """All three failure modes behind one point fn (marker-gated)."""
    if x == 2 and _marker_once("kamikaze"):
        os.kill(os.getpid(), signal.SIGKILL)
    if x == 1 and _marker_once("sleeper"):
        time.sleep(300)
    if x % 3 == 0 and _marker_once(f"flaky-{x}-{seed}"):
        raise ValueError(f"transient failure at x={x}")
    return float(x * x + seed)


@pytest.fixture
def faildir(tmp_path, monkeypatch):
    d = tmp_path / "faults"
    d.mkdir()
    monkeypatch.setenv(_FAILDIR_ENV, str(d))
    return d


class TestWorkerDiedMessage:
    def test_terminal_failure_ships_traceback(self):
        """A worker that dies outside point execution must put a final
        ("died", wid, traceback) message before exiting (satellite 1)."""
        import multiprocessing

        from repro.harness.pool import _WORKER_DIED_EXIT, _worker_main

        mp = multiprocessing.get_context("fork")
        resq = mp.SimpleQueue()
        parent_conn, child_conn = mp.Pipe()
        # specs=None: the first slot lookup raises outside the per-point
        # try/except, driving the terminal-failure path.
        proc = mp.Process(
            target=_worker_main,
            args=(7, _square, None, False, child_conn, resq, []),
        )
        proc.start()
        child_conn.close()
        parent_conn.send(0)
        msg = resq.get()
        proc.join(10)
        assert msg[0] == "died"
        assert msg[1] == 7
        assert "TypeError" in msg[2]
        assert proc.exitcode == _WORKER_DIED_EXIT


class TestSupervision:
    GRID = [{"x": i} for i in range(8)]

    def _config(self, **kw):
        base = dict(parallel=3, retries=2, backoff_base_s=0.01,
                    quarantine=True)
        base.update(kw)
        return PoolConfig(**base)

    def test_sigkilled_worker_is_replaced(self, faildir):
        with pool_session(self._config()) as ctx:
            outcomes = map_points(_kamikaze, self.GRID)
        assert [o.value for o in outcomes] == [float(i * i) for i in range(8)]
        assert ctx.worker_restarts >= 1
        assert ctx.poisoned == 0
        assert (faildir / "kamikaze").exists()  # the kill really happened

    def test_hung_worker_is_killed_and_point_retried(self, faildir):
        with pool_session(
            self._config(point_timeout_s=2.0)
        ) as ctx:
            outcomes = map_points(_sleeper, self.GRID)
        assert [o.value for o in outcomes] == [float(i * i) for i in range(8)]
        assert ctx.worker_restarts >= 1
        hung = outcomes[1]
        assert hung.retries >= 1  # the timed-out attempt was charged

    def test_transient_failures_retried_parallel(self, faildir):
        with pool_session(self._config()) as ctx:
            outcomes = map_points(_flaky, self.GRID)
        assert [o.value for o in outcomes] == [float(i * i) for i in range(8)]
        assert ctx.poisoned == 0
        assert ctx.retried_ok == 8  # every point failed exactly once
        assert ctx.retry_attempts == 8

    def test_transient_failures_retried_serial(self, faildir):
        with pool_session(self._config(parallel=1)) as ctx:
            outcomes = map_points(_flaky, self.GRID)
        assert [o.value for o in outcomes] == [float(i * i) for i in range(8)]
        assert ctx.retried_ok == 8

    def test_exhausted_point_poisoned_with_conservation(self):
        grid = [{"x": 0}, {"x": 1}, {"x": 2}]
        # Parallel path: every point exhausts its budget and quarantines.
        with pool_session(self._config(retries=1)):
            par = map_points(_boom, grid[:2], tag="poison-par")
            assert [o.status for o in par] == ["poisoned", "poisoned"]
        with pool_session(self._config(parallel=1, retries=1)) as ctx:
            outcomes = map_points(
                lambda seed, x: _boom(seed, x=x) if x == 1 else float(x),
                grid,
            )
        assert [o.status for o in outcomes] == ["ok", "poisoned", "ok"]
        poisoned = outcomes[1]
        assert poisoned.value is None
        assert "exploded" in poisoned.error
        assert poisoned.retries == 1
        summary = ctx.provenance_payload()["summary"]
        assert summary["n_points"] == 3
        assert summary["poisoned"] == 1
        assert (
            summary["cache_hits"] + summary["executed"] + summary["poisoned"]
            == summary["n_points"]
        )

    def test_poisoned_point_never_cached(self, tmp_path):
        with pool_session(
            self._config(parallel=1, retries=1, cache_dir=tmp_path)
        ):
            map_points(_boom, [{"x": 5}])
        assert len(ResultCache(tmp_path)) == 0

    def test_without_quarantine_failure_still_fatal(self):
        with pool_session(self._config(retries=1, quarantine=False)):
            with pytest.raises(HarnessError, match="exploded"):
                map_points(_boom, [{"x": 0}, {"x": 1}])

    def test_restart_cap_aborts(self, faildir):
        cfg = self._config(parallel=2, retries=5, max_restarts=0)
        with pool_session(cfg):
            with pytest.raises(HarnessError, match="gave up"):
                map_points(_kamikaze, self.GRID)

    def test_chaos_artifact_byte_identical_to_clean_serial(
        self, tmp_path, faildir, monkeypatch
    ):
        """The acceptance-criteria invariant: one SIGKILLed worker, one
        hung worker, and transient failures — same canonical bytes as a
        fault-free serial run."""
        chaos_p = tmp_path / "chaos.json"
        clean_p = tmp_path / "clean.json"
        axes = {"x": list(range(8))}
        chaos = run_sweep(
            _chaos, axes, seeds=(0,), tag="chaos-inv",
            metrics_path=chaos_p, parallel=3, retries=3,
            point_timeout_s=2.0,
        )
        monkeypatch.delenv(_FAILDIR_ENV)
        clean = run_sweep(
            _chaos, axes, seeds=(0,), tag="chaos-inv", metrics_path=clean_p,
        )
        assert [c.values for c in chaos.cells] == [
            c.values for c in clean.cells
        ]
        a = json.loads(chaos_p.read_text())
        b = json.loads(clean_p.read_text())
        assert validate_metrics_payload(a) == []
        assert canonical_metrics_bytes(a) == canonical_metrics_bytes(b)
        summary = a["provenance"]["summary"]
        assert summary["poisoned"] == 0
        assert summary["retries"] >= 3  # kill + hang + flaky all charged
        assert summary["restarts"] >= 2

    def test_poisoned_cell_serializes_null_and_validates(self, tmp_path):
        path = tmp_path / "poisoned.json"
        result = run_sweep(
            _boom, {"x": [0]}, seeds=(0,), tag="poison-artifact",
            metrics_path=path, retries=1,
        )
        import math

        assert math.isnan(result.cells[0].values[0])
        assert math.isnan(result.cells[0].mean)
        payload = json.loads(path.read_text())
        assert validate_metrics_payload(payload) == []
        cell = payload["sweep"]["cells"][0]
        assert cell["values"] == [None]
        assert cell["mean"] is None
        point = payload["provenance"]["points"][0]
        assert point["status"] == "poisoned"
        assert "exploded" in point["error"]


# ----------------------------------------------------------------------
# Interrupt semantics: graceful drain, crash-consistent journal, resume
# ----------------------------------------------------------------------
_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _sweep_argv(cache, *extra):
    import sys

    return [
        sys.executable, "-m", "repro.harness", "sweep",
        "--app", "histogram",
        "--axes", "nodes=1,2;scheme=WW,WPs",
        "--fixed", "updates_per_pe=15000,buffer_items=16,batch=100",
        "--seeds", "0,1",
        "--parallel", "2",
        "--cache-dir", str(cache),
        *extra,
    ]


def _journal_points(journal):
    """Parsed point records of a journal (asserts every line is JSON)."""
    if not journal.exists():
        return []
    docs = [json.loads(line) for line in journal.read_text().splitlines()]
    return [d for d in docs if d.get("kind") == "point"]


def _interrupt_mid_sweep(tmp_path, signum):
    """Start the sweep CLI, signal it once >=2 points are journaled,
    and return (returncode, cache_dir, journal_path)."""
    import subprocess

    cache = tmp_path / "cache"
    journal = cache / "sweep-journal.jsonl"
    env = dict(os.environ, PYTHONPATH=_SRC)
    proc = subprocess.Popen(
        _sweep_argv(cache),
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                pytest.fail(
                    f"sweep finished (rc {proc.returncode}) before the "
                    f"signal — grid too fast for this host"
                )
            try:
                if len(_journal_points(journal)) >= 2:
                    break
            except ValueError:
                pass  # mid-append read; journal settles next poll
            time.sleep(0.05)
        else:
            pytest.fail("journal never accumulated 2 points")
        proc.send_signal(signum)
        rc = proc.wait(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    return rc, cache, journal


@pytest.mark.slow
class TestInterruptSemantics:
    def _reference_artifact(self, tmp_path):
        ref_p = tmp_path / "ref.json"
        rc = cli.main(
            _sweep_argv(tmp_path / "ref-cache", "--metrics-out", str(ref_p))[3:]
        )
        assert rc == 0
        return json.loads(ref_p.read_text())

    def test_sigint_drains_to_exit_3_then_resume_matches(self, tmp_path):
        rc, cache, journal = _interrupt_mid_sweep(tmp_path, signal.SIGINT)
        assert rc == 3  # graceful drain, not the default 130
        points = _journal_points(journal)  # also: every line valid JSON
        assert 2 <= len(points) < 8
        assert all(p["status"] == "ok" for p in points)

        res_p = tmp_path / "resumed.json"
        rc = cli.main(
            _sweep_argv(cache, "--resume", "--metrics-out", str(res_p))[3:]
        )
        assert rc == 0
        resumed = json.loads(res_p.read_text())
        summary = resumed["provenance"]["summary"]
        # Only the points the drained run never resolved were executed.
        assert summary["cache_hits"] >= len(points)
        assert summary["executed"] <= 8 - len(points)
        ref = self._reference_artifact(tmp_path)
        assert canonical_metrics_bytes(resumed) == canonical_metrics_bytes(ref)

    def test_parent_sigkill_resumes_from_journal(self, tmp_path):
        rc, cache, journal = _interrupt_mid_sweep(tmp_path, signal.SIGKILL)
        assert rc == -signal.SIGKILL
        points = _journal_points(journal)  # fsync'd prefix survived
        assert len(points) >= 2
        journaled = {p["index"] for p in points}

        res_p = tmp_path / "resumed.json"
        rc = cli.main(
            _sweep_argv(cache, "--resume", "--metrics-out", str(res_p))[3:]
        )
        assert rc == 0
        resumed = json.loads(res_p.read_text())
        # Journaled points replayed (source "journal"), the rest
        # executed — never re-running what the dead parent completed.
        by_index = {
            p["index"]: p for p in resumed["provenance"]["points"]
        }
        for index in journaled:
            assert by_index[index]["cache_hit"]
        summary = resumed["provenance"]["summary"]
        assert summary["executed"] == 8 - summary["cache_hits"]
        ref = self._reference_artifact(tmp_path)
        assert canonical_metrics_bytes(resumed) == canonical_metrics_bytes(ref)
