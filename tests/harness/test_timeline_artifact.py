"""Timeline blocks in the metrics artifact: schema /2, validation,
schedule-independence, and the terminal renderer."""

import json

import pytest

from repro.harness.artifact import (
    METRICS_SCHEMA,
    canonical_metrics_bytes,
    validate_metrics_payload,
)
from repro.harness.sweep import run_sweep
from repro.harness.timeline_plot import (
    group_tracks,
    render_timeline,
    run_timeline_plot,
)
from repro.machine import MachineConfig
from repro.obs import TimelineConfig


def _point(nodes, seed):
    import numpy as np

    from repro.runtime.system import RuntimeSystem
    from repro.tram import TramConfig, make_scheme

    rt = RuntimeSystem(MachineConfig(nodes, 2, 2), seed=seed)
    tram = make_scheme(
        "WPs", rt, TramConfig(buffer_items=16),
        deliver_bulk=lambda ctx, w, n, si, sc: None,
    )
    W = rt.machine.total_workers

    def driver(ctx):
        rng = rt.rng.stream(f"tla/{ctx.worker.wid}")
        counts = np.bincount(rng.integers(0, W, 200), minlength=W)
        tram.insert_bulk(ctx, counts)
        tram.flush_when_done(ctx)

    for w in range(W):
        rt.post(w, driver)
    rt.run()
    return float(rt.engine.now)


AXES = {"nodes": [1, 2]}
TL = TimelineConfig(cadence_ns=1_000.0)


@pytest.fixture(scope="module")
def timeline_artifact(tmp_path_factory):
    path = tmp_path_factory.mktemp("tla") / "metrics.json"
    run_sweep(_point, AXES, seeds=(0, 1), metrics_path=path,
              timeline=TL, tag="tla")
    return path, json.loads(path.read_text())


class TestArtifactShape:
    def test_schema_v2_with_timeline_blocks(self, timeline_artifact):
        _, payload = timeline_artifact
        assert payload["schema"] == METRICS_SCHEMA == "repro.run-metrics/2"
        assert payload["config"]["timeline"]["cadence_ns"] == 1_000.0
        for run in payload["runs"]:
            tl = run["timeline"]
            assert tl["schema"] == "repro.obs.timeline/1"
            assert tl["n_samples"] >= 1

    def test_validates_clean(self, timeline_artifact):
        _, payload = timeline_artifact
        assert validate_metrics_payload(payload) == []

    def test_without_timeline_block_is_explicit_null(self, tmp_path):
        path = tmp_path / "plain.json"
        run_sweep(_point, AXES, seeds=(0,), metrics_path=path, tag="tla")
        payload = json.loads(path.read_text())
        assert validate_metrics_payload(payload) == []
        for run in payload["runs"]:
            assert run["timeline"] is None


class TestValidatorVersions:
    def test_v1_lenient_about_optional_blocks(self, timeline_artifact):
        _, payload = timeline_artifact
        old = json.loads(json.dumps(payload))
        old["schema"] = "repro.run-metrics/1"
        for run in old["runs"]:
            for key in ("faults", "reliability", "flow", "timeline"):
                run.pop(key, None)
        assert validate_metrics_payload(old) == []

    def test_v2_strict_about_optional_blocks(self, timeline_artifact):
        _, payload = timeline_artifact
        bad = json.loads(json.dumps(payload))
        del bad["runs"][0]["timeline"]
        errs = validate_metrics_payload(bad)
        assert any("timeline" in e and "explicit null" in e for e in errs)

    def test_unknown_schema_rejected(self, timeline_artifact):
        _, payload = timeline_artifact
        bad = json.loads(json.dumps(payload))
        bad["schema"] = "repro.run-metrics/3"
        assert any("schema mismatch" in e
                   for e in validate_metrics_payload(bad))


class TestTimelineBlockValidation:
    def _mutate(self, payload, fn):
        bad = json.loads(json.dumps(payload))
        fn(bad["runs"][0]["timeline"])
        return validate_metrics_payload(bad)

    def test_nonmonotone_times_detected(self, timeline_artifact):
        _, payload = timeline_artifact

        def swap(tl):
            tl["times_ns"][0], tl["times_ns"][-1] = (
                tl["times_ns"][-1], tl["times_ns"][0],
            )

        errs = self._mutate(payload, swap)
        assert any("strictly increasing" in e for e in errs)

    def test_ragged_series_detected(self, timeline_artifact):
        _, payload = timeline_artifact

        def truncate(tl):
            name = next(iter(tl["series"]))
            tl["series"][name] = tl["series"][name][:-1]

        errs = self._mutate(payload, truncate)
        assert any("points, expected" in e for e in errs)

    def test_final_disagreement_detected(self, timeline_artifact):
        _, payload = timeline_artifact

        def corrupt(tl):
            tl["final"]["values"]["commthreads.out_messages"] += 7.0

        errs = self._mutate(payload, corrupt)
        assert any("disagrees with snapshot counter" in e for e in errs)

    def test_overcapacity_detected(self, timeline_artifact):
        _, payload = timeline_artifact
        errs = self._mutate(
            payload, lambda tl: tl.update(capacity=1)
        )
        assert any("over its capacity" in e for e in errs)


class TestScheduleIndependence:
    def test_serial_and_parallel_bytes_identical(self, tmp_path):
        payloads = []
        for parallel in (1, 2):
            path = tmp_path / f"p{parallel}.json"
            run_sweep(_point, AXES, seeds=(0, 1), metrics_path=path,
                      timeline=TL, parallel=parallel, tag="tla")
            payloads.append(json.loads(path.read_text()))
        assert (
            canonical_metrics_bytes(payloads[0])
            == canonical_metrics_bytes(payloads[1])
        )
        # And the timeline blocks specifically are deep-equal.
        for a, b in zip(payloads[0]["runs"], payloads[1]["runs"]):
            assert a["timeline"] == b["timeline"]


class TestRenderer:
    def test_tracks_grouped_and_rendered(self, timeline_artifact):
        _, payload = timeline_artifact
        tl = payload["runs"][0]["timeline"]
        tracks = group_tracks(tl["series"])
        assert tracks, "no plottable tracks found"
        text = render_timeline(tl)
        assert "sample(s)" in text
        assert "peak" in text
        # Cumulative counters are excluded from the stacked charts.
        assert "commthreads.out_messages" not in text

    def test_cli_roundtrip(self, timeline_artifact, tmp_path, capsys):
        path, _ = timeline_artifact
        assert run_timeline_plot(path, out=tmp_path) == 0
        outfile = tmp_path / f"timeline_{path.stem}.txt"
        assert outfile.exists()
        assert "== run 0 ==" in outfile.read_text()
        assert "plotted 4 of 4" in capsys.readouterr().out

    def test_plotless_artifact_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "plain.json"
        run_sweep(_point, AXES, seeds=(0,), metrics_path=path, tag="tla")
        assert run_timeline_plot(path) == 1
        assert "--timeline" in capsys.readouterr().err
