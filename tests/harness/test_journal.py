"""Tests for the crash-consistent sweep journal."""

import json

from repro.harness.journal import (
    JOURNAL_SCHEMA,
    SweepJournal,
    journal_fingerprint,
)
from repro.harness.pool import PointOutcome, PointSpec


def _specs(n=3, tag_seed=0):
    return [
        PointSpec(index=i, params={"x": i + tag_seed}, seed=0, key=None)
        for i in range(n)
    ]


def _outcome(spec, value=1.0, status="ok", error=None, retries=0):
    return PointOutcome(
        spec=spec, value=value, status=status, error=error, retries=retries,
        worker=1, wall_s=0.25,
    )


class TestFingerprint:
    def test_stable(self):
        assert journal_fingerprint("t", _specs()) == journal_fingerprint(
            "t", _specs()
        )

    def test_sensitive_to_tag_and_grid(self):
        base = journal_fingerprint("t", _specs())
        assert journal_fingerprint("u", _specs()) != base
        assert journal_fingerprint("t", _specs(tag_seed=1)) != base
        assert journal_fingerprint("t", _specs(n=2)) != base


class TestWriteAndReplay:
    def test_header_then_points_as_jsonl(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        specs = _specs()
        fp = journal_fingerprint("t", specs)
        j = SweepJournal.open(path, fp, len(specs), resume=False)
        j.record_point(_outcome(specs[0]))
        j.record_point(_outcome(specs[2], value=9.0, retries=1))
        j.complete()
        j.close()
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines[0]["kind"] == "header"
        assert lines[0]["schema"] == JOURNAL_SCHEMA
        assert lines[0]["fingerprint"] == fp
        assert [l["kind"] for l in lines[1:]] == ["point", "point", "complete"]

    def test_replay_roundtrip(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        specs = _specs()
        fp = journal_fingerprint("t", specs)
        j = SweepJournal.open(path, fp, len(specs), resume=False)
        j.record_point(_outcome(specs[1], value=4.0))
        j.record_point(
            _outcome(specs[2], value=None, status="poisoned", error="tb",
                     retries=2)
        )
        j.close()
        entries = SweepJournal.replay(path, fp)
        assert set(entries) == {1, 2}
        assert entries[1]["value"] == 4.0
        assert entries[2]["status"] == "poisoned"
        assert entries[2]["error"] == "tb"
        assert entries[2]["retries"] == 2

    def test_replay_missing_file_is_empty(self, tmp_path):
        assert SweepJournal.replay(tmp_path / "nope.jsonl", "fp") == {}

    def test_replay_rejects_foreign_fingerprint(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        specs = _specs()
        fp = journal_fingerprint("t", specs)
        j = SweepJournal.open(path, fp, len(specs), resume=False)
        j.record_point(_outcome(specs[0]))
        j.close()
        assert SweepJournal.replay(path, "different") == {}

    def test_torn_tail_dropped(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        specs = _specs()
        fp = journal_fingerprint("t", specs)
        j = SweepJournal.open(path, fp, len(specs), resume=False)
        j.record_point(_outcome(specs[0]))
        j.close()
        # Simulate a crash mid-append: a half-written final record.
        with path.open("a") as fh:
            fh.write('{"kind": "point", "index": 1, "val')
        entries = SweepJournal.replay(path, fp)
        assert set(entries) == {0}

    def test_duplicate_index_keeps_last(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        specs = _specs()
        fp = journal_fingerprint("t", specs)
        j = SweepJournal.open(path, fp, len(specs), resume=False)
        j.record_point(_outcome(specs[0], value=1.0))
        j.record_point(_outcome(specs[0], value=2.0))
        j.close()
        assert SweepJournal.replay(path, fp)[0]["value"] == 2.0

    def test_error_text_truncated(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        specs = _specs()
        fp = journal_fingerprint("t", specs)
        j = SweepJournal.open(path, fp, len(specs), resume=False)
        j.record_point(
            _outcome(specs[0], value=None, status="poisoned",
                     error="x" * 10_000)
        )
        j.close()
        entry = SweepJournal.replay(path, fp)[0]
        assert len(entry["error"]) == 4000


class TestRotation:
    def test_resume_appends_to_matching_journal(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        specs = _specs()
        fp = journal_fingerprint("t", specs)
        j = SweepJournal.open(path, fp, len(specs), resume=False)
        j.record_point(_outcome(specs[0]))
        j.close()
        j = SweepJournal.open(path, fp, len(specs), resume=True)
        j.record_point(_outcome(specs[1]))
        j.close()
        assert set(SweepJournal.replay(path, fp)) == {0, 1}
        # Exactly one header: the resume appended, not rotated.
        kinds = [
            json.loads(l)["kind"] for l in path.read_text().splitlines()
        ]
        assert kinds.count("header") == 1

    def test_without_resume_rotates(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        specs = _specs()
        fp = journal_fingerprint("t", specs)
        j = SweepJournal.open(path, fp, len(specs), resume=False)
        j.record_point(_outcome(specs[0]))
        j.close()
        j = SweepJournal.open(path, fp, len(specs), resume=False)
        j.close()
        assert SweepJournal.replay(path, fp) == {}

    def test_resume_over_foreign_journal_rotates(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        specs = _specs()
        old = journal_fingerprint("other", specs)
        j = SweepJournal.open(path, old, len(specs), resume=False)
        j.record_point(_outcome(specs[0]))
        j.close()
        fp = journal_fingerprint("t", specs)
        j = SweepJournal.open(path, fp, len(specs), resume=True)
        j.close()
        # The stale journal was rotated out, never replayed into "t".
        assert SweepJournal.replay(path, fp) == {}
        assert SweepJournal.replay(path, old) == {}
