"""Tests for the generic sweep runner."""

import pytest

from repro.errors import HarnessError
from repro.harness.sweep import run_sweep


class TestRunSweep:
    def test_cartesian_grid(self):
        calls = []

        def fn(a, b, seed):
            calls.append((a, b, seed))
            return float(a * 10 + b)

        res = run_sweep(fn, {"a": [1, 2], "b": [3, 4]})
        assert len(res.cells) == 4
        assert res.cell(a=2, b=3).mean == 23.0
        assert len(calls) == 4

    def test_seed_replication_error_bars(self):
        def fn(x, seed):
            return float(x + seed)

        res = run_sweep(fn, {"x": [10]}, seeds=[0, 1, 2])
        cell = res.cell(x=10)
        assert cell.values == (10.0, 11.0, 12.0)
        assert cell.mean == 11.0
        assert cell.std == 1.0

    def test_table_renders(self):
        res = run_sweep(lambda x, seed: float(x), {"x": [1, 2]},
                        metric="time_ms")
        table = res.to_table()
        assert "time_ms" in table
        assert len(table.splitlines()) == 4

    def test_table_has_execution_columns(self):
        res = run_sweep(lambda x, seed: float(x), {"x": [1, 2]})
        table = res.to_table()
        assert "wall (s)" in table
        assert "cache" in table
        assert "0/1" in table  # no cache configured: zero hits per cell

    def test_cells_carry_wall_clock(self):
        res = run_sweep(lambda x, seed: float(x), {"x": [1]}, seeds=[0, 1])
        cell = res.cell(x=1)
        assert len(cell.wall_s) == len(cell.values) == 2
        assert all(w >= 0.0 for w in cell.wall_s)
        assert cell.cache_hits == 0
        assert res.total_points == 2
        assert res.total_cache_hits == 0

    def test_parallel_matches_serial(self):
        def fn(a, seed):
            return float(a * 100 + seed)

        serial = run_sweep(fn, {"a": [1, 2, 3]}, seeds=[0, 1])
        par = run_sweep(fn, {"a": [1, 2, 3]}, seeds=[0, 1], parallel=3)
        assert [c.values for c in par.cells] == [c.values for c in serial.cells]

    def test_missing_cell_raises(self):
        res = run_sweep(lambda x, seed: float(x), {"x": [1]})
        with pytest.raises(KeyError):
            res.cell(x=99)

    def test_validation(self):
        with pytest.raises(HarnessError):
            run_sweep(lambda seed: 0.0, {})
        with pytest.raises(HarnessError):
            run_sweep(lambda x, seed: 0.0, {"x": [1]}, seeds=[])

    def test_with_real_app(self):
        """End-to-end: sweep histogram buffer sizes with error bars."""
        from repro.apps import run_histogram
        from repro.machine import MachineConfig

        machine = MachineConfig(2, 2, 2)

        def metric(g, seed):
            return run_histogram(
                machine, "WPs", updates_per_pe=400, buffer_items=g,
                seed=seed,
            ).total_time_ns

        res = run_sweep(metric, {"g": [8, 64]}, seeds=[0, 1],
                        metric="time_ns")
        assert res.cell(g=8).mean > res.cell(g=64).mean
        assert res.cell(g=8).std >= 0.0
