"""Tests for the experiment harness and CLI (quick profile)."""

import pytest

from repro.errors import HarnessError
from repro.harness import FIGURES, FigureData, Series, run_figure
from repro.harness.cli import main


class TestFigureData:
    def test_to_table_shape(self):
        data = FigureData(
            fig_id="x", title="t", xlabel="nodes", ylabel="ms",
            x=[1, 2], series=[Series("a", [0.1, 0.2]), Series("b", [0.3, 0.4])],
        )
        table = data.to_table()
        lines = table.splitlines()
        assert lines[0].split() == ["nodes", "a", "b"]
        assert len(lines) == 4

    def test_series_by_name(self):
        data = FigureData(
            fig_id="x", title="t", xlabel="n", ylabel="y",
            x=[1], series=[Series("a", [1.0])],
        )
        assert data.series_by_name("a").y == [1.0]
        with pytest.raises(KeyError):
            data.series_by_name("zzz")

    def test_render_includes_expectation(self):
        data = FigureData(
            fig_id="figX", title="T", xlabel="n", ylabel="y",
            x=[1], series=[Series("a", [1.0])], expected="a wins",
        )
        out = data.render()
        assert "figX" in out and "a wins" in out


class TestRegistry:
    def test_all_paper_figures_present(self):
        for fig in ("fig1", "fig3", "fig8", "fig9", "fig10", "fig11",
                    "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
                    "fig18", "tabA", "tabB", "extA", "extB"):
            assert fig in FIGURES

    def test_unknown_figure_raises(self):
        with pytest.raises(HarnessError):
            run_figure("fig99")

    def test_bad_profile_raises(self):
        with pytest.raises(HarnessError):
            run_figure("fig1", profile="huge")


class TestQuickFigures:
    """Each quick-profile figure regenerates and shows the paper shape."""

    def test_fig1_shape(self):
        data = run_figure("fig1", "quick")
        y = data.series_by_name("one_way_us").y
        assert y[0] == pytest.approx(y[1], rel=0.15)  # flat for small
        assert y[-1] > 10 * y[0]  # bandwidth-bound for large

    def test_fig3_shape(self):
        data = run_figure("fig3", "quick")
        y = data.series_by_name("time_ms").y
        nonsmp, smp1 = y[0], y[1]
        assert smp1 > 1.5 * nonsmp
        assert y[1] > y[2] > y[3] * 0.99  # more processes help

    def test_fig11_ww_collapse(self):
        data = run_figure("fig11", "quick")
        ww = data.series_by_name("WW").y
        wps = data.series_by_name("WPs").y
        assert ww[-1] > 1.3 * wps[-1]

    def test_fig12_latency_ordering(self):
        data = run_figure("fig12", "quick")
        at_largest = {s.name: s.y[-1] for s in data.series}
        assert at_largest["PP"] < at_largest["WPs"] < at_largest["WW"]

    def test_tabB_bounds_hold(self):
        data = run_figure("tabB", "quick")
        lower = data.series_by_name("lower_bound").y
        measured = data.series_by_name("measured").y
        upper = data.series_by_name("upper_bound").y
        for lo, m, hi in zip(lower, measured, upper):
            assert lo <= m <= hi

    def test_tabA_measured_within_bound(self):
        data = run_figure("tabA", "quick")
        measured = data.series_by_name("measured").y
        analytic = data.series_by_name("analytic_max").y
        for m, a in zip(measured, analytic):
            assert m <= a

    def test_extA_message_hierarchy(self):
        data = run_figure("extA", "quick")
        msgs = dict(zip(data.x, data.series_by_name("messages").y))
        assert msgs["WW"] > msgs["WPs"] > msgs["WNs"]
        assert msgs["PP"] > msgs["NN"]

    def test_extB_routing_tradeoff(self):
        data = run_figure("extB", "quick")
        bufs = dict(zip(data.x, data.series_by_name("buffers").y))
        lat = dict(zip(data.x, data.series_by_name("latency_us").y))
        assert bufs["R2D"] < bufs["WPs"]
        assert lat["R2D"] > lat["WPs"]


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out

    def test_run_single(self, capsys, tmp_path):
        assert main(["fig1", "--profile", "quick", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out
        assert (tmp_path / "fig1.txt").exists()

    def test_unknown_target(self, capsys):
        assert main(["fig99"]) == 2


class TestReport:
    def test_write_report_selected_figures(self, tmp_path):
        from repro.harness.report import write_report

        path = write_report(
            tmp_path / "REPORT.md", profile="quick",
            figures=["fig1", "tabB"],
        )
        text = path.read_text()
        assert "# Reproduction report" in text
        assert "fig1" in text and "tabB" in text
        assert "Paper expectation" in text
        assert "```text" in text

    def test_cli_report_target(self, capsys, tmp_path, monkeypatch):
        import repro.harness.report as report_mod

        called = {}

        def fake(path, profile):
            called["path"] = path
            called["profile"] = profile
            path = tmp_path / "REPORT.md"
            path.write_text("stub")
            return path

        monkeypatch.setattr(report_mod, "write_report",
                            lambda path, profile: fake(path, profile))
        assert main(["report", "--profile", "quick",
                     "--out", str(tmp_path)]) == 0
        assert called["profile"] == "quick"
