"""Per-node NIC with serialized injection and reception.

Each physical node owns one NIC. Both directions are modelled as
work-conserving FIFO servers using the *virtual clock* technique: a
``next_free`` watermark advances by the per-message occupancy
(``nic_msg_ns + bytes * beta``), which reproduces FIFO queueing delays
exactly without per-queue-slot events.

The receive side hands completed messages to a ``sink`` callable
installed by the runtime (the destination process's comm thread in SMP
mode, the destination worker directly in non-SMP mode).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import SimulationError
from repro.machine.costs import CostModel
from repro.network.message import NetMessage
from repro.sim.engine import Engine


@dataclass
class NicStats:
    """Traffic counters for one NIC."""

    tx_messages: int = 0
    tx_bytes: int = 0
    rx_messages: int = 0
    rx_bytes: int = 0
    #: Total simulated time messages spent queued behind the tx server.
    tx_queue_wait_ns: float = 0.0
    rx_queue_wait_ns: float = 0.0


@dataclass
class Nic:
    """One node's network interface.

    Parameters
    ----------
    engine:
        The simulation engine (for scheduling arrivals).
    costs:
        Cost model supplying occupancy and wire constants.
    node_id:
        Owning physical node.
    """

    engine: Engine
    costs: CostModel
    node_id: int
    stats: NicStats = field(default_factory=NicStats)
    _tx_free: float = 0.0
    _rx_free: float = 0.0
    #: Installed by the runtime: receives messages that finished rx.
    sink: Optional[Callable[[NetMessage], None]] = None
    #: Installed by the runtime when a fault plan is active; ``None``
    #: keeps both directions fault-free with one check per message.
    faults: Optional[object] = None
    #: Installed inside a PDES partition (:mod:`repro.sim.parallel`):
    #: ``pdes_export(arrival, seq, msg, dst_node)`` ships a cross-
    #: partition arrival to the coordinator instead of scheduling it
    #: locally. ``pdes_owned`` is the set of node ids this partition
    #: simulates; ``None`` means everything is local (sequential run).
    pdes_export: Optional[Callable] = None
    pdes_owned: Optional[frozenset] = None

    def inject(self, msg: NetMessage, dst_nic: "Nic", wire_latency_ns: float) -> None:
        """Serialize ``msg`` onto the wire towards ``dst_nic``.

        Called at the simulated time the message reaches the NIC (after
        comm-thread service in SMP mode). The message arrives at the
        destination NIC ``occupancy + wire latency`` later, subject to
        tx-side queueing.

        With a fault injector attached, the wire dice roll here — at the
        source NIC, after the tx occupancy is booked: a dropped message
        still paid to leave the node, it just never arrives.
        """
        now = self.engine.now
        occupancy = self.costs.tx_occupancy_ns(msg.size_bytes)
        faults = self.faults
        if faults is not None:
            occupancy *= faults.nic_occupancy_multiplier(self.node_id, now)
        start = self._tx_free if self._tx_free > now else now
        self.stats.tx_queue_wait_ns += start - now
        self._tx_free = start + occupancy
        self.stats.tx_messages += 1
        self.stats.tx_bytes += msg.size_bytes
        tracer = self.engine.tracer
        if tracer is not None and tracer.wants("msg"):
            tracer.record(
                "msg", hop="nic_tx", node=self.node_id, msg_id=msg.msg_id,
                start=start, dur=occupancy,
            )
        arrival = self._tx_free + wire_latency_ns
        if faults is None:
            span = msg.span
            if span is not None:
                span.nic_tx_queue_ns += start - now
                span.wire_ns += occupancy + wire_latency_ns
            # Cross-node arrivals ride a per-(src, dst) wire-channel seq
            # slot: allocation order depends only on the sender, so a
            # partitioned sender advances the same counter the
            # sequential engine would — the key to bit-identical merges.
            dst_node = dst_nic.node_id
            export = self.pdes_export
            if export is not None and dst_node not in self.pdes_owned:
                seq = self.engine.wire_seq(self.node_id, dst_node)
                export(arrival, seq, msg, dst_node)
                return
            self.engine.wire_call_at(
                arrival, dst_nic.receive, (msg,), self.node_id, dst_node
            )
            return
        for copy, extra_ns in faults.wire_outcomes(msg, dst_nic.node_id, now):
            span = copy.span
            if span is not None:
                span.nic_tx_queue_ns += start - now
                span.wire_ns += occupancy + wire_latency_ns + extra_ns
            self.engine.wire_call_at(
                arrival + extra_ns, dst_nic.receive, (copy,),
                self.node_id, dst_nic.node_id,
            )

    def receive(self, msg: NetMessage) -> None:
        """Serialize an arriving message through the rx side, then sink it."""
        if self.sink is None:
            raise SimulationError(f"NIC {self.node_id} has no sink installed")
        now = self.engine.now
        occupancy = self.costs.rx_occupancy_ns(msg.size_bytes)
        if self.faults is not None:
            occupancy *= self.faults.nic_occupancy_multiplier(self.node_id, now)
        start = self._rx_free if self._rx_free > now else now
        self.stats.rx_queue_wait_ns += start - now
        self._rx_free = start + occupancy
        self.stats.rx_messages += 1
        self.stats.rx_bytes += msg.size_bytes
        span = msg.span
        if span is not None:
            span.nic_rx_ns += (start - now) + occupancy
        tracer = self.engine.tracer
        if tracer is not None and tracer.wants("msg"):
            tracer.record(
                "msg", hop="nic_rx", node=self.node_id, msg_id=msg.msg_id,
                start=start, dur=occupancy,
            )
        self.engine.call_at(self._rx_free, self.sink, (msg,))

    @property
    def tx_backlog_ns(self) -> float:
        """How far the tx server is booked beyond 'now' (queue depth)."""
        return max(0.0, self._tx_free - self.engine.now)

    @property
    def rx_backlog_ns(self) -> float:
        """How far the rx server is booked beyond 'now'."""
        return max(0.0, self._rx_free - self.engine.now)
