"""Wire model between nodes (and between processes within a node).

The paper targets modern flat/fat-tree topologies where topology-aware
multi-hop routing buys little, so the fabric is distance-insensitive:
every node pair has the same ``alpha_inter`` latency. Intra-node
inter-process transfers use ``alpha_intra``. The model is deliberately a
pure-latency pipe; *serialization* (bandwidth contention) is modelled at
the NICs, which is where it physically occurs on such fabrics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.costs import CostModel
from repro.machine.topology import MachineConfig


@dataclass(frozen=True)
class Fabric:
    """Latency oracle for the interconnect.

    Parameters
    ----------
    machine:
        Topology, used to classify node locality.
    costs:
        Cost model supplying ``alpha_inter_ns`` / ``alpha_intra_ns``.
    """

    machine: MachineConfig
    costs: CostModel

    def latency_between_processes(self, src_process: int, dst_process: int) -> float:
        """One-way latency between two distinct processes (ns)."""
        same_node = self.machine.node_of_process(src_process) == (
            self.machine.node_of_process(dst_process)
        )
        return self.costs.wire_latency_ns(same_node)

    def latency_between_nodes(self, src_node: int, dst_node: int) -> float:
        """One-way latency between two nodes (ns); intra if equal."""
        return self.costs.wire_latency_ns(src_node == dst_node)
