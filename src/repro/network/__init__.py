"""Network substrate: messages, per-node NICs and the wire model.

The model is the classic alpha–beta one the paper motivates with its
Fig 1 ping-pong: a message of ``b`` bytes costs a per-message latency
``alpha`` plus ``b * beta`` transmission time, with the NIC serializing
injections per node. Intra-node inter-process transfers bypass the NIC
and use the cheaper ``alpha_intra`` transport (CMA/xpmem-style).
"""

from repro.network.fabric import Fabric
from repro.network.message import NetMessage, Route
from repro.network.nic import Nic, NicStats
from repro.network.pingpong import PingPongResult, measure_pingpong

__all__ = [
    "Fabric",
    "NetMessage",
    "Nic",
    "NicStats",
    "PingPongResult",
    "Route",
    "measure_pingpong",
]
