"""Ping-pong measurement (paper Fig 1).

Reproduces the motivating experiment: the one-way time (RTT/2) of a
message between two physical nodes, swept over message sizes. For small
messages the time is flat — dominated by the per-message latency alpha
(microseconds) — while beyond ~1 KB the ``bytes * beta`` term takes over
(beta ≈ 0.1 ns/byte, i.e. ~12 GB/s).

The measurement runs through the full simulated path (worker → comm
thread → NIC → wire → NIC → comm thread → worker) rather than just
evaluating the cost formula, so it also validates the transport stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.machine.costs import CostModel
from repro.machine.topology import MachineConfig


@dataclass(frozen=True)
class PingPongResult:
    """One row of the ping-pong sweep."""

    size_bytes: int
    one_way_ns: float
    rtt_ns: float


def measure_pingpong(
    sizes: Sequence[int],
    costs: CostModel | None = None,
    *,
    smp: bool = True,
    iterations: int = 4,
) -> List[PingPongResult]:
    """Measure RTT/2 between two nodes for each message size.

    Parameters
    ----------
    sizes:
        Payload sizes (bytes, excluding header) to sweep.
    costs:
        Cost model; defaults to the Delta-shaped preset.
    smp:
        Whether the endpoints run in SMP mode (one worker + comm thread
        per process) or non-SMP.
    iterations:
        Ping-pong round trips per size; the mean RTT is reported
        (the simulator is deterministic, so this mainly amortizes the
        first-message path setup).

    Returns
    -------
    list of PingPongResult
        One entry per size, in input order.
    """
    # Imported lazily: network is a lower layer than runtime.
    from repro.network.message import NetMessage
    from repro.runtime.system import RuntimeSystem

    costs = costs or CostModel()
    results: List[PingPongResult] = []
    for size in sizes:
        machine = MachineConfig(
            nodes=2,
            processes_per_node=1,
            workers_per_process=1,
            smp=smp,
        )
        rt = RuntimeSystem(machine, costs)
        state = {"t_send": 0.0, "rtts": []}

        def on_ping(ctx, msg, _rt=rt, _size=size):
            reply = NetMessage(
                kind="pong",
                src_worker=1,
                dst_process=0,
                dst_worker=0,
                size_bytes=_rt.costs.message_bytes(1, _size),
            )
            if not _rt.machine.smp:
                ctx.charge(_rt.costs.nonsmp_send_service_ns(reply.size_bytes))
            ctx.charge(_rt.costs.pack_msg_ns)
            ctx.emit(_rt.transport.send, reply)

        def on_pong(ctx, msg, _rt=rt, _size=size, _state=state):
            _state["rtts"].append(ctx.now - _state["t_send"])
            if len(_state["rtts"]) < iterations:
                send_ping(ctx, _rt, _size, _state)

        def send_ping(ctx, _rt, _size, _state):
            _state["t_send"] = ctx.now
            ping = NetMessage(
                kind="ping",
                src_worker=0,
                dst_process=1,
                dst_worker=1,
                size_bytes=_rt.costs.message_bytes(1, _size),
            )
            if not _rt.machine.smp:
                ctx.charge(_rt.costs.nonsmp_send_service_ns(ping.size_bytes))
            ctx.charge(_rt.costs.pack_msg_ns)
            ctx.emit(_rt.transport.send, ping)

        rt.register_handler("ping", on_ping)
        rt.register_handler("pong", on_pong)
        rt.post(0, lambda ctx: send_ping(ctx, rt, size, state))
        rt.run()
        rtts = state["rtts"]
        if not rtts:
            raise RuntimeError("ping-pong produced no round trips")
        mean_rtt = sum(rtts) / len(rtts)
        results.append(
            PingPongResult(size_bytes=size, one_way_ns=mean_rtt / 2.0, rtt_ns=mean_rtt)
        )
    return results
