"""Network message envelope.

A :class:`NetMessage` is what the aggregation library hands to the
runtime's transport: an opaque payload plus routing metadata. Following
the paper's vocabulary, application-level short messages are *items*;
``NetMessage`` always refers to the (possibly aggregated) unit that
travels between processes.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional


class Route(enum.Enum):
    """Route class of a message, used for statistics and cost selection."""

    INTRA_PROCESS = "intra_process"
    INTRA_NODE = "intra_node"
    INTER_NODE = "inter_node"


_msg_ids = itertools.count()


@dataclass
class NetMessage:
    """One transport-level message.

    Attributes
    ----------
    kind:
        Dispatch key; the runtime routes the message to the handler
        registered under this kind (see
        :meth:`repro.runtime.system.RuntimeSystem.register_handler`).
    src_worker:
        Global id of the worker that issued the send (for PP messages:
        the worker whose insert filled the buffer).
    dst_process:
        Destination process id.
    dst_worker:
        Destination worker id for worker-addressed messages (WW/direct);
        ``None`` for process-addressed messages — the destination process
        picks a receiver PE on arrival.
    size_bytes:
        Wire size including the fixed header (already resized to the
        filled portion of the buffer, per the paper's flush optimization).
    payload:
        Opaque content (an item batch, a bulk-count batch, ...).
    expedited:
        Prioritized over normal application tasks at the destination PE
        (the paper uses Charm++ expedited methods for TramLib messages).
    send_time:
        Simulated time the message left the source worker; filled by the
        transport.
    span:
        Optional :class:`repro.obs.spans.MsgSpan` transit record. Only
        attached when observability is enabled; every transport
        component that touches the message attributes its simulated time
        here. ``None`` (the default) keeps the hot path span-free.
    """

    kind: str
    src_worker: int
    dst_process: int
    size_bytes: int
    payload: Any = None
    dst_worker: Optional[int] = None
    expedited: bool = True
    send_time: float = 0.0
    span: Optional[Any] = None
    msg_id: int = field(default_factory=lambda: next(_msg_ids))

    def addressed_to_worker(self) -> bool:
        """Whether the message targets a specific PE (vs. a process)."""
        return self.dst_worker is not None
