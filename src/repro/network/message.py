"""Network message envelope.

A :class:`NetMessage` is what the aggregation library hands to the
runtime's transport: an opaque payload plus routing metadata. Following
the paper's vocabulary, application-level short messages are *items*;
``NetMessage`` always refers to the (possibly aggregated) unit that
travels between processes.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional


class Route(enum.Enum):
    """Route class of a message, used for statistics and cost selection."""

    INTRA_PROCESS = "intra_process"
    INTRA_NODE = "intra_node"
    INTER_NODE = "inter_node"


_msg_ids = itertools.count()


@dataclass
class NetMessage:
    """One transport-level message.

    Attributes
    ----------
    kind:
        Dispatch key; the runtime routes the message to the handler
        registered under this kind (see
        :meth:`repro.runtime.system.RuntimeSystem.register_handler`).
    src_worker:
        Global id of the worker that issued the send (for PP messages:
        the worker whose insert filled the buffer).
    dst_process:
        Destination process id.
    dst_worker:
        Destination worker id for worker-addressed messages (WW/direct);
        ``None`` for process-addressed messages — the destination process
        picks a receiver PE on arrival.
    size_bytes:
        Wire size including the fixed header (already resized to the
        filled portion of the buffer, per the paper's flush optimization).
    payload:
        Opaque content (an item batch, a bulk-count batch, ...).
    expedited:
        Prioritized over normal application tasks at the destination PE
        (the paper uses Charm++ expedited methods for TramLib messages).
    send_time:
        Simulated time the message left the source worker; filled by the
        transport.
    span:
        Optional :class:`repro.obs.spans.MsgSpan` transit record. Only
        attached when observability is enabled; every transport
        component that touches the message attributes its simulated time
        here. ``None`` (the default) keeps the hot path span-free.
    seq / rel_src:
        Reliability envelope (see :mod:`repro.runtime.reliability`):
        per-channel sequence number and source process id for ack
        routing. ``None`` for unprotected messages — the defaults keep
        the hot path reliability-free.
    attempt:
        Which transmission this physical copy is (0 = first send,
        1 = first retransmit, ...).
    checksum_ok:
        Cleared by the fault injector when it corrupts the payload; the
        reliability layer's arrival checksum verification discards such
        copies (or, without a reliability layer, the transport drops
        them as lost).
    piggyback_ack:
        Optional ``(acker_process, cum_seq, sacks)`` cumulative ack
        riding on a reverse-direction data message.
    """

    kind: str
    src_worker: int
    dst_process: int
    size_bytes: int
    payload: Any = None
    dst_worker: Optional[int] = None
    expedited: bool = True
    send_time: float = 0.0
    span: Optional[Any] = None
    seq: Optional[int] = None
    rel_src: Optional[int] = None
    attempt: int = 0
    checksum_ok: bool = True
    piggyback_ack: Optional[tuple] = None
    msg_id: int = field(default_factory=lambda: next(_msg_ids))

    def addressed_to_worker(self) -> bool:
        """Whether the message targets a specific PE (vs. a process)."""
        return self.dst_worker is not None

    def wire_copy(self) -> "NetMessage":
        """Physical duplicate of this message (fault fabric / retransmit).

        Shares the payload but owns its envelope and, when observability
        is on, an independent span so each copy attributes its own
        transit times. Keeps ``msg_id`` — copies are the same *logical*
        message, which is what receiver-side dedup keys on (via ``seq``).
        """
        span = self.span.clone() if self.span is not None else None
        return NetMessage(
            kind=self.kind,
            src_worker=self.src_worker,
            dst_process=self.dst_process,
            size_bytes=self.size_bytes,
            payload=self.payload,
            dst_worker=self.dst_worker,
            expedited=self.expedited,
            send_time=self.send_time,
            span=span,
            seq=self.seq,
            rel_src=self.rel_src,
            attempt=self.attempt,
            checksum_ok=self.checksum_ok,
            piggyback_ack=self.piggyback_ack,
            msg_id=self.msg_id,
        )
