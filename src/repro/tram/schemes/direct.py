"""Direct: no aggregation — every item travels as its own message.

The baseline against which aggregation is motivated: each item pays the
full per-message alpha cost. Useful for tests, examples, and the
send-cost analysis of §III-C (``z * (alpha + beta*b)`` vs the
aggregated ``(z/g) * alpha + beta*b*z``).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.tram.item import BulkBatch, Item, ItemBatch
from repro.tram.schemes.base import Buffer, SchemeBase


class DirectScheme(SchemeBase):
    """One message per item (no buffering at all)."""

    name = "Direct"
    worker_addressed = True

    def _insert_item(self, ctx, src: int, item: Item) -> None:
        dst_process = self.rt.machine.process_of_worker(item.dst)
        self._emit_message(
            ctx, ItemBatch([item]), 1, dst_process, item.dst, full=True
        )

    def _insert_bulk(self, ctx, src: int, counts: np.ndarray, total: int) -> None:
        now = ctx.now
        machine = self.rt.machine
        for dst in np.nonzero(counts)[0]:
            dst = int(dst)
            dst_process = machine.process_of_worker(dst)
            for _ in range(int(counts[dst])):
                batch = BulkBatch(
                    count=1,
                    dst_ids=None,
                    dst_counts=None,
                    src_ids=None,
                    src_counts=None,
                    t_sum=now,
                    t_min=now,
                )
                self._emit_message(ctx, batch, 1, dst_process, dst, full=True)

    def _flush_worker(self, ctx, wid: int) -> None:
        """Nothing is ever buffered."""

    def _has_pending(self, wid: int) -> bool:
        return False

    def _all_buffers(self) -> Iterable[Buffer]:
        return ()
