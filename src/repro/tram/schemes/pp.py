"""PP: one *shared* buffer per destination process on each source
process, filled by all of the process's workers through atomics
(paper Fig 7).

This is the most SMP-aware scheme: with ``t`` workers feeding each
buffer, buffers fill ``t`` times faster than WPs (latency of a buffered
item drops by the same factor — the paper's IG result PP < WPs < WW) and
an end-of-phase flush sends only ``N`` messages per *process* instead of
per worker. The price is an atomic slot claim per insert whose cost
grows with contention: ``atomic_ns * (1 + contention_coeff * (t - 1))``.

Buffers live in the owning process's shared heap
(:attr:`repro.runtime.proc.Process.shared`), reflecting that any of its
workers may fill — and send — them.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import ConfigError
from repro.tram.item import Item
from repro.tram.schemes.base import Buffer, SchemeBase


class PPScheme(SchemeBase):
    """Process-to-process aggregation through shared buffers."""

    name = "PP"
    worker_addressed = False

    def __init__(self, rt, config, deliver_item=None, deliver_bulk=None) -> None:
        super().__init__(rt, config, deliver_item, deliver_bulk)
        self._shared_key = self._ns  # namespace within Process.shared
        self._done_counts = [0] * rt.machine.total_processes

    # ------------------------------------------------------------------
    def _proc_bufs(self, pid: int) -> dict:
        shared = self.rt.process(pid).shared
        bufs = shared.get(self._shared_key)
        if bufs is None:
            bufs = shared[self._shared_key] = {}
        return bufs

    def _get(self, src_process: int, dst_process: int, item_mode: bool) -> Buffer:
        bufs = self._proc_bufs(src_process)
        buf = bufs.get(dst_process)
        if buf is None:
            dest = (dst_process, None)
            machine = self.rt.machine
            owner = ("p", src_process)
            if item_mode:
                buf = self._new_item_buffer(dest, owner=owner)
            else:
                dst_ids = np.array(
                    machine.workers_of_process(dst_process), dtype=np.int64
                )
                src_ids = np.array(
                    machine.workers_of_process(src_process), dtype=np.int64
                )
                buf = self._new_count_buffer(
                    dest, dst_ids=dst_ids, src_ids=src_ids, owner=owner
                )
            bufs[dst_process] = buf
        elif item_mode != hasattr(buf, "items"):
            raise ConfigError(
                "do not mix insert() and insert_bulk() on one scheme instance"
            )
        return buf

    # ------------------------------------------------------------------
    def _insert_item(self, ctx, src: int, item: Item) -> None:
        machine = self.rt.machine
        src_process = machine.process_of_worker(src)
        dst_process = machine.process_of_worker(item.dst)
        buf = self._get(src_process, dst_process, item_mode=True)
        ctx.charge(
            self.rt.costs.pp_insert_ns(machine.workers_per_process)
            * self._insert_penalty(("p", src_process))
        )
        self.stats.atomic_inserts += 1
        buf.add(item)
        self._arm_timer(buf, src)
        if not self._maybe_priority_flush(ctx, buf, item):
            self._drain_full(ctx, buf)

    def _insert_bulk(self, ctx, src: int, counts: np.ndarray, total: int) -> None:
        machine = self.rt.machine
        t = machine.workers_per_process
        src_process = machine.process_of_worker(src)
        ctx.charge(
            total
            * self.rt.costs.pp_insert_ns(t)
            * self._insert_penalty(("p", src_process))
        )
        self.stats.atomic_inserts += total
        src_slot = machine.local_rank_of_worker(src)
        per_proc = counts.reshape(-1, t).sum(axis=1)
        now = ctx.now
        for p in np.nonzero(per_proc)[0]:
            p = int(p)
            buf = self._get(src_process, p, item_mode=False)
            buf.add_counts(
                int(per_proc[p]),
                now,
                dst_slot_counts=counts[p * t : (p + 1) * t],
                src_slot=src_slot,
            )
            self._arm_timer(buf, src)
            self._drain_full(ctx, buf)

    def _flush_worker(self, ctx, wid: int) -> None:
        """Flush the calling worker's *process* buffers (shared)."""
        if self._defer_if_gated(wid):
            return
        pid = self.rt.machine.process_of_worker(wid)
        for buf in self._proc_bufs(pid).values():
            if not buf.empty:
                self._send_chunk(ctx, buf, buf.count, full=False)

    def flush_when_done(self, ctx) -> None:
        """Coordinated end-of-phase flush (``doneInserting`` style).

        Each worker signals once; the shared buffers flush when the last
        worker of the process signals — at most one flush message per
        destination process, matching the paper's PP flush analysis.
        """
        pid = self.rt.machine.process_of_worker(ctx.worker.wid)
        self._done_counts[pid] += 1
        if self._done_counts[pid] >= self.rt.machine.workers_per_process:
            self._done_counts[pid] = 0
            self.stats.flushes_requested += 1
            self._flush_worker(ctx, ctx.worker.wid)

    def _buffers_hosted_by(self, pid: int) -> Iterable[Buffer]:
        """A dead process takes its shared heap — and every source
        buffer pooled in it — down with it."""
        bufs = self._proc_bufs(pid)
        for buf in list(bufs.values()):
            yield buf
        bufs.clear()
        self._done_counts[pid] = 0

    def _has_pending(self, wid: int) -> bool:
        pid = self.rt.machine.process_of_worker(wid)
        return any(not buf.empty for buf in self._proc_bufs(pid).values())

    def _all_buffers(self) -> Iterable[Buffer]:
        for pid in range(self.rt.machine.total_processes):
            yield from self._proc_bufs(pid).values()
