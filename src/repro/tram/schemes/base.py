"""Shared machinery of all aggregation schemes.

The base class owns everything that is identical across schemes —
destination-side processing (grouping, section fan-out, delivery,
latency accounting), local-bypass of intra-process items, flush
plumbing (explicit, idle-hook, timer, priority), message emission with
resizing, and statistics — so each concrete scheme only decides *where
buffers live* and *how inserts find them* (the actual design axis the
paper studies).

Handler wiring: each scheme instance registers two message kinds under a
unique namespace — ``<ns>.w`` for worker-addressed batches (WW/direct)
and ``<ns>.p`` for process-addressed batches (WPs/WsP/PP). Multiple
instances can coexist on one runtime (index-gather uses one for
requests, one for responses).
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from typing import TYPE_CHECKING, Callable, Iterable, Optional, Tuple, Union

import numpy as np

from repro.errors import ConfigError
from repro.network.message import NetMessage
from repro.obs.spans import MsgSpan, NodeShardedStageLatency, StageLatency
from repro.tram.buffer import CountBuffer, ItemBuffer, proportional_take
from repro.tram.config import TramConfig
from repro.tram.item import BulkBatch, Item, ItemBatch
from repro.tram.stats import LatencyAggregate, NodeShardedLatency, TramStats

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.context import ExecContext
    from repro.runtime.system import RuntimeSystem

Buffer = Union[ItemBuffer, CountBuffer]

_instance_ids = itertools.count()


class _TimerGroup:
    """One armed flush deadline shared by every buffer that reached it
    together.

    Buffers armed by the same task share ``engine.now`` and the same
    timeout arithmetic, so their flush deadlines are bit-identical —
    WW arms up to ``total_workers - 1`` buffers per bulk insert. One
    wheel event per ``(owner_wid, deadline)`` replaces N heap events;
    members detach in O(1) when a capacity-triggered send empties them,
    and the group's event is cancelled when the last member leaves.

    ``buffers`` is insertion-ordered (dict), so a firing group posts its
    flush tasks in arm order — the order the per-buffer timers would
    have fired in.
    """

    __slots__ = ("key", "event", "buffers")

    def __init__(self, key) -> None:
        self.key = key
        self.event = None
        self.buffers: dict = {}


class SchemeBase:
    """Common TramLib behaviour; subclasses choose buffer placement.

    Parameters
    ----------
    rt:
        The runtime to attach to (handlers are registered immediately).
    config:
        Buffer depth, item size and flush behaviour.
    deliver_item:
        ``fn(ctx, item)`` invoked at the destination PE for every item
        inserted through :meth:`insert` (per-item mode).
    deliver_bulk:
        ``fn(ctx, dst_worker, count, src_ids, src_counts)`` invoked at
        the destination PE for items inserted through
        :meth:`insert_bulk` (flow mode). ``src_ids``/``src_counts`` are
        aligned numpy arrays attributing the items to source workers.
    """

    #: Scheme name as used in the paper (set by subclasses).
    name = "?"
    #: Whether source buffers are addressed per destination worker
    #: (WW / direct) rather than per destination process.
    worker_addressed = False

    def __init__(
        self,
        rt: "RuntimeSystem",
        config: TramConfig,
        deliver_item: Optional[Callable] = None,
        deliver_bulk: Optional[Callable] = None,
    ) -> None:
        if deliver_item is None and deliver_bulk is None:
            raise ConfigError("provide deliver_item and/or deliver_bulk")
        self.rt = rt
        self.config = config
        self.deliver_item = deliver_item
        self.deliver_bulk = deliver_bulk
        # Multi-node runtimes shard the order-sensitive float
        # accumulators per simulated node (in both sequential and
        # partitioned runs), so a PDES partition writes the exact shard
        # sequences the sequential engine would — see NodeShardedLatency.
        n_nodes = rt.machine.nodes
        self.stats = TramStats(
            latency=(
                LatencyAggregate(
                    config.latency_sample,
                    seed=rt.rng.root_seed,
                    histogram=rt.obs_enabled,
                )
                if n_nodes == 1
                else NodeShardedLatency(
                    n_nodes,
                    rt.engine,
                    config.latency_sample,
                    seed=rt.rng.root_seed,
                    histogram=rt.obs_enabled,
                )
            )
        )
        #: Per-stage latency histograms; ``None`` when observability is
        #: off (the hot path then only pays ``is None`` checks).
        self.stages: Optional[StageLatency] = (
            (
                StageLatency()
                if n_nodes == 1
                else NodeShardedStageLatency(n_nodes, rt.engine)
            )
            if rt.obs_enabled
            else None
        )
        rt.schemes.append(self)
        self._t = rt.machine.workers_per_process
        #: Directed ``(src_process, dst_process)`` pairs the reliability
        #: layer gave up on; ``None`` until the first degradation so the
        #: fault-free insert path pays one ``is None`` check.
        self._degraded: Optional[set] = None
        #: Destination processes the failure detector confirmed dead;
        #: ``None`` until the first death so the crash-free insert path
        #: pays one ``is None`` check.
        self._dead_peers: Optional[set] = None
        #: Flush-timer scale; drops below 1.0 when a destination
        #: degrades (see :meth:`on_destination_degraded`).
        self._flush_timeout_scale = 1.0
        #: Overload escalation state (see :meth:`on_overload`): both
        #: exactly 1.0 until the flow controller escalates, so default
        #: arithmetic is unchanged bit for bit.
        self._overload_flush_scale = 1.0
        self._overload_capacity_mult = 1.0
        #: Allocated buffer bytes per owner (worker id, or ("p", pid) for
        #: shared process buffers) — drives the cache-footprint penalty.
        self._footprint: dict = {}
        #: Live flush-timer groups keyed by ``(owner_wid, deadline)``;
        #: each holds one timer-wheel event shared by all buffers whose
        #: flush timeout lands on that exact deadline.
        self._timer_groups: dict = {}
        self._ns = f"tram/{next(_instance_ids)}/{self.name}"
        rt.register_handler(self._ns + ".w", self._on_worker_msg)
        rt.register_handler(self._ns + ".p", self._on_process_msg)
        if config.idle_flush:
            for worker in rt.workers:
                worker.idle_hooks.append(self._idle_hook)

    # ==================================================================
    # Public API (called from inside worker handlers)
    # ==================================================================
    def insert(
        self,
        ctx: "ExecContext",
        dst: int,
        payload=None,
        priority: Optional[float] = None,
    ) -> None:
        """Hand one item to TramLib (per-item fidelity).

        The item is delivered to ``deliver_item`` on the destination PE,
        eventually — when its buffer fills, or on a flush.
        """
        src = ctx.worker.wid
        item = Item(dst, src, ctx.now, payload, priority)
        self.stats.items_inserted += 1
        machine = self.rt.machine
        if self.config.bypass_local and machine.same_process(src, dst):
            self.stats.items_bypassed_local += 1
            ctx.charge(self.rt.costs.local_msg_ns)
            # ctx.now == item.created, so with observability on the whole
            # bypass latency lands in the local_delivery stage.
            ctx.emit(self._post, dst, self._section_items_task, [item], ctx.now)
            return
        dead = self._dead_peers
        if dead is not None and machine.process_of_worker(dst) in dead:
            # The final destination is confirmed dead: the item can never
            # be delivered. Count it at the insert site so the
            # conservation ledger closes without a wasted network trip.
            self._note_dead_peer_drop(1)
            return
        flow = self.rt.flow
        if flow is not None:
            stall = flow.source_stall_ns(ctx)
            if stall > 0.0:
                # Backpressure: the producing task absorbs the wait as
                # CPU time instead of the pipeline growing queues.
                ctx.charge(stall)
        if self._degraded is not None and (
            machine.process_of_worker(src),
            machine.process_of_worker(dst),
        ) in self._degraded:
            self._direct_fallback_item(ctx, item)
            return
        self._insert_item(ctx, src, item)

    def insert_bulk(self, ctx: "ExecContext", counts: np.ndarray) -> None:
        """Hand many items to TramLib at once (flow fidelity).

        Parameters
        ----------
        counts:
            Integer array of length ``total_workers``: how many items go
            to each destination worker. The array is consumed (copied
            internally); items are timestamped at the task's start time.
        """
        src = ctx.worker.wid
        counts = np.asarray(counts, dtype=np.int64).copy()
        total = int(counts.sum())
        if total == 0:
            return
        self.stats.items_inserted += total
        machine = self.rt.machine
        if self.config.bypass_local:
            own = machine.workers_of_process(machine.process_of_worker(src))
            lo, hi = own.start, own.stop
            local = counts[lo:hi]
            n_local = int(local.sum())
            if n_local:
                now = ctx.now
                for rank in np.nonzero(local)[0]:
                    dst = lo + int(rank)
                    n = int(local[rank])
                    ctx.charge(self.rt.costs.local_msg_ns)
                    ctx.emit(
                        self._post,
                        dst,
                        self._section_bulk_task,
                        n,
                        np.array([src]),
                        np.array([n]),
                        n * now,
                        now,
                        now,  # t0: bypass latency -> local_delivery stage
                    )
                self.stats.items_bypassed_local += n_local
                counts[lo:hi] = 0
                total -= n_local
        if total:
            flow = self.rt.flow
            if flow is not None:
                stall = flow.source_stall_ns(ctx)
                if stall > 0.0:
                    ctx.charge(stall)
            if self._degraded is not None:
                total -= self._direct_fallback_bulk(ctx, src, counts)
        if total and self._dead_peers is not None:
            total -= self._dead_peel_bulk(counts)
        if total:
            self._insert_bulk(ctx, src, counts, total)

    def flush(self, ctx: "ExecContext") -> None:
        """Flush every buffer owned by the calling worker.

        For worker-owned schemes this is the paper's per-PE flush call;
        for PP it flushes the calling worker's *process* buffers (shared
        buffers belong to everyone).
        """
        self.stats.flushes_requested += 1
        self._flush_worker(ctx, ctx.worker.wid)

    def flush_when_done(self, ctx: "ExecContext") -> None:
        """End-of-phase flush: the paper's per-PE flush call.

        For worker-owned buffers this equals :meth:`flush`. PP overrides
        it with process-coordinated semantics (Charm++ ``doneInserting``
        style): shared buffers flush once, after *all* of the process's
        workers have signalled completion — giving the §III-C bound of
        at most ``N`` flush messages per process.
        """
        self.flush(ctx)

    def pending_items(self) -> int:
        """Items sitting in buffers, not yet sent (for tests/QD checks)."""
        return sum(buf.count for buf in self._all_buffers())

    # ==================================================================
    # Subclass interface
    # ==================================================================
    def _insert_item(self, ctx, src: int, item: Item) -> None:
        raise NotImplementedError

    def _insert_bulk(self, ctx, src: int, counts: np.ndarray, total: int) -> None:
        raise NotImplementedError

    def _flush_worker(self, ctx, wid: int) -> None:
        raise NotImplementedError

    def _has_pending(self, wid: int) -> bool:
        raise NotImplementedError

    def _all_buffers(self) -> Iterable[Buffer]:
        raise NotImplementedError

    # ==================================================================
    # Buffer lifecycle helpers (used by subclasses)
    # ==================================================================
    def _new_item_buffer(
        self, dest: Tuple[int, Optional[int]], owner=None
    ) -> ItemBuffer:
        self._account_buffer(owner)
        return ItemBuffer(self.config.buffer_items, dest=dest)

    def _new_count_buffer(
        self,
        dest: Tuple[int, Optional[int]],
        dst_ids: Optional[np.ndarray] = None,
        src_ids: Optional[np.ndarray] = None,
        owner=None,
    ) -> CountBuffer:
        self._account_buffer(owner)
        return CountBuffer(
            self.config.buffer_items, dst_ids=dst_ids, src_ids=src_ids, dest=dest
        )

    def _account_buffer(self, owner=None) -> None:
        nbytes = self.config.buffer_items * self.config.item_bytes
        self.stats.buffers_allocated += 1
        self.stats.buffer_bytes_allocated += nbytes
        if owner is not None:
            self._footprint[owner] = self._footprint.get(owner, 0) + nbytes

    def _insert_penalty(self, owner) -> float:
        """Cache-footprint multiplier for inserts by this owner."""
        return self.rt.costs.cache_penalty(self._footprint.get(owner, 0))

    # ==================================================================
    # Sending
    # ==================================================================
    def _drain_full(self, ctx, buf: Buffer) -> None:
        """Send as many full ``g``-item messages as the buffer holds."""
        g = self.config.buffer_items
        if self._overload_capacity_mult != 1.0:
            # Overload escalation: fewer, larger messages relieve the
            # per-message comm-thread bottleneck (§III-A).
            g = int(g * self._overload_capacity_mult)
        while buf.count >= g:
            self._send_chunk(ctx, buf, g, full=True)

    def _send_chunk(self, ctx, buf: Buffer, k: int, *, full: bool) -> None:
        """Carve ``k`` items (or everything, if fewer) into one message."""
        k = min(k, buf.count)
        if k == 0:
            return
        if isinstance(buf, ItemBuffer):
            items = buf.drain(k)
            payload: Union[ItemBatch, BulkBatch] = ItemBatch(items)
            count = len(items)
        else:
            payload = buf.take(k)
            count = payload.count
        if buf.empty and buf.timer_event is not None:
            self._release_timer(buf)
        dst_process, dst_worker = buf.dest
        self._emit_message(ctx, payload, count, dst_process, dst_worker, full=full)

    def _emit_message(
        self,
        ctx,
        payload,
        count: int,
        dst_process: int,
        dst_worker: Optional[int],
        *,
        full: bool,
    ) -> None:
        """Package a batch and release it at task completion."""
        costs = self.rt.costs
        group_ns = self._prepare_payload(ctx, payload, count)
        size = costs.message_bytes(count, self.config.item_bytes)
        kind = self._ns + (".w" if dst_worker is not None else ".p")
        msg = NetMessage(
            kind=kind,
            src_worker=ctx.worker.wid,
            dst_process=dst_process,
            dst_worker=dst_worker,
            size_bytes=size,
            payload=payload,
            expedited=self.config.expedited,
        )
        if self.stages is not None:
            msg.span = MsgSpan(group_ns)
        ctx.charge(costs.pack_msg_ns)
        if not self.rt.machine.smp:
            ctx.charge(costs.nonsmp_send_service_ns(size))
        if full:
            self.stats.messages_full += 1
        else:
            self.stats.messages_flush += 1
        self.stats.bytes_sent += size
        ctx.emit(self.rt.transport.send, msg)

    def _prepare_payload(self, ctx, payload, count: int) -> float:
        """Hook for source-side grouping (overridden by WsP).

        Returns the grouping CPU nanoseconds charged, so the span can
        attribute them to the ``src_group`` stage.
        """
        return 0.0

    # ==================================================================
    # Degraded-mode fallback (reliability retry budget exhausted)
    # ==================================================================
    def on_destination_degraded(self, src_process: int, dst_process: int) -> None:
        """Reliability-layer callback: the channel to ``dst_process`` is
        lossy beyond repair. Stop pooling items behind it — subsequent
        inserts for that pair travel as direct worker-addressed sends,
        flush timers escalate, and whatever is already buffered at the
        source is pushed out immediately."""
        pair = (src_process, dst_process)
        if self._degraded is None:
            self._degraded = set()
        elif pair in self._degraded:
            return
        self._degraded.add(pair)
        self.stats.degraded_destinations += 1
        if self.config.flush_timeout_ns is not None:
            self._flush_timeout_scale = 1.0 / self.config.degraded_flush_divisor
            self.stats.flush_escalations += 1
        for wid in self.rt.machine.workers_of_process(src_process):
            if self._has_pending(wid):
                self.rt.worker(wid).post_task(
                    self._flush_task, expedited=self.config.expedited
                )

    # ==================================================================
    # Crash fabric (failure-detector / runtime callbacks)
    # ==================================================================
    def on_peer_dead(self, pid: int) -> None:
        """Failure-detector callback: process ``pid`` is confirmed dead.

        Subsequent inserts addressed to its workers are dropped (and
        loss-accounted) at the insert site; whatever is already buffered
        for it is handled per scheme — the base behaviour drops
        dest-addressed buffers, routed schemes reroute around a dead
        intermediary (see :meth:`_on_peer_dead_buffers` overrides).
        """
        if self._dead_peers is None:
            self._dead_peers = set()
        elif pid in self._dead_peers:
            return
        self._dead_peers.add(pid)
        self._on_peer_dead_buffers(pid)

    def _on_peer_dead_buffers(self, pid: int) -> None:
        """Dispose of buffers already pooled behind a dead peer.

        Default: every buffer whose destination process is ``pid`` can
        never deliver — drop and count. Node-addressed (WNs/NN) and
        routed (Routed2D) schemes override: their buffer keys are not
        final destinations, so they fail over instead.
        """
        dropped = 0
        for buf in self._all_buffers():
            if buf.count and buf.dest[0] == pid:
                dropped += self._discard_buffer(buf)
        if dropped:
            self._note_dead_peer_drop(dropped)

    def on_process_crashed(self, pid: int) -> None:
        """Runtime callback: ``pid`` just died (ground truth, fired with
        the crash event itself). Whatever its own workers had buffered —
        and, per scheme, any shared or forwarding buffers it hosted —
        died with its heap: drain and count the loss so the conservation
        ledger stays exact."""
        lost = 0
        for buf in self._buffers_hosted_by(pid):
            lost += self._discard_buffer(buf)
        if lost:
            faults = self.rt.faults
            if faults is not None:
                faults.note_crash_items(lost)

    def on_peer_restarted(self, pid: int) -> None:
        """Runtime callback: ``pid`` rejoined. New inserts pool behind
        it again; work lost to the crash stays lost."""
        if self._dead_peers is not None:
            self._dead_peers.discard(pid)

    def _buffers_hosted_by(self, pid: int) -> Iterable[Buffer]:
        """Buffers living in the dead process's heap.

        The default covers the common worker-owned layout
        (``self._by_worker`` indexed by wid); schemes with shared
        process/node buffers or forwarding buffers override or extend
        it. Yielded buffers are detached so a restart starts clean.
        """
        by_worker = getattr(self, "_by_worker", None)
        if by_worker is None:
            return
        for wid in self.rt.machine.workers_of_process(pid):
            bufs = by_worker[wid]
            for buf in list(bufs.values()):
                yield buf
            bufs.clear()

    def _discard_buffer(self, buf: Buffer) -> int:
        """Empty one buffer without sending; returns the items lost."""
        n = buf.count
        if n:
            if isinstance(buf, ItemBuffer):
                buf.drain(n)
            else:
                buf.take(n)
        if buf.timer_event is not None:
            self._release_timer(buf)
        return n

    def _note_dead_peer_drop(self, items: int) -> None:
        self.stats.dead_peer_drops += items
        faults = self.rt.faults
        if faults is not None:
            faults.note_crash_items(items)

    def _dead_peel_bulk(self, counts: np.ndarray) -> int:
        """Zero out bulk-insert slots addressed to dead processes."""
        machine = self.rt.machine
        dead = self._dead_peers
        peeled = 0
        for rank in np.nonzero(counts)[0]:
            if machine.process_of_worker(int(rank)) in dead:
                peeled += int(counts[rank])
                counts[rank] = 0
        if peeled:
            self._note_dead_peer_drop(peeled)
        return peeled

    # ==================================================================
    # Overload escalation (flow-controller callbacks)
    # ==================================================================
    def on_overload(self) -> None:
        """Flow-controller callback: the pipeline is congested.

        Stretch flush timers (fire less often) and grow the effective
        buffer capacity (fewer, larger messages) by the configured
        factors until the overload clears. The inverse of the degraded
        escalation: overload wants *less* message pressure, a lossy
        channel wants items out *faster*.
        """
        self._overload_flush_scale = self.config.overload_flush_stretch
        self._overload_capacity_mult = self.config.overload_buffer_growth
        self.stats.overload_escalations += 1

    def on_overload_cleared(self) -> None:
        """Flow-controller callback: backlog drained; restore defaults."""
        self._overload_flush_scale = 1.0
        self._overload_capacity_mult = 1.0

    def _direct_fallback_item(self, ctx, item: Item) -> None:
        """Send one item straight to its destination PE, unaggregated."""
        self.stats.direct_fallback_sends += 1
        self._emit_message(
            ctx,
            ItemBatch([item]),
            1,
            self.rt.machine.process_of_worker(item.dst),
            item.dst,
            full=False,
        )

    def _direct_fallback_bulk(self, ctx, src: int, counts: np.ndarray) -> int:
        """Peel degraded destinations out of a bulk insert.

        Each affected destination worker gets its own direct message;
        returns how many items were peeled off (``counts`` is zeroed in
        place for them).
        """
        machine = self.rt.machine
        src_pid = machine.process_of_worker(src)
        now = ctx.now
        peeled = 0
        for rank in np.nonzero(counts)[0]:
            dst = int(rank)
            dst_pid = machine.process_of_worker(dst)
            if (src_pid, dst_pid) not in self._degraded:
                continue
            n = int(counts[rank])
            payload = BulkBatch(
                count=n,
                dst_ids=None,
                dst_counts=None,
                src_ids=np.array([src], dtype=np.int64),
                src_counts=np.array([n], dtype=np.int64),
                t_sum=n * now,
                t_min=now,
            )
            self.stats.direct_fallback_sends += n
            self._emit_message(ctx, payload, n, dst_pid, dst, full=False)
            counts[rank] = 0
            peeled += n
        return peeled

    # ==================================================================
    # Flush plumbing
    # ==================================================================
    def _idle_hook(self, worker) -> None:
        if self._has_pending(worker.wid):
            # While the source gate is blocked, register for a deferred
            # flush instead of posting a task: a zero-cost flush task
            # would re-trigger this hook at the same timestamp forever.
            if self._defer_if_gated(worker.wid):
                return
            worker.post_task(self._flush_task)

    def _defer_if_gated(self, wid: int) -> bool:
        """Whether a non-full flush should wait for send credits."""
        flow = self.rt.flow
        return flow is not None and flow.defer_flush(self, wid)

    def _flush_task(self, ctx) -> None:
        self._flush_worker(ctx, ctx.worker.wid)

    def _arm_timer(self, buf: Buffer, owner_wid: int) -> None:
        timeout = self.config.flush_timeout_ns
        if timeout is None or buf.timer_event is not None or buf.empty:
            return
        # Scales are exactly 1.0 until a destination degrades or the
        # flow controller escalates, so the default timer arithmetic is
        # unchanged bit for bit.
        engine = self.rt.engine
        deadline = engine.now + (
            timeout * self._flush_timeout_scale * self._overload_flush_scale
        )
        key = (owner_wid, deadline)
        group = self._timer_groups.get(key)
        if group is None:
            # Timer-wheel timeout: flush timers are usually cancelled by
            # a capacity-triggered send before they fire.
            group = _TimerGroup(key)
            group.event = engine.timer_at(deadline, self._timer_group_fire, key)
            self._timer_groups[key] = group
        group.buffers[id(buf)] = buf
        buf.timer_event = group

    def _release_timer(self, buf: Buffer) -> None:
        """Detach an emptied buffer from its flush-deadline group; the
        shared wheel event is cancelled once no members remain."""
        group = buf.timer_event
        buf.timer_event = None
        members = group.buffers
        del members[id(buf)]
        if not members:
            self.rt.engine.cancel(group.event)
            del self._timer_groups[group.key]

    def _timer_group_fire(self, key) -> None:
        group = self._timer_groups.pop(key)
        worker = self.rt.worker(key[0])
        for buf in group.buffers.values():
            buf.timer_event = None
            if not buf.empty:
                worker.post_task(self._flush_buffer_task, buf)

    def _flush_buffer_task(self, ctx, buf: Buffer) -> None:
        if buf.empty:
            return
        if self._defer_if_gated(ctx.worker.wid):
            return
        self._send_chunk(ctx, buf, buf.count, full=False)

    def _maybe_priority_flush(self, ctx, buf: Buffer, item: Item) -> bool:
        """Priority-aware flushing (paper future work): urgent item ->
        flush its buffer immediately. Returns True if flushed."""
        threshold = self.config.priority_threshold
        if (
            threshold is not None
            and item.priority is not None
            and item.priority <= threshold
            and not buf.empty
        ):
            self.stats.priority_flushes += 1
            self._send_chunk(ctx, buf, buf.count, full=False)
            return True
        return False

    # ==================================================================
    # Destination side
    # ==================================================================
    def _post(self, wid: int, fn, *args) -> None:
        """Emission target: queue a section task with the right lane."""
        self.rt.worker(wid).post_task(fn, *args, expedited=self.config.expedited)

    def _obs_msg(self, ctx, msg: NetMessage, count: int, t_sum: float) -> None:
        """Fold a terminal message's span into the stage histograms.

        Called once per message, at the start of the handler that
        consumes it. ``count``/``t_sum`` cover the items this handler is
        responsible for (multi-hop schemes call this with only the
        locally-delivered portion; forwarded items restart attribution
        on the next leg's message).
        """
        span = msg.span
        st = self.stages
        if st is None or span is None or count <= 0:
            return
        sent = msg.send_time
        group_ns = span.group_ns
        if group_ns > 0.0:
            st.record("src_group", group_ns, count)
        # For a retransmitted copy, ``sent`` is the *resend* time and
        # ``retransmit_ns`` the wait since the first transmission;
        # backing it out leaves src_buffer measuring creation -> first
        # release, so the partition identity holds with the wait in its
        # own stage.
        retransmit_ns = span.retransmit_ns
        if retransmit_ns > 0.0:
            st.record("retransmit", retransmit_ns, count)
        buffered = sent - t_sum / count - group_ns - retransmit_ns
        if buffered > 0.0:
            st.record("src_buffer", buffered, count)
        if span.bp_stall_ns > 0.0:
            st.record("bp_stall", span.bp_stall_ns, count)
        if span.ct_queue_ns > 0.0:
            st.record("ct_queue", span.ct_queue_ns, count)
        if span.ct_service_ns > 0.0:
            st.record("ct_service", span.ct_service_ns, count)
        if span.nic_tx_queue_ns > 0.0:
            st.record("nic_tx_queue", span.nic_tx_queue_ns, count)
        if span.wire_ns > 0.0:
            st.record("wire", span.wire_ns, count)
        if span.nic_rx_ns > 0.0:
            st.record("nic_rx", span.nic_rx_ns, count)
        # Whatever transit time the components did not claim (enqueue
        # hops into PE queues) is local machinery.
        residual = (span.pe_arrival - sent) - span.transit_ns()
        if residual > 0.0:
            st.record("local_delivery", residual, count)
        queued = ctx.now - span.pe_arrival
        if queued > 0.0:
            st.record("dst_group", queued, count)

    def _obs_items_msg(self, ctx, msg: NetMessage, items) -> None:
        """Span attribution for an item-mode message (see `_obs_msg`)."""
        if self.stages is not None:
            self._obs_msg(ctx, msg, len(items), sum(it.created for it in items))

    def _on_worker_msg(self, ctx, msg: NetMessage) -> None:
        """Worker-addressed batch: everything is for this PE."""
        payload = msg.payload
        if isinstance(payload, ItemBatch):
            self._obs_items_msg(ctx, msg, payload.items)
            self._deliver_items_here(ctx, payload.items)
        else:
            if self.stages is not None:
                self._obs_msg(ctx, msg, payload.count, payload.t_sum)
            src_ids, src_counts = self._src_breakdown(msg, payload)
            self._deliver_bulk_here(
                ctx, payload.count, src_ids, src_counts, payload.t_sum, payload.t_min
            )

    def _on_process_msg(self, ctx, msg: NetMessage) -> None:
        """Process-addressed batch: group by PE, fan out sections."""
        payload = msg.payload
        costs = self.rt.costs
        me = ctx.worker.wid
        if isinstance(payload, ItemBatch):
            self._obs_items_msg(ctx, msg, payload.items)
            if payload.grouped:
                ctx.charge(costs.group_elem_ns * self._t)
                sections = payload.sections
            else:
                ctx.charge(costs.group_cost_ns(payload.count, self._t))
                self.stats.group_elements += payload.count + self._t
                by_dst = defaultdict(list)
                for item in payload.items:
                    by_dst[item.dst].append(item)
                sections = list(by_dst.items())
            for dst, items in sections:
                if dst == me:
                    self._deliver_items_here(ctx, items)
                else:
                    ctx.charge(costs.local_msg_ns)
                    self.stats.local_sections += 1
                    ctx.emit(
                        self._post, dst, self._section_items_task, items, ctx.now
                    )
            return

    # -- bulk process-addressed ----------------------------------------
        if self.stages is not None:
            self._obs_msg(ctx, msg, payload.count, payload.t_sum)
        if payload.grouped:
            ctx.charge(costs.group_elem_ns * self._t)
        else:
            ctx.charge(costs.group_cost_ns(payload.count, self._t))
            self.stats.group_elements += payload.count + self._t
        src_ids, src_counts = self._src_breakdown(msg, payload)
        remaining_src = src_counts.copy()
        remaining_total = payload.count
        dst_ids = payload.dst_ids
        dst_counts = payload.dst_counts
        mean_t = payload.t_sum / payload.count
        for slot in np.nonzero(dst_counts)[0]:
            dst = int(dst_ids[slot])
            n = int(dst_counts[slot])
            section_src = proportional_take(remaining_src, n, remaining_total)
            remaining_src = remaining_src - section_src
            remaining_total -= n
            if dst == me:
                self._deliver_bulk_here(
                    ctx, n, src_ids, section_src, n * mean_t, payload.t_min
                )
            else:
                ctx.charge(costs.local_msg_ns)
                self.stats.local_sections += 1
                ctx.emit(
                    self._post,
                    dst,
                    self._section_bulk_task,
                    n,
                    src_ids,
                    section_src,
                    n * mean_t,
                    payload.t_min,
                    ctx.now,
                )

    def _src_breakdown(self, msg: NetMessage, payload: BulkBatch):
        if payload.src_ids is not None:
            return payload.src_ids, payload.src_counts
        return (
            np.array([msg.src_worker], dtype=np.int64),
            np.array([payload.count], dtype=np.int64),
        )

    # -- final delivery -------------------------------------------------
    # ``t0`` is the simulated time a within-process section send (or
    # local bypass) left the grouping/inserting PE; with observability
    # on, the gap until the section task starts is attributed to the
    # ``local_delivery`` stage. ``None`` means "delivered in place".
    def _section_items_task(self, ctx, items, t0: Optional[float] = None) -> None:
        self._deliver_items_here(ctx, items, t0)

    def _deliver_items_here(self, ctx, items, t0: Optional[float] = None) -> None:
        costs = self.rt.costs
        now = ctx.now
        ctx.charge(costs.handler_ns * len(items))
        latency = self.stats.latency
        deliver = self.deliver_item
        if deliver is None:
            raise ConfigError(
                f"{self.name}: per-item insert used without deliver_item callback"
            )
        self.stats.items_delivered += len(items)
        st = self.stages
        if st is not None:
            if t0 is not None and now > t0:
                st.record("local_delivery", now - t0, len(items))
            st.record("handler", costs.handler_ns, len(items))
        for item in items:
            latency.record(now - item.created)
            deliver(ctx, item)

    def _section_bulk_task(
        self, ctx, count: int, src_ids, src_counts, t_sum: float, t_min: float,
        t0: Optional[float] = None,
    ) -> None:
        self._deliver_bulk_here(ctx, count, src_ids, src_counts, t_sum, t_min, t0)

    def _deliver_bulk_here(
        self, ctx, count: int, src_ids, src_counts, t_sum: float, t_min: float,
        t0: Optional[float] = None,
    ) -> None:
        costs = self.rt.costs
        ctx.charge(costs.handler_ns * count)
        self.stats.items_delivered += count
        self.stats.latency.record_bulk(count, t_sum, t_min, ctx.now)
        st = self.stages
        if st is not None:
            if t0 is not None and ctx.now > t0:
                st.record("local_delivery", ctx.now - t0, count)
            st.record("handler", costs.handler_ns, count)
        deliver = self.deliver_bulk
        if deliver is None:
            raise ConfigError(
                f"{self.name}: bulk insert used without deliver_bulk callback"
            )
        deliver(ctx, ctx.worker.wid, count, src_ids, src_counts)


# Crash-drain metadata: when a process dies mid-run its worker lanes are
# drained and every queued task is asked how many application items it
# carried (``repro.runtime.worker._task_items``). Section tasks carry
# real items; flush tasks carry none — their buffers are drained
# separately by ``on_process_crashed``.
SchemeBase._section_items_task._crash_drain_items = "list"
SchemeBase._section_bulk_task._crash_drain_items = "count"
