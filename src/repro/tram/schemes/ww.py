"""WW: per source worker, one buffer per destination *worker*.

The SMP-unaware baseline (paper Fig 4). Each of the ``w`` workers keeps
up to ``w - 1`` buffers, so the machine-wide buffer count grows as
``w^2`` — which is exactly why end-of-phase flushes dominate at scale
(one mostly-empty message per destination *worker*; see the paper's
Fig 9/11 analysis) and why the memory overhead is ``g*m*N*t`` per core
(§III-C).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import ConfigError
from repro.tram.item import Item
from repro.tram.schemes.base import Buffer, SchemeBase


class WWScheme(SchemeBase):
    """Worker-to-worker aggregation (SMP-unaware)."""

    name = "WW"
    worker_addressed = True

    def __init__(self, rt, config, deliver_item=None, deliver_bulk=None) -> None:
        super().__init__(rt, config, deliver_item, deliver_bulk)
        #: Per source worker: {dst_worker: buffer}.
        self._by_worker = [dict() for _ in range(rt.machine.total_workers)]

    # ------------------------------------------------------------------
    def _get(self, src: int, dst: int, item_mode: bool) -> Buffer:
        bufs = self._by_worker[src]
        buf = bufs.get(dst)
        if buf is None:
            dest = (self.rt.machine.process_of_worker(dst), dst)
            buf = (
                self._new_item_buffer(dest, owner=src)
                if item_mode
                else self._new_count_buffer(dest, owner=src)
            )
            bufs[dst] = buf
        elif item_mode != hasattr(buf, "items"):
            raise ConfigError(
                "do not mix insert() and insert_bulk() on one scheme instance"
            )
        return buf

    # ------------------------------------------------------------------
    def _insert_item(self, ctx, src: int, item: Item) -> None:
        buf = self._get(src, item.dst, item_mode=True)
        ctx.charge(self.rt.costs.item_insert_ns * self._insert_penalty(src))
        buf.add(item)
        self._arm_timer(buf, src)
        if not self._maybe_priority_flush(ctx, buf, item):
            self._drain_full(ctx, buf)

    def _insert_bulk(self, ctx, src: int, counts: np.ndarray, total: int) -> None:
        ctx.charge(
            total * self.rt.costs.item_insert_ns * self._insert_penalty(src)
        )
        now = ctx.now
        for dst in np.nonzero(counts)[0]:
            dst = int(dst)
            buf = self._get(src, dst, item_mode=False)
            buf.add_counts(int(counts[dst]), now)
            self._arm_timer(buf, src)
            self._drain_full(ctx, buf)

    def _flush_worker(self, ctx, wid: int) -> None:
        if self._defer_if_gated(wid):
            return
        for buf in self._by_worker[wid].values():
            if not buf.empty:
                self._send_chunk(ctx, buf, buf.count, full=False)

    def _has_pending(self, wid: int) -> bool:
        return any(not buf.empty for buf in self._by_worker[wid].values())

    def _all_buffers(self) -> Iterable[Buffer]:
        for bufs in self._by_worker:
            yield from bufs.values()
