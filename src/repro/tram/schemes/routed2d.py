"""2D topological routing + aggregation (the original TRAM's mechanism).

The previous Charm++ TRAM [Wesolowski et al., ICPP'14] arranged
processes in a virtual N-dimensional grid and routed items through
intermediate hops, aggregating per *next hop* instead of per final
destination: a process keeps one buffer per grid row-mate and column-
mate (O(rows + cols) buffers instead of O(N)), and an intermediate hop
unpacks, re-buffers and forwards.

The paper under reproduction argues this is "less beneficial for modern
topologies like fat-trees": on a distance-insensitive fabric the extra
hop adds a full alpha plus re-buffering work, while the only gain is
fewer buffers/flush messages. This module implements the 2D variant so
that claim is measurable (see ``bench_abl_routing.py``).

Routing rule (column-first): an item for process ``q`` goes directly if
``q`` is in the sender's grid *row*; otherwise it is sent to the
intermediate ``(row(p), col(q))``, which forwards along its column.
Exactly one intermediate hop is ever needed.
"""

from __future__ import annotations

import math
from typing import Iterable, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.tram.item import Item, ItemBatch
from repro.tram.schemes.base import Buffer, SchemeBase


def grid_shape(n_processes: int) -> Tuple[int, int]:
    """Near-square (rows, cols) factorization with rows*cols >= N."""
    rows = int(math.floor(math.sqrt(n_processes)))
    while rows > 1 and n_processes % rows:
        rows -= 1
    return rows, n_processes // rows


class Routed2DScheme(SchemeBase):
    """WPs-style buffers, but keyed by the 2D-grid *next hop*.

    Per-item fidelity only (an intermediate hop re-inserts items, which
    requires item identity); streaming apps that want flow fidelity
    should use the direct schemes.
    """

    name = "R2D"
    worker_addressed = False

    def __init__(self, rt, config, deliver_item=None, deliver_bulk=None) -> None:
        if deliver_bulk is not None:
            raise ConfigError("R2D supports per-item fidelity only")
        super().__init__(rt, config, deliver_item, deliver_bulk)
        n = rt.machine.total_processes
        self.rows, self.cols = grid_shape(n)
        if self.rows * self.cols != n:
            raise ConfigError(
                f"{n} processes do not factor into a 2D grid"
            )
        #: Source-worker buffers keyed by next-hop process.
        self._by_worker = [dict() for _ in range(rt.machine.total_workers)]
        #: Forwarding buffers at intermediates, keyed by next hop, shared
        #: per process (any PE of the intermediate may receive the hop).
        self._forward = [dict() for _ in range(n)]
        rt.register_handler(self._ns + ".hop", self._on_hop_msg)

    # ------------------------------------------------------------------
    # Grid arithmetic
    # ------------------------------------------------------------------
    def _coords(self, process: int) -> Tuple[int, int]:
        return process // self.cols, process % self.cols

    def next_hop(self, at_process: int, dst_process: int) -> int:
        """Next process on the row-then-column route towards ``dst``.

        First move within the current row to the destination's column,
        then within that column to the destination row — at most one
        intermediate hop.
        """
        at_row, at_col = self._coords(at_process)
        _, dst_col = self._coords(dst_process)
        if at_col == dst_col:
            return dst_process  # column already correct: go direct
        return at_row * self.cols + dst_col

    def _route(self, at_process: int, dst_process: int) -> int:
        """Next hop with failover around dead intermediaries.

        When the column-first intermediate is confirmed dead, the item
        detours row-first via ``(row(dst), col(at))``; if that is dead
        too it goes direct — the grid is only an aggregation overlay,
        the underlying fabric delivers any pair. Callers filter dead
        *final* destinations before routing.
        """
        hop = self.next_hop(at_process, dst_process)
        dead = self._dead_peers
        if dead is None or hop == dst_process or hop not in dead:
            return hop
        self.stats.failover_reroutes += 1
        dst_row, _ = self._coords(dst_process)
        _, at_col = self._coords(at_process)
        alt = dst_row * self.cols + at_col
        if alt not in dead:
            return alt
        return dst_process

    # ------------------------------------------------------------------
    # Source side
    # ------------------------------------------------------------------
    def _get(self, bufs: dict, hop: int, owner) -> Buffer:
        buf = bufs.get(hop)
        if buf is None:
            buf = self._new_item_buffer((hop, None), owner=owner)
            bufs[hop] = buf
        return buf

    def _insert_item(self, ctx, src: int, item: Item) -> None:
        machine = self.rt.machine
        my_process = machine.process_of_worker(src)
        dst_process = machine.process_of_worker(item.dst)
        hop = self._route(my_process, dst_process)
        buf = self._get(self._by_worker[src], hop, owner=src)
        ctx.charge(self.rt.costs.item_insert_ns * self._insert_penalty(src))
        buf.add(item)
        self._arm_timer(buf, src)
        if not self._maybe_priority_flush(ctx, buf, item):
            self._drain_full_hop(ctx, buf, hop)

    def _insert_bulk(self, ctx, src, counts, total) -> None:  # pragma: no cover
        raise ConfigError("R2D supports per-item fidelity only")

    # ------------------------------------------------------------------
    # Hop emission / reception
    # ------------------------------------------------------------------
    def _drain_full_hop(self, ctx, buf: Buffer, hop: int) -> None:
        g = self.config.buffer_items
        while buf.count >= g:
            self._send_hop(ctx, buf, g, hop, full=True)

    def _send_chunk(self, ctx, buf: Buffer, k: int, *, full: bool) -> None:
        # Base-class flush paths (timer, priority) land here; the hop is
        # recorded in the buffer's dest.
        hop, _ = buf.dest
        self._send_hop(ctx, buf, k, hop, full=full)

    def _send_hop(
        self, ctx, buf: Buffer, k: int, hop: int, *,
        full: bool, forwarded: bool = False,
    ) -> None:
        k = min(k, buf.count)
        if k == 0:
            return
        items = buf.drain(k)
        if buf.empty and buf.timer_event is not None:
            self._release_timer(buf)
        from repro.network.message import NetMessage
        from repro.obs.spans import MsgSpan

        costs = self.rt.costs
        size = costs.message_bytes(len(items), self.config.item_bytes)
        msg = NetMessage(
            kind=self._ns + ".hop",
            src_worker=ctx.worker.wid,
            dst_process=hop,
            dst_worker=None,
            size_bytes=size,
            payload=ItemBatch(items),
            expedited=self.config.expedited,
        )
        if self.stages is not None:
            # Fresh per-hop span: an intermediate attributes only the
            # items it delivers; re-buffered items restart on the next
            # hop's message (earlier legs land in its src_buffer).
            msg.span = MsgSpan()
        ctx.charge(costs.pack_msg_ns)
        if not self.rt.machine.smp:
            ctx.charge(costs.nonsmp_send_service_ns(size))
        if full:
            self.stats.messages_full += 1
        else:
            self.stats.messages_flush += 1
        if forwarded:
            self.stats.messages_forwarded += 1
        self.stats.bytes_sent += size
        ctx.emit(self.rt.transport.send, msg)

    def _on_hop_msg(self, ctx, msg) -> None:
        """At a hop: deliver local items, re-buffer the rest."""
        machine = self.rt.machine
        costs = self.rt.costs
        me_process = machine.process_of_worker(ctx.worker.wid)
        items = msg.payload.items
        ctx.charge(costs.group_cost_ns(len(items), self._t))
        self.stats.group_elements += len(items) + self._t

        local_by_dst: dict = {}
        dead = self._dead_peers
        doomed = 0
        for item in items:
            dst_process = machine.process_of_worker(item.dst)
            if dst_process == me_process:
                local_by_dst.setdefault(item.dst, []).append(item)
            else:
                if dead is not None and dst_process in dead:
                    # Destination died while the item was in transit.
                    doomed += 1
                    continue
                hop = self._route(me_process, dst_process)
                buf = self._get(
                    self._forward[me_process], hop, owner=("f", me_process)
                )
                ctx.charge(costs.item_insert_ns)
                buf.add(item)
                self._arm_timer(buf, ctx.worker.wid)
                if buf.count >= self.config.buffer_items:
                    self._send_hop(
                        ctx, buf, self.config.buffer_items, hop,
                        full=True, forwarded=True,
                    )
        if doomed:
            self._note_dead_peer_drop(doomed)

        if self.stages is not None:
            local_items = [
                it for section in local_by_dst.values() for it in section
            ]
            self._obs_items_msg(ctx, msg, local_items)

        me = ctx.worker.wid
        for dst, section in local_by_dst.items():
            if dst == me:
                self._deliver_items_here(ctx, section)
            else:
                ctx.charge(costs.local_msg_ns)
                self.stats.local_sections += 1
                ctx.emit(
                    self._post, dst, self._section_items_task, section, ctx.now
                )

    # ------------------------------------------------------------------
    # Crash fabric
    # ------------------------------------------------------------------
    def _on_peer_dead_buffers(self, pid: int) -> None:
        """Failover: re-seat items pooled behind a dead intermediary.

        A buffer keyed by hop ``pid`` holds items for *many* final
        destinations — those whose destination also died are dropped
        and counted; the rest re-buffer under their detour hop.
        Re-seating is pure bookkeeping on the same heap, so it charges
        no CPU (documented simulation shortcut).
        """
        machine = self.rt.machine
        dropped = 0
        for wid, bufs in enumerate(self._by_worker):
            buf = bufs.pop(pid, None)
            if buf is not None:
                dropped += self._reseat(
                    buf, machine.process_of_worker(wid), bufs, wid, wid
                )
        for at, bufs in enumerate(self._forward):
            buf = bufs.pop(pid, None)
            if buf is not None:
                owner_wid = machine.workers_of_process(at).start
                dropped += self._reseat(buf, at, bufs, ("f", at), owner_wid)
        if dropped:
            self._note_dead_peer_drop(dropped)

    def _reseat(self, buf: Buffer, at_process: int, bufs: dict,
                owner, owner_wid: int) -> int:
        """Move a dead-hop buffer's items to their failover hops.

        Returns the number of items dropped because their final
        destination is itself dead.
        """
        machine = self.rt.machine
        dead = self._dead_peers
        items = buf.drain(buf.count) if buf.count else []
        if buf.timer_event is not None:
            self._release_timer(buf)
        dropped = 0
        for item in items:
            dst_process = machine.process_of_worker(item.dst)
            if dst_process in dead:
                dropped += 1
                continue
            hop = self._route(at_process, dst_process)
            nb = self._get(bufs, hop, owner)
            nb.add(item)
            self._arm_timer(nb, owner_wid)
        return dropped

    def _buffers_hosted_by(self, pid: int) -> Iterable[Buffer]:
        yield from super()._buffers_hosted_by(pid)
        bufs = self._forward[pid]
        for buf in list(bufs.values()):
            yield buf
        bufs.clear()

    # ------------------------------------------------------------------
    # Flush plumbing
    # ------------------------------------------------------------------
    def _flush_worker(self, ctx, wid: int) -> None:
        if self._defer_if_gated(wid):
            return
        for hop, buf in self._by_worker[wid].items():
            if not buf.empty:
                self._send_hop(ctx, buf, buf.count, hop, full=False)
        # Also push out this process's forwarding buffers so in-transit
        # items are never stranded.
        pid = self.rt.machine.process_of_worker(wid)
        for hop, buf in self._forward[pid].items():
            if not buf.empty:
                self._send_hop(ctx, buf, buf.count, hop, full=False,
                               forwarded=True)

    def _has_pending(self, wid: int) -> bool:
        if any(not b.empty for b in self._by_worker[wid].values()):
            return True
        pid = self.rt.machine.process_of_worker(wid)
        return any(not b.empty for b in self._forward[pid].values())

    def _all_buffers(self) -> Iterable[Buffer]:
        for bufs in self._by_worker:
            yield from bufs.values()
        for bufs in self._forward:
            yield from bufs.values()
