"""WsP: like WPs, but the *source worker* groups items by destination
PE before sending (paper Fig 6).

Buffer placement and counts are identical to WPs; the O(g + t) grouping
cost moves from the receiving PE to the sending PE. The destination only
performs a cheap per-section dispatch. The paper observes WsP scaling
slightly worse than WPs on histogramming because the grouping work
happens on the (already busy) generating side.
"""

from __future__ import annotations

from collections import defaultdict

from repro.tram.item import BulkBatch, ItemBatch
from repro.tram.schemes.wps import WPsScheme


class WsPScheme(WPsScheme):
    """Worker-to-process aggregation, source-side grouping."""

    name = "WsP"

    def _prepare_payload(self, ctx, payload, count: int) -> float:
        """Group the outgoing batch by destination PE at the source.

        Returns the grouping nanoseconds charged (span ``src_group``).
        """
        costs = self.rt.costs
        group_ns = costs.group_cost_ns(count, self._t)
        ctx.charge(group_ns)
        self.stats.group_elements += count + self._t
        if isinstance(payload, ItemBatch):
            by_dst = defaultdict(list)
            for item in payload.items:
                by_dst[item.dst].append(item)
            payload.sections = list(by_dst.items())
            payload.grouped = True
        elif isinstance(payload, BulkBatch):
            # Count buffers already hold per-destination marginals; the
            # flag tells the receiver the grouping work was paid here.
            payload.grouped = True
        return group_ns
