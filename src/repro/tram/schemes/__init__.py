"""TramLib aggregation schemes.

The four schemes of the paper (§III-B) plus the no-aggregation baseline:

* :class:`~repro.tram.schemes.ww.WWScheme` — per source *worker*, one
  buffer per destination *worker* (SMP-unaware).
* :class:`~repro.tram.schemes.wps.WPsScheme` — per source worker, one
  buffer per destination *process*; items grouped by PE at the
  destination.
* :class:`~repro.tram.schemes.wsp.WsPScheme` — like WPs but the source
  worker groups items before sending.
* :class:`~repro.tram.schemes.pp.PPScheme` — one *shared* buffer per
  destination process on each source process, filled by all of its
  workers through atomics.
* :class:`~repro.tram.schemes.direct.DirectScheme` — every item is its
  own message (baseline).

Use :func:`make_scheme` (re-exported as :func:`repro.tram.make_scheme`)
to construct one by name.
"""

from repro.tram.schemes.base import SchemeBase
from repro.tram.schemes.direct import DirectScheme
from repro.tram.schemes.node_level import NNScheme, WNsScheme
from repro.tram.schemes.pp import PPScheme
from repro.tram.schemes.routed2d import Routed2DScheme, grid_shape
from repro.tram.schemes.registry import SCHEME_NAMES, make_scheme
from repro.tram.schemes.wps import WPsScheme
from repro.tram.schemes.wsp import WsPScheme
from repro.tram.schemes.ww import WWScheme

__all__ = [
    "DirectScheme",
    "NNScheme",
    "WNsScheme",
    "PPScheme",
    "Routed2DScheme",
    "grid_shape",
    "SCHEME_NAMES",
    "SchemeBase",
    "WPsScheme",
    "WWScheme",
    "WsPScheme",
    "make_scheme",
]
