"""Node-level aggregation schemes (the paper's §III-B extension).

    "The same grouping techniques can be extended one level up to the
    physical node, if it houses multiple processes."

The paper defers these; we implement them as extensions:

* :class:`WNsScheme` ("WNs") — each source *worker* keeps one buffer per
  destination **node**. The message lands on one process of that node
  (round-robin); the receiving PE groups by destination worker, local-
  sends the sections for its own process, and *forwards* the sections
  for sibling processes as intra-node messages (pre-grouped, so the
  second hop only dispatches).
* :class:`NNScheme` ("NN") — one **node-shared** buffer per destination
  node on each source node, filled by every worker of the node through
  atomics (contention now spans ``ppn*t`` workers — PP's trade-off,
  amplified).

Compared with WPs/PP these cut the buffer count by another factor of
``processes_per_node`` (fewer, fuller buffers; fewer flush messages)
at the price of an extra intra-node forwarding hop and, for NN,
node-wide atomic contention.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import ConfigError
from repro.network.message import NetMessage
from repro.obs.spans import MsgSpan
from repro.tram.buffer import proportional_take
from repro.tram.item import BulkBatch, Item, ItemBatch
from repro.tram.schemes.base import Buffer, SchemeBase


class WNsScheme(SchemeBase):
    """Worker-to-node aggregation, destination-side grouping + forward."""

    name = "WNs"
    worker_addressed = False

    def __init__(self, rt, config, deliver_item=None, deliver_bulk=None) -> None:
        super().__init__(rt, config, deliver_item, deliver_bulk)
        #: Per source worker: {dst_node: buffer}.
        self._by_worker = [dict() for _ in range(rt.machine.total_workers)]
        #: Round-robin pointer per (src worker) for target-process choice.
        self._rr = [0] * rt.machine.total_workers
        rt.register_handler(self._ns + ".n", self._on_node_msg)

    # ------------------------------------------------------------------
    # Buffering
    # ------------------------------------------------------------------
    def _get(self, src: int, dst_node: int, item_mode: bool) -> Buffer:
        bufs = self._by_worker[src]
        buf = bufs.get(dst_node)
        if buf is None:
            dest = (dst_node, None)  # routed at emission time
            if item_mode:
                buf = self._new_item_buffer(dest, owner=src)
            else:
                dst_ids = np.array(
                    self.rt.machine.workers_of_node(dst_node), dtype=np.int64
                )
                buf = self._new_count_buffer(dest, dst_ids=dst_ids, owner=src)
            bufs[dst_node] = buf
        elif item_mode != hasattr(buf, "items"):
            raise ConfigError(
                "do not mix insert() and insert_bulk() on one scheme instance"
            )
        return buf

    def _insert_item(self, ctx, src: int, item: Item) -> None:
        dst_node = self.rt.machine.node_of_worker(item.dst)
        buf = self._get(src, dst_node, item_mode=True)
        ctx.charge(self.rt.costs.item_insert_ns * self._insert_penalty(src))
        buf.add(item)
        self._arm_timer(buf, src)
        if not self._maybe_priority_flush(ctx, buf, item):
            self._drain_full(ctx, buf)

    def _insert_bulk(self, ctx, src: int, counts: np.ndarray, total: int) -> None:
        ctx.charge(
            total * self.rt.costs.item_insert_ns * self._insert_penalty(src)
        )
        machine = self.rt.machine
        wpn = machine.workers_per_node
        per_node = counts.reshape(-1, wpn).sum(axis=1)
        now = ctx.now
        for node in np.nonzero(per_node)[0]:
            node = int(node)
            buf = self._get(src, node, item_mode=False)
            buf.add_counts(
                int(per_node[node]),
                now,
                dst_slot_counts=counts[node * wpn : (node + 1) * wpn],
            )
            self._arm_timer(buf, src)
            self._drain_full(ctx, buf)

    # ------------------------------------------------------------------
    # Emission: route the node-addressed message to one of its processes
    # ------------------------------------------------------------------
    def _send_chunk(self, ctx, buf: Buffer, k: int, *, full: bool) -> None:
        k = min(k, buf.count)
        if k == 0:
            return
        if hasattr(buf, "items"):
            items = buf.drain(k)
            payload = ItemBatch(items)
            count = len(items)
        else:
            payload = buf.take(k)
            count = payload.count
        if buf.empty and buf.timer_event is not None:
            self._release_timer(buf)
        dst_node, _ = buf.dest
        src = ctx.worker.wid
        procs = self.rt.machine.processes_of_node(dst_node)
        dead = self._dead_peers
        if dead is not None:
            alive = [p for p in procs if p not in dead]
            if not alive:
                # The whole node died under us: nothing there can
                # receive or forward. Drop and loss-account.
                self._note_dead_peer_drop(count)
                return
            if len(alive) < len(procs):
                # Round-robin failover: steer to a surviving sibling.
                self.stats.failover_reroutes += 1
            procs = alive
        dst_process = procs[self._rr[src] % len(procs)]
        self._rr[src] += 1
        self._emit_node_message(ctx, payload, count, dst_process, full=full)

    def _emit_node_message(self, ctx, payload, count, dst_process, *, full) -> None:
        costs = self.rt.costs
        size = costs.message_bytes(count, self.config.item_bytes)
        msg = NetMessage(
            kind=self._ns + ".n",
            src_worker=ctx.worker.wid,
            dst_process=dst_process,
            dst_worker=None,
            size_bytes=size,
            payload=payload,
            expedited=self.config.expedited,
        )
        if self.stages is not None:
            msg.span = MsgSpan()
        ctx.charge(costs.pack_msg_ns)
        if not self.rt.machine.smp:
            ctx.charge(costs.nonsmp_send_service_ns(size))
        if full:
            self.stats.messages_full += 1
        else:
            self.stats.messages_flush += 1
        self.stats.bytes_sent += size
        ctx.emit(self.rt.transport.send, msg)

    # ------------------------------------------------------------------
    # Destination: group across the node, deliver local, forward rest
    # ------------------------------------------------------------------
    def _on_node_msg(self, ctx, msg: NetMessage) -> None:
        machine = self.rt.machine
        costs = self.rt.costs
        me_process = machine.process_of_worker(ctx.worker.wid)
        node = machine.node_of_process(me_process)
        wpn = machine.workers_per_node
        payload = msg.payload

        if isinstance(payload, ItemBatch):
            ctx.charge(costs.group_cost_ns(payload.count, wpn))
            self.stats.group_elements += payload.count + wpn
            by_process: dict = {}
            for item in payload.items:
                by_process.setdefault(
                    machine.process_of_worker(item.dst), []
                ).append(item)
            if self.stages is not None:
                # Attribute the span to the locally delivered portion
                # only; forwarded items restart attribution on the
                # intra-node leg's fresh span.
                self._obs_items_msg(ctx, msg, by_process.get(me_process, ()))
            dead = self._dead_peers
            for pid, items in by_process.items():
                if pid == me_process:
                    self._dispatch_local_sections(ctx, items)
                elif dead is not None and pid in dead:
                    # Sibling died while the batch was in flight; its
                    # items are undeliverable (they target its workers).
                    self._note_dead_peer_drop(len(items))
                else:
                    self._forward_items(ctx, pid, items)
            return

        # Bulk: split per destination process, pro-rata on sources/time.
        ctx.charge(costs.group_cost_ns(payload.count, wpn))
        self.stats.group_elements += payload.count + wpn
        src_ids, src_counts = self._src_breakdown(msg, payload)
        remaining_src = src_counts.copy()
        remaining_total = payload.count
        mean_t = payload.t_sum / payload.count
        t = machine.workers_per_process
        dst_ids = payload.dst_ids
        dst_counts = payload.dst_counts
        for pid in machine.processes_of_node(node):
            lo = (pid - machine.processes_of_node(node)[0]) * t
            section = dst_counts[lo : lo + t]
            n = int(section.sum())
            if n == 0:
                continue
            section_src = proportional_take(remaining_src, n, remaining_total)
            remaining_src = remaining_src - section_src
            remaining_total -= n
            sub = BulkBatch(
                count=n,
                dst_ids=dst_ids[lo : lo + t],
                dst_counts=section.copy(),
                src_ids=src_ids,
                src_counts=section_src,
                t_sum=n * mean_t,
                t_min=payload.t_min,
                grouped=True,
            )
            if pid == me_process:
                if self.stages is not None:
                    self._obs_msg(ctx, msg, sub.count, sub.t_sum)
                self._dispatch_local_bulk(ctx, sub)
            elif self._dead_peers is not None and pid in self._dead_peers:
                self._note_dead_peer_drop(sub.count)
            else:
                self._forward_bulk(ctx, pid, sub)

    # -- local dispatch within the receiving process ---------------------
    def _dispatch_local_sections(self, ctx, items) -> None:
        me = ctx.worker.wid
        by_dst: dict = {}
        for item in items:
            by_dst.setdefault(item.dst, []).append(item)
        for dst, section in by_dst.items():
            if dst == me:
                self._deliver_items_here(ctx, section)
            else:
                ctx.charge(self.rt.costs.local_msg_ns)
                self.stats.local_sections += 1
                ctx.emit(
                    self._post, dst, self._section_items_task, section, ctx.now
                )

    def _dispatch_local_bulk(self, ctx, sub: BulkBatch) -> None:
        me = ctx.worker.wid
        mean_t = sub.t_sum / sub.count
        remaining_src = sub.src_counts.copy()
        remaining_total = sub.count
        for slot in np.nonzero(sub.dst_counts)[0]:
            dst = int(sub.dst_ids[slot])
            n = int(sub.dst_counts[slot])
            section_src = proportional_take(remaining_src, n, remaining_total)
            remaining_src = remaining_src - section_src
            remaining_total -= n
            if dst == me:
                self._deliver_bulk_here(
                    ctx, n, sub.src_ids, section_src, n * mean_t, sub.t_min
                )
            else:
                ctx.charge(self.rt.costs.local_msg_ns)
                self.stats.local_sections += 1
                ctx.emit(
                    self._post, dst, self._section_bulk_task,
                    n, sub.src_ids, section_src, n * mean_t, sub.t_min,
                    ctx.now,
                )

    # -- forwarding to sibling processes on the node ---------------------
    def _forward_items(self, ctx, dst_process: int, items) -> None:
        items.sort(key=lambda it: it.dst)
        sections: dict = {}
        for item in items:
            sections.setdefault(item.dst, []).append(item)
        payload = ItemBatch(items, grouped=True, sections=list(sections.items()))
        self._forward(ctx, dst_process, payload, len(items))

    def _forward_bulk(self, ctx, dst_process: int, sub: BulkBatch) -> None:
        self._forward(ctx, dst_process, sub, sub.count)

    def _forward(self, ctx, dst_process: int, payload, count: int) -> None:
        costs = self.rt.costs
        size = costs.message_bytes(count, self.config.item_bytes)
        msg = NetMessage(
            kind=self._ns + ".p",  # handled by the base process handler
            src_worker=ctx.worker.wid,
            dst_process=dst_process,
            dst_worker=None,
            size_bytes=size,
            payload=payload,
            expedited=self.config.expedited,
        )
        if self.stages is not None:
            # Fresh span: the forwarded leg restarts attribution, so
            # time up to this hop lands in the next leg's src_buffer.
            msg.span = MsgSpan()
        ctx.charge(costs.pack_msg_ns)
        self.stats.bytes_sent += size
        self.stats.messages_forwarded += 1
        ctx.emit(self.rt.transport.send, msg)

    # ------------------------------------------------------------------
    # Crash fabric
    # ------------------------------------------------------------------
    def _on_peer_dead_buffers(self, pid: int) -> None:
        """Node-addressed buffers survive a single process death — the
        round-robin emitter steers around the dead sibling. Only a node
        with no surviving process makes its buffers undeliverable."""
        machine = self.rt.machine
        dead = self._dead_peers
        node = machine.node_of_process(pid)
        if any(p not in dead for p in machine.processes_of_node(node)):
            return
        dropped = 0
        for buf in self._all_buffers():
            if buf.count and buf.dest[0] == node:
                dropped += self._discard_buffer(buf)
        if dropped:
            self._note_dead_peer_drop(dropped)

    # ------------------------------------------------------------------
    # Flush plumbing
    # ------------------------------------------------------------------
    def _flush_worker(self, ctx, wid: int) -> None:
        if self._defer_if_gated(wid):
            return
        for buf in self._by_worker[wid].values():
            if not buf.empty:
                self._send_chunk(ctx, buf, buf.count, full=False)

    def _has_pending(self, wid: int) -> bool:
        return any(not buf.empty for buf in self._by_worker[wid].values())

    def _all_buffers(self) -> Iterable[Buffer]:
        for bufs in self._by_worker:
            yield from bufs.values()


class NNScheme(WNsScheme):
    """Node-to-node aggregation: node-shared source buffers (atomics)."""

    name = "NN"

    def __init__(self, rt, config, deliver_item=None, deliver_bulk=None) -> None:
        super().__init__(rt, config, deliver_item, deliver_bulk)
        #: Per source node: {dst_node: buffer}.
        self._by_node = [dict() for _ in range(rt.machine.nodes)]
        self._done_counts = [0] * rt.machine.nodes
        #: Done-signals needed before the coordinated flush fires; drops
        #: when a process on the node dies (its workers can never
        #: signal), so survivors are not deadlocked waiting on ghosts.
        self._done_threshold = [rt.machine.workers_per_node] * rt.machine.nodes

    def _get(self, src: int, dst_node: int, item_mode: bool) -> Buffer:
        machine = self.rt.machine
        src_node = machine.node_of_worker(src)
        bufs = self._by_node[src_node]
        buf = bufs.get(dst_node)
        if buf is None:
            dest = (dst_node, None)
            owner = ("n", src_node)
            if item_mode:
                buf = self._new_item_buffer(dest, owner=owner)
            else:
                dst_ids = np.array(
                    machine.workers_of_node(dst_node), dtype=np.int64
                )
                src_ids = np.array(
                    machine.workers_of_node(src_node), dtype=np.int64
                )
                buf = self._new_count_buffer(
                    dest, dst_ids=dst_ids, src_ids=src_ids, owner=owner
                )
            bufs[dst_node] = buf
        elif item_mode != hasattr(buf, "items"):
            raise ConfigError(
                "do not mix insert() and insert_bulk() on one scheme instance"
            )
        return buf

    def _atomic_charge(self) -> float:
        """Node-wide shared buffers: contention spans all node workers."""
        machine = self.rt.machine
        return self.rt.costs.pp_insert_ns(machine.workers_per_node)

    def _insert_item(self, ctx, src: int, item: Item) -> None:
        dst_node = self.rt.machine.node_of_worker(item.dst)
        buf = self._get(src, dst_node, item_mode=True)
        src_node = self.rt.machine.node_of_worker(src)
        ctx.charge(self._atomic_charge() * self._insert_penalty(("n", src_node)))
        self.stats.atomic_inserts += 1
        buf.add(item)
        self._arm_timer(buf, src)
        if not self._maybe_priority_flush(ctx, buf, item):
            self._drain_full(ctx, buf)

    def _insert_bulk(self, ctx, src: int, counts: np.ndarray, total: int) -> None:
        machine = self.rt.machine
        src_node = machine.node_of_worker(src)
        ctx.charge(
            total * self._atomic_charge() * self._insert_penalty(("n", src_node))
        )
        self.stats.atomic_inserts += total
        wpn = machine.workers_per_node
        src_slot = src - machine.workers_of_node(src_node).start
        per_node = counts.reshape(-1, wpn).sum(axis=1)
        now = ctx.now
        for node in np.nonzero(per_node)[0]:
            node = int(node)
            buf = self._get(src, node, item_mode=False)
            buf.add_counts(
                int(per_node[node]),
                now,
                dst_slot_counts=counts[node * wpn : (node + 1) * wpn],
                src_slot=src_slot,
            )
            self._arm_timer(buf, src)
            self._drain_full(ctx, buf)

    def flush_when_done(self, ctx) -> None:
        """Coordinated flush across the whole source node."""
        node = self.rt.machine.node_of_worker(ctx.worker.wid)
        self._done_counts[node] += 1
        if self._done_counts[node] >= self._done_threshold[node]:
            self._done_counts[node] = 0
            self.stats.flushes_requested += 1
            self._flush_worker(ctx, ctx.worker.wid)

    def on_process_crashed(self, pid: int) -> None:
        super().on_process_crashed(pid)
        node = self.rt.machine.node_of_process(pid)
        self._done_threshold[node] -= self.rt.machine.workers_per_process

    def _flush_worker(self, ctx, wid: int) -> None:
        if self._defer_if_gated(wid):
            return
        node = self.rt.machine.node_of_worker(wid)
        for buf in self._by_node[node].values():
            if not buf.empty:
                self._send_chunk(ctx, buf, buf.count, full=False)

    def _has_pending(self, wid: int) -> bool:
        node = self.rt.machine.node_of_worker(wid)
        return any(not buf.empty for buf in self._by_node[node].values())

    def _all_buffers(self) -> Iterable[Buffer]:
        for bufs in self._by_node:
            yield from bufs.values()
