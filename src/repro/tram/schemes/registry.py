"""Scheme registry: construct aggregation schemes by paper name."""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional, Type

from repro.errors import ConfigError
from repro.tram.config import TramConfig
from repro.tram.schemes.base import SchemeBase
from repro.tram.schemes.direct import DirectScheme
from repro.tram.schemes.node_level import NNScheme, WNsScheme
from repro.tram.schemes.pp import PPScheme
from repro.tram.schemes.routed2d import Routed2DScheme
from repro.tram.schemes.wps import WPsScheme
from repro.tram.schemes.wsp import WsPScheme
from repro.tram.schemes.ww import WWScheme

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.system import RuntimeSystem

_REGISTRY: Dict[str, Type[SchemeBase]] = {
    "ww": WWScheme,
    "wps": WPsScheme,
    "wsp": WsPScheme,
    "pp": PPScheme,
    "direct": DirectScheme,
    # Node-level extensions (paper SecIII-B "one level up"; see
    # repro.tram.schemes.node_level).
    "wns": WNsScheme,
    "nn": NNScheme,
    # Legacy-TRAM 2D topological routing (repro.tram.schemes.routed2d).
    "r2d": Routed2DScheme,
}

#: Canonical scheme names, in the paper's presentation order.
SCHEME_NAMES = ("WW", "WPs", "WsP", "PP")


def make_scheme(
    name: str,
    rt: "RuntimeSystem",
    config: Optional[TramConfig] = None,
    *,
    deliver_item: Optional[Callable] = None,
    deliver_bulk: Optional[Callable] = None,
) -> SchemeBase:
    """Construct the scheme called ``name`` (case-insensitive).

    Parameters
    ----------
    name:
        One of ``WW``, ``WPs``, ``WsP``, ``PP`` or ``Direct``.
    rt:
        Runtime to attach to.
    config:
        Tram configuration (defaults to :class:`TramConfig` defaults).
    deliver_item / deliver_bulk:
        Destination-side application callbacks (at least one required).
    """
    cls = _REGISTRY.get(name.lower())
    if cls is None:
        raise ConfigError(
            f"unknown scheme {name!r}; choose from "
            f"{sorted(c.name for c in _REGISTRY.values())}"
        )
    return cls(
        rt,
        config if config is not None else TramConfig(),
        deliver_item=deliver_item,
        deliver_bulk=deliver_bulk,
    )
