"""WPs: per source worker, one buffer per destination *process*;
items are grouped by PE at the destination (paper Fig 5).

Compared with WW, the per-worker buffer count drops from ``N*t`` to
``N`` (``N`` processes, ``t`` workers each): buffers fill ``t`` times
faster, end-of-phase flushes send ``t`` times fewer messages, and the
memory overhead is ``g*m*N`` per core (§III-C). The price is an
O(g + t) grouping pass on the receiving PE before local section sends.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import ConfigError
from repro.tram.item import Item
from repro.tram.schemes.base import Buffer, SchemeBase


class WPsScheme(SchemeBase):
    """Worker-to-process aggregation, destination-side grouping."""

    name = "WPs"
    worker_addressed = False

    def __init__(self, rt, config, deliver_item=None, deliver_bulk=None) -> None:
        super().__init__(rt, config, deliver_item, deliver_bulk)
        #: Per source worker: {dst_process: buffer}.
        self._by_worker = [dict() for _ in range(rt.machine.total_workers)]

    # ------------------------------------------------------------------
    def _get(self, src: int, dst_process: int, item_mode: bool) -> Buffer:
        bufs = self._by_worker[src]
        buf = bufs.get(dst_process)
        if buf is None:
            dest = (dst_process, None)
            if item_mode:
                buf = self._new_item_buffer(dest, owner=src)
            else:
                dst_ids = np.array(
                    self.rt.machine.workers_of_process(dst_process), dtype=np.int64
                )
                buf = self._new_count_buffer(dest, dst_ids=dst_ids, owner=src)
            bufs[dst_process] = buf
        elif item_mode != hasattr(buf, "items"):
            raise ConfigError(
                "do not mix insert() and insert_bulk() on one scheme instance"
            )
        return buf

    # ------------------------------------------------------------------
    def _insert_item(self, ctx, src: int, item: Item) -> None:
        dst_process = self.rt.machine.process_of_worker(item.dst)
        buf = self._get(src, dst_process, item_mode=True)
        ctx.charge(self.rt.costs.item_insert_ns * self._insert_penalty(src))
        buf.add(item)
        self._arm_timer(buf, src)
        if not self._maybe_priority_flush(ctx, buf, item):
            self._drain_full(ctx, buf)

    def _insert_bulk(self, ctx, src: int, counts: np.ndarray, total: int) -> None:
        ctx.charge(
            total * self.rt.costs.item_insert_ns * self._insert_penalty(src)
        )
        t = self.rt.machine.workers_per_process
        per_proc = counts.reshape(-1, t).sum(axis=1)
        now = ctx.now
        for p in np.nonzero(per_proc)[0]:
            p = int(p)
            buf = self._get(src, p, item_mode=False)
            buf.add_counts(
                int(per_proc[p]), now, dst_slot_counts=counts[p * t : (p + 1) * t]
            )
            self._arm_timer(buf, src)
            self._drain_full(ctx, buf)

    def _flush_worker(self, ctx, wid: int) -> None:
        if self._defer_if_gated(wid):
            return
        for buf in self._by_worker[wid].values():
            if not buf.empty:
                self._send_chunk(ctx, buf, buf.count, full=False)

    def _has_pending(self, wid: int) -> bool:
        return any(not buf.empty for buf in self._by_worker[wid].values())

    def _all_buffers(self) -> Iterable[Buffer]:
        for bufs in self._by_worker:
            yield from bufs.values()
