"""TramLib configuration.

One :class:`TramConfig` instance parameterizes a scheme instance: buffer
depth ``g`` and item size ``m`` (the paper's notation), flush behaviour,
and the co-design features of §III-B (expedited messages, local bypass,
resized flush sends are always on).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.errors import ConfigError


@dataclass(frozen=True)
class TramConfig:
    """Parameters of one TramLib scheme instance.

    Parameters
    ----------
    buffer_items:
        ``g`` — items per aggregation buffer; a full buffer is sent
        immediately.
    item_bytes:
        ``m`` — wire bytes per item.
    idle_flush:
        Flush a worker's non-empty buffers when its PE goes idle (the
        paper: "buffers can be flushed, optionally, when the processor is
        idle"). Required for dependency-driven apps (SSSP, PDES) to make
        progress; streaming apps typically flush explicitly instead.
    flush_timeout_ns:
        If set, a buffer that stays non-empty this long is flushed by a
        timer — bounds worst-case item latency.
    bypass_local:
        Deliver intra-process items directly through shared memory
        instead of aggregating them (they would never cross the network).
    expedited:
        Send TramLib messages on the expedited lane so they overtake
        ordinary application tasks at the destination PE (§III-B).
    priority_threshold:
        Optional priority-aware flushing (the paper's future-work
        feature): inserting an item whose ``priority`` is <= this value
        flushes its buffer immediately, bounding the latency of urgent
        items (e.g. small tentative distances in SSSP).
    latency_sample:
        Reservoir size for latency percentiles (0 disables sampling;
        mean/min/max are always tracked exactly).
    degraded_flush_divisor:
        When the reliability layer degrades a destination to direct
        sends, the scheme's flush timers escalate: the effective
        ``flush_timeout_ns`` is divided by this factor so items stop
        pooling behind a destination that has already proven lossy.
    overload_flush_stretch:
        When the flow controller's overload detector escalates, flush
        timers *stretch* by this factor (fire less often) — the inverse
        of the degraded escalation: overload wants less per-message
        pressure on the comm thread, not faster flushing.
    overload_buffer_growth:
        Under the same escalation, the effective buffer capacity grows
        by this factor, so full-buffer sends carry more items per
        message while the overload lasts.
    """

    buffer_items: int = 1024
    item_bytes: int = 8
    idle_flush: bool = False
    flush_timeout_ns: Optional[float] = None
    bypass_local: bool = True
    expedited: bool = True
    priority_threshold: Optional[float] = None
    latency_sample: int = 0
    degraded_flush_divisor: float = 4.0
    overload_flush_stretch: float = 4.0
    overload_buffer_growth: float = 2.0

    def __post_init__(self) -> None:
        if self.buffer_items < 1:
            raise ConfigError(f"buffer_items must be >= 1, got {self.buffer_items}")
        if self.item_bytes < 1:
            raise ConfigError(f"item_bytes must be >= 1, got {self.item_bytes}")
        if self.flush_timeout_ns is not None and self.flush_timeout_ns <= 0:
            raise ConfigError("flush_timeout_ns must be positive when set")
        if self.latency_sample < 0:
            raise ConfigError("latency_sample must be >= 0")
        if self.degraded_flush_divisor < 1.0:
            raise ConfigError(
                f"degraded_flush_divisor must be >= 1, got "
                f"{self.degraded_flush_divisor}"
            )
        if self.overload_flush_stretch < 1.0:
            raise ConfigError(
                f"overload_flush_stretch must be >= 1, got "
                f"{self.overload_flush_stretch}"
            )
        if self.overload_buffer_growth < 1.0:
            raise ConfigError(
                f"overload_buffer_growth must be >= 1, got "
                f"{self.overload_buffer_growth}"
            )

    def with_(self, **changes) -> "TramConfig":
        """Return a copy with the given fields changed."""
        return replace(self, **changes)
