"""TramLib — the paper's shared-memory-aware message aggregation library.

Construction::

    from repro.tram import make_scheme, TramConfig

    tram = make_scheme(
        "WPs", rt, TramConfig(buffer_items=1024, item_bytes=8),
        deliver_item=lambda ctx, item: ...,
    )

Inside worker handlers, call ``tram.insert(ctx, dst, payload)`` (per-item
fidelity) or ``tram.insert_bulk(ctx, counts)`` (flow fidelity), and
``tram.flush(ctx)`` at end-of-phase. See
:mod:`repro.tram.schemes` for the scheme catalogue and
:class:`~repro.tram.config.TramConfig` for flush policies (explicit /
idle / timeout / priority).
"""

from repro.tram.buffer import CountBuffer, ItemBuffer, proportional_take
from repro.tram.config import TramConfig
from repro.tram.item import BulkBatch, Item, ItemBatch
from repro.tram.schemes import (
    SCHEME_NAMES,
    DirectScheme,
    PPScheme,
    SchemeBase,
    WPsScheme,
    WsPScheme,
    WWScheme,
    make_scheme,
)
from repro.tram.stats import LatencyAggregate, TramStats

__all__ = [
    "BulkBatch",
    "CountBuffer",
    "DirectScheme",
    "Item",
    "ItemBatch",
    "ItemBuffer",
    "LatencyAggregate",
    "PPScheme",
    "SCHEME_NAMES",
    "SchemeBase",
    "TramConfig",
    "TramStats",
    "WPsScheme",
    "WWScheme",
    "WsPScheme",
    "make_scheme",
    "proportional_take",
]
