"""Items and the batch payloads that carry them.

Following the paper's vocabulary: an **item** is the short application
message handed to TramLib; a **message** is the aggregated unit the
runtime transports. Two fidelity levels exist:

* **per-item** (:class:`Item` / :class:`ItemBatch`) — every item is a
  Python object with its own creation timestamp and payload. Used by the
  latency-sensitive applications (SSSP, PHOLD) and by most tests.
* **bulk/flow** (:class:`BulkBatch`) — only *counts* (per destination
  worker / per source worker) plus aggregate timestamp moments travel.
  Used by the streaming benchmarks (histogram, index-gather) so that a
  million-item run costs O(messages) simulation work, not O(items)
  (DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

import numpy as np


@dataclass(slots=True)
class Item:
    """One application-level short message.

    Attributes
    ----------
    dst:
        Global destination worker id.
    src:
        Global source worker id.
    created:
        Simulated time the application inserted the item.
    payload:
        Opaque application data.
    priority:
        Optional priority for priority-aware flushing (lower = more
        urgent; e.g. the tentative distance in SSSP).
    """

    dst: int
    src: int
    created: float
    payload: Any = None
    priority: Optional[float] = None


@dataclass(slots=True)
class ItemBatch:
    """Per-item payload of an aggregated message.

    ``grouped`` is ``True`` when the source already sorted the items by
    destination PE (the WsP scheme), in which case ``sections`` holds
    ``(dst_worker, [items...])`` runs and the destination skips its own
    grouping pass.
    """

    items: list
    grouped: bool = False
    sections: Optional[list] = None

    @property
    def count(self) -> int:
        return len(self.items)


@dataclass(slots=True)
class BulkBatch:
    """Count-level payload of an aggregated message.

    Attributes
    ----------
    count:
        Total items carried.
    dst_ids:
        Global worker ids of the destination slots (``None`` for
        worker-addressed messages, where the envelope names the one
        destination).
    dst_counts:
        Items per destination slot, aligned with ``dst_ids``.
    src_ids / src_counts:
        Source-worker breakdown (who contributed the items) — needed by
        request/response workloads (index-gather) to route replies.
    t_sum:
        Sum of the items' creation times; together with ``count`` and the
        delivery time this yields the exact mean item latency without
        storing per-item stamps.
    t_min:
        Earliest creation time in the batch (bounds max latency).
    grouped:
        ``True`` when the source pre-grouped by destination (WsP): the
        destination then skips its own grouping pass.
    """

    count: int
    dst_ids: Optional[np.ndarray]
    dst_counts: Optional[np.ndarray]
    src_ids: Optional[np.ndarray]
    src_counts: Optional[np.ndarray]
    t_sum: float
    t_min: float
    grouped: bool = False
