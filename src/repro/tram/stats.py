"""Per-scheme statistics: the paper's two metrics and their inputs.

**Overhead** shows up as message/byte counts and the simulated run time;
**latency** is tracked per delivered item — exactly (mean/min/max via
moments) plus optionally percentiles from one of two backends: a
deterministic reservoir sample (``sample_size > 0``) or a fixed-bucket
log2 histogram (``histogram=True``; constant memory, no RNG — what the
observability layer uses).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.obs.hist import Log2Histogram


class LatencyAggregate:
    """Exact moments + an optional percentile backend.

    Parameters
    ----------
    sample_size:
        Reservoir capacity; 0 disables the reservoir backend.
    seed:
        Reservoir RNG seed (deterministic replacement).
    histogram:
        Use a :class:`~repro.obs.hist.Log2Histogram` backend instead.
        Ignored when a reservoir is configured (the reservoir gives
        finer percentiles; the histogram never allocates per-sample).
    """

    __slots__ = (
        "count", "total", "min", "max", "_reservoir", "_rng", "_seen", "_hist"
    )

    def __init__(
        self, sample_size: int = 0, seed: int = 0, histogram: bool = False
    ) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0
        self._reservoir = (
            np.empty(sample_size, dtype=np.float64) if sample_size else None
        )
        self._rng = np.random.default_rng(seed) if sample_size else None
        self._seen = 0
        self._hist = (
            Log2Histogram() if histogram and not sample_size else None
        )

    def record(self, latency_ns: float, weight: int = 1) -> None:
        """Record ``weight`` items with the given (mean) latency."""
        self.count += weight
        self.total += latency_ns * weight
        if latency_ns < self.min:
            self.min = latency_ns
        if latency_ns > self.max:
            self.max = latency_ns
        if self._reservoir is not None:
            self._sample(latency_ns, weight)
        elif self._hist is not None:
            self._hist.record(latency_ns, weight)

    def record_bulk(self, count: int, t_sum: float, t_min: float, now: float) -> None:
        """Record a bulk delivery from timestamp moments.

        Mean latency is exact (``now*count - t_sum``); min/max use the
        batch mean and the oldest item respectively.
        """
        if count <= 0:
            return
        self.count += count
        self.total += now * count - t_sum
        mean = now - t_sum / count
        if mean < self.min:
            self.min = mean
        oldest = now - t_min
        if oldest > self.max:
            self.max = oldest
        if self._reservoir is not None:
            self._sample(mean, count)
        elif self._hist is not None:
            self._hist.record(mean, count)

    def _sample(self, value: float, weight: int) -> None:
        res = self._reservoir
        cap = len(res)
        for _ in range(min(weight, 4)):  # cap per-call work
            self._seen += 1
            if self._seen <= cap:
                res[self._seen - 1] = value
            else:
                j = int(self._rng.integers(0, self._seen))
                if j < cap:
                    res[j] = value

    @property
    def mean(self) -> float:
        """Mean item latency (ns); 0 when nothing recorded."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> Optional[float]:
        """Approximate percentile from the active backend (None if none)."""
        if self._reservoir is not None and self._seen:
            filled = self._reservoir[: min(self._seen, len(self._reservoir))]
            return float(np.percentile(filled, q))
        if self._hist is not None:
            return self._hist.percentile(q)
        return None


class NodeShardedLatency:
    """Per-node latency shards, folded in fixed node order at read time.

    Float accumulation is order-sensitive, so a single accumulator
    written in global event order could never be reproduced bit-for-bit
    by a partitioned run (:mod:`repro.sim.parallel`), where each node's
    records happen in a different process. Sharding per simulated node
    makes every write sequence *node-local* — identical in sequential
    and partitioned executions — and the read-time fold visits shards in
    fixed node order, so both modes produce the same bytes. Multi-node
    runtimes use this in *both* modes; single-node runtimes keep the
    plain :class:`LatencyAggregate` untouched.

    The recording shard is selected by ``engine.current_owner`` — the
    node that owns the event being executed (records happen in delivery
    handlers, which run on the destination node).
    """

    __slots__ = ("shards", "_engine")

    def __init__(
        self,
        n_nodes: int,
        engine,
        sample_size: int = 0,
        seed: int = 0,
        histogram: bool = False,
    ) -> None:
        self._engine = engine
        self.shards = [
            LatencyAggregate(
                sample_size,
                seed=seed + 0x9E3779B1 * (node + 1),
                histogram=histogram,
            )
            for node in range(n_nodes)
        ]

    def record(self, latency_ns: float, weight: int = 1) -> None:
        self.shards[self._engine.current_owner].record(latency_ns, weight)

    def record_bulk(self, count: int, t_sum: float, t_min: float, now: float) -> None:
        self.shards[self._engine.current_owner].record_bulk(
            count, t_sum, t_min, now
        )

    @property
    def count(self) -> int:
        return sum(s.count for s in self.shards)

    @property
    def total(self) -> float:
        total = 0.0
        for s in self.shards:
            total += s.total
        return total

    @property
    def min(self) -> float:
        return min(s.min for s in self.shards)

    @property
    def max(self) -> float:
        return max(s.max for s in self.shards)

    @property
    def mean(self) -> float:
        count = self.count
        return self.total / count if count else 0.0

    def percentile(self, q: float) -> Optional[float]:
        """Percentile over the union of the shards' backends."""
        parts = [
            s._reservoir[: min(s._seen, len(s._reservoir))]
            for s in self.shards
            if s._reservoir is not None and s._seen
        ]
        if parts:
            return float(np.percentile(np.concatenate(parts), q))
        merged: Optional[Log2Histogram] = None
        for s in self.shards:
            if s._hist is not None:
                if merged is None:
                    merged = Log2Histogram()
                merged.merge(s._hist)
        if merged is not None and merged.count:
            return merged.percentile(q)
        return None


@dataclass
class TramStats:
    """Counters for one scheme instance."""

    items_inserted: int = 0
    items_delivered: int = 0
    items_bypassed_local: int = 0
    #: Messages sent because a buffer filled.
    messages_full: int = 0
    #: Messages sent by explicit / idle / timer / priority flushes.
    messages_flush: int = 0
    bytes_sent: int = 0
    #: Items inserted through the PP shared-buffer atomic path.
    atomic_inserts: int = 0
    #: Elements processed by grouping/sorting passes (source or dest).
    group_elements: int = 0
    #: Within-process section sends performed at destinations.
    local_sections: int = 0
    #: Intra-node forwards performed by node-level schemes (WNs/NN).
    messages_forwarded: int = 0
    #: Distinct buffers ever allocated and their total capacity in bytes
    #: (the §III-C memory-overhead measurement).
    buffers_allocated: int = 0
    buffer_bytes_allocated: int = 0
    flushes_requested: int = 0
    #: Buffer flushes triggered by the priority threshold (future-work
    #: feature); these messages are also counted in messages_flush.
    priority_flushes: int = 0
    #: Destination processes this scheme fell back to direct sends for
    #: (reliability retry budget exhausted).
    degraded_destinations: int = 0
    #: Items sent as direct per-item messages because their destination
    #: pair was degraded.
    direct_fallback_sends: int = 0
    #: Flush-timer escalations performed when a destination degraded.
    flush_escalations: int = 0
    #: Times the flow controller escalated this scheme (timer stretch +
    #: buffer growth) because the pipeline was overloaded.
    overload_escalations: int = 0
    #: Items dropped (and loss-accounted) because their destination
    #: process was confirmed dead — at insert or in pooled buffers.
    dead_peer_drops: int = 0
    #: Routing decisions diverted around a dead intermediary by a
    #: routed scheme (Routed2D alternate hop, WNs round-robin skip).
    failover_reroutes: int = 0
    latency: LatencyAggregate = field(default_factory=LatencyAggregate)

    @property
    def messages_sent(self) -> int:
        """Total aggregated messages that left source PEs."""
        return self.messages_full + self.messages_flush

    @property
    def pending_items(self) -> int:
        """Items inserted but not yet delivered (nor bypassed locally)."""
        return self.items_inserted - self.items_delivered

    def summary(self) -> dict:
        """Plain-dict snapshot used by the harness reports."""
        return {
            "items_inserted": self.items_inserted,
            "items_delivered": self.items_delivered,
            "items_bypassed_local": self.items_bypassed_local,
            "pending_items": self.pending_items,
            "messages_sent": self.messages_sent,
            "messages_full": self.messages_full,
            "messages_flush": self.messages_flush,
            "bytes_sent": self.bytes_sent,
            "mean_latency_ns": self.latency.mean,
            "min_latency_ns": self.latency.min if self.latency.count else 0.0,
            "max_latency_ns": self.latency.max if self.latency.count else 0.0,
            "atomic_inserts": self.atomic_inserts,
            "group_elements": self.group_elements,
            "buffer_bytes_allocated": self.buffer_bytes_allocated,
            "degraded_destinations": self.degraded_destinations,
            "direct_fallback_sends": self.direct_fallback_sends,
            "flush_escalations": self.flush_escalations,
            "overload_escalations": self.overload_escalations,
            "latency_p50_ns": self.latency.percentile(50),
            "latency_p99_ns": self.latency.percentile(99),
        }

    def crash_summary(self) -> dict:
        """Crash-fabric counters, merged into reports only when the
        fabric is armed so crash-free artifacts stay byte-identical."""
        return {
            "dead_peer_drops": self.dead_peer_drops,
            "failover_reroutes": self.failover_reroutes,
        }
