"""Aggregation buffers.

Two implementations back the two fidelity levels (see
:mod:`repro.tram.item`): :class:`ItemBuffer` stores actual
:class:`~repro.tram.item.Item` objects; :class:`CountBuffer` stores only
per-slot counts plus timestamp moments, with an exact
largest-remainder proportional split when a full ``g``-item message is
carved out of an over-full buffer.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import SimulationError
from repro.tram.item import BulkBatch, Item


def proportional_take(arr: np.ndarray, k: int, total: int) -> np.ndarray:
    """Take ``k`` of ``total`` items from slots ``arr`` proportionally.

    Uses the largest-remainder method; deterministic (ties broken by
    slot index) and guaranteed to satisfy ``0 <= take <= arr`` and
    ``take.sum() == k``.
    """
    if k > total:
        raise SimulationError(f"cannot take {k} of {total}")
    if k == total:
        return arr.copy()
    prod = arr * k
    take = prod // total
    deficit = int(k - take.sum())
    if deficit:
        rem = prod - take * total
        # Only slots with rem > 0 are eligible and there are always at
        # least ``deficit`` of them; ceil never exceeds arr when k<total.
        order = np.argsort(-rem, kind="stable")[:deficit]
        take[order] += 1
    return take


class ItemBuffer:
    """Fixed-capacity buffer of real :class:`Item` objects."""

    __slots__ = ("capacity", "items", "timer_event", "dest")

    def __init__(self, capacity: int, dest=None) -> None:
        self.capacity = capacity
        self.items: List[Item] = []
        #: Armed flush-timeout event, managed by the scheme.
        self.timer_event = None
        #: ``(dst_process, dst_worker_or_None)`` routing of this buffer.
        self.dest = dest

    def add(self, item: Item) -> bool:
        """Append an item; return True when the buffer reached capacity."""
        self.items.append(item)
        return len(self.items) >= self.capacity

    def drain(self, k: Optional[int] = None) -> List[Item]:
        """Remove and return the oldest ``k`` items (all if ``None``)."""
        if k is None or k >= len(self.items):
            out, self.items = self.items, []
            return out
        out = self.items[:k]
        del self.items[:k]
        return out

    @property
    def count(self) -> int:
        return len(self.items)

    @property
    def empty(self) -> bool:
        return not self.items

    def min_priority(self) -> Optional[float]:
        """Smallest item priority present (None when unprioritized)."""
        priorities = [i.priority for i in self.items if i.priority is not None]
        return min(priorities) if priorities else None


class CountBuffer:
    """Fixed-capacity buffer of item *counts* (bulk/flow mode).

    Parameters
    ----------
    capacity:
        ``g`` — items before the buffer is considered full.
    dst_ids:
        Global worker ids of the destination slots tracked (``None`` for
        a single-destination buffer, e.g. WW).
    src_ids:
        Global worker ids of the possible contributors (``None`` for a
        single-source buffer).
    """

    __slots__ = (
        "capacity",
        "count",
        "dst_ids",
        "dst_counts",
        "src_ids",
        "src_counts",
        "t_sum",
        "t_min",
        "timer_event",
        "dest",
    )

    def __init__(
        self,
        capacity: int,
        dst_ids: Optional[np.ndarray] = None,
        src_ids: Optional[np.ndarray] = None,
        dest=None,
    ) -> None:
        self.capacity = capacity
        self.count = 0
        self.dst_ids = dst_ids
        self.dst_counts = (
            np.zeros(len(dst_ids), dtype=np.int64) if dst_ids is not None else None
        )
        self.src_ids = src_ids
        self.src_counts = (
            np.zeros(len(src_ids), dtype=np.int64) if src_ids is not None else None
        )
        self.t_sum = 0.0
        self.t_min = float("inf")
        self.timer_event = None
        self.dest = dest

    @property
    def empty(self) -> bool:
        return self.count == 0

    @property
    def full(self) -> bool:
        return self.count >= self.capacity

    def add_counts(
        self,
        n: int,
        now: float,
        dst_slot_counts: Optional[np.ndarray] = None,
        src_slot: Optional[int] = None,
    ) -> None:
        """Account ``n`` items created at ``now``.

        ``dst_slot_counts`` distributes them over destination slots (must
        sum to ``n``); ``src_slot`` attributes them to one contributor.
        """
        if n <= 0:
            raise SimulationError(f"add_counts with n={n}")
        self.count += n
        self.t_sum += n * now
        if now < self.t_min:
            self.t_min = now
        if self.dst_counts is not None:
            if dst_slot_counts is None:
                raise SimulationError("buffer tracks destinations; counts required")
            self.dst_counts += dst_slot_counts
        if self.src_counts is not None:
            if src_slot is None:
                raise SimulationError("buffer tracks sources; src_slot required")
            self.src_counts[src_slot] += n

    def take(self, k: int) -> BulkBatch:
        """Carve ``k`` items out of the buffer as a :class:`BulkBatch`.

        Destination and source marginals are split proportionally
        (largest remainder); timestamp moments are split pro-rata.
        """
        if k <= 0 or k > self.count:
            raise SimulationError(f"take({k}) from buffer of {self.count}")
        frac = k / self.count
        t_sum_part = self.t_sum * frac
        dst_part = None
        if self.dst_counts is not None:
            dst_part = proportional_take(self.dst_counts, k, self.count)
            self.dst_counts -= dst_part
        src_part = None
        if self.src_counts is not None:
            src_part = proportional_take(self.src_counts, k, self.count)
            self.src_counts -= src_part
        batch = BulkBatch(
            count=k,
            dst_ids=self.dst_ids,
            dst_counts=dst_part,
            src_ids=self.src_ids,
            src_counts=src_part,
            t_sum=t_sum_part,
            t_min=self.t_min,
        )
        self.count -= k
        self.t_sum -= t_sum_part
        if self.count == 0:
            self.t_sum = 0.0
            self.t_min = float("inf")
        return batch

    def take_all(self) -> BulkBatch:
        """Drain the whole buffer (flush path)."""
        return self.take(self.count)
