"""Aggregation buffers.

Two implementations back the two fidelity levels (see
:mod:`repro.tram.item`): :class:`ItemBuffer` stores actual
:class:`~repro.tram.item.Item` objects; :class:`CountBuffer` stores only
per-slot counts plus timestamp moments, with an exact
largest-remainder proportional split when a full ``g``-item message is
carved out of an over-full buffer.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import SimulationError
from repro.tram.item import BulkBatch, Item


def proportional_take(arr: np.ndarray, k: int, total: int) -> np.ndarray:
    """Take ``k`` of ``total`` items from slots ``arr`` proportionally.

    Uses the largest-remainder method; deterministic (ties broken by
    slot index) and guaranteed to satisfy ``0 <= take <= arr`` and
    ``take.sum() == k``.
    """
    if k > total:
        raise SimulationError(f"cannot take {k} of {total}")
    if k == total:
        return arr.copy()
    prod = arr * k
    take = prod // total
    deficit = int(k - take.sum())
    if deficit:
        rem = prod - take * total
        # Only slots with rem > 0 are eligible and there are always at
        # least ``deficit`` of them; ceil never exceeds arr when k<total.
        order = np.argsort(-rem, kind="stable")[:deficit]
        take[order] += 1
    return take


class ItemBuffer:
    """Fixed-capacity buffer of real :class:`Item` objects.

    Partial drains advance a head cursor instead of shifting the tail
    left (``del items[:k]`` is O(n) per call); the backing list is
    compacted only once the dead prefix reaches half its length, so a
    sequence of partial drains costs amortized O(1) per drained item.
    The minimum priority is tracked incrementally on ``add``/``drain``
    rather than rebuilt from a throwaway list per query.
    """

    __slots__ = (
        "capacity",
        "timer_event",
        "dest",
        "_items",
        "_head",
        "_min_priority",
        "_prio_count",
    )

    def __init__(self, capacity: int, dest=None) -> None:
        self.capacity = capacity
        #: Armed flush-timeout state, managed by the scheme.
        self.timer_event = None
        #: ``(dst_process, dst_worker_or_None)`` routing of this buffer.
        self.dest = dest
        self._items: List[Item] = []
        self._head = 0
        self._min_priority: Optional[float] = None
        self._prio_count = 0

    @property
    def items(self) -> List[Item]:
        """The buffered items, oldest first (the live slice)."""
        return self._items[self._head:] if self._head else self._items

    def add(self, item: Item) -> bool:
        """Append an item; return True when the buffer reached capacity."""
        self._items.append(item)
        p = item.priority
        if p is not None:
            self._prio_count += 1
            if self._min_priority is None or p < self._min_priority:
                self._min_priority = p
        return len(self._items) - self._head >= self.capacity

    def drain(self, k: Optional[int] = None) -> List[Item]:
        """Remove and return the oldest ``k`` items (all if ``None``)."""
        items = self._items
        head = self._head
        if k is None or k >= len(items) - head:
            out = items[head:] if head else items
            self._items = []
            self._head = 0
            self._min_priority = None
            self._prio_count = 0
            return out
        end = head + k
        out = items[head:end]
        self._head = end
        if end * 2 >= len(items):
            del items[:end]
            self._head = 0
        if self._prio_count:
            self._note_drained(out)
        return out

    def _note_drained(self, out: List[Item]) -> None:
        removed = 0
        min_left = False
        mn = self._min_priority
        for it in out:
            p = it.priority
            if p is not None:
                removed += 1
                if p == mn:
                    min_left = True
        if not removed:
            return
        self._prio_count -= removed
        if self._prio_count == 0:
            self._min_priority = None
        elif min_left:
            self._min_priority = min(
                it.priority
                for it in self._items[self._head:]
                if it.priority is not None
            )

    @property
    def count(self) -> int:
        return len(self._items) - self._head

    @property
    def empty(self) -> bool:
        return len(self._items) == self._head

    def min_priority(self) -> Optional[float]:
        """Smallest item priority present (None when unprioritized). O(1)."""
        return self._min_priority


class CountBuffer:
    """Fixed-capacity buffer of item *counts* (bulk/flow mode).

    Parameters
    ----------
    capacity:
        ``g`` — items before the buffer is considered full.
    dst_ids:
        Global worker ids of the destination slots tracked (``None`` for
        a single-destination buffer, e.g. WW).
    src_ids:
        Global worker ids of the possible contributors (``None`` for a
        single-source buffer).
    """

    __slots__ = (
        "capacity",
        "count",
        "dst_ids",
        "dst_counts",
        "src_ids",
        "src_counts",
        "t_sum",
        "t_min",
        "timer_event",
        "dest",
    )

    def __init__(
        self,
        capacity: int,
        dst_ids: Optional[np.ndarray] = None,
        src_ids: Optional[np.ndarray] = None,
        dest=None,
    ) -> None:
        self.capacity = capacity
        self.count = 0
        self.dst_ids = dst_ids
        self.dst_counts = (
            np.zeros(len(dst_ids), dtype=np.int64) if dst_ids is not None else None
        )
        self.src_ids = src_ids
        self.src_counts = (
            np.zeros(len(src_ids), dtype=np.int64) if src_ids is not None else None
        )
        self.t_sum = 0.0
        self.t_min = float("inf")
        self.timer_event = None
        self.dest = dest

    @property
    def empty(self) -> bool:
        return self.count == 0

    @property
    def full(self) -> bool:
        return self.count >= self.capacity

    def add_counts(
        self,
        n: int,
        now: float,
        dst_slot_counts: Optional[np.ndarray] = None,
        src_slot: Optional[int] = None,
    ) -> None:
        """Account ``n`` items created at ``now``.

        ``dst_slot_counts`` distributes them over destination slots (must
        sum to ``n``); ``src_slot`` attributes them to one contributor.
        """
        if n <= 0:
            raise SimulationError(f"add_counts with n={n}")
        self.count += n
        self.t_sum += n * now
        if now < self.t_min:
            self.t_min = now
        if self.dst_counts is not None:
            if dst_slot_counts is None:
                raise SimulationError("buffer tracks destinations; counts required")
            self.dst_counts += dst_slot_counts
        if self.src_counts is not None:
            if src_slot is None:
                raise SimulationError("buffer tracks sources; src_slot required")
            self.src_counts[src_slot] += n

    def take(self, k: int) -> BulkBatch:
        """Carve ``k`` items out of the buffer as a :class:`BulkBatch`.

        Destination and source marginals are split proportionally
        (largest remainder); timestamp moments are split pro-rata.
        """
        if k <= 0 or k > self.count:
            raise SimulationError(f"take({k}) from buffer of {self.count}")
        frac = k / self.count
        t_sum_part = self.t_sum * frac
        dst_part = None
        if self.dst_counts is not None:
            dst_part = proportional_take(self.dst_counts, k, self.count)
            self.dst_counts -= dst_part
        src_part = None
        if self.src_counts is not None:
            src_part = proportional_take(self.src_counts, k, self.count)
            self.src_counts -= src_part
        batch = BulkBatch(
            count=k,
            dst_ids=self.dst_ids,
            dst_counts=dst_part,
            src_ids=self.src_ids,
            src_counts=src_part,
            t_sum=t_sum_part,
            t_min=self.t_min,
        )
        self.count -= k
        self.t_sum -= t_sum_part
        if self.count == 0:
            self.t_sum = 0.0
            self.t_min = float("inf")
        return batch

    def take_all(self) -> BulkBatch:
        """Drain the whole buffer (flush path)."""
        return self.take(self.count)
