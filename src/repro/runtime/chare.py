"""Minimal chare abstraction (Charm++ flavour).

A :class:`Chare` is an object bound to one PE whose *entry methods* run
as tasks on that PE. The applications in :mod:`repro.apps` use one chare
per PE (as the paper's SSSP does: "vertices distributed across chares,
with one chare per PE"); over-decomposition (several chares per PE) is
supported since chares are just task targets.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.context import ExecContext
    from repro.runtime.system import RuntimeSystem


class Chare:
    """An object whose entry methods execute on its home PE.

    Subclass and define entry methods taking ``(self, ctx, ...)``; invoke
    them (from anywhere) with :meth:`invoke`, which posts a task on the
    chare's PE charging the standard enqueue cost at delivery.
    """

    def __init__(self, rt: "RuntimeSystem", worker_id: int) -> None:
        self.rt = rt
        self.worker_id = worker_id

    def invoke(
        self,
        method: Callable[..., Any] | str,
        *args: Any,
        delay: float = 0.0,
        expedited: bool = False,
    ) -> None:
        """Schedule an entry method on this chare's PE.

        Parameters
        ----------
        method:
            Bound method, unbound function taking ``(self, ctx, ...)``,
            or the method name as a string.
        """
        fn = getattr(self, method) if isinstance(method, str) else method
        self.rt.post(
            self.worker_id, fn, *args, delay=delay, expedited=expedited
        )

    def invoke_local(
        self, ctx: "ExecContext", method: Callable[..., Any] | str, *args: Any
    ) -> None:
        """From inside a handler: queue an entry method at completion."""
        fn = getattr(self, method) if isinstance(method, str) else method
        ctx.emit(self.rt.worker(self.worker_id).post_task, fn, *args)
