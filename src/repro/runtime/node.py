"""Physical node: processes plus its NIC(s)."""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.nic import Nic
    from repro.runtime.system import RuntimeSystem


class Node:
    """One physical host in the simulated cluster.

    Attributes
    ----------
    node_id:
        Global node index.
    nics:
        The node's network interfaces; off-node traffic serializes per
        NIC, and processes map to NICs round-robin.
    """

    __slots__ = ("rt", "node_id", "nics")

    def __init__(self, rt: "RuntimeSystem", node_id: int, nics) -> None:
        self.rt = rt
        self.node_id = node_id
        self.nics = list(nics)

    @property
    def nic(self) -> "Nic":
        """The node's first NIC (single-NIC shorthand)."""
        return self.nics[0]

    def nic_for_process(self, pid: int) -> "Nic":
        """The NIC serving process ``pid`` (round-robin mapping)."""
        local = pid - self.rt.machine.processes_of_node(self.node_id).start
        return self.nics[local % len(self.nics)]

    @property
    def processes(self) -> range:
        """Global process ids hosted on this node."""
        return self.rt.machine.processes_of_node(self.node_id)

    @property
    def workers(self) -> range:
        """Global worker ids hosted on this node."""
        return self.rt.machine.workers_of_node(self.node_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.node_id}>"
