"""Quiescence accounting.

The engine's natural notion of quiescence is event-queue exhaustion; the
:class:`QDCounter` adds an *application-level* check: every produced item
must eventually be consumed. Applications create one counter, tick it on
item creation/consumption, and assert :attr:`balanced` after the run —
this is how the test suite catches lost or duplicated deliveries.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QuiescenceError


@dataclass
class QDCounter:
    """Produced/consumed item accounting.

    Raises :class:`~repro.errors.QuiescenceError` immediately if
    consumption ever exceeds production (duplicate delivery).
    """

    produced: int = 0
    consumed: int = 0

    def produce(self, n: int = 1) -> None:
        """Record ``n`` items entering the system."""
        if n < 0:
            raise QuiescenceError(f"cannot produce {n} items")
        self.produced += n

    def consume(self, n: int = 1) -> None:
        """Record ``n`` items delivered to the application."""
        if n < 0:
            raise QuiescenceError(f"cannot consume {n} items")
        self.consumed += n
        if self.consumed > self.produced:
            raise QuiescenceError(
                f"consumed {self.consumed} > produced {self.produced}: "
                "duplicate delivery detected"
            )

    @property
    def balanced(self) -> bool:
        """Whether every produced item has been consumed."""
        return self.produced == self.consumed

    @property
    def outstanding(self) -> int:
        """Items produced but not yet consumed."""
        return self.produced - self.consumed

    def require_balanced(self) -> None:
        """Raise unless all items were delivered."""
        if not self.balanced:
            raise QuiescenceError(
                f"quiescence reached with {self.outstanding} undelivered "
                f"item(s) ({self.consumed}/{self.produced})"
            )
