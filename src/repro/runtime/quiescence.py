"""Quiescence accounting.

The engine's natural notion of quiescence is event-queue exhaustion; the
:class:`QDCounter` adds an *application-level* check: every produced item
must eventually be consumed. Applications create one counter, tick it on
item creation/consumption, and assert :attr:`balanced` after the run —
this is how the test suite catches lost or duplicated deliveries.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QuiescenceError


@dataclass
class QDCounter:
    """Produced/consumed/lost item accounting.

    Raises :class:`~repro.errors.QuiescenceError` immediately if
    consumption (plus acknowledged loss) ever exceeds production
    (duplicate delivery).

    ``lost`` is only ever non-zero on fault-injected runs: the fault
    fabric and the reliability layer report unrecoverable losses through
    :meth:`note_lost` (see ``RuntimeSystem.wire_loss_accounting``), so a
    degraded run still terminates with honest books instead of waiting
    forever for items that can no longer arrive.
    """

    produced: int = 0
    consumed: int = 0
    lost: int = 0
    #: Whether over-consumption raises immediately. A PDES child
    #: partition (:mod:`repro.sim.parallel`) clears this: it only sees
    #: its own nodes' produces, so locally consumed > produced is
    #: normal there — the merged parent counter re-checks globally.
    strict: bool = True

    def produce(self, n: int = 1) -> None:
        """Record ``n`` items entering the system."""
        if n < 0:
            raise QuiescenceError(f"cannot produce {n} items")
        self.produced += n

    def consume(self, n: int = 1) -> None:
        """Record ``n`` items delivered to the application."""
        if n < 0:
            raise QuiescenceError(f"cannot consume {n} items")
        self.consumed += n
        if self.strict and self.consumed + self.lost > self.produced:
            raise QuiescenceError(
                f"consumed {self.consumed} + lost {self.lost} > produced "
                f"{self.produced}: duplicate delivery detected"
            )

    def note_lost(self, n: int = 1) -> None:
        """Record ``n`` items destroyed by faults, never to be delivered."""
        if n < 0:
            raise QuiescenceError(f"cannot lose {n} items")
        self.lost += n
        if self.strict and self.consumed + self.lost > self.produced:
            raise QuiescenceError(
                f"consumed {self.consumed} + lost {self.lost} > produced "
                f"{self.produced}: loss double-counted with a delivery"
            )

    @property
    def balanced(self) -> bool:
        """Whether every produced item was consumed or acknowledged lost."""
        return self.produced == self.consumed + self.lost

    @property
    def outstanding(self) -> int:
        """Items produced but neither consumed nor acknowledged lost."""
        return self.produced - self.consumed - self.lost

    def require_balanced(self) -> None:
        """Raise unless all items were delivered (or acknowledged lost)."""
        if not self.balanced:
            raise QuiescenceError(
                f"quiescence reached with {self.outstanding} undelivered "
                f"item(s) ({self.consumed} consumed + {self.lost} lost "
                f"/ {self.produced} produced)"
            )
