"""Worker PE: a message-driven server bound to one core.

Each worker owns two task lanes — *expedited* (TramLib messages, per the
paper's use of Charm++ expedited methods) and *normal* — and processes
one task at a time. When both lanes drain, the worker fires its idle
hooks; TramLib registers an idle-flush hook there so partially filled
buffers are pushed out when the PE has nothing better to do.

If the cost model's ``os_noise_factor`` is non-zero, the first worker of
every process runs that much slower, modelling the unshielded core that
absorbs OS daemons and GPU callbacks (§III-A).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Deque, List, Tuple

from repro.faults.injector import _payload_items
from repro.runtime.context import ExecContext

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.message import NetMessage
    from repro.runtime.system import RuntimeSystem


def _task_items(fn: Callable, args: tuple) -> Tuple[int, int]:
    """(application items, network messages) a queued task represents.

    Used by the crash fabric to account work drained from a dead
    worker's lanes. Message-handler tasks carry their message's payload
    count; scheme section tasks advertise where their count lives via a
    ``_crash_drain_items`` function attribute (see
    ``repro.tram.schemes.base``); everything else (drivers, flushes)
    carries no undelivered items — buffered work is drained separately.
    """
    if fn is Worker._run_message_handler:
        return _payload_items(args[1]), 1
    tag = getattr(getattr(fn, "__func__", fn), "_crash_drain_items", None)
    if tag == "list":
        return len(args[0]), 0
    if tag == "count":
        return int(args[0]), 0
    return 0, 0


@dataclass
class WorkerStats:
    """Per-PE execution counters."""

    tasks_executed: int = 0
    busy_ns: float = 0.0
    idle_transitions: int = 0
    messages_received: int = 0
    #: Bytes of received messages whose handler has not yet run — the
    #: PE-side queue occupancy byte-based credit schemes read.
    queued_bytes: int = 0
    queued_bytes_hwm: int = 0


class Worker:
    """One processing element (PE).

    Parameters
    ----------
    rt:
        The owning runtime system.
    wid:
        Global worker id.
    """

    __slots__ = (
        "rt",
        "wid",
        "stats",
        "idle_hooks",
        "task_hook",
        "_normal",
        "_expedited",
        "_busy",
        "_noise_mult",
        "dead",
    )

    def __init__(self, rt: "RuntimeSystem", wid: int) -> None:
        self.rt = rt
        self.wid = wid
        self.stats = WorkerStats()
        #: Callables ``hook(worker)`` invoked when the PE goes idle.
        self.idle_hooks: List[Callable[["Worker"], None]] = []
        #: Optional ``hook(worker, fn, ctx)`` called after each executed
        #: task (used by :mod:`repro.util.timeline` for trace export).
        self.task_hook = None
        self._normal: Deque[Tuple[Callable[..., Any], tuple]] = deque()
        self._expedited: Deque[Tuple[Callable[..., Any], tuple]] = deque()
        self._busy = False
        #: Set by the crash fabric when the owning process dies; a dead
        #: worker accepts no work and counts whatever reaches it as
        #: lost-to-crash.
        self.dead = False
        noise = rt.costs.os_noise_factor
        is_noisy = noise > 0 and rt.machine.local_rank_of_worker(wid) == 0
        self._noise_mult = 1.0 + noise if is_noisy else 1.0

    # ------------------------------------------------------------------
    # Posting work
    # ------------------------------------------------------------------
    def post_task(
        self, fn: Callable[..., Any], *args: Any, expedited: bool = False
    ) -> None:
        """Queue a task ``fn(ctx, *args)``; start it if the PE is idle."""
        if self.dead:
            # Post-accept rule: work handed to a dead PE was already
            # retired by its producer, so it is counted unconditionally.
            items, messages = _task_items(fn, args)
            faults = self.rt.faults
            if faults is not None:
                faults.note_crash_items(items, messages)
            return
        lane = self._expedited if expedited else self._normal
        lane.append((fn, args))
        if not self._busy:
            self._start_next()

    def deliver_message(self, msg: "NetMessage", extra_charge_ns: float = 0.0) -> None:
        """Queue the handler task for an arriving network message.

        ``extra_charge_ns`` is charged before the handler runs — used in
        non-SMP mode where the worker pays its own receive progress cost.
        """
        if self.dead:
            # The message was accepted (and acked, if protected) before
            # reaching the PE queue — its sender has retired it, so the
            # crash ledger must absorb it here unconditionally.
            faults = self.rt.faults
            if faults is not None:
                faults.note_crash_items(_payload_items(msg), 1)
            return
        stats = self.stats
        stats.messages_received += 1
        stats.queued_bytes += msg.size_bytes
        if stats.queued_bytes > stats.queued_bytes_hwm:
            stats.queued_bytes_hwm = stats.queued_bytes
        span = msg.span
        if span is not None:
            span.pe_arrival = self.rt.engine.now
        tracer = self.rt.engine.tracer
        if tracer is not None and tracer.wants("msg"):
            tracer.record(
                "msg", hop="recv", wid=self.wid, msg_id=msg.msg_id,
                t=self.rt.engine.now,
            )
        handler = self.rt.handler_for(msg.kind)
        self.post_task(
            self._run_message_handler,
            handler,
            msg,
            extra_charge_ns,
            expedited=msg.expedited,
        )

    @staticmethod
    def _run_message_handler(
        ctx: ExecContext, handler: Callable, msg: "NetMessage", extra_charge_ns: float
    ) -> None:
        ctx.worker.stats.queued_bytes -= msg.size_bytes
        if extra_charge_ns:
            ctx.charge(extra_charge_ns)
        handler(ctx, msg)

    # ------------------------------------------------------------------
    # Server loop
    # ------------------------------------------------------------------
    def _pop(self):
        if self._expedited:
            return self._expedited.popleft()
        if self._normal:
            return self._normal.popleft()
        return None

    def _start_next(self) -> None:
        if self.dead:
            # An in-flight task's completion event may still fire after
            # the crash; swallow it without idle-hook side effects.
            self._busy = False
            return
        task = self._pop()
        if task is None:
            was_busy = self._busy
            self._busy = False
            if was_busy:
                self.stats.idle_transitions += 1
                self._run_idle_hooks()
            return
        self._busy = True
        engine = self.rt.engine
        ctx = ExecContext(self, engine.now)
        fn, args = task
        fn(ctx, *args)
        cost = ctx.cost * self._noise_mult
        finish = engine.now + cost
        for delay, efn, eargs in ctx._emissions:
            engine.call_at(finish + delay, efn, eargs)
        self.stats.tasks_executed += 1
        self.stats.busy_ns += cost
        if self.task_hook is not None:
            self.task_hook(self, fn, ctx)
        engine.call_at(finish, self._on_finish)

    def _on_finish(self) -> None:
        # _start_next observes _busy=True and either starts the next task
        # or records the busy->idle transition (firing idle hooks).
        self._start_next()

    def _run_idle_hooks(self) -> None:
        for hook in self.idle_hooks:
            hook(self)
            if self._busy:
                return

    # ------------------------------------------------------------------
    # Crash fabric
    # ------------------------------------------------------------------
    def on_process_crashed(self) -> None:
        """Kill this PE: drain both lanes into the crash-loss ledger."""
        if self.dead:
            return
        self.dead = True
        items = 0
        messages = 0
        for lane in (self._expedited, self._normal):
            for fn, args in lane:
                n, m = _task_items(fn, args)
                items += n
                messages += m
            lane.clear()
        self.stats.queued_bytes = 0
        faults = self.rt.faults
        if faults is not None:
            faults.note_crash_items(items, messages)

    def on_process_restarted(self) -> None:
        """Revive the PE with empty lanes; lost work stays lost."""
        self.dead = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def busy(self) -> bool:
        """Whether the PE is currently executing a task."""
        return self._busy

    @property
    def queued(self) -> int:
        """Tasks waiting in both lanes."""
        return len(self._normal) + len(self._expedited)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Worker {self.wid} busy={self._busy} queued={self.queued}>"
