"""OS process: a group of worker PEs sharing an address space.

In SMP mode a process additionally owns a comm thread and a shared-state
dictionary — the simulated shared heap in which the PP scheme keeps its
process-level aggregation buffers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.commthread import CommThread
    from repro.runtime.system import RuntimeSystem


class Process:
    """One OS process on a node.

    Attributes
    ----------
    pid:
        Global process id.
    shared:
        The process's shared heap: arbitrary keyed state visible to all
        of its workers (used by PP buffers and by tests).
    commthread:
        The dedicated comm thread, or ``None`` in non-SMP mode.
    """

    __slots__ = (
        "rt", "pid", "shared", "commthread", "receiver_policy", "_rr", "alive"
    )

    def __init__(self, rt: "RuntimeSystem", pid: int) -> None:
        self.rt = rt
        self.pid = pid
        self.shared: Dict[Any, Any] = {}
        self.commthread: Optional["CommThread"] = None
        #: "round_robin" (default) spreads process-addressed messages
        #: over the PEs; "fixed" pins them to the first PE (a dedicated
        #: receiver chare) — an ablation knob for receive-side hotspots.
        self.receiver_policy = "round_robin"
        self._rr = 0
        #: Cleared when the crash fabric kills this process (see
        #: ``RuntimeSystem._crash_process``); authoritative liveness is
        #: ``rt.dead_procs``, this mirror is for cheap local checks.
        self.alive = True

    @property
    def node_id(self) -> int:
        """Physical node hosting this process."""
        return self.rt.machine.node_of_process(self.pid)

    @property
    def workers(self) -> range:
        """Global worker ids belonging to this process."""
        return self.rt.machine.workers_of_process(self.pid)

    def next_receiver(self) -> int:
        """Pick the PE that will handle the next process-addressed message.

        Under the default ``round_robin`` policy receive-side grouping
        work (WPs/PP destination sort) is spread over the process's PEs
        rather than hot-spotted on one; ``fixed`` pins it to the first
        PE, modelling a single dedicated receiver chare. The paper's
        TramLib receiver chare plays this role.
        """
        workers = self.rt.machine.workers_of_process(self.pid)
        if self.receiver_policy == "fixed":
            return workers[0]
        wid = workers[self._rr % len(workers)]
        self._rr += 1
        return wid

    def all_workers_idle(self) -> bool:
        """Whether every PE of this process is idle with empty queues."""
        for wid in self.workers:
            w = self.rt.worker(wid)
            if w.busy or w.queued:
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.pid} node={self.node_id}>"
