"""Message routing across the three locality classes.

Given a :class:`~repro.network.message.NetMessage` released by a worker,
the transport picks the path the paper's runtime would take:

* **intra-process** — shared-memory delivery straight into the
  destination PE's queue (no comm thread, no NIC);
* **intra-node, inter-process** — through both comm threads (SMP) over
  the cheap ``alpha_intra`` transport, bypassing the NIC;
* **inter-node** — source comm thread → source NIC (tx serialization) →
  wire (``alpha_inter`` + ``bytes * beta``) → destination NIC (rx
  serialization) → destination comm thread → destination PE.

In non-SMP mode there are no comm threads: the *sender charged its own
send-progress cost* inside its handler (the schemes do this), and the
receiver pays ``nonsmp_recv`` before its handler runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict

from repro.errors import DeliveryError
from repro.network.message import NetMessage, Route

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.system import RuntimeSystem


@dataclass
class TransportStats:
    """Message/byte counters per route class."""

    messages: Dict[Route, int] = field(
        default_factory=lambda: {r: 0 for r in Route}
    )
    bytes: Dict[Route, int] = field(default_factory=lambda: {r: 0 for r in Route})

    def record(self, route: Route, size_bytes: int) -> None:
        self.messages[route] += 1
        self.bytes[route] += size_bytes

    @property
    def total_messages(self) -> int:
        return sum(self.messages.values())

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes.values())

    def export(self) -> dict:
        """Plain-dict counter snapshot (picklable across partitions)."""
        return {
            "messages": {r.value: n for r, n in self.messages.items()},
            "bytes": {r.value: n for r, n in self.bytes.items()},
        }

    def absorb_delta(self, after: dict, before: dict) -> None:
        """Fold a child partition's counter delta into this instance."""
        for r in Route:
            self.messages[r] += after["messages"][r.value] - before["messages"][r.value]
            self.bytes[r] += after["bytes"][r.value] - before["bytes"][r.value]


class Transport:
    """Routes released messages to their destination PE."""

    __slots__ = ("rt", "stats")

    def __init__(self, rt: "RuntimeSystem") -> None:
        self.rt = rt
        self.stats = TransportStats()

    # ------------------------------------------------------------------
    # Entry point (called as a deferred emission at task completion)
    # ------------------------------------------------------------------
    def send(self, msg: NetMessage) -> None:
        """Release ``msg`` from its source worker at the current time."""
        rt = self.rt
        machine = rt.machine
        msg.send_time = rt.engine.now
        src_process = machine.process_of_worker(msg.src_worker)
        dp = rt.dead_procs
        if dp and src_process in dp:
            # Emission from a task that was in flight when its process
            # crashed: the message never reaches the wire. Reached before
            # reliability stamps a seq, so the copy is unprotected and
            # counts here.
            rt.faults.note_crash_destroyed(msg)
            return
        if not 0 <= msg.dst_process < machine.total_processes:
            raise DeliveryError(f"bad destination process {msg.dst_process}")
        if msg.dst_worker is not None and not (
            0 <= msg.dst_worker < machine.total_workers
        ):
            raise DeliveryError(f"bad destination worker {msg.dst_worker}")
        route = self._classify(src_process, msg.dst_process)
        self.stats.record(route, msg.size_bytes)
        rel = rt.reliable
        if rel is not None:
            rel.on_send(msg, src_process, route)
        tracer = rt.engine.tracer
        if tracer is not None and tracer.wants("msg"):
            tracer.record(
                "msg", hop="send", wid=msg.src_worker, msg_id=msg.msg_id,
                t=rt.engine.now, dst_process=msg.dst_process,
                size=msg.size_bytes, route=route.value,
            )

        if route is Route.INTRA_PROCESS:
            self._deliver_local(msg)
        elif machine.smp:
            ct = rt.process(src_process).commthread
            assert ct is not None
            if rt.flow is None:
                ct.submit_outbound(msg)
            else:
                rt.flow.submit_ct(ct, msg)
        else:
            # Non-SMP: the worker already charged its own send service;
            # the message proceeds directly to the NIC / intra transport.
            self._after_send_side(msg, src_process)

    # ------------------------------------------------------------------
    # Route segments
    # ------------------------------------------------------------------
    def _classify(self, src_process: int, dst_process: int) -> Route:
        machine = self.rt.machine
        if src_process == dst_process:
            return Route.INTRA_PROCESS
        if machine.node_of_process(src_process) == machine.node_of_process(
            dst_process
        ):
            return Route.INTRA_NODE
        return Route.INTER_NODE

    def _deliver_local(self, msg: NetMessage) -> None:
        """Shared-memory delivery within the source process."""
        rt = self.rt
        wid = msg.dst_worker
        if wid is None:
            wid = rt.process(msg.dst_process).next_receiver()
        rt.engine.call_after(
            rt.costs.enqueue_ns, rt.worker(wid).deliver_message, (msg,)
        )

    def after_commthread_out(self, msg: NetMessage) -> None:
        """Next hop once the source comm thread finished send service."""
        src_process = self.rt.machine.process_of_worker(msg.src_worker)
        self._after_send_side(msg, src_process)

    def _after_send_side(self, msg: NetMessage, src_process: int) -> None:
        rt = self.rt
        machine = rt.machine
        src_node = machine.node_of_process(src_process)
        dst_node = machine.node_of_process(msg.dst_process)
        if src_node == dst_node:
            # Intra-node inter-process: cheap shared-memory transport,
            # no NIC involvement.
            if msg.span is not None:
                msg.span.wire_ns += rt.costs.alpha_intra_ns
            rt.engine.call_after(
                rt.costs.alpha_intra_ns, self._arrive_at_process, (msg,)
            )
        else:
            src_nic = rt.node(src_node).nic_for_process(src_process)
            dst_nic = rt.node(dst_node).nic_for_process(msg.dst_process)
            latency = rt.fabric.latency_between_nodes(src_node, dst_node)
            if rt.flow is None:
                src_nic.inject(msg, dst_nic, latency)
            else:
                rt.flow.submit_nic(src_nic, msg, dst_nic, latency)

    def on_nic_arrival(self, msg: NetMessage) -> None:
        """Sink installed on every NIC: message finished rx serialization."""
        self._arrive_at_process(msg)

    def _arrive_at_process(self, msg: NetMessage) -> None:
        rt = self.rt
        dp = rt.dead_procs
        if dp and msg.dst_process in dp:
            # Dead endpoint: the copy is destroyed before any protocol
            # acceptance. Protected copies stay pending at their sender
            # (no ack will come) and are accounted by the reliability
            # teardown; unprotected ones count here.
            rt.faults.note_crash_destroyed(msg)
            return
        if rt.machine.smp:
            ct = rt.process(msg.dst_process).commthread
            assert ct is not None
            ct.submit_inbound(msg)
        else:
            if rt.reliable is not None or rt.faults is not None:
                if not self.accept_inbound(msg, msg.dst_process):
                    return
            wid = msg.dst_worker
            if wid is None:
                wid = rt.process(msg.dst_process).next_receiver()
            recv_charge = rt.costs.nonsmp_recv_service_ns(msg.size_bytes)
            rt.worker(wid).deliver_message(msg, extra_charge_ns=recv_charge)

    def accept_inbound(self, msg: NetMessage, dst_process: int) -> bool:
        """Arrival-side protocol check; False means discard the copy.

        With a reliability layer, the full dedup/checksum/ack machinery
        runs; with faults alone, corrupt copies are destroyed here (and
        counted as unprotected losses). Only called when one of the two
        is active.
        """
        rel = self.rt.reliable
        if rel is not None:
            return rel.accept_inbound(msg, dst_process)
        if not msg.checksum_ok:
            faults = self.rt.faults
            if faults is not None:
                faults.note_destroyed(msg)
            return False
        return True
