"""The runtime facade: one object wiring the whole simulated machine.

Typical use::

    from repro.machine import delta_machine, delta_costs
    from repro.runtime import RuntimeSystem

    rt = RuntimeSystem(delta_machine(nodes=2), delta_costs(), seed=1)
    rt.register_handler("hello", lambda ctx, msg: print(msg.payload))
    rt.post(0, my_driver_task)
    stats = rt.run()

Running to event-queue exhaustion is quiescence: applications are
structured (one-shot conditional flush timers, idle-flush hooks) so that
a finished run drains naturally.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.errors import ConfigError, DeliveryError
from repro.faults.context import active_fault_session
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.flow.config import FlowConfig
from repro.flow.context import active_flow_session
from repro.flow.controller import FlowController
from repro.machine.costs import CostModel
from repro.machine.topology import MachineConfig
from repro.network.fabric import Fabric
from repro.network.nic import Nic
from repro.obs.config import ObsConfig, active_session
from repro.obs.timeline import TimelineRecorder
from repro.runtime.commthread import CommThread
from repro.runtime.node import Node
from repro.runtime.proc import Process
from repro.runtime.reliability import ReliabilityConfig, ReliableDelivery
from repro.runtime.transport import Transport
from repro.runtime.worker import Worker
from repro.sim.engine import Engine, RunStats
from repro.sim.parallel import PdesConfig, active_pdes_session
from repro.sim.rng import RngStreams
from repro.sim.trace import Tracer


class RuntimeSystem:
    """A fully wired simulated cluster.

    Parameters
    ----------
    machine:
        Topology (nodes x processes x workers, SMP or not).
    costs:
        Cost model; defaults to the Delta-shaped preset.
    seed:
        Root seed for all named RNG streams.
    tracer:
        Optional tracer threaded into the engine.
    obs:
        Optional :class:`~repro.obs.config.ObsConfig` enabling
        stage-attributed latency spans. Defaults to the config of the
        active :class:`~repro.obs.config.ObsSession`, if any; otherwise
        instrumentation is off.
    faults:
        Optional :class:`~repro.faults.FaultPlan`. Defaults to the plan
        of the active :class:`~repro.faults.FaultSession`, if any; with
        neither (or a no-op plan) the transport is fault-free and pays
        one ``is None`` check per hop.
    reliability:
        Optional :class:`~repro.runtime.reliability.ReliabilityConfig`
        enabling the ack/retransmit layer. Defaults to the active fault
        session's config (enabled under a session, so faulty runs still
        deliver exactly once); ``None`` otherwise.
    flow:
        Optional :class:`~repro.flow.FlowConfig` enabling credit-based
        flow control and overload protection. Defaults to the config of
        the active :class:`~repro.flow.FlowSession`, if any; with
        neither (or a disabled config) the pipeline is unbounded and
        pays one ``is None`` check per message.
    """

    def __init__(
        self,
        machine: MachineConfig,
        costs: Optional[CostModel] = None,
        seed: int = 0,
        tracer: Optional[Tracer] = None,
        obs: Optional[ObsConfig] = None,
        faults: Optional[FaultPlan] = None,
        reliability: Optional[ReliabilityConfig] = None,
        flow: Optional[FlowConfig] = None,
    ) -> None:
        session = active_session()
        if obs is None and session is not None:
            obs = session.config
        self.obs = obs
        #: Whether schemes should attach spans / stage histograms.
        self.obs_enabled = obs is not None and obs.enabled
        self._obs_session = session if self.obs_enabled else None
        #: Scheme instances attached to this runtime (self-registered by
        #: SchemeBase; drives per-scheme metrics and snapshots).
        self.schemes: List[Any] = []
        self.machine = machine
        self.costs = costs if costs is not None else CostModel()
        self.engine = Engine(tracer=tracer)
        if machine.nodes > 1:
            # Partition-stable seq allocation (one owner per simulated
            # node). Single-node machines keep the plain global counter,
            # bit-identical to the pre-PDES engine.
            self.engine.configure_owners(machine.nodes)

        pdes_session = active_pdes_session()
        #: Partitioned-run request (:class:`repro.sim.parallel.PdesConfig`)
        #: picked up from the ambient session, or ``None``.
        self.pdes: Optional[PdesConfig] = (
            pdes_session.config if pdes_session is not None else None
        )
        #: Filled by :meth:`run` when a PDES config is active: a
        #: :class:`repro.sim.parallel.PdesRunInfo` describing either the
        #: partitioned execution or the sequential fallback reason.
        self.pdes_info: Optional[Any] = None
        #: Driver-side state registered via :meth:`pdes_share`.
        self._pdes_states: List[tuple] = []
        self._pdes_ready = False
        #: Node ids simulated locally when this runtime is a PDES child
        #: partition; ``None`` everywhere else.
        self._pdes_local_nodes: Optional[frozenset] = None
        if self.pdes is not None and self.pdes.record_fires:
            self.engine.fire_log = []

        self.rng = RngStreams(seed)
        self.fabric = Fabric(machine, self.costs)
        self.transport = Transport(self)
        self._handlers: Dict[str, Callable] = {}

        fault_session = active_fault_session()
        plan = faults
        if plan is None and fault_session is not None:
            plan = fault_session.plan
        if plan is not None and plan.is_noop():
            plan = None
        #: Fault injector, or ``None`` (the default, zero-cost case).
        self.faults: Optional[FaultInjector] = (
            FaultInjector(plan=plan, rng=self.rng.stream("faults"))
            if plan is not None
            else None
        )
        #: Crash fabric: ``None`` when no plan kills processes (the
        #: hot-path check is ``dp = rt.dead_procs; if dp and pid in dp``,
        #: false for both ``None`` and the empty set); a live set of
        #: currently-dead process ids otherwise.
        self.dead_procs: Optional[set] = None
        rel_cfg = reliability
        if rel_cfg is None and fault_session is not None:
            rel_cfg = fault_session.reliability
        #: Reliable-delivery layer, or ``None`` (the default).
        self.reliable: Optional[ReliableDelivery] = (
            ReliableDelivery(self, rel_cfg)
            if rel_cfg is not None and rel_cfg.enabled
            else None
        )

        self._workers = [Worker(self, w) for w in range(machine.total_workers)]
        self._processes = [Process(self, p) for p in range(machine.total_processes)]
        self._nodes = []
        for n in range(machine.nodes):
            nics = []
            for _ in range(machine.nics_per_node):
                nic = Nic(engine=self.engine, costs=self.costs, node_id=n)
                nic.sink = self.transport.on_nic_arrival
                nic.faults = self.faults
                nics.append(nic)
            self._nodes.append(Node(self, n, nics))
        if machine.smp:
            for proc in self._processes:
                ct = CommThread(self, proc.pid)
                ct.on_outbound_done = self.transport.after_commthread_out
                proc.commthread = ct

        flow_session = active_flow_session()
        flow_cfg = flow
        if flow_cfg is None and flow_session is not None:
            flow_cfg = flow_session.config
        if flow_cfg is not None and not flow_cfg.enabled:
            flow_cfg = None
        #: Flow controller, or ``None`` (the default, zero-cost case).
        #: Built after nodes/comm threads so its gates can attach.
        self.flow: Optional[FlowController] = (
            FlowController(self, flow_cfg) if flow_cfg is not None else None
        )

        #: Flight recorder, or ``None`` (the default). Built last so its
        #: probes see every component, and installed as the engine's
        #: boundary sampler (which routes ``run()`` through the sampled
        #: loop; without it the sampler-free hot path is untouched).
        tl_cfg = obs.timeline if obs is not None else None
        if tl_cfg is not None and not tl_cfg.enabled:
            tl_cfg = None
        self.timeline: Optional[TimelineRecorder] = (
            TimelineRecorder(self, tl_cfg) if tl_cfg is not None else None
        )
        if self.timeline is not None:
            self.engine.sampler = self.timeline

        # Crash fabric, armed only when the plan actually kills someone:
        # seeded victims draw from a *dedicated* RNG stream so wire-dice
        # placement is untouched, and a crash-free plan schedules zero
        # events (pre-crash-fabric runs stay byte-identical).
        if self.faults is not None and plan.has_crashes():
            self.faults.crash_rng = self.rng.stream("proc-faults")
            self.dead_procs = set()
            for t, kind, pid in self.faults.crash_schedule(
                machine.total_processes
            ):
                if not 0 <= pid < machine.total_processes:
                    raise ConfigError(
                        f"scripted {kind} targets process {pid}, but the "
                        f"machine has {machine.total_processes} processes"
                    )
                fn = (
                    self._crash_process if kind == "crash"
                    else self._restart_process
                )
                self.engine.call_at(t, fn, (pid,))

    # ------------------------------------------------------------------
    # Component access
    # ------------------------------------------------------------------
    def worker(self, wid: int) -> Worker:
        """The worker PE with global id ``wid``."""
        return self._workers[wid]

    def process(self, pid: int) -> Process:
        """The process with global id ``pid``."""
        return self._processes[pid]

    def node(self, node_id: int) -> Node:
        """The physical node ``node_id``."""
        return self._nodes[node_id]

    @property
    def workers(self):
        """All worker PEs, indexed by global id."""
        return self._workers

    @property
    def processes(self):
        """All processes, indexed by global id."""
        return self._processes

    @property
    def nodes(self):
        """All physical nodes."""
        return self._nodes

    # ------------------------------------------------------------------
    # Handler registry
    # ------------------------------------------------------------------
    def register_handler(
        self, kind: str, fn: Callable, *, overwrite: bool = False
    ) -> None:
        """Register ``fn(ctx, msg)`` for messages of ``kind``."""
        if not overwrite and kind in self._handlers:
            raise ConfigError(f"handler for kind {kind!r} already registered")
        self._handlers[kind] = fn

    def handler_for(self, kind: str) -> Callable:
        """Look up the handler for a message kind."""
        try:
            return self._handlers[kind]
        except KeyError:
            raise DeliveryError(f"no handler registered for kind {kind!r}") from None

    # ------------------------------------------------------------------
    # Fault/reliability plumbing
    # ------------------------------------------------------------------
    def wire_loss_accounting(self, qd: Any) -> None:
        """Route unrecoverable message loss into quiescence accounting.

        ``qd`` is anything with a ``note_lost(n)`` method (a
        :class:`~repro.runtime.quiescence.QDCounter`). No-op on a
        fault-free, reliability-free runtime, so applications can call
        it unconditionally.
        """
        def _on_loss(msg: Any, items: int) -> None:
            if items:
                qd.note_lost(items)

        if self.faults is not None:
            self.faults.on_loss = _on_loss
        if self.reliable is not None:
            self.reliable.on_loss = _on_loss
        if self.flow is not None:
            self.flow.on_loss = _on_loss

    # ------------------------------------------------------------------
    # Crash fabric
    # ------------------------------------------------------------------
    def _crash_process(self, pid: int) -> None:
        """Kill process ``pid`` at the current simulated time.

        Everything the process holds dies with it: its workers stop
        scheduling and their queued tasks are drained into the crash
        ledger, its buffered aggregation items are lost, the reliability
        layer tears down its outbound channels (its protocol state is
        gone), and the flow controller releases credits/parked FIFOs it
        held. Traffic *towards* the dead process is dropped and
        accounted at each arrival site.
        """
        dp = self.dead_procs
        if dp is None or pid in dp:
            return
        dp.add(pid)
        proc = self._processes[pid]
        proc.alive = False
        self.faults.stats.proc_crashes += 1
        for wid in self.machine.workers_of_process(pid):
            self._workers[wid].on_process_crashed()
        for scheme in self.schemes:
            scheme.on_process_crashed(pid)
        if self.reliable is not None:
            self.reliable.on_process_crashed(pid)
        if self.flow is not None:
            self.flow.on_process_crashed(pid)

    def _restart_process(self, pid: int) -> None:
        """Revive process ``pid`` with a fresh (empty) state.

        The simulator's shortcut through membership renegotiation (cf.
        the sparse dynamic data exchange of arXiv:2308.13869): the
        restart is announced to every subsystem at once — reliability
        channels reset towards the fresh peer, schemes fail back from
        direct-fallback routing, and the process resumes scheduling.
        Work lost in the crash stays lost (and stays accounted).
        """
        dp = self.dead_procs
        if dp is None or pid not in dp:
            return
        dp.discard(pid)
        self._processes[pid].alive = True
        self.faults.stats.proc_restarts += 1
        for wid in self.machine.workers_of_process(pid):
            self._workers[wid].on_process_restarted()
        if self.reliable is not None:
            self.reliable.on_process_restarted(pid)
        for scheme in self.schemes:
            scheme.on_peer_restarted(pid)

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def post(
        self,
        worker_id: int,
        fn: Callable,
        *args: Any,
        delay: float = 0.0,
        expedited: bool = False,
    ) -> None:
        """Schedule task ``fn(ctx, *args)`` on a worker, now or later.

        On multi-node machines the bootstrap event is allocated under
        the target worker's node owner, so a partitioned run draws the
        identical seq the sequential engine would.
        """
        worker = self._workers[worker_id]
        eng = self.engine
        if eng._owner_mod:
            node = self.machine.node_of_worker(worker_id)
            owned = self._pdes_local_nodes
            if owned is not None and node not in owned:
                raise DeliveryError(
                    f"rt.post to node {node} from a partition that owns "
                    f"{sorted(owned)}: mid-run cross-node posts have no "
                    "wire lookahead and cannot run partitioned — route "
                    "cross-worker traffic through the transport instead"
                )
            prev = eng.current_owner
            eng.current_owner = node
            try:
                eng.after(delay, self._post_now, worker, fn, args, expedited)
            finally:
                eng.current_owner = prev
        else:
            eng.after(delay, self._post_now, worker, fn, args, expedited)

    @staticmethod
    def _post_now(worker: Worker, fn: Callable, args: tuple, expedited: bool) -> None:
        worker.post_task(fn, *args, expedited=expedited)

    # ------------------------------------------------------------------
    # PDES partitioning hooks
    # ------------------------------------------------------------------
    def pdes_share(self, obj: Any, *, merge: str = "sum") -> Any:
        """Register driver-side state a partitioned run must merge.

        ``merge`` picks the rule applied when child partitions return:

        * ``"sum"`` — numeric deltas are folded in fixed partition
          order: plain int/float attributes of an object (e.g. a
          :class:`~repro.runtime.quiescence.QDCounter`), or a numpy
          array summed elementwise.
        * ``"worker"`` — a list or 1-D array indexed by global worker
          id; each element is taken from the partition owning that
          worker's node.

        Registering anything also marks the app *pdes-ready*: a runtime
        whose driver never registered (or called :meth:`pdes_ready`)
        falls back to sequential execution, because the coordinator
        would have no way to reassemble the driver's state. Returns
        ``obj`` so registration can wrap construction.
        """
        if merge not in ("sum", "worker"):
            raise ConfigError(f"unknown pdes merge rule {merge!r}")
        self._pdes_states.append((obj, merge))
        self._pdes_ready = True
        return obj

    def pdes_ready(self) -> None:
        """Mark the app safe to partition with no driver state to merge."""
        self._pdes_ready = True

    def run(
        self, *, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> RunStats:
        """Run the engine (to quiescence by default).

        With an active :class:`~repro.sim.parallel.PdesSession` and an
        eligible configuration, the run is sharded by simulated node
        across worker processes (:func:`repro.sim.parallel.run_partitioned`)
        and the merged result — including every artifact-visible counter
        — is canonical-byte-identical to the sequential path.
        """
        if self.pdes is not None and self._pdes_local_nodes is None:
            from repro.sim.parallel import run_partitioned

            stats = run_partitioned(self, until=until, max_events=max_events)
        else:
            stats = self.engine.run(until=until, max_events=max_events)
        if self._obs_session is not None:
            self._obs_session.update(self, stats)
        return stats

    @property
    def now(self) -> float:
        """Current simulated time (ns)."""
        return self.engine.now
