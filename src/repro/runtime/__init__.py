"""Charm++-like SMP runtime model.

The runtime realizes the paper's execution environment:

* **Worker PEs** (:class:`~repro.runtime.worker.Worker`) — message-driven
  servers with a normal and an *expedited* task lane (TramLib messages
  are expedited, per the paper) and idle-detection hooks (used for idle
  flushing).
* **Comm threads** (:class:`~repro.runtime.commthread.CommThread`) — one
  dedicated per process in SMP mode; a serializing FIFO server through
  which all of a process's network traffic passes (the §III-A
  bottleneck).
* **Transport** (:class:`~repro.runtime.transport.Transport`) — routes
  messages along the right path: intra-process (shared memory,
  comm-thread-free), intra-node inter-process, or inter-node through the
  NICs.
* **RuntimeSystem** (:class:`~repro.runtime.system.RuntimeSystem`) — the
  facade gluing machine config, cost model, engine, RNG, and the above.
"""

from repro.runtime.chare import Chare
from repro.runtime.commthread import CommThread
from repro.runtime.context import ExecContext
from repro.runtime.node import Node
from repro.runtime.proc import Process
from repro.runtime.qd_protocol import QuiescenceDetector
from repro.runtime.quiescence import QDCounter
from repro.runtime.reliability import (
    ReliabilityConfig,
    ReliabilityStats,
    ReliableDelivery,
)
from repro.runtime.system import RuntimeSystem
from repro.runtime.transport import Transport, TransportStats
from repro.runtime.worker import Worker, WorkerStats

__all__ = [
    "Chare",
    "CommThread",
    "ExecContext",
    "Node",
    "Process",
    "QDCounter",
    "QuiescenceDetector",
    "ReliabilityConfig",
    "ReliabilityStats",
    "ReliableDelivery",
    "RuntimeSystem",
    "Transport",
    "TransportStats",
    "Worker",
    "WorkerStats",
]
