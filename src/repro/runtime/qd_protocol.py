"""Distributed quiescence detection (Charm++-style two-wave protocol).

The applications in this repository normally rely on the simulator's
global view (event-queue exhaustion) for termination. Real Charm++
programs cannot: they run a *distributed* protocol — repeated waves in
which every process reports its produced/consumed message counts to a
coordinator, and quiescence is declared only after **two consecutive
waves** observe equal, unchanged totals (one wave is not enough: a
message can be in flight between a consumer's report and a producer's).

This module implements that protocol *inside* the simulation: poll and
reply messages are ordinary :class:`~repro.network.message.NetMessage`s
that pay comm-thread/NIC/wire costs like any application traffic, so
the detection *latency* and *overhead* are measurable — and the tests
verify the classic safety/liveness pair: never declare early, always
declare eventually.

Usage::

    qd = QuiescenceDetector(rt, on_quiescence=lambda t: ...)
    # inside application handlers:
    qd.note_produced(ctx)     # when creating an item
    qd.note_consumed(ctx)     # when finally handling one
    qd.start()                # arm the coordinator (worker 0)
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Callable, Optional

from repro.errors import ConfigError
from repro.network.message import NetMessage

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.context import ExecContext
    from repro.runtime.system import RuntimeSystem

_ids = itertools.count()


class QuiescenceDetector:
    """Two-wave distributed termination detection.

    Parameters
    ----------
    rt:
        The runtime to attach to.
    on_quiescence:
        ``fn(sim_time_ns)`` invoked exactly once, on the coordinator PE,
        when quiescence is confirmed.
    poll_interval_ns:
        Gap between detection waves.
    """

    #: Counter-report message size (two 8-byte counters + header).
    REPLY_BYTES = 16
    #: Fault-mode liveness knobs: a wave whose replies do not all arrive
    #: within ``WATCHDOG_FACTOR`` poll intervals counts as stalled, and
    #: after ``STRIKE_LIMIT`` stalled waves — or as many consecutive
    #: complete waves stuck on identical unbalanced totals — quiescence
    #: is declared *degraded* instead of hanging forever. Only armed
    #: when the runtime has a fault plan.
    WATCHDOG_FACTOR = 10.0
    STRIKE_LIMIT = 5

    def __init__(
        self,
        rt: "RuntimeSystem",
        on_quiescence: Callable[[float], None],
        poll_interval_ns: float = 50_000.0,
    ) -> None:
        if poll_interval_ns <= 0:
            raise ConfigError("poll_interval_ns must be positive")
        self.rt = rt
        self.on_quiescence = on_quiescence
        self.poll_interval_ns = poll_interval_ns
        machine = rt.machine
        #: Per-worker local counters (shared-memory reads within a
        #: process are free; only the protocol messages pay costs).
        self._produced = [0] * machine.total_workers
        self._consumed = [0] * machine.total_workers
        self._ns = f"qd/{next(_ids)}"
        rt.register_handler(self._ns + ".poll", self._on_poll)
        rt.register_handler(self._ns + ".reply", self._on_reply)
        # Coordinator state (lives on worker 0's process, conceptually).
        self._wave = 0
        self._pending_replies = 0
        self._wave_produced = 0
        self._wave_consumed = 0
        self._last_totals: Optional[tuple] = None
        self._done = False
        self._started = False
        #: Protocol overhead counters (for the curious).
        self.waves_run = 0
        self.messages_sent = 0
        #: Set when quiescence was declared by the fault-mode fallback
        #: (loss or a stuck channel) rather than clean balanced waves.
        self.degraded = False
        self._lost = 0
        self._watchdog = None
        self._stall_strikes = 0
        self._unbalanced_strikes = 0
        self._last_any_totals: Optional[tuple] = None

    # ------------------------------------------------------------------
    # Application-side accounting
    # ------------------------------------------------------------------
    def note_produced(self, ctx: "ExecContext", n: int = 1) -> None:
        """Record ``n`` application messages/items created."""
        self._produced[ctx.worker.wid] += n

    def note_consumed(self, ctx: "ExecContext", n: int = 1) -> None:
        """Record ``n`` application messages/items fully handled."""
        self._consumed[ctx.worker.wid] += n

    def note_lost(self, n: int = 1) -> None:
        """Record ``n`` items destroyed by faults, never to be consumed.

        Fed by ``RuntimeSystem.wire_loss_accounting``; the loss total
        joins the balance test so a lossy run converges to a *degraded*
        quiescence verdict instead of never balancing. (Kept as one
        coordinator-side counter — a simulation shortcut; the per-process
        counters only carry produced/consumed like the real protocol.)
        """
        self._lost += n

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the coordinator; the first wave fires one interval out."""
        if self._started:
            raise ConfigError("detector already started")
        self._started = True
        self.rt.engine.timer_after(self.poll_interval_ns, self._begin_wave)

    def _begin_wave(self) -> None:
        if self._done:
            return
        self._wave += 1
        self.waves_run += 1
        machine = self.rt.machine
        self._pending_replies = machine.total_processes
        self._wave_produced = 0
        self._wave_consumed = 0
        dp = self.rt.dead_procs
        if dp:
            # Dead participants cannot reply; fold their last-known
            # counters into the wave totals coordinator-side (simulation
            # shortcut — a real protocol would have the membership layer
            # supply the final reports) so the wave still completes. The
            # counters froze at crash time: dead workers schedule
            # nothing.
            for pid in dp:
                self._pending_replies -= 1
                for w in machine.workers_of_process(pid):
                    self._wave_produced += self._produced[w]
                    self._wave_consumed += self._consumed[w]
        # The coordinator task runs on worker 0 and polls every process
        # (including its own, uniformly, so costs are symmetric).
        self.rt.post(0, self._send_polls, expedited=True)
        if self.rt.faults is not None:
            self._watchdog = self.rt.engine.timer_after(
                self.WATCHDOG_FACTOR * self.poll_interval_ns, self._on_watchdog
            )

    def _on_watchdog(self) -> None:
        """A wave's replies did not all arrive in time (lost to faults)."""
        self._watchdog = None
        if self._done:
            return
        self._stall_strikes += 1
        if self._stall_strikes >= self.STRIKE_LIMIT:
            self._declare_degraded(self.rt.engine.now)
            return
        self._begin_wave()

    def _declare_degraded(self, t: float) -> None:
        self._done = True
        self.degraded = True
        self.on_quiescence(t)

    def _send_polls(self, ctx: "ExecContext") -> None:
        costs = self.rt.costs
        dp = self.rt.dead_procs
        for pid in range(self.rt.machine.total_processes):
            if dp and pid in dp:
                continue  # folded into the wave totals at _begin_wave
            msg = NetMessage(
                kind=self._ns + ".poll",
                src_worker=ctx.worker.wid,
                dst_process=pid,
                size_bytes=costs.message_bytes(1, 8),
                payload=self._wave,
            )
            ctx.charge(costs.pack_msg_ns)
            if not self.rt.machine.smp:
                ctx.charge(costs.nonsmp_send_service_ns(msg.size_bytes))
            self.messages_sent += 1
            ctx.emit(self.rt.transport.send, msg)

    def _on_poll(self, ctx: "ExecContext", msg: NetMessage) -> None:
        """Any PE of the polled process sums its process's counters."""
        machine = self.rt.machine
        pid = machine.process_of_worker(ctx.worker.wid)
        workers = machine.workers_of_process(pid)
        # Shared-memory reads of t counters.
        ctx.charge(machine.workers_per_process * 10.0)
        produced = sum(self._produced[w] for w in workers)
        consumed = sum(self._consumed[w] for w in workers)
        reply = NetMessage(
            kind=self._ns + ".reply",
            src_worker=ctx.worker.wid,
            dst_process=machine.process_of_worker(0),
            dst_worker=0,
            size_bytes=self.rt.costs.message_bytes(1, self.REPLY_BYTES),
            payload=(msg.payload, produced, consumed),
        )
        ctx.charge(self.rt.costs.pack_msg_ns)
        if not machine.smp:
            ctx.charge(self.rt.costs.nonsmp_send_service_ns(reply.size_bytes))
        self.messages_sent += 1
        ctx.emit(self.rt.transport.send, reply)

    def _on_reply(self, ctx: "ExecContext", msg: NetMessage) -> None:
        wave, produced, consumed = msg.payload
        if wave != self._wave or self._done:
            return  # stale reply from a superseded wave
        self._wave_produced += produced
        self._wave_consumed += consumed
        self._pending_replies -= 1
        if self._pending_replies:
            return
        faulty = self.rt.faults is not None
        if faulty:
            if self._watchdog is not None:
                self.rt.engine.cancel(self._watchdog)
                self._watchdog = None
            self._stall_strikes = 0
            # Acknowledged losses join the balance: a degraded run's
            # books close at produced == consumed + lost.
            totals = (self._wave_produced, self._wave_consumed, self._lost)
            balanced = totals[0] == totals[1] + totals[2]
        else:
            totals = (self._wave_produced, self._wave_consumed)
            balanced = totals[0] == totals[1]
        if balanced and self._last_totals == totals:
            # Second consecutive identical, balanced observation.
            self._done = True
            if self.rt.dead_procs:
                # The books close, but participants died along the way:
                # the verdict is degraded, not clean.
                self.degraded = True
            self.on_quiescence(ctx.now)
            return
        if faulty:
            # Complete waves stuck on the same unbalanced totals mean
            # items vanished without a loss report (e.g. loss accounting
            # not wired): declare a degraded quiescence rather than
            # polling forever.
            if not balanced and self._last_any_totals == totals:
                self._unbalanced_strikes += 1
                if self._unbalanced_strikes >= self.STRIKE_LIMIT:
                    self._declare_degraded(ctx.now)
                    return
            else:
                self._unbalanced_strikes = 0
            self._last_any_totals = totals
        self._last_totals = totals if balanced else None
        self.rt.engine.timer_after(self.poll_interval_ns, self._begin_wave)

    # ------------------------------------------------------------------
    @property
    def detected(self) -> bool:
        """Whether quiescence has been declared."""
        return self._done
