"""The dedicated communication thread of an SMP process.

Charm++ SMP mode devotes one core per process to a comm thread through
which *all* of that process's network sends and receives pass. For
fine-grained traffic this thread is the serializing bottleneck the paper
dissects in §III-A (PingAck): with ``t`` workers feeding one comm
thread, send-side service time ``comm_msg_ns + bytes * comm_byte_ns``
per message bounds throughput, which is why using more processes per
node (more comm threads) recovers performance.

Modelled as a single work-conserving FIFO server via the virtual-clock
technique (see :mod:`repro.network.nic`); both directions share the one
core, which is exactly the contended resource.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.errors import SimulationError
from repro.network.message import NetMessage

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.system import RuntimeSystem


@dataclass
class CommThreadStats:
    """Counters for one comm thread."""

    out_messages: int = 0
    in_messages: int = 0
    busy_ns: float = 0.0
    queue_wait_ns: float = 0.0
    #: High-water mark of the server's booked-ahead horizon: the worst
    #: backlog any single message observed on admission. Overload is
    #: visible here even with flow control off.
    max_backlog_ns: float = 0.0


class CommThread:
    """One process's dedicated communication server.

    Parameters
    ----------
    rt:
        Owning runtime.
    pid:
        Global process id this comm thread serves.
    """

    __slots__ = ("rt", "pid", "stats", "_free", "on_outbound_done")

    def __init__(self, rt: "RuntimeSystem", pid: int) -> None:
        self.rt = rt
        self.pid = pid
        self.stats = CommThreadStats()
        self._free = 0.0
        #: Installed by the transport: next hop after send-side service.
        self.on_outbound_done: Optional[Callable[[NetMessage], None]] = None

    def _serve(self, msg: NetMessage, hop: str) -> float:
        """Book one message through the FIFO server; return finish time."""
        now = self.rt.engine.now
        service = self.rt.costs.comm_service_ns(msg.size_bytes)
        start = self._free if self._free > now else now
        faults = self.rt.faults
        if faults is not None:
            # A scripted ct_stall window freezes the server: service may
            # not begin before the window closes. The wait lands in the
            # queue-wait accounting (and the ct_queue span stage), so the
            # stage-partition identity is unaffected.
            stall_until = faults.ct_stall_until(self.pid, now)
            if stall_until > start:
                faults.stats.ct_stall_ns += stall_until - start
                start = stall_until
        self.stats.queue_wait_ns += start - now
        self._free = start + service
        self.stats.busy_ns += service
        backlog = self._free - now
        if backlog > self.stats.max_backlog_ns:
            self.stats.max_backlog_ns = backlog
        span = msg.span
        if span is not None:
            span.ct_queue_ns += start - now
            span.ct_service_ns += service
        tracer = self.rt.engine.tracer
        if tracer is not None and tracer.wants("msg"):
            tracer.record(
                "msg", hop=hop, pid=self.pid, msg_id=msg.msg_id,
                start=start, dur=service,
            )
        return self._free

    def submit_outbound(self, msg: NetMessage) -> None:
        """A worker handed a message to send; forward it after service."""
        if self.on_outbound_done is None:
            raise SimulationError(f"comm thread {self.pid}: no outbound hop installed")
        dp = self.rt.dead_procs
        if dp and self.pid in dp:
            # A flow-control release (or late emission) can still hand
            # work to a dead process's comm thread; it dies with it.
            self.rt.faults.note_crash_destroyed(msg)
            return
        self.stats.out_messages += 1
        done = self._serve(msg, "ct_out")
        self.rt.engine.call_at(done, self.on_outbound_done, (msg,))

    def submit_inbound(self, msg: NetMessage) -> None:
        """A message arrived for this process; deliver after service."""
        self.stats.in_messages += 1
        done = self._serve(msg, "ct_in")
        self.rt.engine.call_at(done, self._deliver, (msg,))

    def _deliver(self, msg: NetMessage) -> None:
        rt = self.rt
        dp = rt.dead_procs
        if dp and self.pid in dp:
            # The message was booked through the server before the crash
            # landed; it must not be acked from a dead process.
            rt.faults.note_crash_destroyed(msg)
            return
        if rt.reliable is not None or rt.faults is not None:
            if not rt.transport.accept_inbound(msg, self.pid):
                return
        wid = msg.dst_worker
        if wid is None:
            wid = rt.process(self.pid).next_receiver()
        worker = rt.worker(wid)
        # Small enqueue hop from the comm thread into the PE's queue.
        rt.engine.call_after(rt.costs.enqueue_ns, worker.deliver_message, (msg,))

    @property
    def backlog_ns(self) -> float:
        """How far this server is booked beyond 'now'."""
        now = self.rt.engine.now
        return max(0.0, self._free - now)
