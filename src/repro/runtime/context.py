"""Execution context passed to every task handler.

Execution model
---------------
A handler runs *logically* at the simulated time its task starts. While
running it accumulates CPU cost via :meth:`ExecContext.charge`; the
worker stays busy until ``start + total cost``, and everything the
handler *emits* (sends, follow-up events) is released at that completion
time. This "charge-and-defer" model keeps handlers plain Python while
preserving exact server semantics (a PE processes one task at a time and
its outputs appear when the task finishes).

The one approximation: state mutations inside a handler take effect at
task *start* rather than spread across its duration. All schemes are
modelled identically, so relative comparisons are unaffected.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, List, Tuple

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.worker import Worker


class ExecContext:
    """Per-task accumulator of CPU cost and deferred emissions.

    Attributes
    ----------
    worker:
        The PE executing the task.
    start:
        Simulated time the task started (== ``now`` for handlers).
    cost:
        CPU nanoseconds charged so far.
    """

    __slots__ = ("worker", "start", "cost", "_emissions")

    def __init__(self, worker: "Worker", start: float) -> None:
        self.worker = worker
        self.start = start
        self.cost = 0.0
        self._emissions: List[Tuple[float, Callable[..., Any], tuple]] = []

    @property
    def now(self) -> float:
        """Logical time of the handler (task start time)."""
        return self.start

    @property
    def rt(self):
        """The owning :class:`~repro.runtime.system.RuntimeSystem`."""
        return self.worker.rt

    def charge(self, ns: float) -> None:
        """Consume ``ns`` nanoseconds of this PE's CPU."""
        if ns < 0:
            raise SimulationError(f"negative charge {ns}")
        self.cost += ns

    def emit(self, fn: Callable[..., Any], *args: Any, delay: float = 0.0) -> None:
        """Schedule ``fn(*args)`` at task completion (+ optional delay).

        This is how handlers send messages: the transport's ``send`` is
        emitted so the message leaves the PE exactly when the CPU work
        that produced it finishes.
        """
        if delay < 0:
            raise SimulationError(f"negative emission delay {delay}")
        self._emissions.append((delay, fn, args))

    def post_local(
        self, fn: Callable[..., Any], *args: Any, expedited: bool = False
    ) -> None:
        """Queue another task on this same PE at completion time."""
        self.emit(self.worker.post_task, fn, *args, **{})
        # post_task takes keyword 'expedited'; emit passes positionally,
        # so wrap when expedited delivery is requested.
        if expedited:
            self._emissions.pop()
            self.emit(self._post_expedited, fn, args)

    def _post_expedited(self, fn: Callable[..., Any], args: tuple) -> None:
        self.worker.post_task(fn, *args, expedited=True)
