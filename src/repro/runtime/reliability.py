"""Reliable delivery over the faulty inter-node wire.

When a runtime is built with a :class:`ReliabilityConfig`, every
inter-node data message is wrapped in a lightweight go-back-N-with-SACK
protocol, per directed process pair:

* the sender stamps a per-channel sequence number and keeps the message
  pending under a timeout-driven retransmit timer (exponential backoff,
  bounded retry budget);
* the receiver verifies the fault fabric's checksum bit, discards
  duplicates through a bounded dedup window, and acknowledges with
  delayed cumulative acks + selective acks — piggybacked on
  reverse-direction data when any is about to leave, as a real RTS
  would, or sent as small dedicated ``rel.ack`` control messages
  otherwise;
* a corrupt arrival triggers an immediate nack so retransmission does
  not wait out the full timeout.

Retransmitted copies travel the full transport path again and carry a
*fresh* span whose ``retransmit_ns`` records the wait since the first
transmission, so stage-attributed latency keeps partitioning exactly
(see :mod:`repro.obs.spans`).

When a message exhausts its retry budget the channel **degrades**: all
of its pending messages are abandoned (counted, reported through
``on_loss`` so quiescence accounting stays honest) and subsequent
traffic on the channel travels raw, while the aggregation schemes are
told to fall back to direct sends for that destination (see
``SchemeBase.on_destination_degraded``). With ``degrade=False`` the
budget trip raises :class:`~repro.errors.RetryExhaustedError` instead.

Control traffic (acks) is itself unprotected — a lost ack is repaired by
the data timeout, never by acking acks.

When the crash fabric is armed (``rt.dead_procs`` is not ``None``),
budget exhaustion is interpreted as *suspicion of peer death* instead of
an immediate channel trip: the sender sends an expedited ``rel.probe``
and retries it a few times. A probe reply (or any other traffic from the
suspect) clears the suspicion and the channel degrades exactly as it
would without the fabric; silence confirms the death, and every channel
towards the dead peer is torn down at once — pending messages are split
against receiver ground truth into unconfirmed deliveries and true
crash losses, torn-down sequence numbers are stale-marked so late
copies cannot double-deliver, and the aggregation schemes are told to
fail over routing around the dead peer (``on_peer_dead``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Set, Tuple

from repro.errors import ConfigError, RetryExhaustedError
from repro.faults.injector import _payload_items
from repro.network.message import NetMessage, Route
from repro.obs.spans import MsgSpan

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.system import RuntimeSystem

#: Message kind of dedicated ack/nack control messages.
ACK_KIND = "rel.ack"

#: Message kind of peer-liveness probes (and their replies).
PROBE_KIND = "rel.probe"

#: Kinds that are never themselves protected: acks repair through the
#: data timeout, probes through their own retry loop.
CONTROL_KINDS = frozenset({ACK_KIND, PROBE_KIND})


@dataclass(frozen=True)
class ReliabilityConfig:
    """Knobs of the reliable-delivery layer.

    Parameters
    ----------
    enabled:
        Master switch; a disabled config is equivalent to no config.
    retransmit_timeout_ns:
        Base retransmit timeout (first retry). Should comfortably exceed
        one round trip including comm-thread/NIC queueing.
    backoff_factor:
        Multiplier applied to the timeout per retry (exponential
        backoff).
    max_retries:
        Retry budget per message; exceeding it degrades the channel (or
        raises, with ``degrade=False``).
    ack_delay_ns:
        Cumulative-ack delay: how long the receiver waits for more
        arrivals (or a reverse-direction data message to piggyback on)
        before sending a dedicated ack.
    dedup_window:
        Receiver-side reorder tolerance in sequence numbers; copies
        arriving further than this ahead of the cumulative point are
        discarded and recovered by retransmission.
    degrade:
        On budget exhaustion, fall back to unprotected direct traffic
        (the default) instead of raising
        :class:`~repro.errors.RetryExhaustedError`.
    probe_timeout_ns:
        How long a peer-death suspicion waits for a ``rel.probe`` reply
        before retrying (crash fabric only).
    probe_retries:
        Extra probes sent after the first before silence confirms the
        peer dead (crash fabric only).
    """

    enabled: bool = True
    retransmit_timeout_ns: float = 50_000.0
    backoff_factor: float = 2.0
    max_retries: int = 5
    ack_delay_ns: float = 3_000.0
    dedup_window: int = 1024
    degrade: bool = True
    probe_timeout_ns: float = 100_000.0
    probe_retries: int = 2

    def __post_init__(self) -> None:
        if self.retransmit_timeout_ns <= 0:
            raise ConfigError(
                f"retransmit_timeout_ns must be positive, got "
                f"{self.retransmit_timeout_ns}"
            )
        if self.backoff_factor < 1.0:
            raise ConfigError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.max_retries < 1:
            raise ConfigError(f"max_retries must be >= 1, got {self.max_retries}")
        if self.ack_delay_ns < 0:
            raise ConfigError(f"ack_delay_ns must be >= 0, got {self.ack_delay_ns}")
        if self.dedup_window < 1:
            raise ConfigError(f"dedup_window must be >= 1, got {self.dedup_window}")
        if self.probe_timeout_ns <= 0:
            raise ConfigError(
                f"probe_timeout_ns must be positive, got {self.probe_timeout_ns}"
            )
        if self.probe_retries < 0:
            raise ConfigError(
                f"probe_retries must be >= 0, got {self.probe_retries}"
            )


@dataclass
class ReliabilityStats:
    """Protocol counters across all channels of one runtime."""

    protected_messages: int = 0
    retransmits: int = 0
    acks_sent: int = 0
    acks_piggybacked: int = 0
    nacks_sent: int = 0
    duplicates_discarded: int = 0
    corrupt_discarded: int = 0
    window_overflow_discards: int = 0
    channels_degraded: int = 0
    messages_abandoned: int = 0
    items_abandoned: int = 0
    #: Pending messages that had in fact been delivered when their
    #: channel degraded — only the acknowledgement was lost. A real
    #: sender cannot tell these from true losses (two generals); the
    #: simulator consults receiver ground truth so loss accounting stays
    #: exact.
    messages_unconfirmed: int = 0
    #: Late-arriving copies of messages their channel had already
    #: written off at degrade time, discarded at the receiver.
    stale_discarded: int = 0
    #: Crash-fabric detection: suspicions opened on budget exhaustion,
    #: suspicions cleared by probe replies / fresh traffic, probes sent,
    #: peers whose death was confirmed by silence, and channels torn
    #: down because their peer died.
    peers_suspected: int = 0
    suspicions_cleared: int = 0
    probes_sent: int = 0
    peers_confirmed_dead: int = 0
    channels_torn_down: int = 0

    def to_dict(self) -> dict:
        return {
            "protected_messages": self.protected_messages,
            "retransmits": self.retransmits,
            "acks_sent": self.acks_sent,
            "acks_piggybacked": self.acks_piggybacked,
            "nacks_sent": self.nacks_sent,
            "duplicates_discarded": self.duplicates_discarded,
            "corrupt_discarded": self.corrupt_discarded,
            "window_overflow_discards": self.window_overflow_discards,
            "channels_degraded": self.channels_degraded,
            "messages_abandoned": self.messages_abandoned,
            "items_abandoned": self.items_abandoned,
            "messages_unconfirmed": self.messages_unconfirmed,
            "stale_discarded": self.stale_discarded,
        }

    def crash_to_dict(self) -> dict:
        """Suspicion-protocol counters, merged into snapshots only when
        the crash fabric is armed (crash-free artifacts stay
        byte-identical)."""
        return {
            "peers_suspected": self.peers_suspected,
            "suspicions_cleared": self.suspicions_cleared,
            "probes_sent": self.probes_sent,
            "peers_confirmed_dead": self.peers_confirmed_dead,
            "channels_torn_down": self.channels_torn_down,
        }


@dataclass
class _AckPayload:
    """Content of a dedicated or piggybacked ack.

    ``count`` is 0 so fault-loss accounting sees no items in control
    traffic.
    """

    acker: int
    cum: int
    sacks: Tuple[int, ...]
    nack: Optional[int] = None

    @property
    def count(self) -> int:
        return 0


@dataclass
class _ProbePayload:
    """Content of a liveness probe or its reply (``count`` is 0)."""

    origin: int
    reply: bool = False

    @property
    def count(self) -> int:
        return 0


@dataclass
class _Suspicion:
    """Open question about one peer's liveness.

    Keyed by the suspected pid; every channel whose budget trips while
    the suspicion is open registers here so one verdict settles all of
    them.
    """

    prober: int
    probes_left: int
    channels: Set[Tuple[int, int]] = field(default_factory=set)
    timer: Optional[Any] = None


@dataclass
class _Pending:
    """Sender-side state of one unacked message."""

    msg: NetMessage
    first_send_time: float
    attempt: int = 0
    timer: Optional[Any] = None


@dataclass
class _TxChannel:
    """Sender side of one directed process pair."""

    next_seq: int = 0
    pending: Dict[int, _Pending] = field(default_factory=dict)
    degraded: bool = False
    #: Sequence numbers written off when the channel degraded. Copies of
    #: these may still be in flight; the receiver discards them on
    #: arrival (a real protocol would carry a channel epoch for this) so
    #: an item is never both counted lost and delivered. Bounded: filled
    #: once, at degrade time.
    stale: Set[int] = field(default_factory=set)


@dataclass
class _RxState:
    """Receiver side of one directed process pair."""

    cum: int = -1
    seen: Set[int] = field(default_factory=set)
    ack_timer: Optional[Any] = None


class ReliableDelivery:
    """Per-runtime reliable-delivery protocol engine.

    Installed as ``rt.reliable`` when the runtime is built with an
    enabled :class:`ReliabilityConfig`; ``None`` otherwise, so the
    default hot path pays one ``is None`` check per send/arrival.
    """

    __slots__ = (
        "rt", "config", "stats", "on_loss", "_tx", "_rx",
        "_suspicions", "_confirmed_dead",
    )

    def __init__(self, rt: "RuntimeSystem", config: ReliabilityConfig) -> None:
        self.rt = rt
        self.config = config
        self.stats = ReliabilityStats()
        #: Called as ``fn(msg, items)`` for each abandoned message when a
        #: channel degrades; apps hook this (like the fault injector's
        #: ``on_loss``) to keep quiescence accounting loss-aware.
        self.on_loss: Optional[Callable[[NetMessage, int], None]] = None
        self._tx: Dict[Tuple[int, int], _TxChannel] = {}
        self._rx: Dict[Tuple[int, int], _RxState] = {}
        #: Open liveness questions, keyed by suspected pid.
        self._suspicions: Dict[int, _Suspicion] = {}
        #: Peers whose death silence has confirmed.
        self._confirmed_dead: Set[int] = set()
        rt.register_handler(ACK_KIND, self._on_ack_msg)
        rt.register_handler(PROBE_KIND, self._on_probe_msg)

    # ------------------------------------------------------------------
    # Send path (called from Transport.send)
    # ------------------------------------------------------------------
    def on_send(self, msg: NetMessage, src_process: int, route: Route) -> None:
        """Stamp an outgoing message into its channel, if protectable.

        Only inter-node data is protected: the intra-node shared-memory
        transport is lossless (the fault fabric never touches it), and
        acks protect themselves through the data timeout.
        """
        if msg.seq is not None:
            # A retransmitted copy re-entering the transport: already
            # stamped and pending; just refresh its piggyback chance.
            self._maybe_piggyback(msg, src_process)
            return
        if route is not Route.INTER_NODE or msg.kind in CONTROL_KINDS:
            return
        ch = self._tx_channel(src_process, msg.dst_process)
        if ch.degraded:
            return
        msg.seq = ch.next_seq
        msg.rel_src = src_process
        ch.next_seq += 1
        self.stats.protected_messages += 1
        self._maybe_piggyback(msg, src_process)
        entry = _Pending(msg=msg, first_send_time=self.rt.engine.now)
        ch.pending[msg.seq] = entry
        # Timer-wheel timeout: retransmit timers are almost always
        # cancelled by the ack before they fire.
        entry.timer = self.rt.engine.timer_after(
            self.config.retransmit_timeout_ns,
            self._on_timeout,
            src_process,
            msg.dst_process,
            msg.seq,
        )

    def _maybe_piggyback(self, msg: NetMessage, src_process: int) -> None:
        """Fold a due ack for ``msg.dst_process`` onto this data message."""
        rx = self._rx.get((src_process, msg.dst_process))
        if rx is None or rx.ack_timer is None:
            return
        self.rt.engine.cancel(rx.ack_timer)
        rx.ack_timer = None
        msg.piggyback_ack = (src_process, rx.cum, tuple(sorted(rx.seen)))
        self.stats.acks_piggybacked += 1

    # ------------------------------------------------------------------
    # Receive path (called at the destination process, before delivery)
    # ------------------------------------------------------------------
    def accept_inbound(self, msg: NetMessage, dst_process: int) -> bool:
        """Protocol processing on arrival; False means discard the copy."""
        pig = msg.piggyback_ack
        if pig is not None:
            acker, cum, sacks = pig
            self._process_ack(dst_process, acker, cum, sacks, None)
        if not msg.checksum_ok:
            if msg.seq is not None:
                self.stats.corrupt_discarded += 1
                self._send_ack(dst_process, msg.rel_src, nack=msg.seq)
            else:
                faults = self.rt.faults
                if faults is not None:
                    faults.note_destroyed(msg)
            return False
        if msg.seq is None:
            return True
        if self._suspicions and msg.rel_src in self._suspicions:
            # Data from a suspected peer is proof of life.
            self._clear_suspicion(msg.rel_src)
        seq = msg.seq
        ch = self._tx.get((msg.rel_src, dst_process))
        if ch is not None and seq in ch.stale:
            # A late copy of a message its channel already wrote off at
            # degrade time; delivering it now would double-count the item
            # as both lost and delivered.
            self.stats.stale_discarded += 1
            return False
        rx = self._rx_state(dst_process, msg.rel_src)
        if seq <= rx.cum or seq in rx.seen:
            # Already delivered once: the ack must have been lost or is
            # still in flight; discard and re-ack.
            self.stats.duplicates_discarded += 1
            self._schedule_ack(dst_process, msg.rel_src)
            return False
        if seq > rx.cum + self.config.dedup_window:
            # Too far ahead to track; recovered by retransmission once
            # the cumulative point advances.
            self.stats.window_overflow_discards += 1
            return False
        rx.seen.add(seq)
        while (rx.cum + 1) in rx.seen:
            rx.cum += 1
            rx.seen.discard(rx.cum)
        self._schedule_ack(dst_process, msg.rel_src)
        return True

    # ------------------------------------------------------------------
    # Acks
    # ------------------------------------------------------------------
    def _schedule_ack(self, pid: int, peer: int) -> None:
        rx = self._rx_state(pid, peer)
        if rx.ack_timer is None:
            rx.ack_timer = self.rt.engine.timer_after(
                self.config.ack_delay_ns, self._fire_ack, pid, peer
            )

    def _fire_ack(self, pid: int, peer: int) -> None:
        rx = self._rx_state(pid, peer)
        rx.ack_timer = None
        self._send_ack(pid, peer, nack=None)

    def _send_ack(self, pid: int, peer: int, nack: Optional[int]) -> None:
        """Emit a dedicated (unprotected) ack control message."""
        rx = self._rx_state(pid, peer)
        payload = _AckPayload(
            acker=pid, cum=rx.cum, sacks=tuple(sorted(rx.seen)), nack=nack
        )
        machine = self.rt.machine
        ack = NetMessage(
            kind=ACK_KIND,
            src_worker=machine.workers_of_process(pid)[0],
            dst_process=peer,
            size_bytes=self.rt.costs.header_bytes,
            payload=payload,
            expedited=True,
        )
        if nack is None:
            self.stats.acks_sent += 1
        else:
            self.stats.nacks_sent += 1
        self.rt.transport.send(ack)

    def _on_ack_msg(self, ctx: Any, msg: NetMessage) -> None:
        """Handler for dedicated ack messages (runs on a destination PE)."""
        p = msg.payload
        self._process_ack(msg.dst_process, p.acker, p.cum, p.sacks, p.nack)

    def _process_ack(
        self,
        src_pid: int,
        acker: int,
        cum: int,
        sacks: Tuple[int, ...],
        nack: Optional[int],
    ) -> None:
        """Retire pending messages of channel ``src_pid -> acker``."""
        if self._suspicions and acker in self._suspicions:
            # An ack from a suspected peer is proof of life.
            self._clear_suspicion(acker)
        ch = self._tx.get((src_pid, acker))
        if ch is None:
            return
        sack_set = set(sacks)
        acked = [s for s in ch.pending if s <= cum or s in sack_set]
        for seq in acked:
            entry = ch.pending.pop(seq)
            if entry.timer is not None:
                self.rt.engine.cancel(entry.timer)
        if nack is not None and nack in ch.pending:
            self._retransmit_now(src_pid, acker, nack)

    # ------------------------------------------------------------------
    # Retransmission
    # ------------------------------------------------------------------
    def _on_timeout(self, src: int, dst: int, seq: int) -> None:
        ch = self._tx.get((src, dst))
        entry = ch.pending.get(seq) if ch is not None else None
        if entry is None:
            return
        entry.timer = None
        self._retransmit_now(src, dst, seq)

    def _retransmit_now(self, src: int, dst: int, seq: int) -> None:
        ch = self._tx[(src, dst)]
        entry = ch.pending[seq]
        if entry.attempt >= self.config.max_retries:
            self._exhaust(src, dst, seq)
            return
        entry.attempt += 1
        self.stats.retransmits += 1
        if entry.timer is not None:
            self.rt.engine.cancel(entry.timer)
        copy = self._retransmit_copy(entry)
        self.rt.transport.send(copy)
        timeout = self.config.retransmit_timeout_ns * (
            self.config.backoff_factor ** entry.attempt
        )
        entry.timer = self.rt.engine.timer_after(
            timeout, self._on_timeout, src, dst, seq
        )

    def _retransmit_copy(self, entry: _Pending) -> NetMessage:
        """Fresh physical copy; the span restarts with the wait charged
        to the ``retransmit`` stage so the partition identity holds."""
        copy = entry.msg.wire_copy()
        copy.attempt = entry.attempt
        copy.checksum_ok = True
        copy.piggyback_ack = None
        if entry.msg.span is not None:
            span = MsgSpan(entry.msg.span.group_ns)
            span.retransmit_ns = self.rt.engine.now - entry.first_send_time
            copy.span = span
        return copy

    # ------------------------------------------------------------------
    # Degradation
    # ------------------------------------------------------------------
    def _exhaust(self, src: int, dst: int, seq: int) -> None:
        ch = self._tx[(src, dst)]
        entry = ch.pending[seq]
        if not self.config.degrade:
            raise RetryExhaustedError(
                f"message seq={seq} on channel {src}->{dst} undelivered after "
                f"{entry.attempt} retransmissions (attempt {entry.attempt + 1} "
                f"of {self.config.max_retries + 1})"
            )
        if self.rt.dead_procs is not None:
            # Crash fabric armed: exhaustion might mean the peer is dead
            # rather than the wire being hopeless. Hold the channel and
            # ask; the verdict either degrades it (peer alive) or tears
            # down every channel towards the peer (silence).
            self._suspect(src, dst)
            return
        self._degrade_channel(src, dst)

    def _degrade_channel(self, src: int, dst: int) -> None:
        """Trip channel ``src -> dst`` to unprotected direct traffic."""
        ch = self._tx[(src, dst)]
        if ch.degraded:
            return
        ch.degraded = True
        self.stats.channels_degraded += 1
        abandoned = sorted(ch.pending.items())
        ch.pending.clear()
        # Receiver ground truth: a pending seq at or below the receiver's
        # cumulative point (or in its sack set) was delivered — only its
        # ack died (e.g. the ack path runs through the faulty wire). A
        # real sender cannot make this distinction; the simulator uses it
        # so abandoned-loss accounting counts only true losses.
        rx = self._rx.get((dst, src))
        for s, e in abandoned:
            if e.timer is not None:
                self.rt.engine.cancel(e.timer)
            if rx is not None and (s <= rx.cum or s in rx.seen):
                self.stats.messages_unconfirmed += 1
                continue
            ch.stale.add(s)
            items = _payload_items(e.msg)
            self.stats.messages_abandoned += 1
            self.stats.items_abandoned += items
            if self.on_loss is not None:
                self.on_loss(e.msg, items)
        for scheme in self.rt.schemes:
            hook = getattr(scheme, "on_destination_degraded", None)
            if hook is not None:
                hook(src, dst)

    # ------------------------------------------------------------------
    # Peer-death suspicion (crash fabric only)
    # ------------------------------------------------------------------
    def _suspect(self, src: int, dst: int) -> None:
        """Channel ``src -> dst`` exhausted its budget; question ``dst``."""
        if dst in self._confirmed_dead:
            self._teardown_channel(src, dst)
            return
        s = self._suspicions.get(dst)
        if s is not None:
            s.channels.add((src, dst))
            return
        s = _Suspicion(prober=src, probes_left=self.config.probe_retries)
        s.channels.add((src, dst))
        self._suspicions[dst] = s
        self.stats.peers_suspected += 1
        self._send_probe(src, dst)
        s.timer = self.rt.engine.timer_after(
            self.config.probe_timeout_ns, self._on_probe_timeout, dst
        )

    def _send_probe(self, src: int, dst: int) -> None:
        machine = self.rt.machine
        probe = NetMessage(
            kind=PROBE_KIND,
            src_worker=machine.workers_of_process(src)[0],
            dst_process=dst,
            size_bytes=self.rt.costs.header_bytes,
            payload=_ProbePayload(origin=src),
            expedited=True,
        )
        self.stats.probes_sent += 1
        self.rt.transport.send(probe)

    def _on_probe_msg(self, ctx: Any, msg: NetMessage) -> None:
        """Handler for probes and probe replies (runs on a live PE)."""
        p = msg.payload
        here = msg.dst_process
        if p.reply:
            self._clear_suspicion(p.origin)
            return
        machine = self.rt.machine
        reply = NetMessage(
            kind=PROBE_KIND,
            src_worker=machine.workers_of_process(here)[0],
            dst_process=p.origin,
            size_bytes=self.rt.costs.header_bytes,
            payload=_ProbePayload(origin=here, reply=True),
            expedited=True,
        )
        self.rt.transport.send(reply)

    def _on_probe_timeout(self, dst: int) -> None:
        s = self._suspicions.get(dst)
        if s is None:
            return
        s.timer = None
        if s.probes_left > 0:
            s.probes_left -= 1
            self._send_probe(s.prober, dst)
            s.timer = self.rt.engine.timer_after(
                self.config.probe_timeout_ns, self._on_probe_timeout, dst
            )
            return
        self._confirm_dead(dst)

    def _clear_suspicion(self, peer: int) -> None:
        """Evidence of life: degrade the waiting channels the normal way."""
        s = self._suspicions.pop(peer, None)
        if s is None:
            return
        if s.timer is not None:
            self.rt.engine.cancel(s.timer)
        self.stats.suspicions_cleared += 1
        for src, dst in sorted(s.channels):
            self._degrade_channel(src, dst)

    def _confirm_dead(self, dst: int) -> None:
        """Silence confirmed: write off every channel towards ``dst``.

        The probes may all have died on an extremely lossy wire while
        the peer lives — the verdict can be wrong, but accounting stays
        exact either way: written-off sequence numbers are stale-marked,
        so a late delivery is discarded rather than double-counted.
        """
        s = self._suspicions.pop(dst, None)
        if s is not None and s.timer is not None:
            self.rt.engine.cancel(s.timer)
        self._confirmed_dead.add(dst)
        self.stats.peers_confirmed_dead += 1
        for src, d in sorted(self._tx):
            if d == dst:
                self._teardown_channel(src, d)
        for scheme in self.rt.schemes:
            hook = getattr(scheme, "on_peer_dead", None)
            if hook is not None:
                hook(dst)

    def _teardown_channel(self, src: int, dst: int) -> None:
        """Write off channel ``src -> dst`` against a dead peer.

        Like a degrade, but the surviving pending messages count as
        crash losses (the peer's protocol state died with it, so no ack
        will ever come). Receiver ground truth still splits deliveries
        whose ack was lost from true losses, so an item is never counted
        twice.
        """
        ch = self._tx.get((src, dst))
        if ch is None or ch.degraded:
            return
        ch.degraded = True
        self.stats.channels_torn_down += 1
        pending = sorted(ch.pending.items())
        ch.pending.clear()
        rx = self._rx.get((dst, src))
        lost_items = 0
        lost_msgs = 0
        for s, e in pending:
            if e.timer is not None:
                self.rt.engine.cancel(e.timer)
            if rx is not None and (s <= rx.cum or s in rx.seen):
                self.stats.messages_unconfirmed += 1
                continue
            ch.stale.add(s)
            lost_items += _payload_items(e.msg)
            lost_msgs += 1
        faults = self.rt.faults
        if faults is not None:
            faults.note_crash_items(lost_items, lost_msgs)

    # ------------------------------------------------------------------
    # Crash fabric notifications (from RuntimeSystem)
    # ------------------------------------------------------------------
    def on_process_crashed(self, pid: int) -> None:
        """Process ``pid`` died: its protocol state dies with it.

        Outbound channels are torn down (their pending messages can
        never be confirmed by a sender that no longer exists); the dead
        process's delayed-ack timers and open suspicions are cancelled
        so nothing fires on its behalf. Channels *towards* ``pid`` are
        deliberately left alone — the survivors must discover the death
        through the suspicion protocol.
        """
        for (src, dst) in sorted(self._tx):
            if src == pid:
                self._teardown_channel(src, dst)
        for (owner, peer), rx in self._rx.items():
            if owner == pid and rx.ack_timer is not None:
                self.rt.engine.cancel(rx.ack_timer)
                rx.ack_timer = None
        # Suspicions the dead process was probing on: pass the baton to
        # a surviving channel, or drop the question with the questioner.
        for dst in list(self._suspicions):
            s = self._suspicions[dst]
            s.channels = {c for c in s.channels if c[0] != pid}
            if s.prober == pid:
                survivors = sorted(c[0] for c in s.channels)
                if survivors:
                    s.prober = survivors[0]
                else:
                    if s.timer is not None:
                        self.rt.engine.cancel(s.timer)
                    del self._suspicions[dst]

    def on_process_restarted(self, pid: int) -> None:
        """Process ``pid`` came back: give its channels a fresh chance.

        Channels touching the restarted process un-degrade (sequence
        numbering stays monotone and stale sets are kept, so leftovers
        of the previous incarnation still cannot double-deliver); work
        lost in the crash stays lost.
        """
        self._confirmed_dead.discard(pid)
        for (src, dst), ch in self._tx.items():
            if src == pid or dst == pid:
                ch.degraded = False

    # ------------------------------------------------------------------
    # Introspection / state accessors
    # ------------------------------------------------------------------
    def _tx_channel(self, src: int, dst: int) -> _TxChannel:
        ch = self._tx.get((src, dst))
        if ch is None:
            ch = _TxChannel()
            self._tx[(src, dst)] = ch
        return ch

    def _rx_state(self, pid: int, peer: int) -> _RxState:
        rx = self._rx.get((pid, peer))
        if rx is None:
            rx = _RxState()
            self._rx[(pid, peer)] = rx
        return rx

    def is_degraded(self, src: int, dst: int) -> bool:
        """Whether channel ``src -> dst`` has fallen back to raw sends."""
        ch = self._tx.get((src, dst))
        return ch is not None and ch.degraded

    def is_confirmed_dead(self, pid: int) -> bool:
        """Whether the suspicion protocol has written ``pid`` off."""
        return pid in self._confirmed_dead

    def pending_count(self) -> int:
        """Unacked messages across all channels (for tests/diagnostics)."""
        return sum(len(ch.pending) for ch in self._tx.values())
