"""Reliable delivery over the faulty inter-node wire.

When a runtime is built with a :class:`ReliabilityConfig`, every
inter-node data message is wrapped in a lightweight go-back-N-with-SACK
protocol, per directed process pair:

* the sender stamps a per-channel sequence number and keeps the message
  pending under a timeout-driven retransmit timer (exponential backoff,
  bounded retry budget);
* the receiver verifies the fault fabric's checksum bit, discards
  duplicates through a bounded dedup window, and acknowledges with
  delayed cumulative acks + selective acks — piggybacked on
  reverse-direction data when any is about to leave, as a real RTS
  would, or sent as small dedicated ``rel.ack`` control messages
  otherwise;
* a corrupt arrival triggers an immediate nack so retransmission does
  not wait out the full timeout.

Retransmitted copies travel the full transport path again and carry a
*fresh* span whose ``retransmit_ns`` records the wait since the first
transmission, so stage-attributed latency keeps partitioning exactly
(see :mod:`repro.obs.spans`).

When a message exhausts its retry budget the channel **degrades**: all
of its pending messages are abandoned (counted, reported through
``on_loss`` so quiescence accounting stays honest) and subsequent
traffic on the channel travels raw, while the aggregation schemes are
told to fall back to direct sends for that destination (see
``SchemeBase.on_destination_degraded``). With ``degrade=False`` the
budget trip raises :class:`~repro.errors.RetryExhaustedError` instead.

Control traffic (acks) is itself unprotected — a lost ack is repaired by
the data timeout, never by acking acks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Set, Tuple

from repro.errors import ConfigError, RetryExhaustedError
from repro.network.message import NetMessage, Route
from repro.obs.spans import MsgSpan

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.system import RuntimeSystem

#: Message kind of dedicated ack/nack control messages.
ACK_KIND = "rel.ack"


@dataclass(frozen=True)
class ReliabilityConfig:
    """Knobs of the reliable-delivery layer.

    Parameters
    ----------
    enabled:
        Master switch; a disabled config is equivalent to no config.
    retransmit_timeout_ns:
        Base retransmit timeout (first retry). Should comfortably exceed
        one round trip including comm-thread/NIC queueing.
    backoff_factor:
        Multiplier applied to the timeout per retry (exponential
        backoff).
    max_retries:
        Retry budget per message; exceeding it degrades the channel (or
        raises, with ``degrade=False``).
    ack_delay_ns:
        Cumulative-ack delay: how long the receiver waits for more
        arrivals (or a reverse-direction data message to piggyback on)
        before sending a dedicated ack.
    dedup_window:
        Receiver-side reorder tolerance in sequence numbers; copies
        arriving further than this ahead of the cumulative point are
        discarded and recovered by retransmission.
    degrade:
        On budget exhaustion, fall back to unprotected direct traffic
        (the default) instead of raising
        :class:`~repro.errors.RetryExhaustedError`.
    """

    enabled: bool = True
    retransmit_timeout_ns: float = 50_000.0
    backoff_factor: float = 2.0
    max_retries: int = 5
    ack_delay_ns: float = 3_000.0
    dedup_window: int = 1024
    degrade: bool = True

    def __post_init__(self) -> None:
        if self.retransmit_timeout_ns <= 0:
            raise ConfigError(
                f"retransmit_timeout_ns must be positive, got "
                f"{self.retransmit_timeout_ns}"
            )
        if self.backoff_factor < 1.0:
            raise ConfigError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.max_retries < 1:
            raise ConfigError(f"max_retries must be >= 1, got {self.max_retries}")
        if self.ack_delay_ns < 0:
            raise ConfigError(f"ack_delay_ns must be >= 0, got {self.ack_delay_ns}")
        if self.dedup_window < 1:
            raise ConfigError(f"dedup_window must be >= 1, got {self.dedup_window}")


@dataclass
class ReliabilityStats:
    """Protocol counters across all channels of one runtime."""

    protected_messages: int = 0
    retransmits: int = 0
    acks_sent: int = 0
    acks_piggybacked: int = 0
    nacks_sent: int = 0
    duplicates_discarded: int = 0
    corrupt_discarded: int = 0
    window_overflow_discards: int = 0
    channels_degraded: int = 0
    messages_abandoned: int = 0
    items_abandoned: int = 0
    #: Pending messages that had in fact been delivered when their
    #: channel degraded — only the acknowledgement was lost. A real
    #: sender cannot tell these from true losses (two generals); the
    #: simulator consults receiver ground truth so loss accounting stays
    #: exact.
    messages_unconfirmed: int = 0
    #: Late-arriving copies of messages their channel had already
    #: written off at degrade time, discarded at the receiver.
    stale_discarded: int = 0

    def to_dict(self) -> dict:
        return {
            "protected_messages": self.protected_messages,
            "retransmits": self.retransmits,
            "acks_sent": self.acks_sent,
            "acks_piggybacked": self.acks_piggybacked,
            "nacks_sent": self.nacks_sent,
            "duplicates_discarded": self.duplicates_discarded,
            "corrupt_discarded": self.corrupt_discarded,
            "window_overflow_discards": self.window_overflow_discards,
            "channels_degraded": self.channels_degraded,
            "messages_abandoned": self.messages_abandoned,
            "items_abandoned": self.items_abandoned,
            "messages_unconfirmed": self.messages_unconfirmed,
            "stale_discarded": self.stale_discarded,
        }


@dataclass
class _AckPayload:
    """Content of a dedicated or piggybacked ack.

    ``count`` is 0 so fault-loss accounting sees no items in control
    traffic.
    """

    acker: int
    cum: int
    sacks: Tuple[int, ...]
    nack: Optional[int] = None

    @property
    def count(self) -> int:
        return 0


@dataclass
class _Pending:
    """Sender-side state of one unacked message."""

    msg: NetMessage
    first_send_time: float
    attempt: int = 0
    timer: Optional[Any] = None


@dataclass
class _TxChannel:
    """Sender side of one directed process pair."""

    next_seq: int = 0
    pending: Dict[int, _Pending] = field(default_factory=dict)
    degraded: bool = False
    #: Sequence numbers written off when the channel degraded. Copies of
    #: these may still be in flight; the receiver discards them on
    #: arrival (a real protocol would carry a channel epoch for this) so
    #: an item is never both counted lost and delivered. Bounded: filled
    #: once, at degrade time.
    stale: Set[int] = field(default_factory=set)


@dataclass
class _RxState:
    """Receiver side of one directed process pair."""

    cum: int = -1
    seen: Set[int] = field(default_factory=set)
    ack_timer: Optional[Any] = None


class ReliableDelivery:
    """Per-runtime reliable-delivery protocol engine.

    Installed as ``rt.reliable`` when the runtime is built with an
    enabled :class:`ReliabilityConfig`; ``None`` otherwise, so the
    default hot path pays one ``is None`` check per send/arrival.
    """

    __slots__ = ("rt", "config", "stats", "on_loss", "_tx", "_rx")

    def __init__(self, rt: "RuntimeSystem", config: ReliabilityConfig) -> None:
        self.rt = rt
        self.config = config
        self.stats = ReliabilityStats()
        #: Called as ``fn(msg, items)`` for each abandoned message when a
        #: channel degrades; apps hook this (like the fault injector's
        #: ``on_loss``) to keep quiescence accounting loss-aware.
        self.on_loss: Optional[Callable[[NetMessage, int], None]] = None
        self._tx: Dict[Tuple[int, int], _TxChannel] = {}
        self._rx: Dict[Tuple[int, int], _RxState] = {}
        rt.register_handler(ACK_KIND, self._on_ack_msg)

    # ------------------------------------------------------------------
    # Send path (called from Transport.send)
    # ------------------------------------------------------------------
    def on_send(self, msg: NetMessage, src_process: int, route: Route) -> None:
        """Stamp an outgoing message into its channel, if protectable.

        Only inter-node data is protected: the intra-node shared-memory
        transport is lossless (the fault fabric never touches it), and
        acks protect themselves through the data timeout.
        """
        if msg.seq is not None:
            # A retransmitted copy re-entering the transport: already
            # stamped and pending; just refresh its piggyback chance.
            self._maybe_piggyback(msg, src_process)
            return
        if route is not Route.INTER_NODE or msg.kind == ACK_KIND:
            return
        ch = self._tx_channel(src_process, msg.dst_process)
        if ch.degraded:
            return
        msg.seq = ch.next_seq
        msg.rel_src = src_process
        ch.next_seq += 1
        self.stats.protected_messages += 1
        self._maybe_piggyback(msg, src_process)
        entry = _Pending(msg=msg, first_send_time=self.rt.engine.now)
        ch.pending[msg.seq] = entry
        # Timer-wheel timeout: retransmit timers are almost always
        # cancelled by the ack before they fire.
        entry.timer = self.rt.engine.timer_after(
            self.config.retransmit_timeout_ns,
            self._on_timeout,
            src_process,
            msg.dst_process,
            msg.seq,
        )

    def _maybe_piggyback(self, msg: NetMessage, src_process: int) -> None:
        """Fold a due ack for ``msg.dst_process`` onto this data message."""
        rx = self._rx.get((src_process, msg.dst_process))
        if rx is None or rx.ack_timer is None:
            return
        self.rt.engine.cancel(rx.ack_timer)
        rx.ack_timer = None
        msg.piggyback_ack = (src_process, rx.cum, tuple(sorted(rx.seen)))
        self.stats.acks_piggybacked += 1

    # ------------------------------------------------------------------
    # Receive path (called at the destination process, before delivery)
    # ------------------------------------------------------------------
    def accept_inbound(self, msg: NetMessage, dst_process: int) -> bool:
        """Protocol processing on arrival; False means discard the copy."""
        pig = msg.piggyback_ack
        if pig is not None:
            acker, cum, sacks = pig
            self._process_ack(dst_process, acker, cum, sacks, None)
        if not msg.checksum_ok:
            if msg.seq is not None:
                self.stats.corrupt_discarded += 1
                self._send_ack(dst_process, msg.rel_src, nack=msg.seq)
            else:
                faults = self.rt.faults
                if faults is not None:
                    faults.note_destroyed(msg)
            return False
        if msg.seq is None:
            return True
        seq = msg.seq
        ch = self._tx.get((msg.rel_src, dst_process))
        if ch is not None and seq in ch.stale:
            # A late copy of a message its channel already wrote off at
            # degrade time; delivering it now would double-count the item
            # as both lost and delivered.
            self.stats.stale_discarded += 1
            return False
        rx = self._rx_state(dst_process, msg.rel_src)
        if seq <= rx.cum or seq in rx.seen:
            # Already delivered once: the ack must have been lost or is
            # still in flight; discard and re-ack.
            self.stats.duplicates_discarded += 1
            self._schedule_ack(dst_process, msg.rel_src)
            return False
        if seq > rx.cum + self.config.dedup_window:
            # Too far ahead to track; recovered by retransmission once
            # the cumulative point advances.
            self.stats.window_overflow_discards += 1
            return False
        rx.seen.add(seq)
        while (rx.cum + 1) in rx.seen:
            rx.cum += 1
            rx.seen.discard(rx.cum)
        self._schedule_ack(dst_process, msg.rel_src)
        return True

    # ------------------------------------------------------------------
    # Acks
    # ------------------------------------------------------------------
    def _schedule_ack(self, pid: int, peer: int) -> None:
        rx = self._rx_state(pid, peer)
        if rx.ack_timer is None:
            rx.ack_timer = self.rt.engine.timer_after(
                self.config.ack_delay_ns, self._fire_ack, pid, peer
            )

    def _fire_ack(self, pid: int, peer: int) -> None:
        rx = self._rx_state(pid, peer)
        rx.ack_timer = None
        self._send_ack(pid, peer, nack=None)

    def _send_ack(self, pid: int, peer: int, nack: Optional[int]) -> None:
        """Emit a dedicated (unprotected) ack control message."""
        rx = self._rx_state(pid, peer)
        payload = _AckPayload(
            acker=pid, cum=rx.cum, sacks=tuple(sorted(rx.seen)), nack=nack
        )
        machine = self.rt.machine
        ack = NetMessage(
            kind=ACK_KIND,
            src_worker=machine.workers_of_process(pid)[0],
            dst_process=peer,
            size_bytes=self.rt.costs.header_bytes,
            payload=payload,
            expedited=True,
        )
        if nack is None:
            self.stats.acks_sent += 1
        else:
            self.stats.nacks_sent += 1
        self.rt.transport.send(ack)

    def _on_ack_msg(self, ctx: Any, msg: NetMessage) -> None:
        """Handler for dedicated ack messages (runs on a destination PE)."""
        p = msg.payload
        self._process_ack(msg.dst_process, p.acker, p.cum, p.sacks, p.nack)

    def _process_ack(
        self,
        src_pid: int,
        acker: int,
        cum: int,
        sacks: Tuple[int, ...],
        nack: Optional[int],
    ) -> None:
        """Retire pending messages of channel ``src_pid -> acker``."""
        ch = self._tx.get((src_pid, acker))
        if ch is None:
            return
        sack_set = set(sacks)
        acked = [s for s in ch.pending if s <= cum or s in sack_set]
        for seq in acked:
            entry = ch.pending.pop(seq)
            if entry.timer is not None:
                self.rt.engine.cancel(entry.timer)
        if nack is not None and nack in ch.pending:
            self._retransmit_now(src_pid, acker, nack)

    # ------------------------------------------------------------------
    # Retransmission
    # ------------------------------------------------------------------
    def _on_timeout(self, src: int, dst: int, seq: int) -> None:
        ch = self._tx.get((src, dst))
        entry = ch.pending.get(seq) if ch is not None else None
        if entry is None:
            return
        entry.timer = None
        self._retransmit_now(src, dst, seq)

    def _retransmit_now(self, src: int, dst: int, seq: int) -> None:
        ch = self._tx[(src, dst)]
        entry = ch.pending[seq]
        if entry.attempt >= self.config.max_retries:
            self._exhaust(src, dst, seq)
            return
        entry.attempt += 1
        self.stats.retransmits += 1
        if entry.timer is not None:
            self.rt.engine.cancel(entry.timer)
        copy = self._retransmit_copy(entry)
        self.rt.transport.send(copy)
        timeout = self.config.retransmit_timeout_ns * (
            self.config.backoff_factor ** entry.attempt
        )
        entry.timer = self.rt.engine.timer_after(
            timeout, self._on_timeout, src, dst, seq
        )

    def _retransmit_copy(self, entry: _Pending) -> NetMessage:
        """Fresh physical copy; the span restarts with the wait charged
        to the ``retransmit`` stage so the partition identity holds."""
        copy = entry.msg.wire_copy()
        copy.attempt = entry.attempt
        copy.checksum_ok = True
        copy.piggyback_ack = None
        if entry.msg.span is not None:
            span = MsgSpan(entry.msg.span.group_ns)
            span.retransmit_ns = self.rt.engine.now - entry.first_send_time
            copy.span = span
        return copy

    # ------------------------------------------------------------------
    # Degradation
    # ------------------------------------------------------------------
    def _exhaust(self, src: int, dst: int, seq: int) -> None:
        ch = self._tx[(src, dst)]
        entry = ch.pending[seq]
        if not self.config.degrade:
            raise RetryExhaustedError(
                f"message seq={seq} on channel {src}->{dst} undelivered after "
                f"{entry.attempt} retransmissions (attempt {entry.attempt + 1} "
                f"of {self.config.max_retries + 1})"
            )
        ch.degraded = True
        self.stats.channels_degraded += 1
        abandoned = sorted(ch.pending.items())
        ch.pending.clear()
        # Receiver ground truth: a pending seq at or below the receiver's
        # cumulative point (or in its sack set) was delivered — only its
        # ack died (e.g. the ack path runs through the faulty wire). A
        # real sender cannot make this distinction; the simulator uses it
        # so abandoned-loss accounting counts only true losses.
        rx = self._rx.get((dst, src))
        for s, e in abandoned:
            if e.timer is not None:
                self.rt.engine.cancel(e.timer)
            if rx is not None and (s <= rx.cum or s in rx.seen):
                self.stats.messages_unconfirmed += 1
                continue
            ch.stale.add(s)
            items = int(getattr(e.msg.payload, "count", 0) or 0)
            self.stats.messages_abandoned += 1
            self.stats.items_abandoned += items
            if self.on_loss is not None:
                self.on_loss(e.msg, items)
        for scheme in self.rt.schemes:
            hook = getattr(scheme, "on_destination_degraded", None)
            if hook is not None:
                hook(src, dst)

    # ------------------------------------------------------------------
    # Introspection / state accessors
    # ------------------------------------------------------------------
    def _tx_channel(self, src: int, dst: int) -> _TxChannel:
        ch = self._tx.get((src, dst))
        if ch is None:
            ch = _TxChannel()
            self._tx[(src, dst)] = ch
        return ch

    def _rx_state(self, pid: int, peer: int) -> _RxState:
        rx = self._rx.get((pid, peer))
        if rx is None:
            rx = _RxState()
            self._rx[(pid, peer)] = rx
        return rx

    def is_degraded(self, src: int, dst: int) -> bool:
        """Whether channel ``src -> dst`` has fallen back to raw sends."""
        ch = self._tx.get((src, dst))
        return ch is not None and ch.degraded

    def pending_count(self) -> int:
        """Unacked messages across all channels (for tests/diagnostics)."""
        return sum(len(ch.pending) for ch in self._tx.values())
