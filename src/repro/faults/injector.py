"""Seeded fault injector: the dice behind a :class:`FaultPlan`.

The injector is attached to a runtime (``rt.faults``) when it is built
with a non-noop plan, and consulted from exactly three places:

* :meth:`wire_outcomes` — at the source NIC, once per inter-node
  message, deciding the physical copies that actually reach the wire
  (drop / duplicate / corrupt / bounded reordering);
* :meth:`nic_occupancy_multiplier` — per NIC booking, scaling occupancy
  during a scripted ``nic_degrade`` window;
* :meth:`ct_stall_until` — per comm-thread service, holding the server
  idle through a scripted ``ct_stall`` window.

Randomness comes from the runtime's ``"faults"`` RNG stream, so fault
placement is reproducible per root seed and independent of application
randomness. Wire dice are keyed on the *destination node*, which lets a
window confine faults to traffic towards one victim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from repro.faults.plan import FaultPlan, FaultWindow, WIRE_KINDS
from repro.network.message import NetMessage


@dataclass
class FaultStats:
    """What the fabric actually did to the run.

    ``messages_lost`` / ``items_lost`` count *unprotected* casualties:
    copies the injector destroyed (drop, or corrupt with nobody
    verifying checksums) that no reliability layer will resend. Items
    are counted via the payload's duck-typed ``count`` so quiescence
    accounting can be made loss-aware.
    """

    messages_dropped: int = 0
    messages_duplicated: int = 0
    messages_corrupted: int = 0
    messages_reordered: int = 0
    messages_lost: int = 0
    items_lost: int = 0
    ct_stall_ns: float = 0.0
    #: Endpoint-failure fabric: processes killed / revived, and the
    #: traffic destroyed *because* an endpoint was dead (disjoint from
    #: ``messages_lost`` — a crash loss is never also a wire loss).
    proc_crashes: int = 0
    proc_restarts: int = 0
    messages_lost_to_crash: int = 0
    items_lost_to_crash: int = 0

    def to_dict(self) -> dict:
        return {
            "messages_dropped": self.messages_dropped,
            "messages_duplicated": self.messages_duplicated,
            "messages_corrupted": self.messages_corrupted,
            "messages_reordered": self.messages_reordered,
            "messages_lost": self.messages_lost,
            "items_lost": self.items_lost,
            "ct_stall_ns": self.ct_stall_ns,
        }

    def crash_to_dict(self) -> dict:
        """Crash-fabric counters, merged into snapshots only when the
        fabric is armed so crash-free artifacts stay byte-identical."""
        return {
            "proc_crashes": self.proc_crashes,
            "proc_restarts": self.proc_restarts,
            "messages_lost_to_crash": self.messages_lost_to_crash,
            "items_lost_to_crash": self.items_lost_to_crash,
        }


def _payload_items(msg: NetMessage) -> int:
    """Application items carried by a message (0 for control traffic)."""
    count = getattr(msg.payload, "count", 0)
    # Control payloads can be plain tuples, whose ``count`` attribute is
    # the bound method — they carry no application items.
    if callable(count):
        return 0
    return int(count or 0)


@dataclass
class FaultInjector:
    """Applies a :class:`FaultPlan` deterministically to one runtime.

    Parameters
    ----------
    plan:
        The declarative fault regime.
    rng:
        Generator from the runtime's ``"faults"`` stream.
    """

    plan: FaultPlan
    rng: Any
    stats: FaultStats = field(default_factory=FaultStats)
    #: Called as ``fn(msg, items)`` when an *unprotected* copy is
    #: destroyed; apps hook this to keep quiescence loss-aware.
    #: ``msg`` is ``None`` for crash losses not tied to one message
    #: (drained worker queues, buffered aggregation items).
    on_loss: Optional[Callable[[Optional[NetMessage], int], None]] = None
    #: Dedicated RNG stream (``"proc-faults"``) for seeded crash
    #: placement. Kept separate from the wire-dice stream so enabling
    #: crashes never reshuffles which messages get dropped/duplicated.
    crash_rng: Any = None

    def _wire_prob(self, kind: str, dst_node: int, now: float) -> float:
        """Effective probability of ``kind`` for a message to ``dst_node``."""
        p = getattr(self.plan, kind)
        for w in self.plan.windows:
            if w.kind == kind and w.active(now) and w.matches(dst_node):
                p += w.magnitude
        return p if p < 1.0 else 1.0

    def wire_outcomes(
        self, msg: NetMessage, dst_node: int, now: float
    ) -> List[Tuple[Optional[NetMessage], float]]:
        """Decide the fate of one inter-node message at the source NIC.

        Returns ``(copy, extra_delay_ns)`` pairs — the physical copies to
        put on the wire. An empty list means the message was dropped
        (the NIC still pays tx occupancy: the bits left the node, the
        wire ate them). Duplicates are independent
        :meth:`~repro.network.message.NetMessage.wire_copy` envelopes;
        a corrupted copy travels with ``checksum_ok=False``; a reordered
        copy picks up a bounded extra wire delay.
        """
        # One uniform draw per dice keeps the stream's consumption
        # independent of which faults are enabled, so adding e.g. dup
        # probability does not reshuffle drop placement.
        drop = self.rng.random() < self._wire_prob("drop", dst_node, now)
        dup = self.rng.random() < self._wire_prob("dup", dst_node, now)
        corrupt = self.rng.random() < self._wire_prob("corrupt", dst_node, now)
        reorder = self.rng.random() < self._wire_prob("reorder", dst_node, now)

        if drop:
            self.stats.messages_dropped += 1
            self.note_destroyed(msg)
            return []

        outcomes: List[Tuple[Optional[NetMessage], float]] = [(msg, 0.0)]
        if corrupt:
            self.stats.messages_corrupted += 1
            msg.checksum_ok = False
        if reorder:
            self.stats.messages_reordered += 1
            extra = float(self.rng.random()) * self.plan.reorder_max_ns
            outcomes[0] = (msg, extra)
        if dup:
            self.stats.messages_duplicated += 1
            outcomes.append((msg.wire_copy(), 0.0))
        return outcomes

    def note_destroyed(self, msg: NetMessage) -> None:
        """Record that a copy was destroyed with no reliability cover.

        Called by the injector itself on drop and by the receive path
        when an unprotected (``seq is None``) corrupt copy is discarded.
        Protected copies never reach here — their loss is either repaired
        by retransmission or accounted by the reliability layer when the
        retry budget trips.
        """
        if msg.seq is not None:
            return
        items = _payload_items(msg)
        self.stats.messages_lost += 1
        self.stats.items_lost += items
        if self.on_loss is not None:
            self.on_loss(msg, items)

    def note_crash_destroyed(self, msg: NetMessage) -> None:
        """A copy hit a dead endpoint *before* being accepted.

        Mirrors :meth:`note_destroyed`: only unprotected copies count —
        a protected (``seq`` stamped) copy is still pending at its
        sender, and the reliability teardown accounts its loss exactly
        once when the peer's death is confirmed.
        """
        if msg.seq is not None:
            return
        items = _payload_items(msg)
        self.stats.messages_lost_to_crash += 1
        self.stats.items_lost_to_crash += items
        if self.on_loss is not None:
            self.on_loss(msg, items)

    def note_crash_items(self, items: int, messages: int = 0) -> None:
        """Raw crash-loss accounting for items not tied to a live copy.

        Used where the lost work is a *count*, not a message in flight:
        a dead worker's queued tasks, aggregation items buffered at the
        crashed process, parked flow entries, and the reliability
        layer's pending-channel teardown (which has already applied the
        receiver-ground-truth split).
        """
        if items <= 0 and messages <= 0:
            return
        self.stats.messages_lost_to_crash += messages
        self.stats.items_lost_to_crash += items
        if self.on_loss is not None and items > 0:
            self.on_loss(None, items)

    def crash_schedule(self, total_processes: int) -> List[Tuple[float, str, int]]:
        """Resolve the plan into concrete ``(time, kind, pid)`` events.

        Scripted ``proc_crash`` / ``proc_restart`` windows map directly;
        seeded victims come from the dedicated crash stream: distinct
        processes (never pid 0 — it hosts the quiescence coordinator),
        crash times uniform in ``[crash_t_min_ns, crash_t_max_ns)``,
        optional restarts ``crash_restart_after_ns`` later. The result
        is sorted by time so the runtime can schedule it verbatim.
        """
        events: List[Tuple[float, str, int]] = []
        for w in self.plan.windows:
            if w.kind == "proc_crash":
                events.append((w.t_start, "crash", int(w.target)))
            elif w.kind == "proc_restart":
                events.append((w.t_start, "restart", int(w.target)))
        n = self.plan.crash_procs
        if n > 0:
            candidates = list(range(1, total_processes))
            if n > len(candidates):
                n = len(candidates)
            rng = self.crash_rng if self.crash_rng is not None else self.rng
            victims = rng.choice(
                len(candidates), size=n, replace=False
            )
            for v in sorted(int(i) for i in victims):
                pid = candidates[v]
                span = self.plan.crash_t_max_ns - self.plan.crash_t_min_ns
                t = self.plan.crash_t_min_ns + float(rng.random()) * span
                events.append((t, "crash", pid))
                if self.plan.crash_restart_after_ns is not None:
                    events.append(
                        (t + self.plan.crash_restart_after_ns, "restart", pid)
                    )
        events.sort(key=lambda e: (e[0], e[1], e[2]))
        return events

    def nic_occupancy_multiplier(self, node_id: int, now: float) -> float:
        """Occupancy multiplier for a NIC booking (``nic_degrade``)."""
        mult = 1.0
        for w in self.plan.windows:
            if w.kind == "nic_degrade" and w.active(now) and w.matches(node_id):
                mult *= w.magnitude
        return mult

    def ct_stall_until(self, pid: int, now: float) -> float:
        """Earliest time process ``pid``'s comm thread may serve work.

        Returns ``now`` when no ``ct_stall`` window covers it; otherwise
        the end of the latest covering window.
        """
        until = now
        for w in self.plan.windows:
            if w.kind == "ct_stall" and w.active(now) and w.matches(pid):
                if w.t_end > until:
                    until = w.t_end
        return until

    def stall_remaining_ns(self, pid: int, now: float) -> float:
        """Remaining scripted ``ct_stall`` time for ``pid`` at ``now``.

        Zero outside any window. The flow controller folds this into a
        comm thread's effective pressure so a stalled-but-empty server
        still registers as congested.
        """
        return self.ct_stall_until(pid, now) - now

    def has_wire_faults(self) -> bool:
        """Whether any wire-level dice can ever come up non-trivial."""
        if any(getattr(self.plan, k) > 0.0 for k in WIRE_KINDS):
            return True
        return any(w.kind in WIRE_KINDS for w in self.plan.windows)
