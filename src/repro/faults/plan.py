"""Declarative fault model: what can go wrong, when, and to whom.

A :class:`FaultPlan` is a frozen description of the failure regime a run
should experience — steady-state per-message probabilities (drop,
duplicate, corrupt, reorder) plus scripted :class:`FaultWindow` episodes
(``(t_start, t_end, kind, target, magnitude)``): transient NIC
degradation, comm-thread stalls, or time-bounded bursts of the wire
faults. Plans are pure data; the seeded dice live in
:class:`~repro.faults.injector.FaultInjector`.

Plans are off by default and zero-cost when absent: a runtime built
without one (and outside a :class:`~repro.faults.context.FaultSession`)
carries ``rt.faults is None`` and every hook reduces to that one check —
the same gating pattern as :class:`~repro.obs.config.ObsConfig`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import FaultInjectionError

#: Wire-level fault kinds (per-message dice at the source NIC).
WIRE_KINDS = ("drop", "dup", "corrupt", "reorder")

#: Component-level scripted degradations.
COMPONENT_KINDS = ("nic_degrade", "ct_stall")

#: Endpoint-level scripted events: a process dies (or comes back) at
#: ``t_start``. Instantaneous — ``t_end`` is ignored by convention
#: (pass :data:`FOREVER`); ``target`` is the process id and mandatory.
PROCESS_KINDS = ("proc_crash", "proc_restart")

KINDS = WIRE_KINDS + COMPONENT_KINDS + PROCESS_KINDS


@dataclass(frozen=True)
class FaultWindow:
    """One scripted fault episode.

    Parameters
    ----------
    t_start / t_end:
        Simulated-time interval ``[t_start, t_end)`` the episode is
        active in (``t_end`` may be ``math.inf`` for a permanent fault).
    kind:
        One of :data:`KINDS`. Wire kinds add ``magnitude`` to the
        steady-state probability while active; ``nic_degrade`` is an
        occupancy multiplier on the targeted node's NIC(s); ``ct_stall``
        freezes the targeted comm thread until ``t_end``.
    target:
        Scope of the episode: destination node id for wire kinds, node
        id for ``nic_degrade``, process id for ``ct_stall``. ``None``
        targets everything.
    magnitude:
        Probability increment (wire kinds, clamped to 1.0 at use) or
        occupancy multiplier (``nic_degrade``; must be >= 1). Unused by
        ``ct_stall``.
    """

    t_start: float
    t_end: float
    kind: str
    target: Optional[int] = None
    magnitude: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise FaultInjectionError(
                f"unknown fault kind {self.kind!r}; use one of {KINDS}"
            )
        if not self.t_start >= 0:
            raise FaultInjectionError(f"window t_start must be >= 0, got {self.t_start}")
        if not self.t_end > self.t_start:
            raise FaultInjectionError(
                f"window t_end ({self.t_end}) must exceed t_start ({self.t_start})"
            )
        if self.kind in WIRE_KINDS and not 0.0 <= self.magnitude <= 1.0:
            raise FaultInjectionError(
                f"{self.kind} window magnitude must be a probability in [0, 1], "
                f"got {self.magnitude}"
            )
        if self.kind == "nic_degrade" and self.magnitude < 1.0:
            raise FaultInjectionError(
                f"nic_degrade magnitude is an occupancy multiplier >= 1, "
                f"got {self.magnitude}"
            )
        if self.kind in PROCESS_KINDS and self.target is None:
            raise FaultInjectionError(
                f"{self.kind} window needs an explicit target process id"
            )

    def active(self, now: float) -> bool:
        """Whether the episode covers simulated time ``now``."""
        return self.t_start <= now < self.t_end

    def matches(self, target: Optional[int]) -> bool:
        """Whether the episode applies to a component/destination id."""
        return self.target is None or self.target == target


_PROB_FIELDS = ("drop", "dup", "corrupt", "reorder")


@dataclass(frozen=True)
class FaultPlan:
    """Seeded, deterministic fault regime for one run.

    Parameters
    ----------
    drop / dup / corrupt / reorder:
        Steady-state per-message probabilities applied at the source NIC
        on the inter-node wire (intra-node shared-memory transport is
        assumed lossless, like CMA/xpmem).
    reorder_max_ns:
        Bound on the extra delay a reordered copy picks up (uniform in
        ``(0, reorder_max_ns]``) — bounded reordering, so protocol state
        stays finite.
    windows:
        Scripted :class:`FaultWindow` episodes layered on top.
    crash_procs:
        Number of *seeded* process crashes: that many distinct victim
        processes are drawn from the runtime's dedicated
        ``"proc-faults"`` RNG stream (never process 0, which hosts the
        quiescence coordinator), each with a crash time uniform in
        ``[crash_t_min_ns, crash_t_max_ns)``. Scripted ``proc_crash``
        windows layer on top for exact placement.
    crash_restart_after_ns:
        When set, every seeded victim restarts this long after its
        crash; ``None`` (the default) keeps victims dead for the rest
        of the run.
    """

    drop: float = 0.0
    dup: float = 0.0
    corrupt: float = 0.0
    reorder: float = 0.0
    reorder_max_ns: float = 5_000.0
    windows: Tuple[FaultWindow, ...] = field(default_factory=tuple)
    crash_procs: int = 0
    crash_t_min_ns: float = 0.0
    crash_t_max_ns: float = 1_000_000.0
    crash_restart_after_ns: Optional[float] = None

    def __post_init__(self) -> None:
        for name in _PROB_FIELDS:
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise FaultInjectionError(
                    f"fault probability {name!r} must be in [0, 1], got {p}"
                )
        if self.reorder_max_ns <= 0:
            raise FaultInjectionError(
                f"reorder_max_ns must be positive, got {self.reorder_max_ns}"
            )
        if self.crash_procs < 0:
            raise FaultInjectionError(
                f"crash_procs must be >= 0, got {self.crash_procs}"
            )
        if not 0.0 <= self.crash_t_min_ns < self.crash_t_max_ns:
            raise FaultInjectionError(
                f"need 0 <= crash_t_min_ns < crash_t_max_ns, got "
                f"[{self.crash_t_min_ns}, {self.crash_t_max_ns})"
            )
        if (
            self.crash_restart_after_ns is not None
            and self.crash_restart_after_ns <= 0
        ):
            raise FaultInjectionError(
                f"crash_restart_after_ns must be positive, got "
                f"{self.crash_restart_after_ns}"
            )
        object.__setattr__(self, "windows", tuple(self.windows))

    def is_noop(self) -> bool:
        """True when the plan injects nothing (treated as no plan)."""
        return (
            all(getattr(self, name) == 0.0 for name in _PROB_FIELDS)
            and not self.windows
            and self.crash_procs == 0
        )

    def has_crashes(self) -> bool:
        """Whether the plan kills (or restarts) any process — seeded or
        scripted. ``False`` keeps the whole crash fabric unbuilt, so a
        wire-faults-only run schedules zero extra events and consumes
        zero extra RNG draws (byte-identity with pre-crash-fabric runs).
        """
        return self.crash_procs > 0 or any(
            w.kind in PROCESS_KINDS for w in self.windows
        )

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from a ``--faults`` spec string.

        Comma-separated ``key=value`` pairs, e.g.
        ``"drop=0.05,dup=0.01,corrupt=0.005,reorder=0.01,reorder_max=8000"``.
        Scripted windows are API-only.

        >>> FaultPlan.parse("drop=0.05,dup=0.01").drop
        0.05
        """
        aliases = {
            "reorder_max": "reorder_max_ns",
            "crash_t_min": "crash_t_min_ns",
            "crash_t_max": "crash_t_max_ns",
            "crash_restart_after": "crash_restart_after_ns",
        }
        known = _PROB_FIELDS + (
            "reorder_max_ns", "crash_procs", "crash_t_min_ns",
            "crash_t_max_ns", "crash_restart_after_ns",
        )
        kwargs = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, value = part.partition("=")
            key = aliases.get(key.strip(), key.strip())
            if not sep or key not in known:
                raise FaultInjectionError(
                    f"bad --faults entry {part!r}; use key=value with keys "
                    f"{', '.join(_PROB_FIELDS + tuple(aliases))}"
                )
            try:
                kwargs[key] = int(value) if key == "crash_procs" else float(value)
            except ValueError:
                raise FaultInjectionError(
                    f"bad --faults value in {part!r}: not a number"
                ) from None
        return cls(**kwargs)

    def with_window(self, *windows: FaultWindow) -> "FaultPlan":
        """Copy of the plan with extra scripted episodes appended."""
        return FaultPlan(
            drop=self.drop,
            dup=self.dup,
            corrupt=self.corrupt,
            reorder=self.reorder,
            reorder_max_ns=self.reorder_max_ns,
            windows=self.windows + tuple(windows),
            crash_procs=self.crash_procs,
            crash_t_min_ns=self.crash_t_min_ns,
            crash_t_max_ns=self.crash_t_max_ns,
            crash_restart_after_ns=self.crash_restart_after_ns,
        )


#: Convenience alias: a window open until the end of the run.
FOREVER = math.inf
