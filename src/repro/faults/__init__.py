"""Fault-injection fabric (see ``docs/robustness.md``).

Declarative, seeded, deterministic faults for the simulated transport:
message drop / duplication / corruption / bounded reordering on the
inter-node wire, plus scripted NIC degradation and comm-thread stalls.
Off by default; a runtime without a plan pays one ``is None`` check.
"""

from repro.faults.context import (
    FaultSession,
    active_fault_plan,
    active_fault_session,
)
from repro.faults.injector import FaultInjector, FaultStats
from repro.faults.plan import (
    FOREVER,
    KINDS,
    PROCESS_KINDS,
    FaultPlan,
    FaultWindow,
)

__all__ = [
    "FaultPlan",
    "FaultWindow",
    "FaultInjector",
    "FaultStats",
    "FaultSession",
    "active_fault_plan",
    "active_fault_session",
    "KINDS",
    "PROCESS_KINDS",
    "FOREVER",
]
