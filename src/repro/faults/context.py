"""Ambient fault-plan session, mirroring :class:`repro.obs.config.ObsSession`.

The harness cannot thread a :class:`~repro.faults.plan.FaultPlan`
through every figure body, so — exactly like observability — it wraps
the run in a :class:`FaultSession`; runtimes constructed inside pick up
the session's plan automatically::

    with FaultSession(FaultPlan.parse("drop=0.01")):
        run_figure_body()   # every RuntimeSystem built here is faulty

An explicit ``faults=`` argument to the runtime constructor overrides
the ambient plan. Sessions nest; the inner one wins until it exits.

Because most applications assert exactly-once delivery, a session also
carries a :class:`~repro.runtime.reliability.ReliabilityConfig` —
enabled by default, so a ``--faults`` run completes with every item
delivered; pass ``reliability=None`` to study raw (lossy) behaviour.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.faults.plan import FaultPlan

_active: Optional["FaultSession"] = None

_DEFAULT = object()


class FaultSession:
    """Installs a fault plan ambiently for runtimes built inside it."""

    def __init__(self, plan: FaultPlan, reliability: Any = _DEFAULT) -> None:
        self.plan = plan
        if reliability is _DEFAULT:
            from repro.runtime.reliability import ReliabilityConfig

            reliability = ReliabilityConfig()
        self.reliability = reliability
        self._prev: Optional["FaultSession"] = None

    def __enter__(self) -> "FaultSession":
        global _active
        self._prev = _active
        _active = self
        return self

    def __exit__(self, *exc_info: Any) -> None:
        global _active
        _active = self._prev
        self._prev = None


def active_fault_session() -> Optional["FaultSession"]:
    """The innermost active :class:`FaultSession`, if any."""
    return _active


def active_fault_plan() -> Optional[FaultPlan]:
    """The innermost active session's plan, if any."""
    return _active.plan if _active is not None else None
