"""The cost model: every nanosecond constant in one place.

The simulator charges simulated time for each software/hardware action;
this module is the single source of those charges. Defaults are
"Delta-shaped" (see DESIGN.md §4): calibrated so the reproduced figures
match the paper's orderings and approximate magnitudes — small-message
one-way latency ≈ 2 µs, bandwidth ≈ 12 GB/s, comm-thread service such
that fine-grained traffic serializes behind it exactly as §III-A of the
paper describes.

All constants are in **nanoseconds of simulated time** (or ns/byte).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError


@dataclass(frozen=True)
class CostModel:
    """Per-action simulated-time charges.

    Network (alpha–beta wire model, per-node NIC)
    ---------------------------------------------
    alpha_inter_ns:
        One-way wire latency between distinct physical nodes. Paper Fig 1
        measures ~2 µs for small messages on Delta.
    alpha_intra_ns:
        One-way latency between processes on the same node (CMA/xpmem
        style transport; cheaper than the wire).
    beta_ns_per_byte:
        Inverse bandwidth. 0.04 ns/B per NIC pass; the end-to-end effective
        per-byte cost (tx + rx + two comm-thread copies) is ~0.1 ns/B ≈
        10-12 GB/s, matching the paper's Fig 1 measurement.
    nic_msg_ns:
        Per-message NIC injection occupancy; together with
        ``beta_ns_per_byte`` this serializes a node's outgoing traffic.
    rx_nic_msg_ns / rx_beta_ns_per_byte:
        Receive-side occupancy constants. ``None`` (the default) mirrors
        the tx constants, so symmetric NICs need no extra configuration;
        set them to model asymmetric rx serialization.

    Communication thread (SMP mode)
    -------------------------------
    comm_msg_ns:
        Per-message service time of the dedicated comm thread (applies on
        both send and receive sides). This is the serializing bottleneck
        of §III-A: with *t* workers feeding one comm thread, fine-grained
        traffic queues here unless more processes per node are used.
    comm_byte_ns:
        Per-byte copy cost inside the comm thread.

    Non-SMP mode
    ------------
    nonsmp_send_ns / nonsmp_recv_ns:
        A non-SMP worker performs its own network progress; it pays more
        per message than a dedicated comm thread, but every rank pays in
        parallel.

    Worker-level software costs
    ---------------------------
    enqueue_ns:
        Posting a task/message into a PE's queue.
    local_msg_ns:
        Within-process local send (shared-memory delivery of a grouped
        section to a sibling PE).
    item_insert_ns:
        Appending one item to a private aggregation buffer.
    atomic_ns:
        Uncontended atomic slot claim in a shared (PP) buffer.
    contention_coeff:
        PP contention model: the effective atomic cost is
        ``atomic_ns * (1 + contention_coeff * (t - 1))`` for *t* workers
        sharing the buffer.
    group_elem_ns:
        Per-element cost of the O(g + t) grouping/sorting pass (paper
        §III-C "processing delays").
    handler_ns:
        Per delivered item: application handler invocation.
    gen_ns:
        Per-item generation cost in workload drivers.
    pack_msg_ns:
        Per aggregated message: packaging + handing off to the comm
        queue (or to the NIC in non-SMP mode).
    header_bytes:
        Envelope bytes added to every network message.
    os_noise_factor:
        Optional multiplicative slowdown (e.g. 0.05 = 5%) applied to one
        worker per process, modelling OS daemons / GPU callbacks landing
        on an unshielded core (§III-A). 0 disables it.
    cache_bytes_per_worker / cache_miss_factor:
        Buffer-footprint model: inserting into a buffer set larger than
        the per-worker cache share costs progressively more (up to
        ``cache_miss_factor`` x) because every insert is a cache miss.
        This is what makes WW — whose footprint is ``g*m*N*t`` per worker
        (§III-C) — degrade at large buffer sizes and large node counts
        (paper Fig 10 "worse beyond 2k", Fig 16 "memory footprint").
    """

    # network
    alpha_inter_ns: float = 1900.0
    alpha_intra_ns: float = 700.0
    beta_ns_per_byte: float = 0.04
    nic_msg_ns: float = 80.0
    rx_nic_msg_ns: Optional[float] = None
    rx_beta_ns_per_byte: Optional[float] = None
    # comm thread
    comm_msg_ns: float = 450.0
    comm_byte_ns: float = 0.01
    # non-SMP worker communication
    nonsmp_send_ns: float = 900.0
    nonsmp_recv_ns: float = 500.0
    # worker software costs
    enqueue_ns: float = 60.0
    local_msg_ns: float = 120.0
    item_insert_ns: float = 18.0
    atomic_ns: float = 22.0
    contention_coeff: float = 0.08
    group_elem_ns: float = 3.2
    handler_ns: float = 55.0
    gen_ns: float = 25.0
    pack_msg_ns: float = 150.0
    header_bytes: int = 64
    os_noise_factor: float = 0.0
    # cache model (buffer-footprint penalty on inserts)
    cache_bytes_per_worker: float = 131072.0
    cache_miss_factor: float = 3.0

    def __post_init__(self) -> None:
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if value is not None and value < 0:
                raise ConfigError(f"cost field {f.name!r} must be >= 0, got {value}")

    # ------------------------------------------------------------------
    # Derived charges
    # ------------------------------------------------------------------
    def wire_latency_ns(self, same_node: bool) -> float:
        """One-way latency of the transport between two processes."""
        return self.alpha_intra_ns if same_node else self.alpha_inter_ns

    def min_inter_node_latency_ns(self) -> float:
        """Smallest possible send-to-arrival delay across distinct nodes.

        This is the conservative-PDES *lookahead*: an event executing at
        time ``t`` on one node cannot affect another node before
        ``t + lookahead``, because every cross-node interaction rides the
        wire (arrival = tx-free watermark + wire latency >= now +
        alpha_inter). The alpha-beta model makes it a known constant; a
        hierarchical fabric would return its minimum per-hop latency
        here instead.
        """
        return self.alpha_inter_ns

    def tx_occupancy_ns(self, payload_bytes: int) -> float:
        """NIC occupancy to inject one message (serialization term)."""
        return self.nic_msg_ns + payload_bytes * self.beta_ns_per_byte

    def rx_occupancy_ns(self, payload_bytes: int) -> float:
        """NIC occupancy to receive one message (rx serialization).

        The rx constants resolve lazily so that ``None`` keeps mirroring
        the tx side even through :meth:`replace`.
        """
        msg_ns = self.rx_nic_msg_ns
        beta = self.rx_beta_ns_per_byte
        if msg_ns is None:
            msg_ns = self.nic_msg_ns
        if beta is None:
            beta = self.beta_ns_per_byte
        return msg_ns + payload_bytes * beta

    def comm_service_ns(self, payload_bytes: int) -> float:
        """Comm-thread service time for one message (either direction)."""
        return self.comm_msg_ns + payload_bytes * self.comm_byte_ns

    def nonsmp_send_service_ns(self, payload_bytes: int) -> float:
        """Worker-side send cost in non-SMP mode."""
        return self.nonsmp_send_ns + payload_bytes * self.comm_byte_ns

    def nonsmp_recv_service_ns(self, payload_bytes: int) -> float:
        """Worker-side receive cost in non-SMP mode."""
        return self.nonsmp_recv_ns + payload_bytes * self.comm_byte_ns

    def pp_insert_ns(self, workers_per_process: int) -> float:
        """Cost of one insert into a shared PP buffer under contention."""
        t = max(1, workers_per_process)
        return self.item_insert_ns + self.atomic_ns * (
            1.0 + self.contention_coeff * (t - 1)
        )

    def group_cost_ns(self, items: int, workers_per_process: int) -> float:
        """Cost of grouping ``items`` by destination PE: O(g + t)."""
        return self.group_elem_ns * (items + workers_per_process)

    def cache_penalty(self, footprint_bytes: float) -> float:
        """Insert-cost multiplier for a given buffer footprint.

        1.0 while the footprint fits the per-worker cache share, rising
        linearly with the overflow ratio and saturating at
        ``cache_miss_factor``.
        """
        cache = self.cache_bytes_per_worker
        if cache <= 0 or footprint_bytes <= cache:
            return 1.0
        penalty = 1.0 + (self.cache_miss_factor - 1.0) * (
            footprint_bytes / cache - 1.0
        )
        return min(penalty, self.cache_miss_factor)

    def message_bytes(self, item_count: int, item_bytes: int) -> int:
        """Wire size of an aggregated message carrying ``item_count`` items.

        Flushed messages are resized (paper §III-B): only the filled
        portion plus a fixed header travels.
        """
        return self.header_bytes + item_count * item_bytes

    def replace(self, **changes: float) -> "CostModel":
        """Return a copy with the given fields changed."""
        return dataclasses.replace(self, **changes)
