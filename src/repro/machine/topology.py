"""Cluster topology: nodes, processes and worker PEs.

Terminology follows the paper (and Charm++):

* **node** — a physical host with one NIC.
* **process** — an OS process on a node. In SMP mode a process owns
  several **worker** PEs (threads pinned to cores) plus one dedicated
  communication thread. In non-SMP mode every process has exactly one
  worker and no comm thread (the worker performs its own communication),
  i.e. "MPI everywhere".
* **worker / PE** — the unit that executes application work. Workers are
  numbered globally ``0 .. total_workers-1``, blocked by process and by
  node: worker ``w`` lives in process ``w // workers_per_process`` which
  lives on node ``process // processes_per_node``.

All index arithmetic lives here so the rest of the library never
hand-rolls a division.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class MachineConfig:
    """Immutable description of the simulated cluster.

    Parameters
    ----------
    nodes:
        Number of physical nodes.
    processes_per_node:
        OS processes per node.
    workers_per_process:
        Worker PEs per process (``t`` in the paper's analysis).
    smp:
        ``True`` — each process has a dedicated comm thread (Charm++ SMP
        mode). ``False`` — non-SMP / MPI-everywhere: workers do their own
        network progress; ``workers_per_process`` must be 1.
    nics_per_node:
        Network interfaces per node. Processes are mapped to NICs
        round-robin; more NICs mean more injection concurrency (the
        Zambre et al. observation the paper cites in §III-A).
    """

    nodes: int
    processes_per_node: int
    workers_per_process: int
    smp: bool = True
    nics_per_node: int = 1

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ConfigError(f"nodes must be >= 1, got {self.nodes}")
        if self.processes_per_node < 1:
            raise ConfigError(
                f"processes_per_node must be >= 1, got {self.processes_per_node}"
            )
        if self.workers_per_process < 1:
            raise ConfigError(
                f"workers_per_process must be >= 1, got {self.workers_per_process}"
            )
        if not self.smp and self.workers_per_process != 1:
            raise ConfigError(
                "non-SMP mode requires workers_per_process == 1 "
                f"(got {self.workers_per_process})"
            )
        if self.nics_per_node < 1:
            raise ConfigError(
                f"nics_per_node must be >= 1, got {self.nics_per_node}"
            )

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------
    @property
    def total_processes(self) -> int:
        """``N`` in the paper's analysis: total process count."""
        return self.nodes * self.processes_per_node

    @property
    def total_workers(self) -> int:
        """Total worker PE count across the machine."""
        return self.total_processes * self.workers_per_process

    @property
    def workers_per_node(self) -> int:
        """Worker PEs per physical node."""
        return self.processes_per_node * self.workers_per_process

    # ------------------------------------------------------------------
    # Index maps
    # ------------------------------------------------------------------
    def process_of_worker(self, worker: int) -> int:
        """Global process id owning global worker ``worker``."""
        self._check_worker(worker)
        return worker // self.workers_per_process

    def node_of_worker(self, worker: int) -> int:
        """Physical node hosting global worker ``worker``."""
        return self.node_of_process(self.process_of_worker(worker))

    def node_of_process(self, process: int) -> int:
        """Physical node hosting global process ``process``."""
        self._check_process(process)
        return process // self.processes_per_node

    def workers_of_process(self, process: int) -> range:
        """Global worker ids belonging to ``process``."""
        self._check_process(process)
        start = process * self.workers_per_process
        return range(start, start + self.workers_per_process)

    def processes_of_node(self, node: int) -> range:
        """Global process ids on ``node``."""
        self._check_node(node)
        start = node * self.processes_per_node
        return range(start, start + self.processes_per_node)

    def workers_of_node(self, node: int) -> range:
        """Global worker ids on ``node``."""
        self._check_node(node)
        start = node * self.workers_per_node
        return range(start, start + self.workers_per_node)

    def local_rank_of_worker(self, worker: int) -> int:
        """Worker's rank within its process (``0 .. t-1``)."""
        self._check_worker(worker)
        return worker % self.workers_per_process

    def worker_id(self, process: int, local_rank: int) -> int:
        """Global worker id from (process, within-process rank)."""
        self._check_process(process)
        if not 0 <= local_rank < self.workers_per_process:
            raise ConfigError(
                f"local_rank {local_rank} out of range "
                f"[0, {self.workers_per_process})"
            )
        return process * self.workers_per_process + local_rank

    # ------------------------------------------------------------------
    # Locality predicates
    # ------------------------------------------------------------------
    def same_process(self, a: int, b: int) -> bool:
        """Whether workers ``a`` and ``b`` share a process."""
        return self.process_of_worker(a) == self.process_of_worker(b)

    def same_node(self, a: int, b: int) -> bool:
        """Whether workers ``a`` and ``b`` share a physical node."""
        return self.node_of_worker(a) == self.node_of_worker(b)

    # ------------------------------------------------------------------
    # Validation helpers
    # ------------------------------------------------------------------
    def _check_worker(self, worker: int) -> None:
        if not 0 <= worker < self.total_workers:
            raise ConfigError(
                f"worker {worker} out of range [0, {self.total_workers})"
            )

    def _check_process(self, process: int) -> None:
        if not 0 <= process < self.total_processes:
            raise ConfigError(
                f"process {process} out of range [0, {self.total_processes})"
            )

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.nodes:
            raise ConfigError(f"node {node} out of range [0, {self.nodes})")

    def describe(self) -> str:
        """One-line human-readable summary."""
        mode = "SMP" if self.smp else "non-SMP"
        return (
            f"{self.nodes} node(s) x {self.processes_per_node} proc/node x "
            f"{self.workers_per_process} worker/proc = "
            f"{self.total_workers} workers ({mode})"
        )
