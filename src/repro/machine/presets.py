"""Machine and cost-model presets used throughout the reproduction.

The paper's experiments run on NCSA Delta with 8 processes per node and
8 worker cores per process (one more core per process is the comm
thread; the remainder are left idle). The presets here mirror that
layout; problem sizes are scaled separately by the harness.
"""

from __future__ import annotations

from repro.machine.costs import CostModel
from repro.machine.topology import MachineConfig


def delta_machine(
    nodes: int,
    processes_per_node: int = 8,
    workers_per_process: int = 8,
) -> MachineConfig:
    """Delta-like SMP configuration (paper §IV-A).

    Default 8 processes/node x 8 workers/process = 64 worker cores per
    node, exactly the paper's layout.
    """
    return MachineConfig(
        nodes=nodes,
        processes_per_node=processes_per_node,
        workers_per_process=workers_per_process,
        smp=True,
    )


def nonsmp_machine(nodes: int, ranks_per_node: int = 64) -> MachineConfig:
    """Non-SMP / MPI-everywhere configuration: one worker per process."""
    return MachineConfig(
        nodes=nodes,
        processes_per_node=ranks_per_node,
        workers_per_process=1,
        smp=False,
    )


def small_test_machine(
    nodes: int = 2,
    processes_per_node: int = 2,
    workers_per_process: int = 2,
    smp: bool = True,
) -> MachineConfig:
    """Tiny configuration for unit tests (8 workers by default)."""
    return MachineConfig(
        nodes=nodes,
        processes_per_node=processes_per_node,
        workers_per_process=workers_per_process,
        smp=smp,
    )


def delta_costs(**overrides: float) -> CostModel:
    """The calibrated Delta-shaped cost model (DESIGN.md §4).

    Keyword overrides are forwarded to :meth:`CostModel.replace`-style
    construction, e.g. ``delta_costs(comm_msg_ns=300.0)``.
    """
    return CostModel(**overrides) if overrides else CostModel()
