"""Machine model: cluster topology and software/hardware cost constants.

The paper's testbed (NCSA Delta: dual-socket 128-core AMD EPYC nodes, 8
processes per node with 8 worker cores each plus one comm-thread core)
is captured as a :class:`~repro.machine.topology.MachineConfig` preset
plus a :class:`~repro.machine.costs.CostModel` with Delta-shaped
constants (see DESIGN.md §4).
"""

from repro.machine.costs import CostModel
from repro.machine.presets import (
    delta_costs,
    delta_machine,
    nonsmp_machine,
    small_test_machine,
)
from repro.machine.topology import MachineConfig

__all__ = [
    "CostModel",
    "MachineConfig",
    "delta_costs",
    "delta_machine",
    "nonsmp_machine",
    "small_test_machine",
]
