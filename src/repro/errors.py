"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """The discrete-event engine reached an inconsistent state."""


class ConfigError(ReproError):
    """An invalid machine, cost-model or scheme configuration was given."""


class SchedulingError(SimulationError):
    """An event was scheduled in the past or on a stopped engine."""


class DeliveryError(SimulationError):
    """An item or message could not be routed to its destination."""


class QuiescenceError(SimulationError):
    """Quiescence accounting went negative or never completed."""


class HarnessError(ReproError):
    """An experiment or sweep was misconfigured or failed to run."""
