"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """The discrete-event engine reached an inconsistent state."""


class ConfigError(ReproError):
    """An invalid machine, cost-model or scheme configuration was given."""


class SchedulingError(SimulationError):
    """An event was scheduled in the past or on a stopped engine."""


class DeliveryError(SimulationError):
    """An item or message could not be routed to its destination."""


class QuiescenceError(SimulationError):
    """Quiescence accounting went negative or never completed."""


class FaultInjectionError(ConfigError):
    """A fault plan, window schedule or ``--faults`` spec was invalid.

    Raised when constructing a :class:`repro.faults.FaultPlan` (negative
    probabilities, inverted windows, unknown fault kinds) or when parsing
    a declarative fault spec string.
    """


class FlowControlError(ConfigError):
    """A flow-control configuration or ``--flow`` spec was invalid.

    Raised when constructing a :class:`repro.flow.FlowConfig` (non-positive
    credit caps, inverted overload thresholds) or when parsing a
    declarative flow spec string.
    """


class RetryExhaustedError(DeliveryError):
    """Reliable delivery gave up on a message after its retry budget.

    Raised only when the reliability layer is configured with
    ``degrade=False``; by default the runtime degrades the affected
    destination to direct sends instead of raising (see
    ``docs/robustness.md``).
    """


class HarnessError(ReproError):
    """An experiment or sweep was misconfigured or failed to run."""
