"""Time-series telemetry: a flight recorder for one simulated run.

The aggregate counters in :mod:`repro.obs.registry` answer *where* the
nanoseconds went; they cannot show *when*. The paper's crossover
structure (PP lowest latency, WPs best total time, WW collapsing at
scale) and the fault/overload machinery of the reliability and flow
subsystems are time-varying phenomena: a backlog ramp during a scripted
comm-thread stall, credit-gate occupancy saturating ahead of an
overload escalation, retransmit bursts after a loss window. The
:class:`TimelineRecorder` captures exactly those signals as ring-buffered
time series sampled on a **simulated-time** cadence.

Design constraints, in order:

* **Deterministic.** Samples are taken at cadence boundaries of the
  simulated clock, immediately before the first event at-or-past each
  boundary fires. Sampling therefore depends only on the event stream —
  never on wall clock, scheduling or process layout — so serial and
  parallel sweep executions produce byte-identical timeline blocks.
* **Off by default, cheap when on.** With no
  :class:`TimelineConfig` the engine runs its unmodified hot loop; with
  one, the loop pays a single float comparison per event and the probe
  walk only at boundaries (see ``Engine._run_sampled``), guarded by
  ``benchmarks/bench_obs_overhead.py``.
* **Bounded memory.** Samples live in a ring of ``capacity`` rows;
  on overflow the recorder decimates (drops every other retained sample
  and doubles its sampling stride), so arbitrarily long runs keep a
  full-span, progressively coarser trace — classic flight-recorder
  behavior.

Series are named after the metrics-registry entries they shadow
(``commthreads.out_messages``, ``flow.messages_shed``,
``tram.0.WPs.pending_items``, ...) so ``validate-metrics`` can
cross-check the final sample against the end-of-run snapshot counters;
purely instantaneous per-entity series (``ct.3.backlog_ns``,
``gate.nic:0.0.in_flight_msgs``) use names outside the registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.system import RuntimeSystem

#: Schema tag stamped into :meth:`TimelineRecorder.to_dict`.
TIMELINE_SCHEMA = "repro.obs.timeline/1"


@dataclass(frozen=True)
class TimelineConfig:
    """Flight-recorder switch and shape (off unless attached)."""

    enabled: bool = True
    #: Simulated-time sampling cadence. The default keeps a dense trace
    #: for millisecond-scale runs at negligible cost.
    cadence_ns: float = 50_000.0
    #: Ring capacity in samples; overflow decimates (stride doubles).
    capacity: int = 512
    #: Per-destination series (parked/shed per destination process) are
    #: recorded only when the machine has at most this many processes.
    max_dest_series: int = 32


class TimelineRecorder:
    """Periodic sampler attached to one runtime (``rt.timeline``).

    The engine drives it: whenever the next event's firing time crosses
    ``next_due``, the engine calls :meth:`on_boundary` *before* firing,
    so every sample reflects the state exactly at its boundary time
    (all events strictly before the boundary applied, none at or after).
    """

    def __init__(self, rt: "RuntimeSystem", config: TimelineConfig) -> None:
        self.rt = rt
        self.config = config
        self.cadence = float(config.cadence_ns)
        if self.cadence <= 0:
            raise ValueError(f"timeline cadence must be positive, got {self.cadence}")
        self.capacity = max(8, int(config.capacity))
        #: Current sampling stride in cadence units (doubles on overflow).
        self.stride = 1
        self.decimations = 0
        #: Next boundary (absolute simulated ns) the engine compares
        #: event times against. Boundary 0 is skipped: it would always
        #: record the all-zero initial state.
        self.next_due = self.cadence
        #: Retained boundary indices, in base-cadence units, strictly
        #: increasing and all divisible by the stride at record time.
        self._ticks: List[int] = []
        #: Series name -> column of values, parallel to ``_ticks``.
        self._columns: Dict[str, List[float]] = {}
        self._probes: List[Tuple[str, Callable[[float], float]]] = []
        #: Scheme count the probe list was built for; schemes attach to
        #: the runtime after construction, so probes rebuild lazily.
        self._probes_schemes = -1

    # ------------------------------------------------------------------
    # Probe construction
    # ------------------------------------------------------------------
    def _build_probes(self) -> List[Tuple[str, Callable[[float], float]]]:
        rt = self.rt
        probes: List[Tuple[str, Callable[[float], float]]] = []

        ws = [w.stats for w in rt.workers]
        probes.append(
            ("workers.queued_bytes", lambda t: sum(s.queued_bytes for s in ws))
        )

        cts = [p.commthread for p in rt.processes if p.commthread is not None]
        if cts:
            cstats = [ct.stats for ct in cts]
            probes.append(
                ("commthreads.out_messages",
                 lambda t: sum(s.out_messages for s in cstats))
            )
            probes.append(
                ("commthreads.in_messages",
                 lambda t: sum(s.in_messages for s in cstats))
            )
            probes.append(
                ("commthreads.backlog_ns",
                 lambda t: sum(max(0.0, c._free - t) for c in cts))
            )
            for ct in cts:
                probes.append(
                    (f"ct.{ct.pid}.backlog_ns",
                     lambda t, c=ct: max(0.0, c._free - t))
                )

        nics = [nic for node in rt.nodes for nic in node.nics]
        nstats = [nic.stats for nic in nics]
        probes.append(
            ("nics.tx_messages", lambda t: sum(s.tx_messages for s in nstats))
        )
        probes.append(
            ("nics.rx_messages", lambda t: sum(s.rx_messages for s in nstats))
        )
        probes.append(
            ("nics.tx_bytes", lambda t: sum(s.tx_bytes for s in nstats))
        )
        for node in rt.nodes:
            for i, nic in enumerate(node.nics):
                label = f"nic.{node.node_id}.{i}"
                probes.append(
                    (f"{label}.tx_backlog_ns",
                     lambda t, n=nic: max(0.0, n._tx_free - t))
                )
                probes.append(
                    (f"{label}.rx_backlog_ns",
                     lambda t, n=nic: max(0.0, n._rx_free - t))
                )

        flow = rt.flow
        if flow is not None:
            fstats = flow.stats
            probes.append(
                ("flow.messages_admitted", lambda t: fstats.messages_admitted)
            )
            probes.append(
                ("flow.messages_parked", lambda t: fstats.messages_parked)
            )
            probes.append(
                ("flow.messages_shed", lambda t: fstats.messages_shed)
            )
            probes.append(("flow.items_shed", lambda t: fstats.items_shed))
            probes.append(
                ("flow.parked_messages", lambda t: flow.parked_messages())
            )
            probes.append(
                ("flow.overloaded", lambda t: 1 if flow.overloaded else 0)
            )
            gates = flow.gates()
            probes.append(
                ("flow.in_flight_msgs",
                 lambda t: sum(g.in_flight_msgs for g in gates))
            )
            probes.append(
                ("flow.in_flight_bytes",
                 lambda t: sum(g.in_flight_bytes for g in gates))
            )
            probes.append(
                ("flow.oldest_park_age_ns",
                 lambda t: max(
                     (t - g.parked[0].t_parked for g in gates if g.parked),
                     default=0.0,
                 ))
            )
            for gate in gates:
                label = f"gate.{gate.name}"
                probes.append(
                    (f"{label}.in_flight_msgs",
                     lambda t, g=gate: g.in_flight_msgs)
                )
                probes.append(
                    (f"{label}.in_flight_bytes",
                     lambda t, g=gate: g.in_flight_bytes)
                )
                probes.append(
                    (f"{label}.parked", lambda t, g=gate: len(g.parked))
                )
            if rt.machine.total_processes <= self.config.max_dest_series:
                for pid in range(rt.machine.total_processes):
                    probes.append(
                        (f"flow.dest.{pid}.parked_messages",
                         lambda t, p=pid: sum(g.parked_for(p) for g in gates))
                    )
                    probes.append(
                        (f"flow.dest.{pid}.shed_messages",
                         lambda t, p=pid: flow.shed_by_dest.get(p, 0))
                    )

        reliable = rt.reliable
        if reliable is not None:
            rstats = reliable.stats
            probes.append(
                ("reliability.retransmits", lambda t: rstats.retransmits)
            )
            probes.append(
                ("reliability.acks_sent", lambda t: rstats.acks_sent)
            )
            probes.append(
                ("reliability.pending_messages",
                 lambda t: reliable.pending_count())
            )

        faults = rt.faults
        if faults is not None:
            fa = faults.stats
            probes.append(
                ("faults.messages_dropped", lambda t: fa.messages_dropped)
            )
            probes.append(("faults.messages_lost", lambda t: fa.messages_lost))
            probes.append(("faults.items_lost", lambda t: fa.items_lost))
            if rt.dead_procs is not None:
                # Crash fabric armed: record the death/recovery wavefront.
                # Gated so crash-free timeline blocks keep their exact
                # pre-fabric series set.
                probes.append(
                    ("faults.dead_processes",
                     lambda t: len(rt.dead_procs))
                )
                probes.append(
                    ("faults.items_lost_to_crash",
                     lambda t: fa.items_lost_to_crash)
                )
                if reliable is not None:
                    probes.append(
                        ("reliability.peers_suspected",
                         lambda t: rstats.peers_suspected)
                    )
                    probes.append(
                        ("reliability.peers_confirmed_dead",
                         lambda t: rstats.peers_confirmed_dead)
                    )

        if rt.pdes is not None:
            # PDES session telemetry. A timeline-carrying run always
            # falls back to sequential execution (the recorder samples
            # cannot merge across partitions), so these series document
            # the fallback: static per run, shadowing the pdes.*
            # registry entries for the validator's final-sample check.
            def _pdes(field, default=0.0):
                info = rt.pdes_info
                return (
                    float(getattr(info, field)) if info is not None
                    else default
                )

            probes.append(
                ("pdes.null_messages", lambda t: _pdes("null_messages"))
            )
            probes.append(
                ("pdes.horizon_stalls_ns",
                 lambda t: _pdes("horizon_stalls_ns"))
            )
            probes.append(
                ("pdes.partition_imbalance",
                 lambda t: _pdes("partition_imbalance"))
            )

        for i, scheme in enumerate(rt.schemes):
            prefix = f"tram.{i}.{scheme.name}"
            tstats = scheme.stats
            probes.append(
                (f"{prefix}.pending_items", lambda t, s=scheme: s.pending_items())
            )
            probes.append(
                (f"{prefix}.items_inserted",
                 lambda t, s=tstats: s.items_inserted)
            )
            probes.append(
                (f"{prefix}.items_delivered",
                 lambda t, s=tstats: s.items_delivered)
            )
        return probes

    def _ensure_probes(self) -> None:
        n = len(self.rt.schemes)
        if n == self._probes_schemes:
            return
        self._probes = self._build_probes()
        self._probes_schemes = n
        # Series that appear mid-run (a scheme attached between run()
        # calls) are backfilled with zeros so all columns stay parallel.
        depth = len(self._ticks)
        for name, _ in self._probes:
            if name not in self._columns:
                self._columns[name] = [0.0] * depth

    # ------------------------------------------------------------------
    # Sampling (driven by the engine)
    # ------------------------------------------------------------------
    def on_boundary(self, t: float) -> float:
        """Record one sample for the crossing into event time ``t``.

        Called by the engine when ``t >= next_due``, before the event
        fires. Records a single sample at the *latest* eligible boundary
        not after ``t`` (idle gaps collapse to one sample instead of a
        run of identical rows), then returns the new ``next_due``.
        """
        k = int(t // self.cadence)
        k -= k % self.stride
        self._record(k)
        # ``stride`` may have doubled in _record's decimation; realign.
        self.next_due = ((k // self.stride) + 1) * self.stride * self.cadence
        return self.next_due

    def _record(self, k: int) -> None:
        self._ensure_probes()
        stamp = k * self.cadence
        self._ticks.append(k)
        for name, probe in self._probes:
            self._columns[name].append(probe(stamp))
        if len(self._ticks) > self.capacity:
            self._decimate()

    def _decimate(self) -> None:
        """Halve the retained samples; double the sampling stride."""
        self.stride *= 2
        keep = [i for i, k in enumerate(self._ticks) if k % self.stride == 0]
        self._ticks = [self._ticks[i] for i in keep]
        for name, col in self._columns.items():
            self._columns[name] = [col[i] for i in keep]
        self.decimations += 1

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def sample_now(self) -> Dict[str, float]:
        """One probe walk at the current simulated time (not retained)."""
        self._ensure_probes()
        now = self.rt.engine.now
        return {name: probe(now) for name, probe in self._probes}

    def to_dict(self) -> dict:
        """JSON-ready timeline block for the run snapshot.

        The ``final`` sample is taken at export time (the same moment
        the snapshot reads the metrics registry), which is what makes
        the validator's final-sample ≡ snapshot-counter check exact.
        """
        return {
            "schema": TIMELINE_SCHEMA,
            "cadence_ns": self.cadence,
            "stride": self.stride,
            "capacity": self.capacity,
            "decimations": self.decimations,
            "n_samples": len(self._ticks),
            "times_ns": [k * self.cadence for k in self._ticks],
            "series": {name: list(col) for name, col in self._columns.items()},
            "final": {
                "time_ns": self.rt.engine.now,
                "values": self.sample_now(),
            },
        }
