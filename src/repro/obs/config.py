"""Observability switch and run-capturing session.

A single :class:`ObsConfig` flag gates all span/histogram work: schemes
only allocate :class:`~repro.obs.spans.StageLatency` and attach
:class:`~repro.obs.spans.MsgSpan` records when the runtime was built
with an enabled config. With no config (or ``enabled=False``) the hot
path pays exactly one ``is None`` check per message hop — the guard
bench ``benchmarks/bench_obs_overhead.py`` enforces this stays <5%.

:class:`ObsSession` is the harness-facing context manager: runtimes
constructed inside it pick up the session's config automatically and
report a full snapshot after each ``run()``, which the harness folds
into the ``--metrics-out`` JSON artifact::

    with ObsSession() as sess:
        data = run_figure_body()
    payload_runs = sess.records
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.obs.timeline import TimelineConfig

_active: Optional["ObsSession"] = None


@dataclass(frozen=True)
class ObsConfig:
    """The flags gating all instrumentation.

    ``enabled`` gates span/histogram attribution; ``timeline``
    additionally attaches a
    :class:`~repro.obs.timeline.TimelineRecorder` flight recorder to
    every runtime built under this config (``None``, the default, keeps
    the engine on its sampler-free hot loop).
    """

    enabled: bool = True
    timeline: Optional[TimelineConfig] = None


class ObsSession:
    """Collects one snapshot per completed ``RuntimeSystem.run()``.

    Entering installs the session globally; runtimes created while it is
    active inherit ``config`` and call :meth:`update` after every run.
    Snapshots are keyed per runtime (a later ``run()`` on the same
    runtime replaces its earlier snapshot). Sessions nest: the inner one
    wins until it exits.
    """

    def __init__(self, config: Optional[ObsConfig] = None) -> None:
        self.config = config if config is not None else ObsConfig()
        self._snapshots: Dict[int, dict] = {}
        self._keys = itertools.count()
        self._prev: Optional["ObsSession"] = None

    def __enter__(self) -> "ObsSession":
        global _active
        self._prev = _active
        _active = self
        return self

    def __exit__(self, *exc_info: Any) -> None:
        global _active
        _active = self._prev
        self._prev = None

    def update(self, rt: Any, run_stats: Any = None) -> None:
        """Capture (or refresh) the snapshot for one runtime."""
        from repro.obs.snapshot import run_snapshot  # lazy: avoids a cycle

        key = getattr(rt, "_obs_key", None)
        if key is None:
            key = next(self._keys)
            rt._obs_key = key
        snap = run_snapshot(rt)
        if run_stats is not None:
            prev = self._snapshots.get(key)
            events = run_stats.events_fired + (
                prev.get("events_fired", 0) if prev else 0
            )
            snap["events_fired"] = events
        self._snapshots[key] = snap

    def absorb(self, records: List[dict]) -> None:
        """Append pre-built snapshots in order.

        Used by the sweep pool to merge records produced elsewhere —
        shipped back from a worker process or replayed from the result
        cache — at the correct position in this session's record list.
        """
        for rec in records:
            self._snapshots[next(self._keys)] = rec

    @property
    def records(self) -> List[dict]:
        """Captured snapshots, in runtime-creation order."""
        return [self._snapshots[k] for k in sorted(self._snapshots)]


def active_session() -> Optional[ObsSession]:
    """The innermost active :class:`ObsSession`, if any."""
    return _active
