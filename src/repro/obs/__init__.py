"""repro.obs — stage-attributed observability for the simulator.

Three layers:

* :mod:`repro.obs.spans` / :mod:`repro.obs.hist` — per-message
  :class:`MsgSpan` transit records folded into per-scheme
  :class:`StageLatency` log2 histograms (where do the nanoseconds go);
* :mod:`repro.obs.registry` — :class:`MetricsRegistry`, one named/typed
  namespace over every component counter;
* :mod:`repro.obs.config` — the :class:`ObsConfig` gate and
  :class:`ObsSession`, the harness hook that snapshots each run for the
  ``--metrics-out`` JSON artifact.

Everything is off unless a runtime is built with an enabled
:class:`ObsConfig` (directly or via an active :class:`ObsSession`); the
disabled path costs one ``is None`` check per message hop.

``run_snapshot`` is exposed lazily (it reaches up into the harness
layer for utilization, which must not be imported from here at runtime
construction time).
"""

from repro.obs.config import ObsConfig, ObsSession, active_session
from repro.obs.hist import Log2Histogram
from repro.obs.registry import Metric, MetricsRegistry, registry_from_runtime
from repro.obs.spans import LATENCY_STAGES, STAGES, MsgSpan, StageLatency
from repro.obs.timeline import TIMELINE_SCHEMA, TimelineConfig, TimelineRecorder

__all__ = [
    "LATENCY_STAGES",
    "Log2Histogram",
    "Metric",
    "MetricsRegistry",
    "MsgSpan",
    "ObsConfig",
    "ObsSession",
    "STAGES",
    "StageLatency",
    "TIMELINE_SCHEMA",
    "TimelineConfig",
    "TimelineRecorder",
    "active_session",
    "registry_from_runtime",
    "run_snapshot",
]


def __getattr__(name: str):
    if name == "run_snapshot":
        from repro.obs.snapshot import run_snapshot

        return run_snapshot
    raise AttributeError(f"module 'repro.obs' has no attribute {name!r}")
