"""Fixed-bucket log2 histograms for latency aggregation.

The observability layer needs percentiles without unbounded memory and
without per-sample RNG draws (which would perturb determinism budgets on
the hot path). A :class:`Log2Histogram` keeps 64 power-of-two buckets:
recording is an integer ``bit_length`` plus a few adds, percentiles are
a cumulative walk. Values are simulated nanoseconds, so bucket ``i``
covers ``[2**(i-1), 2**i)`` ns — resolution is a factor of two, which is
exactly the granularity latency plots are read at.

Exact count/total/min/max are kept alongside, so means are precise even
though percentiles are bucketed.
"""

from __future__ import annotations

from typing import Optional

#: Number of buckets; 2**63 ns ≈ 292 years of simulated time, far past
#: any run horizon.
N_BUCKETS = 64


class Log2Histogram:
    """Weighted log2 histogram with exact moments.

    ``record(value, weight)`` files ``weight`` observations of ``value``
    nanoseconds. Bucket index is ``int(value).bit_length()`` (bucket 0
    holds values below 1 ns, including zero).
    """

    __slots__ = ("counts", "count", "total", "min", "max")

    def __init__(self) -> None:
        self.counts = [0] * N_BUCKETS
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def record(self, value: float, weight: int = 1) -> None:
        """File ``weight`` observations of ``value`` ns."""
        self.count += weight
        self.total += value * weight
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        iv = int(value)
        idx = iv.bit_length() if iv > 0 else 0
        if idx >= N_BUCKETS:
            idx = N_BUCKETS - 1
        self.counts[idx] += weight

    def merge(self, other: "Log2Histogram") -> None:
        """Fold another histogram into this one."""
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.total += other.total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max

    @property
    def mean(self) -> float:
        """Exact mean of recorded values (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> Optional[float]:
        """Approximate percentile (upper bucket edge, clamped to min/max).

        Accurate to the bucket resolution (a factor of two); ``None``
        when nothing was recorded.
        """
        if self.count == 0:
            return None
        target = self.count * q / 100.0
        cum = 0
        for i, c in enumerate(self.counts):
            cum += c
            if cum >= target:
                upper = float(1 << i)  # bucket i covers [2**(i-1), 2**i)
                return min(max(upper, self.min), self.max)
        return self.max  # pragma: no cover - cum always reaches count

    def summary(self) -> dict:
        """Plain-dict snapshot (the JSON-artifact representation)."""
        return {
            "count": self.count,
            "total_ns": self.total,
            "mean_ns": self.mean,
            "min_ns": self.min if self.count else 0.0,
            "max_ns": self.max,
            "p50_ns": self.percentile(50),
            "p90_ns": self.percentile(90),
            "p99_ns": self.percentile(99),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Log2Histogram n={self.count} mean={self.mean:.1f}ns>"
