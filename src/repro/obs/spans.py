"""Stage-attributed latency spans.

Every aggregated message can carry a :class:`MsgSpan`: a mutable scratch
record the transport components (comm threads, NICs, workers) fill in as
the message moves. At the destination grouping handler the scheme folds
the span into its per-scheme :class:`StageLatency`, attributing each
item's end-to-end latency to the lifecycle stages of the paper's
communication path:

========================  ==============================================
stage                     simulated time attributed
========================  ==============================================
``src_buffer``            item creation -> message release, minus the
                          source grouping work
``src_group``             source-side grouping CPU (WsP only)
``retransmit``            wait between a message's first release and the
                          release of the retransmitted copy that was
                          finally delivered (reliability layer only;
                          accumulated in ``MsgSpan.retransmit_ns``)
``bp_stall``              wait parked at a flow-control credit gate
                          before the comm thread / NIC would accept the
                          message (flow subsystem only; accumulated in
                          ``MsgSpan.bp_stall_ns``)
``ct_queue``              queueing behind comm threads (both sides)
``ct_service``            comm-thread service (both sides)
``nic_tx_queue``          queueing behind the source NIC tx server
``wire``                  NIC tx occupancy + wire flight (or the
                          ``alpha_intra`` hop for intra-node routes)
``nic_rx``                destination NIC rx queueing + occupancy
``dst_group``             arrival at the grouping PE -> grouping-handler
                          start (queueing behind application tasks)
``local_delivery``        enqueue hops and within-process section sends
                          (grouping PE -> final destination PE); also
                          the whole path for bypassed local items
``handler``               per-item application handler CPU
========================  ==============================================

Everything except ``handler`` partitions the interval
``[item created, delivery-handler start]`` — which is exactly what
``TramStats.latency`` measures — so the stage totals sum to the
end-to-end latency total (the property the test-suite checks). The
``handler`` stage is extra CPU charged *after* the latency timestamp and
is excluded from that identity.

Multi-hop schemes (WNs/NN forwards, R2D intermediate hops) restart
attribution when they re-emit: the forwarded leg's ``src_buffer``
absorbs all time up to its own release, so the partition still holds.
"""

from __future__ import annotations

from typing import Dict

from repro.obs.hist import Log2Histogram

#: All lifecycle stages, in path order.
STAGES = (
    "src_buffer",
    "src_group",
    "retransmit",
    "bp_stall",
    "ct_queue",
    "ct_service",
    "nic_tx_queue",
    "wire",
    "nic_rx",
    "dst_group",
    "local_delivery",
    "handler",
)

#: The stages that partition [created, delivered] (``handler`` is CPU
#: charged after the delivery timestamp).
LATENCY_STAGES = tuple(s for s in STAGES if s != "handler")


class MsgSpan:
    """Per-message transit scratch, filled by the transport components.

    Times are accumulated nanoseconds (not timestamps), except
    ``pe_arrival`` which is the absolute time the destination worker
    enqueued the grouping handler.
    """

    __slots__ = (
        "group_ns",
        "retransmit_ns",
        "bp_stall_ns",
        "ct_queue_ns",
        "ct_service_ns",
        "nic_tx_queue_ns",
        "wire_ns",
        "nic_rx_ns",
        "pe_arrival",
    )

    def __init__(self, group_ns: float = 0.0) -> None:
        self.group_ns = group_ns
        self.retransmit_ns = 0.0
        self.bp_stall_ns = 0.0
        self.ct_queue_ns = 0.0
        self.ct_service_ns = 0.0
        self.nic_tx_queue_ns = 0.0
        self.wire_ns = 0.0
        self.nic_rx_ns = 0.0
        self.pe_arrival = 0.0

    def clone(self) -> "MsgSpan":
        """Independent copy — used when the fault fabric duplicates a
        message, so each physical copy attributes its own transit."""
        c = MsgSpan(self.group_ns)
        c.retransmit_ns = self.retransmit_ns
        c.bp_stall_ns = self.bp_stall_ns
        c.ct_queue_ns = self.ct_queue_ns
        c.ct_service_ns = self.ct_service_ns
        c.nic_tx_queue_ns = self.nic_tx_queue_ns
        c.wire_ns = self.wire_ns
        c.nic_rx_ns = self.nic_rx_ns
        c.pe_arrival = self.pe_arrival
        return c

    def transit_ns(self) -> float:
        """Accumulated comm-thread/NIC/wire time (excludes grouping and
        the pre-release retransmit wait)."""
        return (
            self.bp_stall_ns
            + self.ct_queue_ns
            + self.ct_service_ns
            + self.nic_tx_queue_ns
            + self.wire_ns
            + self.nic_rx_ns
        )


class StageLatency:
    """Per-scheme stage histograms (one :class:`Log2Histogram` each)."""

    __slots__ = ("hists",)

    def __init__(self) -> None:
        self.hists: Dict[str, Log2Histogram] = {s: Log2Histogram() for s in STAGES}

    def record(self, stage: str, per_item_ns: float, items: int = 1) -> None:
        """Attribute ``per_item_ns`` to ``stage`` for ``items`` items."""
        self.hists[stage].record(per_item_ns, items)

    def hist(self, stage: str) -> Log2Histogram:
        """The live histogram for ``stage`` (read accessor; the sharded
        variant returns a fold instead)."""
        return self.hists[stage]

    def total_ns(self, include_handler: bool = False) -> float:
        """Summed attributed nanoseconds across stages."""
        stages = STAGES if include_handler else LATENCY_STAGES
        return sum(self.hists[s].total for s in stages)

    def to_dict(self) -> Dict[str, dict]:
        """Stage -> summary dict, omitting stages with no observations."""
        return {
            s: h.summary() for s, h in self.hists.items() if h.count
        }


class NodeShardedStageLatency:
    """Per-node :class:`StageLatency` shards with read-time folds.

    The multi-node twin of
    :class:`repro.tram.stats.NodeShardedLatency`, and for the same
    reason: histogram ``total`` floats are order-sensitive accumulators,
    so records are kept node-local (selected by ``engine.current_owner``)
    and folded in fixed node order when read — making sequential and
    partitioned runs byte-identical.
    """

    __slots__ = ("shards", "_engine")

    def __init__(self, n_nodes: int, engine) -> None:
        self._engine = engine
        self.shards = [StageLatency() for _ in range(n_nodes)]

    def record(self, stage: str, per_item_ns: float, items: int = 1) -> None:
        self.shards[self._engine.current_owner].record(stage, per_item_ns, items)

    def hist(self, stage: str) -> Log2Histogram:
        merged = Log2Histogram()
        for shard in self.shards:
            merged.merge(shard.hists[stage])
        return merged

    @property
    def hists(self) -> Dict[str, Log2Histogram]:
        return {s: self.hist(s) for s in STAGES}

    def total_ns(self, include_handler: bool = False) -> float:
        stages = STAGES if include_handler else LATENCY_STAGES
        total = 0.0
        for s in stages:
            for shard in self.shards:
                total += shard.hists[s].total
        return total

    def to_dict(self) -> Dict[str, dict]:
        return {
            s: h.summary() for s, h in self.hists.items() if h.count
        }
