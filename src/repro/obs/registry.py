"""A unified, named, typed metrics namespace.

Every counter the simulator keeps — ``TramStats``, worker /
comm-thread / NIC stats, transport route counters, the utilization
report — registers here under a dotted name with a kind (``counter``,
``gauge`` or ``histogram``) and a unit, so tools can enumerate and
snapshot them uniformly instead of spelunking component objects.

Readers are callables evaluated at snapshot time, so a registry built
before ``rt.run()`` reads post-run values for free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.errors import ConfigError
from repro.obs.hist import Log2Histogram

#: Schema identifier stamped into :meth:`MetricsRegistry.to_json`.
REGISTRY_SCHEMA = "repro.metrics-registry/1"

KINDS = ("counter", "gauge", "histogram")


@dataclass(frozen=True)
class Metric:
    """One named metric: metadata plus a value reader."""

    name: str
    kind: str
    read: Callable[[], Any]
    unit: str = ""
    help: str = ""

    def value(self) -> Any:
        """Current value; histograms resolve to their summary dict."""
        v = self.read()
        if isinstance(v, Log2Histogram):
            return v.summary()
        return v


class MetricsRegistry:
    """Collision-checked collection of :class:`Metric` objects."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def register(
        self,
        name: str,
        kind: str,
        read: Callable[[], Any],
        *,
        unit: str = "",
        help: str = "",
    ) -> Metric:
        """Add a metric; duplicate names and unknown kinds are errors."""
        if kind not in KINDS:
            raise ConfigError(f"unknown metric kind {kind!r}; use one of {KINDS}")
        if name in self._metrics:
            raise ConfigError(f"metric {name!r} already registered")
        metric = Metric(name=name, kind=kind, read=read, unit=unit, help=help)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, read: Callable[[], Any], **kw: str) -> Metric:
        return self.register(name, "counter", read, **kw)

    def gauge(self, name: str, read: Callable[[], Any], **kw: str) -> Metric:
        return self.register(name, "gauge", read, **kw)

    def histogram(self, name: str, read: Callable[[], Any], **kw: str) -> Metric:
        return self.register(name, "histogram", read, **kw)

    def names(self) -> list:
        return sorted(self._metrics)

    def get(self, name: str) -> Metric:
        return self._metrics[name]

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def snapshot(self) -> Dict[str, Any]:
        """Name -> current value for every registered metric."""
        return {name: self._metrics[name].value() for name in self.names()}

    def to_json(self) -> dict:
        """Schema-versioned snapshot including metadata per metric."""
        return {
            "schema": REGISTRY_SCHEMA,
            "metrics": {
                name: {
                    "kind": m.kind,
                    "unit": m.unit,
                    "help": m.help,
                    "value": m.value(),
                }
                for name, m in sorted(self._metrics.items())
            },
        }


# ----------------------------------------------------------------------
# Runtime wiring
# ----------------------------------------------------------------------
_TRAM_COUNTERS = (
    ("items_inserted", "items"),
    ("items_delivered", "items"),
    ("items_bypassed_local", "items"),
    ("messages_full", "messages"),
    ("messages_flush", "messages"),
    ("bytes_sent", "bytes"),
    ("atomic_inserts", "items"),
    ("group_elements", "elements"),
    ("local_sections", "sections"),
    ("messages_forwarded", "messages"),
    ("buffers_allocated", "buffers"),
    ("buffer_bytes_allocated", "bytes"),
    ("flushes_requested", "flushes"),
    ("priority_flushes", "flushes"),
    ("degraded_destinations", "processes"),
    ("direct_fallback_sends", "items"),
    ("flush_escalations", "escalations"),
    ("overload_escalations", "escalations"),
)

_FAULT_COUNTERS = (
    ("messages_dropped", "messages"),
    ("messages_duplicated", "messages"),
    ("messages_corrupted", "messages"),
    ("messages_reordered", "messages"),
    ("messages_lost", "messages"),
    ("items_lost", "items"),
)

#: Registered only when the crash fabric is armed (``rt.dead_procs`` not
#: None), so crash-free metric dumps keep their exact pre-fabric names.
_CRASH_FAULT_COUNTERS = (
    ("proc_crashes", "processes"),
    ("proc_restarts", "processes"),
    ("messages_lost_to_crash", "messages"),
    ("items_lost_to_crash", "items"),
)

_CRASH_RELIABILITY_COUNTERS = (
    ("peers_suspected", "processes"),
    ("suspicions_cleared", "processes"),
    ("probes_sent", "messages"),
    ("peers_confirmed_dead", "processes"),
    ("channels_torn_down", "channels"),
)

_CRASH_TRAM_COUNTERS = (
    ("dead_peer_drops", "items"),
    ("failover_reroutes", "decisions"),
)

_RELIABILITY_COUNTERS = (
    ("protected_messages", "messages"),
    ("retransmits", "messages"),
    ("acks_sent", "messages"),
    ("acks_piggybacked", "messages"),
    ("nacks_sent", "messages"),
    ("duplicates_discarded", "messages"),
    ("corrupt_discarded", "messages"),
    ("window_overflow_discards", "messages"),
    ("channels_degraded", "channels"),
    ("messages_abandoned", "messages"),
    ("items_abandoned", "items"),
    ("messages_unconfirmed", "messages"),
    ("stale_discarded", "messages"),
)

_FLOW_COUNTERS = (
    ("messages_admitted", "messages"),
    ("messages_parked", "messages"),
    ("messages_shed", "messages"),
    ("items_shed", "items"),
    ("bytes_shed", "bytes"),
    ("source_stalls", "stalls"),
    ("flush_deferrals", "flushes"),
    ("overload_escalations", "escalations"),
    ("overload_clears", "escalations"),
)

_UTIL_GAUGES = (
    "worker_mean",
    "worker_max",
    "commthread_mean",
    "commthread_max",
    "nic_tx_mean",
    "nic_rx_mean",
    "commthread_queue_wait_ns",
    "nic_queue_wait_ns",
    "commthread_max_backlog_ns",
    "worker_queued_bytes_hwm",
)


def _util_unit(fname: str) -> str:
    if fname.endswith("_ns"):
        return "ns"
    if "bytes" in fname:
        return "bytes"
    return "fraction"


def _utilization_reader(rt: Any) -> Callable[[], Any]:
    """Memoized utilization report, recomputed when the clock moves."""
    cache: Dict[float, Any] = {}

    def get() -> Optional[Any]:
        if rt.engine.now <= 0:
            return None
        t = rt.engine.now
        if t not in cache:
            from repro.harness.metrics import utilization  # lazy: layering

            cache.clear()
            cache[t] = utilization(rt)
        return cache[t]

    return get


def registry_from_runtime(rt: Any) -> MetricsRegistry:
    """Register every counter a :class:`RuntimeSystem` keeps.

    Names follow ``component.metric`` (aggregated over instances) and
    ``tram.<i>.<scheme>.metric`` per attached scheme instance.
    """
    reg = MetricsRegistry()
    reg.gauge("run.total_time_ns", lambda: rt.engine.now, unit="ns",
              help="simulated clock at snapshot time")

    ws = [w.stats for w in rt.workers]
    reg.counter("workers.tasks_executed",
                lambda: sum(s.tasks_executed for s in ws), unit="tasks")
    reg.counter("workers.messages_received",
                lambda: sum(s.messages_received for s in ws), unit="messages")
    reg.counter("workers.idle_transitions",
                lambda: sum(s.idle_transitions for s in ws))
    reg.gauge("workers.busy_ns_total",
              lambda: sum(s.busy_ns for s in ws), unit="ns")
    reg.gauge("workers.busy_ns_max",
              lambda: max((s.busy_ns for s in ws), default=0.0), unit="ns")
    reg.gauge("workers.queued_bytes",
              lambda: sum(s.queued_bytes for s in ws), unit="bytes",
              help="bytes of received messages not yet handled")
    reg.gauge("workers.queued_bytes_hwm",
              lambda: max((s.queued_bytes_hwm for s in ws), default=0),
              unit="bytes",
              help="largest PE receive-queue occupancy any worker reached")

    cts = [p.commthread.stats for p in rt.processes if p.commthread is not None]
    reg.counter("commthreads.out_messages",
                lambda: sum(s.out_messages for s in cts), unit="messages")
    reg.counter("commthreads.in_messages",
                lambda: sum(s.in_messages for s in cts), unit="messages")
    reg.gauge("commthreads.busy_ns_total",
              lambda: sum(s.busy_ns for s in cts), unit="ns")
    reg.gauge("commthreads.queue_wait_ns_total",
              lambda: sum(s.queue_wait_ns for s in cts), unit="ns")
    reg.gauge("commthreads.max_backlog_ns",
              lambda: max((s.max_backlog_ns for s in cts), default=0.0),
              unit="ns",
              help="worst booked-ahead horizon any comm thread reached")

    nics = [nic.stats for node in rt.nodes for nic in node.nics]
    reg.counter("nics.tx_messages",
                lambda: sum(s.tx_messages for s in nics), unit="messages")
    reg.counter("nics.rx_messages",
                lambda: sum(s.rx_messages for s in nics), unit="messages")
    reg.counter("nics.tx_bytes", lambda: sum(s.tx_bytes for s in nics),
                unit="bytes")
    reg.counter("nics.rx_bytes", lambda: sum(s.rx_bytes for s in nics),
                unit="bytes")
    reg.gauge("nics.tx_queue_wait_ns_total",
              lambda: sum(s.tx_queue_wait_ns for s in nics), unit="ns")
    reg.gauge("nics.rx_queue_wait_ns_total",
              lambda: sum(s.rx_queue_wait_ns for s in nics), unit="ns")

    tstats = rt.transport.stats
    for route in list(tstats.messages):
        rname = route.value
        reg.counter(f"transport.{rname}.messages",
                    lambda r=route: tstats.messages[r], unit="messages")
        reg.counter(f"transport.{rname}.bytes",
                    lambda r=route: tstats.bytes[r], unit="bytes")

    util = _utilization_reader(rt)
    for fname in _UTIL_GAUGES:
        unit = _util_unit(fname)
        reg.gauge(f"utilization.{fname}",
                  lambda f=fname: getattr(util(), f, None)
                  if util() is not None else None,
                  unit=unit)
    reg.gauge("utilization.bottleneck",
              lambda: util().bottleneck() if util() is not None else None,
              help="most-utilized component class")

    crash_armed = getattr(rt, "dead_procs", None) is not None

    faults = getattr(rt, "faults", None)
    if faults is not None:
        fstats = faults.stats
        for fname, unit in _FAULT_COUNTERS:
            reg.counter(f"faults.{fname}",
                        lambda s=fstats, f=fname: getattr(s, f), unit=unit)
        reg.gauge("faults.ct_stall_ns", lambda s=fstats: s.ct_stall_ns,
                  unit="ns", help="comm-thread time frozen by stall windows")
        if crash_armed:
            for fname, unit in _CRASH_FAULT_COUNTERS:
                reg.counter(f"faults.{fname}",
                            lambda s=fstats, f=fname: getattr(s, f), unit=unit)
            reg.gauge("faults.dead_processes",
                      lambda r=rt: len(r.dead_procs), unit="processes",
                      help="processes dead at snapshot time")

    reliable = getattr(rt, "reliable", None)
    if reliable is not None:
        rstats = reliable.stats
        for fname, unit in _RELIABILITY_COUNTERS:
            reg.counter(f"reliability.{fname}",
                        lambda s=rstats, f=fname: getattr(s, f), unit=unit)
        reg.gauge("reliability.pending_messages",
                  lambda r=reliable: r.pending_count(), unit="messages",
                  help="sent but unacked messages at snapshot time")
        if crash_armed:
            for fname, unit in _CRASH_RELIABILITY_COUNTERS:
                reg.counter(f"reliability.{fname}",
                            lambda s=rstats, f=fname: getattr(s, f), unit=unit)

    flow = getattr(rt, "flow", None)
    if flow is not None:
        flstats = flow.stats
        for fname, unit in _FLOW_COUNTERS:
            reg.counter(f"flow.{fname}",
                        lambda s=flstats, f=fname: getattr(s, f), unit=unit)
        reg.gauge("flow.park_wait_ns", lambda s=flstats: s.park_wait_ns,
                  unit="ns", help="total time messages spent parked at gates")
        reg.gauge("flow.source_stall_ns",
                  lambda s=flstats: s.source_stall_ns, unit="ns",
                  help="CPU time charged to producers as backpressure")
        reg.gauge("flow.parked_messages",
                  lambda f=flow: f.parked_messages(), unit="messages",
                  help="messages parked at gates at snapshot time")
        reg.gauge("flow.overloaded",
                  lambda f=flow: f.overloaded,
                  help="whether the overload detector is escalated")

    if getattr(rt, "pdes", None) is not None:
        # Conservative-PDES execution telemetry. Gated on the session
        # config (present from construction) and read through
        # ``rt.pdes_info`` lazily, so a registry built before rt.run()
        # reads the completed run's values. All pdes.* names are
        # stripped from the canonical artifact form — they describe the
        # execution strategy, never the simulated result.
        def _pinfo(field: str, default: Any = 0) -> Any:
            info = getattr(rt, "pdes_info", None)
            return getattr(info, field) if info is not None else default

        reg.gauge("pdes.partitions", lambda: _pinfo("partitions", 1),
                  unit="partitions",
                  help="forked event-loop partitions of the last run")
        reg.gauge("pdes.lookahead_ns", lambda: _pinfo("lookahead_ns", 0.0),
                  unit="ns",
                  help="conservative lookahead (min inter-node latency)")
        reg.counter("pdes.rounds", lambda: _pinfo("rounds"), unit="rounds",
                    help="coordinator barrier rounds")
        reg.counter("pdes.null_messages", lambda: _pinfo("null_messages"),
                    unit="messages",
                    help="empty horizon grants (pure lookahead promises)")
        reg.counter("pdes.wire_messages", lambda: _pinfo("wire_messages"),
                    unit="messages",
                    help="cross-partition simulated messages exchanged")
        reg.gauge("pdes.horizon_stalls_ns", lambda: _pinfo("horizon_stalls_ns", 0.0),
                  unit="ns",
                  help="wall-clock partitions spent waiting on grants")
        reg.gauge("pdes.partition_imbalance",
                  lambda: _pinfo("partition_imbalance", 0.0),
                  unit="fraction",
                  help="(peak - min) / peak of per-partition event counts")

    for i, scheme in enumerate(getattr(rt, "schemes", ())):
        prefix = f"tram.{i}.{scheme.name}"
        stats = scheme.stats
        for fname, unit in _TRAM_COUNTERS:
            reg.counter(f"{prefix}.{fname}",
                        lambda s=stats, f=fname: getattr(s, f), unit=unit)
        if crash_armed:
            for fname, unit in _CRASH_TRAM_COUNTERS:
                reg.counter(f"{prefix}.{fname}",
                            lambda s=stats, f=fname: getattr(s, f), unit=unit)
        reg.gauge(f"{prefix}.pending_items",
                  lambda s=scheme: s.pending_items(), unit="items")
        reg.gauge(f"{prefix}.latency_mean_ns",
                  lambda s=stats: s.latency.mean, unit="ns")
        stages = getattr(scheme, "stages", None)
        if stages is not None:
            for stage in stages.hists:
                reg.histogram(f"{prefix}.stage.{stage}",
                              lambda st=stages, s=stage: st.hist(s), unit="ns",
                              help="per-item latency attributed to this stage")
    return reg
