"""Whole-run snapshot: one JSON-ready dict per completed run.

This is the per-run record the harness embeds in ``--metrics-out``
artifacts: machine shape, component aggregates, per-scheme stats and
stage breakdowns, utilization with the bottleneck verdict, and the full
metrics-registry dump.

Imports from :mod:`repro.harness` happen lazily inside the function —
``repro.obs`` sits below the harness in the layering (the runtime
imports it), so a module-level import would be a cycle.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.obs.registry import registry_from_runtime


def _machine_dict(machine: Any) -> dict:
    return {
        "nodes": machine.nodes,
        "processes_per_node": machine.processes_per_node,
        "workers_per_process": machine.workers_per_process,
        "total_workers": machine.total_workers,
        "smp": machine.smp,
    }


def _crash_armed(rt: Any) -> bool:
    """Whether the crash fabric is on for this runtime.

    Crash-only keys are merged into snapshot blocks only when armed, so
    artifacts from crash-free runs stay byte-identical to pre-fabric
    ones.
    """
    return getattr(rt, "dead_procs", None) is not None


def _scheme_dict(index: int, scheme: Any, crash_armed: bool = False) -> dict:
    lat = scheme.stats.latency
    stages = getattr(scheme, "stages", None)
    stats = scheme.stats.summary()
    if crash_armed:
        stats.update(scheme.stats.crash_summary())
    entry: Dict[str, Any] = {
        "index": index,
        "name": scheme.name,
        "stats": stats,
        "latency": {
            "count": lat.count,
            "total_ns": lat.total,
            "mean_ns": lat.mean,
            "min_ns": lat.min if lat.count else 0.0,
            "max_ns": lat.max,
        },
        "stages": stages.to_dict() if stages is not None else None,
    }
    if stages is not None:
        entry["stage_latency_total_ns"] = stages.total_ns()
    return entry


def _utilization_dict(rt: Any) -> Optional[dict]:
    from repro.harness.metrics import utilization  # lazy: layering

    if rt.engine.now <= 0:
        return None
    report = utilization(rt)
    out = report.to_dict()
    out["bottleneck"] = report.bottleneck()
    out["bottleneck_detail"] = report.bottleneck_detail()
    return out


def _faults_dict(rt: Any) -> Optional[dict]:
    faults = getattr(rt, "faults", None)
    if faults is None:
        return None
    out = faults.stats.to_dict()
    if _crash_armed(rt):
        out.update(faults.stats.crash_to_dict())
    return out


def _reliability_dict(rt: Any) -> Optional[dict]:
    reliable = getattr(rt, "reliable", None)
    if reliable is None:
        return None
    out = reliable.stats.to_dict()
    out["pending_messages"] = reliable.pending_count()
    if _crash_armed(rt):
        out.update(reliable.stats.crash_to_dict())
    return out


def _flow_dict(rt: Any) -> Optional[dict]:
    flow = getattr(rt, "flow", None)
    if flow is None:
        return None
    return flow.to_dict()


def _timeline_dict(rt: Any) -> Optional[dict]:
    timeline = getattr(rt, "timeline", None)
    if timeline is None:
        return None
    return timeline.to_dict()


def _pdes_dict(rt: Any) -> Optional[dict]:
    """The conservative-PDES run record, when the run executed (or fell
    back) under a :class:`~repro.sim.parallel.PdesSession`. Stripped
    from the canonical artifact form — execution strategy, not result."""
    info = getattr(rt, "pdes_info", None)
    if info is None:
        return None
    return info.to_dict()


def run_snapshot(rt: Any) -> dict:
    """Summarize a finished :class:`~repro.runtime.system.RuntimeSystem`."""
    transport = rt.transport.stats
    return {
        "machine": _machine_dict(rt.machine),
        "total_time_ns": rt.engine.now,
        "transport": {
            route.value: {
                "messages": transport.messages[route],
                "bytes": transport.bytes[route],
            }
            for route in transport.messages
        },
        "schemes": [
            _scheme_dict(i, s, _crash_armed(rt))
            for i, s in enumerate(getattr(rt, "schemes", ()))
        ],
        "utilization": _utilization_dict(rt),
        # Optional blocks are always present, explicitly null when the
        # subsystem is off — consumers can tell "disabled" apart from
        # "produced by an older schema" (repro.run-metrics/2 requires
        # these keys; see repro.harness.artifact).
        "faults": _faults_dict(rt),
        "reliability": _reliability_dict(rt),
        "flow": _flow_dict(rt),
        "timeline": _timeline_dict(rt),
        "pdes": _pdes_dict(rt),
        "metrics": registry_from_runtime(rt).to_json(),
    }
