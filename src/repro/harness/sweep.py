"""Generic parameter sweeps with seed replication.

The per-figure generators in :mod:`repro.harness.figures` are
hand-shaped to match the paper; this module provides the generic tool
for *new* studies: run a factory over a parameter grid, optionally
replicating each cell over seeds to get error bars (the simulator is
deterministic per seed, so seed variation plays the role of the paper's
multiple trials).

Execution goes through :mod:`repro.harness.pool`: grid points can be
dispatched to a work-stealing process pool (``parallel=N``) and/or
persisted in a content-addressed result cache (``cache_dir=...``), with
results merged deterministically by grid index so the aggregated
:class:`SweepResult` and metrics artifact do not depend on the
schedule.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import HarnessError
from repro.util.stats import mean_std
from repro.util.tables import render_table


@dataclass(frozen=True)
class SweepCell:
    """One grid point of a sweep.

    Poisoned seed-runs (points quarantined after exhausting their
    retry budget) appear as ``nan`` in :attr:`values`; the mean/std
    aggregate over the finite values only, so one quarantined seed
    degrades a cell's error bars instead of wiping out the cell.
    """

    params: Dict[str, Any]
    #: Per-seed metric values, in seed order (``nan`` = poisoned).
    values: Tuple[float, ...]
    #: Per-seed execution wall-clock (0.0 for replayed cache hits).
    wall_s: Tuple[float, ...] = ()
    #: How many of this cell's seed-runs were served from the cache.
    cache_hits: int = 0

    @property
    def finite_values(self) -> Tuple[float, ...]:
        return tuple(v for v in self.values if math.isfinite(v))

    @property
    def mean(self) -> float:
        finite = self.finite_values
        return mean_std(finite)[0] if finite else float("nan")

    @property
    def std(self) -> float:
        finite = self.finite_values
        return mean_std(finite)[1] if finite else float("nan")


@dataclass
class SweepResult:
    """All cells of a completed sweep."""

    axes: Dict[str, Sequence[Any]]
    metric: str
    cells: List[SweepCell] = field(default_factory=list)
    #: Pool execution provenance (the artifact's ``provenance`` block):
    #: per-point cache/worker/wall records plus the aggregate summary.
    #: ``None`` when nothing ran through a pool context.
    pool: Optional[Dict[str, Any]] = None

    def cell(self, **params: Any) -> SweepCell:
        """Look up one grid point by its exact parameters."""
        for c in self.cells:
            if c.params == params:
                return c
        raise KeyError(params)

    @property
    def total_cache_hits(self) -> int:
        return sum(c.cache_hits for c in self.cells)

    @property
    def total_points(self) -> int:
        return sum(len(c.values) for c in self.cells)

    def to_table(self) -> str:
        """Render the grid as a table (one row per cell)."""
        names = list(self.axes)
        headers = names + [f"{self.metric} (mean)", "std", "wall (s)", "cache"]
        rows = [
            [c.params[n] for n in names]
            + [c.mean, c.std, sum(c.wall_s), f"{c.cache_hits}/{len(c.values)}"]
            for c in self.cells
        ]
        return render_table(headers, rows)

    def pool_summary_text(self) -> Optional[str]:
        """Human-readable pool execution summary for the end-of-run
        report (hit rate, total execution wall, per-worker points), or
        ``None`` when no provenance was recorded."""
        if not self.pool:
            return None
        summary = self.pool.get("summary") or {}
        n = summary.get("n_points", 0)
        hits = summary.get("cache_hits", 0)
        executed = summary.get("executed", 0)
        wall = summary.get("exec_wall_s", 0.0)
        rate = hits / n if n else 0.0
        parts = [
            f"pool: {n} point(s), {hits} cache hit(s) ({rate:.0%}), "
            f"{executed} executed in {wall:.2f}s"
        ]
        poisoned = summary.get("poisoned", 0)
        retries = summary.get("retries", 0)
        restarts = summary.get("restarts", 0)
        if poisoned or retries or restarts:
            parts.append(
                f"  faults: {retries} retry(ies), {poisoned} poisoned, "
                f"{restarts} worker restart(s)"
            )
        workers = summary.get("workers") or {}
        if len(workers) > 1 or (workers and "0" not in workers):
            per = ", ".join(
                f"w{wid}: {st.get('points', 0)}pt/{st.get('wall_s', 0.0):.2f}s"
                for wid, st in sorted(
                    workers.items(), key=lambda kv: int(kv[0])
                )
            )
            parts.append(f"  workers: {per}")
        return "\n".join(parts)


def run_sweep(
    fn: Callable[..., float],
    axes: Dict[str, Sequence[Any]],
    *,
    seeds: Sequence[int] = (0,),
    metric: str = "value",
    metrics_path=None,
    flow=None,
    timeline=None,
    parallel: int = 1,
    cache_dir: Optional[Path] = None,
    fresh: bool = False,
    tag: Optional[str] = None,
    max_executions: Optional[int] = None,
    status: bool = False,
    status_json: Optional[Path] = None,
    retries: int = 0,
    point_timeout_s: Optional[float] = None,
    journal: Optional[Path] = None,
    resume: bool = False,
    drain_signals: bool = False,
    sim_parallel: int = 1,
) -> SweepResult:
    """Evaluate ``fn(seed=..., **params)`` over the cartesian grid.

    Parameters
    ----------
    fn:
        Callable returning one float metric. It must accept every axis
        name as a keyword argument plus ``seed``, and its result must
        depend only on those arguments (no ambient global RNG — the
        pool scrambles global RNG state per executor to enforce this).
    axes:
        Mapping of parameter name to the values to sweep.
    seeds:
        Seeds to replicate each cell over (error bars).
    metrics_path:
        Optional path: run the grid inside an
        :class:`~repro.obs.config.ObsSession` and write the
        schema-versioned JSON artifact there (per-run snapshots with
        stage breakdowns; see :mod:`repro.harness.artifact`).
    flow:
        Optional :class:`~repro.flow.FlowConfig` (or spec string for
        :meth:`~repro.flow.FlowConfig.parse`): run every cell with
        credit-based flow control active.
    timeline:
        Optional :class:`~repro.obs.TimelineConfig`: attach the
        flight recorder to every run, embedding per-run ``timeline``
        blocks in the artifact (implies an ObsSession even without
        ``metrics_path``).
    parallel:
        Worker processes for the point executor; 1 (default) runs the
        grid serially in-process. The aggregated result is identical
        either way — only wall-clock changes.
    cache_dir:
        Content-addressed result cache directory. Previously completed
        identical points are replayed for free, newly executed points
        are persisted as they finish (interrupted sweeps resume).
    fresh:
        Ignore existing cache entries (still writes fresh ones).
    tag:
        Stable cache identity for ``fn``; required with ``cache_dir``
        when ``fn`` is a lambda/closure/partial.
    max_executions:
        Execute at most this many points, then raise
        :class:`~repro.harness.pool.SweepInterrupted` (cache hits are
        free). Exists to exercise resumability.
    status:
        Render a live fleet-status line to stderr while points run.
    status_json:
        Rewrite this JSON file with live fleet status (queue depth,
        hit rate, per-worker throughput, ETA) as points complete.
    retries:
        Extra attempts per point after a failure (seeded exponential
        backoff between attempts). With retries on, a point that
        fails every attempt is quarantined as a ``poisoned`` outcome
        (``nan`` in its cell) instead of failing the sweep.
    point_timeout_s:
        Wall-clock budget per point in parallel runs; a worker stuck
        past it is killed and the attempt counts as a failure.
    journal:
        Append-only JSONL journal of resolved points (fsync'd per
        record) for crash recovery; see :mod:`repro.harness.journal`.
    resume:
        Replay a matching journal before executing anything, so a
        sweep killed mid-flight continues from its last durable point.
    drain_signals:
        Handle SIGINT/SIGTERM as a graceful drain: finish in-flight
        points, flush the journal and fleet status, then raise
        :class:`~repro.harness.pool.SweepInterrupted`.
    sim_parallel:
        Partition count for the conservative PDES core: every
        simulated run inside the sweep executes under a
        :class:`~repro.sim.parallel.PdesSession` sharded by simulated
        node across this many forked partitions. Results are identical
        to sequential execution; only wall-clock changes.

    Examples
    --------
    >>> from repro.harness.sweep import run_sweep
    >>> res = run_sweep(lambda x, seed: float(x * x), {"x": [1, 2, 3]})
    >>> [c.mean for c in res.cells]
    [1.0, 4.0, 9.0]
    """
    if not axes:
        raise HarnessError("sweep needs at least one axis")
    if not seeds:
        raise HarnessError("sweep needs at least one seed")
    names = list(axes)
    combos = [
        dict(zip(names, combo))
        for combo in itertools.product(*(axes[n] for n in names))
    ]

    fcfg = None
    if flow is not None:
        from repro.flow import FlowConfig

        fcfg = flow if isinstance(flow, FlowConfig) else FlowConfig.parse(flow)
        if not fcfg.enabled:
            fcfg = None

    from contextlib import ExitStack

    from repro.harness.pool import PoolConfig, map_points, pool_session

    pcfg = PoolConfig(
        parallel=parallel,
        cache_dir=cache_dir,
        cache_read=not fresh,
        cache_write=True,
        max_executions=max_executions,
        status=status,
        status_json=status_json,
        retries=retries,
        point_timeout_s=point_timeout_s,
        # Quarantine only when the caller opted into fault tolerance;
        # a plain sweep still fails fast on the first point error.
        quarantine=bool(retries or point_timeout_s is not None),
        journal=journal,
        resume=resume,
        drain_signals=drain_signals,
    )

    session = None
    pdes_ctx = None
    with ExitStack() as stack:
        if fcfg is not None:
            from repro.flow import FlowSession

            stack.enter_context(FlowSession(fcfg))
        if sim_parallel != 1:
            from repro.sim.parallel import PdesConfig, PdesSession

            # Entered before pool_session so forked pool workers
            # inherit the ambient session.
            pdes_ctx = stack.enter_context(
                PdesSession(PdesConfig(partitions=sim_parallel))
            )
        if metrics_path is not None or timeline is not None:
            from repro.obs import ObsConfig, ObsSession

            session = stack.enter_context(
                ObsSession(ObsConfig(timeline=timeline))
            )
        ctx = stack.enter_context(pool_session(pcfg))
        outcomes = map_points(fn, combos, tag=tag, seeds=seeds)

    result = SweepResult(axes=dict(axes), metric=metric)
    result.pool = ctx.provenance_payload()
    if pdes_ctx is not None:
        result.pool = dict(result.pool or {})
        result.pool["pdes"] = pdes_ctx.provenance_payload()
    n_seeds = len(seeds)
    for ci, params in enumerate(combos):
        chunk = outcomes[ci * n_seeds : (ci + 1) * n_seeds]
        result.cells.append(
            SweepCell(
                params=params,
                values=tuple(
                    float("nan") if o.value is None else float(o.value)
                    for o in chunk
                ),
                wall_s=tuple(o.wall_s for o in chunk),
                cache_hits=sum(1 for o in chunk if o.cache_hit),
            )
        )

    if metrics_path is None:
        return result

    from dataclasses import asdict as _asdict

    from repro.harness.artifact import build_metrics_payload, write_metrics_json

    extra = {"axes": {n: list(axes[n]) for n in names}, "seeds": list(seeds)}
    if fcfg is not None:
        extra["flow"] = _asdict(fcfg)
    if timeline is not None:
        extra["timeline"] = _asdict(timeline)
    payload = build_metrics_payload(
        target=f"sweep:{metric}",
        profile="custom",
        runs=session.records,
        sweep=result,
        extra_config=extra,
        provenance=result.pool,
    )
    write_metrics_json(metrics_path, payload)
    return result
