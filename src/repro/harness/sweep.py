"""Generic parameter sweeps with seed replication.

The per-figure generators in :mod:`repro.harness.figures` are
hand-shaped to match the paper; this module provides the generic tool
for *new* studies: run a factory over a parameter grid, optionally
replicating each cell over seeds to get error bars (the simulator is
deterministic per seed, so seed variation plays the role of the paper's
multiple trials).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Sequence, Tuple

from repro.errors import HarnessError
from repro.util.stats import mean_std
from repro.util.tables import render_table


@dataclass(frozen=True)
class SweepCell:
    """One grid point of a sweep."""

    params: Dict[str, Any]
    #: Per-seed metric values, in seed order.
    values: Tuple[float, ...]

    @property
    def mean(self) -> float:
        return mean_std(self.values)[0]

    @property
    def std(self) -> float:
        return mean_std(self.values)[1]


@dataclass
class SweepResult:
    """All cells of a completed sweep."""

    axes: Dict[str, Sequence[Any]]
    metric: str
    cells: List[SweepCell] = field(default_factory=list)

    def cell(self, **params: Any) -> SweepCell:
        """Look up one grid point by its exact parameters."""
        for c in self.cells:
            if c.params == params:
                return c
        raise KeyError(params)

    def to_table(self) -> str:
        """Render the grid as a table (one row per cell)."""
        names = list(self.axes)
        headers = names + [f"{self.metric} (mean)", "std"]
        rows = [
            [c.params[n] for n in names] + [c.mean, c.std]
            for c in self.cells
        ]
        return render_table(headers, rows)


def run_sweep(
    fn: Callable[..., float],
    axes: Dict[str, Sequence[Any]],
    *,
    seeds: Sequence[int] = (0,),
    metric: str = "value",
    metrics_path=None,
    flow=None,
) -> SweepResult:
    """Evaluate ``fn(seed=..., **params)`` over the cartesian grid.

    Parameters
    ----------
    fn:
        Callable returning one float metric. It must accept every axis
        name as a keyword argument plus ``seed``.
    axes:
        Mapping of parameter name to the values to sweep.
    seeds:
        Seeds to replicate each cell over (error bars).
    metrics_path:
        Optional path: run the grid inside an
        :class:`~repro.obs.config.ObsSession` and write the
        schema-versioned JSON artifact there (per-run snapshots with
        stage breakdowns; see :mod:`repro.harness.artifact`).
    flow:
        Optional :class:`~repro.flow.FlowConfig` (or spec string for
        :meth:`~repro.flow.FlowConfig.parse`): run every cell with
        credit-based flow control active.

    Examples
    --------
    >>> from repro.harness.sweep import run_sweep
    >>> res = run_sweep(lambda x, seed: float(x * x), {"x": [1, 2, 3]})
    >>> [c.mean for c in res.cells]
    [1.0, 4.0, 9.0]
    """
    if not axes:
        raise HarnessError("sweep needs at least one axis")
    if not seeds:
        raise HarnessError("sweep needs at least one seed")
    names = list(axes)
    result = SweepResult(axes=dict(axes), metric=metric)

    fcfg = None
    if flow is not None:
        from repro.flow import FlowConfig

        fcfg = flow if isinstance(flow, FlowConfig) else FlowConfig.parse(flow)
        if not fcfg.enabled:
            fcfg = None

    def _grid() -> None:
        from contextlib import ExitStack

        with ExitStack() as stack:
            if fcfg is not None:
                from repro.flow import FlowSession

                stack.enter_context(FlowSession(fcfg))
            for combo in itertools.product(*(axes[n] for n in names)):
                params = dict(zip(names, combo))
                values = tuple(float(fn(seed=seed, **params)) for seed in seeds)
                result.cells.append(SweepCell(params=params, values=values))

    if metrics_path is None:
        _grid()
        return result

    from dataclasses import asdict as _asdict

    from repro.harness.artifact import build_metrics_payload, write_metrics_json
    from repro.obs import ObsConfig, ObsSession

    with ObsSession(ObsConfig()) as session:
        _grid()
    extra = {"axes": {n: list(axes[n]) for n in names}, "seeds": list(seeds)}
    if fcfg is not None:
        extra["flow"] = _asdict(fcfg)
    payload = build_metrics_payload(
        target=f"sweep:{metric}",
        profile="custom",
        runs=session.records,
        sweep=result,
        extra_config=extra,
    )
    write_metrics_json(metrics_path, payload)
    return result
