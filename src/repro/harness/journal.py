"""Crash-consistent sweep journal: append-only JSONL of completed points.

The result cache makes *identical* points resumable, but it only covers
clean executions: poisoned points are never cached (their failure may be
environmental), and a sweep running without a cache has no durable state
at all. The journal closes that gap. The supervisor appends one fsync'd
JSON line per resolved point — executed or poisoned — so the on-disk
file is always a consistent prefix of the sweep no matter when the
parent dies (``kill -9`` included: a torn final line is detected and
dropped on replay).

Layout::

    {"kind": "header", "schema": "repro.sweep-journal/1",
     "fingerprint": <sha256 over tag + grid + seeds + cost model>,
     "n_points": 8}
    {"kind": "point", "index": 3, "status": "ok", "value": ..,
     "records": [..], "retries": 0, ...}
    ...
    {"kind": "complete", "n_recorded": 8}

The fingerprint pins the journal to one exact sweep: ``--resume``
replays only a journal whose header matches the grid being executed
(same tag, same points in the same order, same cost-model constants),
so a stale journal from a different sweep in the same directory is
ignored and overwritten rather than corrupting results. Replayed
entries carry the point's value *and* its observability records, which
is what keeps a resumed sweep's artifact canonical-byte-identical to an
uninterrupted run.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Sequence

#: Bump on any change to the record layout or fingerprint ingredients.
JOURNAL_SCHEMA = "repro.sweep-journal/1"

#: Cap on the traceback text persisted per poisoned point.
_ERROR_CHARS = 4000


def _jsonable(obj: Any) -> Any:
    from repro.harness.cache import _jsonable as cache_jsonable

    return cache_jsonable(obj)


def journal_fingerprint(tag: str, specs: Sequence[Any]) -> str:
    """Stable identity of one sweep grid.

    Folds in the point tag, every point's (params, seed) in grid order,
    and the cost-model fingerprint — the same ingredients that address
    the result cache — so a journal can never replay into a different
    sweep (or into the same sweep after a simulator recalibration).
    """
    from repro.harness.cache import cost_model_fingerprint

    payload = {
        "schema": JOURNAL_SCHEMA,
        "tag": tag,
        "points": [[dict(s.params), int(s.seed)] for s in specs],
        "costs": cost_model_fingerprint(None),
    }
    blob = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=_jsonable
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class SweepJournal:
    """Append-only JSONL writer for one sweep's resolved points.

    Use :meth:`open` (which handles header/rotation logic) rather than
    the constructor. Every append is flushed and fsync'd before
    returning, so a record either made it to stable storage whole or is
    a torn tail the replay path discards — the journal is crash
    consistent by construction.
    """

    def __init__(self, path: Path, fingerprint: str, fh) -> None:
        self.path = path
        self.fingerprint = fingerprint
        self._fh = fh
        self.recorded = 0

    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls, path: Any, fingerprint: str, n_points: int, *, resume: bool
    ) -> "SweepJournal":
        """Open (or rotate) the journal at ``path``.

        With ``resume`` set and an existing journal whose header matches
        ``fingerprint``, new records append after the existing ones;
        in every other case the file is truncated and a fresh header is
        written. The caller replays existing entries *before* opening
        (see :meth:`replay`).
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        keep = False
        if resume and path.is_file():
            keep = cls._header_matches(path, fingerprint)
        if keep:
            fh = path.open("a", encoding="utf-8")
            journal = cls(path, fingerprint, fh)
            return journal
        fh = path.open("w", encoding="utf-8")
        journal = cls(path, fingerprint, fh)
        journal._append(
            {
                "kind": "header",
                "schema": JOURNAL_SCHEMA,
                "fingerprint": fingerprint,
                "n_points": n_points,
            }
        )
        return journal

    @staticmethod
    def _header_matches(path: Path, fingerprint: str) -> bool:
        try:
            with path.open("r", encoding="utf-8") as fh:
                first = fh.readline()
            header = json.loads(first)
        except (OSError, ValueError):
            return False
        return (
            isinstance(header, dict)
            and header.get("kind") == "header"
            and header.get("schema") == JOURNAL_SCHEMA
            and header.get("fingerprint") == fingerprint
        )

    # ------------------------------------------------------------------
    def _append(self, doc: Mapping[str, Any]) -> None:
        line = json.dumps(doc, separators=(",", ":"), default=_jsonable)
        self._fh.write(line + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def record_point(self, outcome: Any) -> None:
        """Durably append one resolved point (executed or poisoned)."""
        error = outcome.error
        if error is not None and len(error) > _ERROR_CHARS:
            error = error[-_ERROR_CHARS:]
        self._append(
            {
                "kind": "point",
                "index": outcome.spec.index,
                "seed": outcome.spec.seed,
                "params": dict(outcome.spec.params),
                "key": outcome.spec.key,
                "status": outcome.status,
                "value": outcome.value,
                "records": outcome.records,
                "retries": outcome.retries,
                "error": error,
                "worker": outcome.worker,
                "wall_s": outcome.wall_s,
            }
        )
        self.recorded += 1

    def complete(self) -> None:
        """Mark the sweep finished (informational trailer)."""
        self._append({"kind": "complete", "n_recorded": self.recorded})

    def close(self) -> None:
        try:
            self._fh.close()
        except OSError:  # pragma: no cover - best effort
            pass

    # ------------------------------------------------------------------
    @staticmethod
    def replay(path: Any, fingerprint: str) -> Dict[int, dict]:
        """Entries of a matching journal, keyed by grid index.

        Returns ``{}`` when the file is missing, unreadable, or was
        written for a different sweep. A torn (crash-truncated) final
        line ends the replay silently — everything before it is intact
        by the fsync-per-record discipline. Duplicate indices keep the
        last record (a point re-resolved after an earlier resume).
        """
        path = Path(path)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return {}
        entries: Dict[int, dict] = {}
        header_seen = False
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                doc = json.loads(line)
            except ValueError:
                break  # torn tail — everything after is unreliable
            if not isinstance(doc, dict):
                break
            if not header_seen:
                if (
                    doc.get("kind") != "header"
                    or doc.get("schema") != JOURNAL_SCHEMA
                    or doc.get("fingerprint") != fingerprint
                ):
                    return {}
                header_seen = True
                continue
            if doc.get("kind") != "point":
                continue
            index = doc.get("index")
            if isinstance(index, int) and index >= 0:
                entries[index] = doc
        return entries
