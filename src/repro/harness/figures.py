"""Per-figure experiment registry.

Every data figure of the paper has a generator here returning a
:class:`~repro.harness.experiment.FigureData`. Figures 2 and 4–7 are
schematics (realized as code: the PingAck app and the four scheme
implementations); everything else is regenerated below.

Scaling: the simulated machine uses 2 processes x 4 workers per node
(the paper's Delta nodes run 8 x 8); problem sizes are scaled so the
governing ratios — items per destination buffer, comm-thread load per
worker — are preserved (DESIGN.md §2). The ``quick`` profile shrinks
sweeps to bench-friendly sizes; ``paper`` is the default.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, Dict, Tuple

from repro.analysis import (
    buffer_bytes_per_process,
    message_bounds_total,
)
from repro.apps import (
    run_histogram,
    run_indexgather,
    run_phold,
    run_pingack,
    run_sssp,
)
from repro.apps.graphs import generate_graph
from repro.errors import HarnessError
from repro.harness.experiment import FigureData, Series
from repro.machine import MachineConfig, nonsmp_machine
from repro.network.pingpong import measure_pingpong
from repro.tram import SCHEME_NAMES

#: Scaled stand-in for a Delta node (paper: 8 processes x 8 workers).
SCALED_PPN = 2
SCALED_WPP = 4


# ----------------------------------------------------------------------
# Grid-point functions: module-level so the sweep pool can execute them
# in worker processes and key them in the result cache. Each returns a
# small JSON-friendly dict of just the fields its figures read.
# ----------------------------------------------------------------------
def _histo_point(
    seed: int, *, nodes: int, scheme: str, z: int, g: int, batch: int
) -> dict:
    r = run_histogram(
        scaled_machine(nodes),
        scheme,
        updates_per_pe=z,
        buffer_items=g,
        batch=batch,
        seed=seed,
    )
    return {"time_ms": r.total_time_ns / 1e6}


def _ig_point(seed: int, *, nodes: int, scheme: str, z: int) -> dict:
    r = run_indexgather(
        scaled_machine(nodes),
        scheme,
        requests_per_pe=z,
        buffer_items=64,
        batch=500,
        seed=seed,
    )
    return {
        "round_trip_latency_ns": r.round_trip_latency_ns,
        "total_time_ns": r.total_time_ns,
    }


def _run_grid(fn, grid, tag) -> list:
    """Run one figure grid through the sweep pool; values in grid order.

    Point order matters twice: it fixes how series are assembled below
    and the order run snapshots land in the metrics artifact, so it
    must match the historical serial enumeration exactly.
    """
    from repro.harness.pool import map_points

    return [o.value for o in map_points(fn, grid, tag=tag)]


def scaled_machine(nodes: int) -> MachineConfig:
    """The harness's standard SMP machine for ``nodes`` nodes."""
    return MachineConfig(
        nodes=nodes, processes_per_node=SCALED_PPN, workers_per_process=SCALED_WPP
    )


def _check_profile(profile: str) -> str:
    if profile not in ("paper", "quick"):
        raise HarnessError(f"unknown profile {profile!r}; use 'paper' or 'quick'")
    return profile


# ======================================================================
# Fig 1 — ping-pong time vs message size
# ======================================================================
def fig1(profile: str = "paper") -> FigureData:
    _check_profile(profile)
    sizes = (
        [8, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304]
        if profile == "paper"
        else [8, 1024, 65536, 1048576]
    )
    results = measure_pingpong(sizes)
    return FigureData(
        fig_id="fig1",
        title="Ping-pong between two physical nodes",
        xlabel="message bytes",
        ylabel="one-way time (us)",
        x=sizes,
        series=[Series("one_way_us", [r.one_way_ns / 1e3 for r in results])],
        expected=(
            "flat (alpha-dominated, microseconds) for small sizes; "
            "bandwidth-bound beyond ~1KB with effective beta ~0.1 ns/B"
        ),
    )


# ======================================================================
# Fig 3 — PingAck SMP (process counts) vs non-SMP
# ======================================================================
def fig3(profile: str = "paper") -> FigureData:
    _check_profile(profile)
    wpn = 16 if profile == "paper" else 8
    msgs = 250 if profile == "paper" else 100
    labels = ["non-SMP"]
    times = [
        run_pingack(
            nonsmp_machine(2, ranks_per_node=wpn), messages_per_pe=msgs
        ).total_time_ns
        / 1e6
    ]
    ppns = [1, 2, 4, 8] if profile == "paper" else [1, 2, 4]
    for ppn in ppns:
        machine = MachineConfig(
            nodes=2, processes_per_node=ppn, workers_per_process=wpn // ppn
        )
        r = run_pingack(machine, messages_per_pe=msgs)
        labels.append(f"SMP {ppn}proc")
        times.append(r.total_time_ns / 1e6)
    return FigureData(
        fig_id="fig3",
        title="PingAck: SMP (process counts) vs non-SMP, 2 nodes",
        xlabel="configuration",
        ylabel="total time (ms)",
        x=labels,
        series=[Series("time_ms", times)],
        expected=(
            "SMP with 1 process/node several times slower than non-SMP "
            "(comm-thread serialization); monotone recovery as processes "
            "per node increase"
        ),
        notes=f"{wpn} worker cores per node (paper: 64), {msgs} msgs/PE",
    )


# ======================================================================
# Fig 8 — histogram SMP (WPs) vs non-SMP, varying workers/process
# ======================================================================
def fig8(profile: str = "paper") -> FigureData:
    _check_profile(profile)
    wpn = 8
    z = 8000 if profile == "paper" else 2000
    labels = ["non-SMP"]
    times = [
        run_histogram(
            nonsmp_machine(2, ranks_per_node=wpn),
            "WW",
            updates_per_pe=z,
            buffer_items=64,
            batch=1000,
        ).total_time_ns
        / 1e6
    ]
    for wpp in (2, 4, 8):
        machine = MachineConfig(
            nodes=2, processes_per_node=wpn // wpp, workers_per_process=wpp
        )
        r = run_histogram(
            machine, "WPs", updates_per_pe=z, buffer_items=64, batch=1000
        )
        labels.append(f"SMP wpp={wpp}")
        times.append(r.total_time_ns / 1e6)
    return FigureData(
        fig_id="fig8",
        title="Histogram: SMP (WPs) vs non-SMP, varying workers/process",
        xlabel="configuration",
        ylabel="total time (ms)",
        x=labels,
        series=[Series("time_ms", times)],
        expected="SMP WPs on par with (or better than) non-SMP",
        notes=f"{wpn} worker cores/node, z={z} updates/PE",
    )


# ======================================================================
# Fig 9 / 10 / 11 — histogram scheme comparisons
# ======================================================================
def fig9(profile: str = "paper") -> FigureData:
    _check_profile(profile)
    nodes_list = [1, 2, 4, 8, 16, 32] if profile == "paper" else [1, 2, 4, 8]
    z = 8000 if profile == "paper" else 3000
    grid = [
        {"nodes": nodes, "scheme": scheme, "z": z, "g": 64, "batch": 1000}
        for nodes in nodes_list
        for scheme in SCHEME_NAMES
    ]
    values = _run_grid(_histo_point, grid, "figures.histo")
    series = {s: [] for s in SCHEME_NAMES}
    for params, value in zip(grid, values):
        series[params["scheme"]].append(value["time_ms"])
    return FigureData(
        fig_id="fig9",
        title="Histogram weak scaling (z updates/PE constant)",
        xlabel="nodes",
        ylabel="total time (ms)",
        x=nodes_list,
        series=[Series(s, series[s]) for s in SCHEME_NAMES],
        expected=(
            "WPs scales best; WsP close; PP scales with atomics overhead; "
            "WW stops scaling beyond ~16 nodes (flush-dominated)"
        ),
        notes=f"z={z}, g=64 (paper: z=1M, g=1024; ratios preserved)",
    )


def fig10(profile: str = "paper") -> FigureData:
    _check_profile(profile)
    nodes = 8 if profile == "paper" else 4
    gs = [16, 32, 64, 128, 256, 512] if profile == "paper" else [16, 64, 256]
    z = 8000 if profile == "paper" else 3000
    grid = [
        {"nodes": nodes, "scheme": scheme, "z": z, "g": g, "batch": 1000}
        for g in gs
        for scheme in SCHEME_NAMES
    ]
    values = _run_grid(_histo_point, grid, "figures.histo")
    series = {s: [] for s in SCHEME_NAMES}
    for params, value in zip(grid, values):
        series[params["scheme"]].append(value["time_ms"])
    return FigureData(
        fig_id="fig10",
        title="Histogram: buffer-size sweep",
        xlabel="buffer items (g)",
        ylabel="total time (ms)",
        x=gs,
        series=[Series(s, series[s]) for s in SCHEME_NAMES],
        expected=(
            "node-aware schemes improve with larger g; WW improves then "
            "degrades once its g*m*N*t footprint exceeds cache and its "
            "buffers stop filling"
        ),
        notes=f"{nodes} nodes, z={z}",
    )


def fig11(profile: str = "paper") -> FigureData:
    _check_profile(profile)
    nodes_list = [1, 2, 4, 8, 16, 32] if profile == "paper" else [1, 2, 4, 8]
    z = 1000 if profile == "paper" else 600
    grid = [
        {"nodes": nodes, "scheme": scheme, "z": z, "g": 64, "batch": 500}
        for nodes in nodes_list
        for scheme in SCHEME_NAMES
    ]
    values = _run_grid(_histo_point, grid, "figures.histo")
    series = {s: [] for s in SCHEME_NAMES}
    for params, value in zip(grid, values):
        series[params["scheme"]].append(value["time_ms"])
    return FigureData(
        fig_id="fig11",
        title="Histogram, few updates/PE (flush-heavy)",
        xlabel="nodes",
        ylabel="total time (ms)",
        x=nodes_list,
        series=[Series(s, series[s]) for s in SCHEME_NAMES],
        expected=(
            "WW collapses from ~8 nodes (flush messages dominate); "
            "WPs/WsP best; PP close to WPs (atomics offset its gains)"
        ),
        notes=f"z={z} (paper: 128K vs 1M; small-z/flush-heavy regime)",
    )


# ======================================================================
# Fig 12 / 13 — index-gather latency and total time
# ======================================================================
@lru_cache(maxsize=4)
def _ig_sweep(profile: str):
    nodes_list = (1, 2, 4, 8, 16) if profile == "paper" else (1, 2, 4)
    z = 4000 if profile == "paper" else 3000
    grid = [
        {"nodes": nodes, "scheme": scheme, "z": z}
        for nodes in nodes_list
        for scheme in SCHEME_NAMES
    ]
    values = _run_grid(_ig_point, grid, "figures.indexgather")
    out: Dict[int, Dict[str, dict]] = {}
    for params, value in zip(grid, values):
        out.setdefault(params["nodes"], {})[params["scheme"]] = value
    return nodes_list, out


def fig12(profile: str = "paper") -> FigureData:
    _check_profile(profile)
    nodes_list, results = _ig_sweep(profile)
    return FigureData(
        fig_id="fig12",
        title="Index-gather: mean item round-trip latency",
        xlabel="nodes",
        ylabel="latency (us)",
        x=list(nodes_list),
        series=[
            Series(
                s,
                [
                    results[n][s]["round_trip_latency_ns"] / 1e3
                    for n in nodes_list
                ],
            )
            for s in SCHEME_NAMES
        ],
        expected="latency PP < WPs ~ WsP < WW, gap widening with nodes",
    )


def fig13(profile: str = "paper") -> FigureData:
    _check_profile(profile)
    nodes_list, results = _ig_sweep(profile)
    return FigureData(
        fig_id="fig13",
        title="Index-gather: total time",
        xlabel="nodes",
        ylabel="total time (ms)",
        x=list(nodes_list),
        series=[
            Series(s, [results[n][s]["total_time_ns"] / 1e6 for n in nodes_list])
            for s in SCHEME_NAMES
        ],
        expected=(
            "WPs/WsP best overall; WW worst at scale; PP's atomics "
            "overhead visible in total time despite its latency win"
        ),
    )


# ======================================================================
# Fig 14-17 — SSSP small / large
# ======================================================================
@lru_cache(maxsize=4)
def _sssp_sweep(profile: str, size: str):
    if size == "small":
        n_vertices = 2048 if profile == "paper" else 1024
        nodes_list = (2, 4) if profile == "paper" else (2,)
    else:
        # "Large" = high per-PE work: big graph on FEW nodes. At high
        # node counts with little per-PE work the waste spiral of the
        # small-problem regime dominates instead (see EXPERIMENTS.md).
        n_vertices = 8192 if profile == "paper" else 4096
        nodes_list = (1, 2) if profile == "paper" else (2,)
    graph = generate_graph(n_vertices, 8, seed=3)
    out = {}
    for nodes in nodes_list:
        out[nodes] = {
            scheme: run_sssp(
                scaled_machine(nodes), scheme, graph=graph, buffer_items=32
            )
            for scheme in SCHEME_NAMES
        }
    return nodes_list, out


def _sssp_fig(profile: str, size: str, metric: str, fig_id: str) -> FigureData:
    nodes_list, results = _sssp_sweep(profile, size)
    if metric == "time":
        ylabel = "total time (ms)"
        value = lambda r: r.total_time_ns / 1e6  # noqa: E731
        if size == "small":
            expected = "time PP <= WPs ~ WsP < WW"
        else:
            expected = "WPs considerably better than WW"
    else:
        ylabel = "wasted updates (normalized to WW)"
        if size == "small":
            expected = "wasted updates PP < WPs < WW"
        else:
            expected = "no significant wasted-update gap between schemes"
    series = []
    for s in SCHEME_NAMES:
        ys = []
        for n in nodes_list:
            r = results[n][s]
            if metric == "time":
                ys.append(value(r))
            else:
                ww = results[n]["WW"].wasted_updates
                ys.append(r.wasted_updates / ww if ww else 0.0)
        series.append(Series(s, ys))
    return FigureData(
        fig_id=fig_id,
        title=f"SSSP {size} problem: {metric}",
        xlabel="nodes",
        ylabel=ylabel,
        x=list(nodes_list),
        series=series,
        expected=expected,
    )


def fig14(profile: str = "paper") -> FigureData:
    _check_profile(profile)
    return _sssp_fig(profile, "small", "time", "fig14")


def fig15(profile: str = "paper") -> FigureData:
    _check_profile(profile)
    return _sssp_fig(profile, "small", "wasted", "fig15")


def fig16(profile: str = "paper") -> FigureData:
    _check_profile(profile)
    return _sssp_fig(profile, "large", "time", "fig16")


def fig17(profile: str = "paper") -> FigureData:
    _check_profile(profile)
    return _sssp_fig(profile, "large", "wasted", "fig17")


# ======================================================================
# Fig 18 — PHOLD rejected (out-of-order) events
# ======================================================================
def fig18(profile: str = "paper") -> FigureData:
    _check_profile(profile)
    # The paper runs PHOLD with a higher worker-per-process count (32);
    # scaled here to one 8-worker process per node.
    machine = MachineConfig(nodes=2, processes_per_node=1, workers_per_process=8)
    quota = 1500 if profile == "paper" else 400
    rejected, times = [], []
    for scheme in SCHEME_NAMES:
        r = run_phold(
            machine, scheme, lps_per_worker=8, quota_per_worker=quota,
            buffer_items=32,
        )
        rejected.append(float(r.events_rejected))
        times.append(r.total_time_ns / 1e6)
    return FigureData(
        fig_id="fig18",
        title="PHOLD synthetic: rejected (out-of-order) events",
        xlabel="scheme",
        ylabel="rejected events",
        x=list(SCHEME_NAMES),
        series=[Series("rejected", rejected), Series("time_ms", times)],
        expected=">5% fewer rejected events for PP than worker-buffered schemes",
    )


# ======================================================================
# tabA / tabB — §III-C analysis vs measurement
# ======================================================================
def tabA(profile: str = "paper") -> FigureData:
    _check_profile(profile)
    nodes = 4
    g, m = 64, 8
    machine = scaled_machine(nodes)
    measured, analytic = [], []
    for scheme in SCHEME_NAMES:
        r = run_histogram(
            machine, scheme, updates_per_pe=4000, buffer_items=g, batch=1000
        )
        measured.append(float(r.buffer_bytes_allocated))
        analytic.append(
            buffer_bytes_per_process(
                scheme, g, m, machine.total_processes, machine.workers_per_process
            )
            * machine.total_processes
        )
    return FigureData(
        fig_id="tabA",
        title="Memory overhead: measured buffer allocation vs SecIII-C bound",
        xlabel="scheme",
        ylabel="bytes (machine total)",
        x=list(SCHEME_NAMES),
        series=[Series("measured", measured), Series("analytic_max", analytic)],
        expected=(
            "measured <= analytic everywhere; ordering WW >> WPs=WsP > PP "
            "(per-process: g*m*N*t^2 vs g*m*N*t vs g*m*N)"
        ),
    )


def tabB(profile: str = "paper") -> FigureData:
    _check_profile(profile)
    nodes = 4
    g = 64
    machine = scaled_machine(nodes)
    measured, lower, upper = [], [], []
    for scheme in SCHEME_NAMES:
        r = run_histogram(
            machine, scheme, updates_per_pe=4000, buffer_items=g, batch=1000
        )
        measured.append(float(r.messages_sent))
        lo, hi = message_bounds_total(scheme, r.updates_buffered, g, machine)
        lower.append(lo)
        upper.append(hi)
    return FigureData(
        fig_id="tabB",
        title="Message counts: measured vs SecIII-C bounds",
        xlabel="scheme",
        ylabel="aggregated messages",
        x=list(SCHEME_NAMES),
        series=[
            Series("lower_bound", lower),
            Series("measured", measured),
            Series("upper_bound", upper),
        ],
        expected="lower <= measured <= upper for every scheme",
    )


# ======================================================================
# Extension experiments (beyond the paper's figures; DESIGN.md SecVI)
# ======================================================================
def extA(profile: str = "paper") -> FigureData:
    """Node-level aggregation (WNs/NN) on the flush-dominated all-to-all."""
    _check_profile(profile)
    from repro.apps import run_alltoall

    machine = scaled_machine(8 if profile == "paper" else 4)
    schemes = ("WW", "WPs", "PP", "WNs", "NN")
    msgs, times = [], []
    for scheme in schemes:
        r = run_alltoall(machine, scheme, items_per_pair=2, buffer_items=256)
        msgs.append(float(r.messages_sent))
        times.append(r.total_time_ns / 1e6)
    return FigureData(
        fig_id="extA",
        title="Extension: node-level aggregation on all-to-all",
        xlabel="scheme",
        ylabel="aggregated messages / time (ms)",
        x=list(schemes),
        series=[Series("messages", msgs), Series("time_ms", times)],
        expected=(
            "each aggregation level (worker -> process -> node) cuts the "
            "end-of-phase message count; node-level schemes extend the "
            "paper's SecIII-C hierarchy one level up"
        ),
    )


def extB(profile: str = "paper") -> FigureData:
    """Legacy-TRAM 2D routing vs flat WPs on a distance-insensitive fabric."""
    _check_profile(profile)
    from repro.runtime.system import RuntimeSystem
    from repro.tram import TramConfig, make_scheme

    machine = scaled_machine(8 if profile == "paper" else 4)
    items = 400 if profile == "paper" else 150
    names, buffers, latencies, times = [], [], [], []
    for scheme in ("WPs", "R2D"):
        rt = RuntimeSystem(machine, seed=0)
        tram = make_scheme(
            scheme, rt,
            TramConfig(buffer_items=16, item_bytes=8, idle_flush=True),
            deliver_item=lambda ctx, it: None,
        )
        w = machine.total_workers

        def driver(ctx, tram=tram, w=w):
            rng = rt.rng.stream(f"extB/{ctx.worker.wid}")
            for _ in range(items):
                tram.insert(ctx, dst=int(rng.integers(0, w)))

        for wid in range(w):
            rt.post(wid, driver)
        stats = rt.run(max_events=10_000_000)
        names.append(scheme)
        buffers.append(float(tram.stats.buffers_allocated))
        latencies.append(tram.stats.latency.mean / 1e3)
        times.append(stats.end_time / 1e6)
    return FigureData(
        fig_id="extB",
        title="Extension: 2D topological routing (legacy TRAM) vs flat WPs",
        xlabel="scheme",
        ylabel="buffers / latency (us) / time (ms)",
        x=names,
        series=[
            Series("buffers", buffers),
            Series("latency_us", latencies),
            Series("time_ms", times),
        ],
        expected=(
            "routing allocates fewer buffers but pays an extra hop in "
            "latency on a flat fabric — the paper's SecI argument for "
            "dropping topology-aware routing"
        ),
    )


def extC(profile: str = "paper") -> FigureData:
    """Crash matrix: scheme crossover under ``k`` failed processes.

    The scenario the paper never measured: every scheme runs the same
    random-destination insert workload while ``k`` seeded process
    crashes land mid-run, and the figure reports the delivered item
    fraction per scheme at each ``k``. Intermediary-based schemes
    (WPs/R2D/WNs/NN) route items *through* other processes, so a dead
    process costs them in-transit and hosted-buffer items that direct
    WW never risks — while failover routing (R2D alternate column hop,
    WNs round-robin skip) claws part of that gap back. Every run must
    close its conservation ledger exactly (``produced == delivered +
    lost_to_crash + buffered``): an unbalanced ledger is a bug in the
    crash fabric, not a data point, and raises immediately.
    """
    _check_profile(profile)
    from repro.faults import FaultPlan
    from repro.flow import conservation_ledger
    from repro.runtime.system import RuntimeSystem
    from repro.tram import TramConfig, make_scheme

    machine = scaled_machine(4 if profile == "paper" else 2)
    items = 300 if profile == "paper" else 120
    ks = (0, 1, 2)
    schemes = ("WW", "WPs", "PP", "R2D", "WNs", "NN")
    fractions: Dict[str, list] = {name: [] for name in schemes}
    for k in ks:
        # The insert storm drains within ~100-150k simulated ns on this
        # machine, so the window must sit inside the active phase: a
        # later crash would land after quiescence and lose nothing.
        plan = FaultPlan(
            crash_procs=k,
            crash_t_min_ns=5_000.0,
            crash_t_max_ns=40_000.0,
        )
        for name in schemes:
            rt = RuntimeSystem(machine, seed=0, faults=plan)
            tram = make_scheme(
                name, rt,
                TramConfig(buffer_items=16, item_bytes=8, idle_flush=True),
                deliver_item=lambda ctx, it: None,
            )
            w = machine.total_workers

            def driver(ctx, tram=tram, w=w, rt=rt):
                rng = rt.rng.stream(f"extC/{ctx.worker.wid}")
                for _ in range(items):
                    tram.insert(ctx, dst=int(rng.integers(0, w)))

            for wid in range(w):
                rt.post(wid, driver)
            rt.run(max_events=10_000_000)
            ledger = conservation_ledger(rt)
            if ledger["balanced"] is False:
                raise HarnessError(
                    f"extC: conservation ledger unbalanced for "
                    f"scheme={name} k={k}: {ledger}"
                )
            produced = ledger["produced"]
            fractions[name].append(
                ledger["delivered"] / produced if produced else 0.0
            )
    return FigureData(
        fig_id="extC",
        title="Extension: delivered fraction under k process failures",
        xlabel="failed processes (k)",
        ylabel="delivered item fraction",
        x=list(ks),
        series=[Series(name, fractions[name]) for name in schemes],
        expected=(
            "k=0 delivers everything for every scheme; each crash costs "
            "intermediary schemes (WPs/R2D/WNs/NN) in-transit and "
            "hosted-buffer items on top of WW's direct dead-destination "
            "drops, with failover routing bounding the gap; every run "
            "closes its conservation ledger exactly"
        ),
    )


# ======================================================================
# Registry
# ======================================================================
FIGURES: Dict[str, Tuple[Callable[[str], FigureData], str]] = {
    "fig1": (fig1, "ping-pong time vs message size (alpha-beta motivation)"),
    "fig3": (fig3, "PingAck: SMP process counts vs non-SMP"),
    "fig8": (fig8, "histogram SMP (WPs) vs non-SMP, workers/process sweep"),
    "fig9": (fig9, "histogram weak scaling across schemes"),
    "fig10": (fig10, "histogram buffer-size sweep"),
    "fig11": (fig11, "histogram flush-heavy (small z)"),
    "fig12": (fig12, "index-gather latency by scheme"),
    "fig13": (fig13, "index-gather total time by scheme"),
    "fig14": (fig14, "SSSP small: time"),
    "fig15": (fig15, "SSSP small: wasted updates (normalized)"),
    "fig16": (fig16, "SSSP large: time"),
    "fig17": (fig17, "SSSP large: wasted updates (normalized)"),
    "fig18": (fig18, "PHOLD: rejected out-of-order events"),
    "tabA": (tabA, "SecIII-C memory-overhead formulas vs measurement"),
    "tabB": (tabB, "SecIII-C message-count bounds vs measurement"),
    "extA": (extA, "extension: node-level aggregation (WNs/NN) on all-to-all"),
    "extB": (extB, "extension: 2D topological routing vs flat WPs"),
    "extC": (extC, "extension: crash matrix — delivered fraction vs k failures"),
}


def run_figure(
    fig_id: str, profile: str = "paper", metrics_path=None, faults=None,
    flow=None, timeline=None, parallel: int = 1, cache_dir=None,
    fresh: bool = False, status: bool = False, status_json=None,
    retries: int = 0, point_timeout_s=None, sim_parallel: int = 1,
) -> FigureData:
    """Run one registered experiment by id.

    With ``metrics_path`` set, the figure body runs inside an
    :class:`~repro.obs.config.ObsSession` (stage-attributed latency
    spans on) and a schema-versioned JSON artifact with one snapshot per
    simulation run is written there (see :mod:`repro.harness.artifact`).

    With ``faults`` set (a :class:`~repro.faults.FaultPlan` or a spec
    string for :meth:`~repro.faults.FaultPlan.parse`), the figure body
    runs inside a :class:`~repro.faults.FaultSession`: every simulation
    gets seeded fault injection plus the reliable-delivery layer, so the
    figure exercises the degraded data path end to end.

    With ``flow`` set (a :class:`~repro.flow.FlowConfig` or a spec
    string for :meth:`~repro.flow.FlowConfig.parse`), every simulation
    runs with credit-based flow control: bounded comm-thread/NIC
    occupancy, source backpressure and overload escalation.

    With ``timeline`` set (a :class:`~repro.obs.TimelineConfig`), every
    simulation carries the flight recorder: per-run ``timeline`` blocks
    (time-series of queue depth, backlog, credit occupancy, ...) land in
    the metrics artifact.

    ``parallel``/``cache_dir``/``fresh`` configure the sweep pool for
    the figure's grid-shaped bodies (see :mod:`repro.harness.pool`):
    points are dispatched to worker processes and/or replayed from the
    content-addressed result cache, with identical figure data and
    artifact contents either way (modulo the provenance block).
    ``status``/``status_json`` turn on live fleet telemetry while the
    pool runs (see :mod:`repro.harness.fleet`).

    ``retries``/``point_timeout_s`` configure the pool's supervisor:
    failed or hung points are retried with seeded backoff and the
    sweep survives worker crashes. Figures fail fast on an exhausted
    point (no quarantine) — a figure with holes in it is not a figure.

    With ``sim_parallel`` > 1 every simulation inside the figure runs
    under a :class:`~repro.sim.parallel.PdesSession`: the conservative
    PDES core shards each :class:`~repro.runtime.system.RuntimeSystem`
    by simulated node across that many forked partitions. Results (and
    the artifact, modulo the pdes provenance/metrics blocks stripped by
    :func:`~repro.harness.artifact.canonical_metrics_bytes`) are
    identical to a sequential run; only wall-clock changes.
    """
    try:
        fn, _ = FIGURES[fig_id]
    except KeyError:
        raise HarnessError(
            f"unknown figure {fig_id!r}; known: {', '.join(FIGURES)}"
        ) from None
    plan = None
    if faults is not None:
        from repro.faults import FaultPlan

        plan = faults if isinstance(faults, FaultPlan) else FaultPlan.parse(faults)
        if plan.is_noop():
            plan = None
    fcfg = None
    if flow is not None:
        from repro.flow import FlowConfig

        fcfg = flow if isinstance(flow, FlowConfig) else FlowConfig.parse(flow)
        if not fcfg.enabled:
            fcfg = None
    pooled = parallel != 1 or cache_dir is not None
    if (
        metrics_path is None and plan is None and fcfg is None
        and timeline is None and not pooled and sim_parallel == 1
    ):
        return fn(profile)

    from contextlib import ExitStack

    from repro.harness.pool import PoolConfig, pool_session

    # The shared sweeps memoize results; a cached hit would run no
    # simulations inside the session (empty artifact / no faults or
    # backpressure applied), and a result computed under a degraded or
    # flow-controlled data path must not leak into later clean
    # invocations.
    _ig_sweep.cache_clear()
    _sssp_sweep.cache_clear()
    session = None
    pdes_ctx = None
    try:
        with ExitStack() as stack:
            if plan is not None:
                from repro.faults import FaultSession

                stack.enter_context(FaultSession(plan))
            if fcfg is not None:
                from repro.flow import FlowSession

                stack.enter_context(FlowSession(fcfg))
            if sim_parallel != 1:
                from repro.sim.parallel import PdesConfig, PdesSession

                pdes_ctx = stack.enter_context(
                    PdesSession(PdesConfig(partitions=sim_parallel))
                )
            if metrics_path is not None or timeline is not None:
                from repro.obs import ObsConfig, ObsSession

                session = stack.enter_context(
                    ObsSession(ObsConfig(timeline=timeline))
                )
            # Entered last so forked workers inherit the fault/flow/obs
            # sessions above.
            pool_ctx = stack.enter_context(
                pool_session(
                    PoolConfig(
                        parallel=parallel,
                        cache_dir=cache_dir,
                        cache_read=not fresh,
                        status=status,
                        status_json=status_json,
                        retries=retries,
                        point_timeout_s=point_timeout_s,
                    )
                )
            )
            data = fn(profile)
    finally:
        if (
            plan is not None or fcfg is not None or timeline is not None
            or pooled or sim_parallel != 1
        ):
            _ig_sweep.cache_clear()
            _sssp_sweep.cache_clear()
    if metrics_path is not None:
        from dataclasses import asdict

        from repro.harness.artifact import build_metrics_payload, write_metrics_json

        extra = {}
        if plan is not None:
            extra["faults"] = asdict(plan)
        if fcfg is not None:
            extra["flow"] = asdict(fcfg)
        if timeline is not None:
            extra["timeline"] = asdict(timeline)
        provenance = pool_ctx.provenance_payload()
        if pdes_ctx is not None:
            provenance = dict(provenance or {})
            provenance["pdes"] = pdes_ctx.provenance_payload()
        payload = build_metrics_payload(
            target=fig_id,
            profile=profile,
            runs=session.records,
            figure=data,
            extra_config=extra or None,
            provenance=provenance,
        )
        write_metrics_json(metrics_path, payload)
    return data
