"""Figure-data containers for harness output."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.util.tables import render_table


@dataclass
class Series:
    """One line of a figure: a named y-vector over the shared x-axis."""

    name: str
    y: List[float]


@dataclass
class FigureData:
    """Regenerated data behind one paper figure.

    ``x`` is the shared x-axis (node counts, buffer sizes, message
    sizes, ...); each :class:`Series` is one plotted line. ``expected``
    records the paper's qualitative claim the data should exhibit.
    """

    fig_id: str
    title: str
    xlabel: str
    ylabel: str
    x: Sequence
    series: List[Series] = field(default_factory=list)
    expected: str = ""
    notes: str = ""

    def series_by_name(self, name: str) -> Series:
        for s in self.series:
            if s.name == name:
                return s
        raise KeyError(name)

    def to_table(self) -> str:
        """Render as a text table (x column + one column per series)."""
        headers = [self.xlabel] + [s.name for s in self.series]
        rows = [
            [x] + [s.y[i] for s in self.series] for i, x in enumerate(self.x)
        ]
        return render_table(headers, rows)

    def render(self) -> str:
        """Full human-readable report block."""
        parts = [f"== {self.fig_id}: {self.title} ==", ""]
        parts.append(self.to_table())
        parts.append("")
        parts.append(f"y-axis: {self.ylabel}")
        if self.expected:
            parts.append(f"paper expectation: {self.expected}")
        if self.notes:
            parts.append(f"notes: {self.notes}")
        return "\n".join(parts)
