"""Machine-readable run artifacts (``--metrics-out``).

One JSON document per harness invocation, schema-versioned so external
tooling (CI checks, regression dashboards, notebook analysis) can parse
runs without scraping text tables. The payload bundles:

* the invocation config (target, profile, anything the caller adds);
* the figure/sweep data that the text report renders;
* one :func:`repro.obs.snapshot.run_snapshot` per completed simulation
  run — machine shape, per-scheme stats and stage breakdowns,
  utilization with the bottleneck verdict, and the metrics-registry
  dump;
* a cross-run summary naming the dominant bottleneck.

:func:`validate_metrics_payload` is the reader-side contract check the
CI job runs on freshly produced artifacts.
"""

from __future__ import annotations

import json
import math
from collections import Counter
from dataclasses import asdict, is_dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

#: Bump on any backwards-incompatible payload change. /2 added the
#: requirement that optional per-run blocks (utilization, faults,
#: reliability, flow, timeline) are always present — explicitly null
#: when the subsystem is off — so consumers can distinguish "disabled"
#: from "written by an older schema".
METRICS_SCHEMA = "repro.run-metrics/2"

#: Schema versions :func:`validate_metrics_payload` accepts.
_ACCEPTED_SCHEMAS = ("repro.run-metrics/1", METRICS_SCHEMA)

#: Keys every per-run snapshot must carry (see ``run_snapshot``).
_RUN_KEYS = ("machine", "total_time_ns", "transport", "schemes", "metrics")

#: Optional per-run blocks that /2 requires to be present (null ok).
_OPTIONAL_RUN_KEYS = ("utilization", "faults", "reliability", "flow", "timeline")

#: Tolerance for the stage-partition identity check (the stage
#: histograms are exact up to pro-rata float splits).
_STAGE_REL_TOL = 1e-6


def _jsonable(obj: Any) -> Any:
    """JSON fallback: numpy scalars, paths, dataclasses, sequences."""
    if is_dataclass(obj) and not isinstance(obj, type):
        return asdict(obj)
    if hasattr(obj, "item"):  # numpy scalar
        return obj.item()
    if hasattr(obj, "tolist"):  # numpy array
        return obj.tolist()
    if isinstance(obj, Path):
        return str(obj)
    raise TypeError(f"not JSON-serializable: {type(obj).__name__}")


def _figure_dict(figure: Any) -> dict:
    return {
        "fig_id": figure.fig_id,
        "title": figure.title,
        "xlabel": figure.xlabel,
        "ylabel": figure.ylabel,
        "x": list(figure.x),
        "series": [{"name": s.name, "y": list(s.y)} for s in figure.series],
        "expected": figure.expected,
        "notes": figure.notes,
    }


def _null_nan(value: Any) -> Any:
    """Non-finite floats (poisoned points) serialize as JSON null."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


def _sweep_dict(sweep: Any) -> dict:
    return {
        "axes": {name: list(vals) for name, vals in sweep.axes.items()},
        "metric": sweep.metric,
        "cells": [
            {
                "params": dict(c.params),
                "values": [_null_nan(v) for v in c.values],
                "mean": _null_nan(c.mean),
                "std": _null_nan(c.std),
                # Volatile execution metadata (excluded from the
                # canonical form, see canonical_metrics_bytes).
                "wall_s": list(getattr(c, "wall_s", ()) or ()),
                "cache_hits": getattr(c, "cache_hits", 0),
            }
            for c in sweep.cells
        ],
    }


def _summary_dict(runs: Sequence[dict]) -> dict:
    verdicts = Counter()
    for run in runs:
        util = run.get("utilization")
        if util and util.get("bottleneck"):
            verdicts[util["bottleneck"]] += 1
    return {
        "n_runs": len(runs),
        "bottleneck_counts": dict(verdicts),
        # The modal verdict across runs; None when nothing reported one.
        "bottleneck": verdicts.most_common(1)[0][0] if verdicts else None,
    }


def build_metrics_payload(
    *,
    target: str,
    profile: str,
    runs: Sequence[dict],
    figure: Any = None,
    sweep: Any = None,
    extra_config: Optional[Dict[str, Any]] = None,
    provenance: Optional[Dict[str, Any]] = None,
) -> dict:
    """Assemble the schema-versioned artifact for one harness invocation.

    Parameters
    ----------
    target:
        What was run (a figure id, ``"sweep"``, an app name, ...).
    profile:
        The harness profile (``paper``/``quick``) or equivalent label.
    runs:
        Per-run snapshots, normally ``ObsSession.records``.
    figure / sweep:
        Optional :class:`~repro.harness.experiment.FigureData` /
        :class:`~repro.harness.sweep.SweepResult` to embed.
    extra_config:
        Free-form invocation parameters worth recording.
    provenance:
        Optional per-point execution provenance from the sweep pool
        (cache hit/miss, worker id, wall-clock per point). Volatile by
        nature — excluded from :func:`canonical_metrics_bytes`.
    """
    return {
        "schema": METRICS_SCHEMA,
        "target": target,
        "profile": profile,
        "config": dict(extra_config) if extra_config else {},
        "figure": _figure_dict(figure) if figure is not None else None,
        "sweep": _sweep_dict(sweep) if sweep is not None else None,
        "runs": list(runs),
        "summary": _summary_dict(runs),
        "provenance": dict(provenance) if provenance else None,
    }


#: Per-sweep-cell keys that record execution metadata rather than
#: simulated results (wall-clock, cache state).
_VOLATILE_CELL_KEYS = ("wall_s", "cache_hits")


def _strip_pdes(run: dict) -> None:
    """Drop every PDES execution-strategy trace from one run snapshot.

    A run executed under ``--sim-parallel N`` carries a ``pdes`` block,
    ``pdes.*`` registry metrics and (with a timeline) ``pdes.*`` series
    — all describing *how* the event loop executed, never *what* it
    simulated. Stripping them is what makes a partitioned artifact
    canonical-byte-identical to the sequential one.
    """
    run.pop("pdes", None)
    metrics = run.get("metrics")
    if isinstance(metrics, dict) and isinstance(metrics.get("metrics"), dict):
        inner = metrics["metrics"]
        for name in [n for n in inner if n.startswith("pdes.")]:
            del inner[name]
    tl = run.get("timeline")
    if isinstance(tl, dict):
        series = tl.get("series")
        if isinstance(series, dict):
            for name in [n for n in series if n.startswith("pdes.")]:
                del series[name]
        final = tl.get("final")
        if isinstance(final, dict) and isinstance(final.get("values"), dict):
            values = final["values"]
            for name in [n for n in values if n.startswith("pdes.")]:
                del values[name]


def canonical_metrics_bytes(payload: Any) -> bytes:
    """The schedule-independent byte form of a metrics payload.

    Serial and parallel executions of the same sweep produce identical
    simulated results but necessarily different execution metadata
    (which worker ran a point, how long it took, whether the cache
    served it). This helper strips exactly that metadata — the
    ``provenance`` block, the per-cell volatile keys, and the per-run
    PDES execution-strategy traces (see :func:`_strip_pdes`) — and
    serializes the rest canonically (sorted keys). Two artifacts are
    equivalent iff their canonical bytes are equal; the determinism
    tests and the CI sweep-smoke/pdes-smoke jobs assert equality
    between ``--parallel 1`` and ``--parallel N``, between cold and
    warm-cache, and between ``--sim-parallel 1`` and ``--sim-parallel
    N`` runs this way.
    """
    clean = json.loads(json.dumps(payload, default=_jsonable))
    if isinstance(clean, dict):
        clean.pop("provenance", None)
        sweep = clean.get("sweep")
        if isinstance(sweep, dict):
            for cell in sweep.get("cells") or ():
                if isinstance(cell, dict):
                    for key in _VOLATILE_CELL_KEYS:
                        cell.pop(key, None)
        for run in clean.get("runs") or ():
            if isinstance(run, dict):
                _strip_pdes(run)
    return json.dumps(
        clean, sort_keys=True, separators=(",", ":"), default=_jsonable
    ).encode("utf-8")


def write_metrics_json(path: Any, payload: dict) -> Path:
    """Serialize a payload to ``path`` (parents created). Returns path."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(
        json.dumps(payload, indent=2, default=_jsonable, sort_keys=False)
        + "\n"
    )
    return out


def _check_scheme(
    prefix: str, scheme: Any, errors: List[str], *, crash_lossy: bool = False
) -> None:
    if not isinstance(scheme, dict):
        errors.append(f"{prefix}: not an object")
        return
    for key in ("name", "stats", "latency"):
        if key not in scheme:
            errors.append(f"{prefix}: missing {key!r}")
    stages = scheme.get("stages")
    latency = scheme.get("latency")
    if stages is not None and isinstance(latency, dict):
        # Stage-partition identity: the non-handler stages must sum to
        # the scheme's end-to-end latency total. On a run that lost
        # items to process crashes the identity weakens to an
        # inequality: stages are folded at the grouping handler while
        # per-item latency is recorded at final delivery, so an item
        # destroyed between the two (a crash-drained section task)
        # carries stage attribution with no matching latency sample.
        total = sum(
            h.get("total_ns", 0.0)
            for name, h in stages.items()
            if name != "handler"
        )
        lat_total = latency.get("total_ns", 0.0)
        tol = _STAGE_REL_TOL * max(abs(lat_total), 1.0)
        if crash_lossy:
            if total < lat_total - tol:
                errors.append(
                    f"{prefix}: stage breakdown ({total}) falls short of "
                    f"end-to-end latency total ({lat_total}) on a "
                    f"crash-lossy run"
                )
        elif abs(total - lat_total) > tol:
            errors.append(
                f"{prefix}: stage breakdown ({total}) does not sum to "
                f"end-to-end latency total ({lat_total})"
            )


def _check_run(
    prefix: str, run: Any, errors: List[str], *, strict_optional: bool = True
) -> None:
    if not isinstance(run, dict):
        errors.append(f"{prefix}: not an object")
        return
    for key in _RUN_KEYS:
        if key not in run:
            errors.append(f"{prefix}: missing {key!r}")
    if strict_optional:
        # /2 contract: disabled subsystems are an explicit null, never
        # an absent key.
        for key in _OPTIONAL_RUN_KEYS:
            if key not in run:
                errors.append(
                    f"{prefix}: missing optional block {key!r} "
                    f"(schema /2 requires explicit null when disabled)"
                )
    util = run.get("utilization")
    if util is not None:
        if not isinstance(util, dict):
            errors.append(f"{prefix}: utilization is not an object")
        elif "bottleneck" not in util:
            errors.append(f"{prefix}: utilization missing 'bottleneck'")
    _check_flow(prefix, run, errors)
    _check_faults_flow(prefix, run, errors)
    _check_timeline(prefix, run, errors)
    _check_pdes(prefix, run, errors)
    faults = run.get("faults")
    crash_lossy = bool(
        isinstance(faults, dict) and faults.get("items_lost_to_crash")
    )
    for i, scheme in enumerate(run.get("schemes") or ()):
        _check_scheme(
            f"{prefix}.schemes[{i}]", scheme, errors, crash_lossy=crash_lossy
        )


def _check_flow(prefix: str, run: dict, errors: List[str]) -> None:
    """Flow-controlled runs must carry a closable conservation ledger
    and the ``flow.*`` registry metrics."""
    flow = run.get("flow")
    if flow is None:
        return
    if not isinstance(flow, dict):
        errors.append(f"{prefix}: flow is not an object")
        return
    for key in ("stats", "gates", "conservation"):
        if key not in flow:
            errors.append(f"{prefix}: flow missing {key!r}")
    cons = flow.get("conservation")
    if isinstance(cons, dict):
        if cons.get("balanced") is False:
            errors.append(
                f"{prefix}: flow conservation violated "
                f"(produced={cons.get('produced')}, "
                f"delivered={cons.get('delivered')}, "
                f"shed={cons.get('shed')}, lost={cons.get('lost')}, "
                f"abandoned={cons.get('abandoned')}, "
                f"buffered={cons.get('buffered')}, "
                f"parked={cons.get('parked')})"
            )
        if cons.get("parked"):
            errors.append(
                f"{prefix}: {cons['parked']} item(s) still parked at "
                f"credit gates after quiescence"
            )
    metrics = run.get("metrics")
    names = metrics.get("metrics", {}) if isinstance(metrics, dict) else {}
    if "flow.items_shed" not in names:
        errors.append(f"{prefix}: flow active but flow.* metrics missing")


def _check_faults_flow(prefix: str, run: dict, errors: List[str]) -> None:
    """Cross-check the conservation ledger against the faults and
    reliability blocks.

    With both faults and flow active but shedding off, every non-zero
    ledger term other than ``delivered``/``buffered``/``parked`` must be
    traceable to a producer block: ``lost`` to ``faults.items_lost``,
    ``lost_to_crash`` (crash fabric armed) to
    ``faults.items_lost_to_crash``, and ``abandoned`` to
    ``reliability.items_abandoned`` (zero when the reliability layer is
    off). Historically this lost-vs-abandoned split was only asserted in
    the flow-only path, so a faults+flow artifact could smuggle a
    mis-attributed loss past ``balanced`` as long as the *sum* closed.
    The arithmetic identity itself is also re-derived from the
    serialized terms rather than trusting the ``balanced`` flag.
    """
    flow = run.get("flow")
    faults = run.get("faults")
    if not isinstance(flow, dict) or not isinstance(faults, dict):
        return
    cons = flow.get("conservation")
    if not isinstance(cons, dict):
        return

    def term(key: str) -> int:
        val = cons.get(key, 0)
        return int(val) if isinstance(val, (int, float)) else 0

    # Shedding on: shed items are attributed by the flow layer itself
    # and the split below does not decompose further — flow-only checks
    # in _check_flow still apply.
    if term("shed"):
        return
    if cons.get("lost") != faults.get("items_lost"):
        errors.append(
            f"{prefix}: ledger lost ({cons.get('lost')}) != "
            f"faults.items_lost ({faults.get('items_lost')})"
        )
    if "lost_to_crash" in cons and "items_lost_to_crash" in faults:
        if cons.get("lost_to_crash") != faults.get("items_lost_to_crash"):
            errors.append(
                f"{prefix}: ledger lost_to_crash "
                f"({cons.get('lost_to_crash')}) != "
                f"faults.items_lost_to_crash "
                f"({faults.get('items_lost_to_crash')})"
            )
    elif ("lost_to_crash" in cons) != ("items_lost_to_crash" in faults):
        errors.append(
            f"{prefix}: crash-fabric keys out of sync between the "
            f"ledger and the faults block (ledger has lost_to_crash: "
            f"{'lost_to_crash' in cons}, faults has "
            f"items_lost_to_crash: {'items_lost_to_crash' in faults})"
        )
    reliability = run.get("reliability")
    if isinstance(reliability, dict):
        if cons.get("abandoned") != reliability.get("items_abandoned"):
            errors.append(
                f"{prefix}: ledger abandoned ({cons.get('abandoned')}) != "
                f"reliability.items_abandoned "
                f"({reliability.get('items_abandoned')})"
            )
    elif term("abandoned"):
        errors.append(
            f"{prefix}: ledger reports {term('abandoned')} abandoned "
            f"item(s) with the reliability layer off"
        )
    # Re-derive the identity from the serialized terms; ``balanced`` is
    # None (no identity) only for dup faults without reliability.
    if cons.get("balanced") is not None:
        accounted = (
            term("delivered")
            + term("shed")
            + term("lost")
            + term("lost_to_crash")
            + term("abandoned")
            + term("buffered")
            + term("parked")
        )
        if term("produced") != accounted:
            errors.append(
                f"{prefix}: ledger terms do not close: produced "
                f"({term('produced')}) != accounted ({accounted})"
            )


def _check_pdes(prefix: str, run: dict, errors: List[str]) -> None:
    """Internal-consistency checks on a run's conservative-PDES block.

    A partitioned run must have actually partitioned (>= 2 partitions,
    no fallback reason, per-partition event counts that close against
    the coordinator's round accounting); a sequential-mode record must
    name why it fell back. The ``pdes.*`` registry metrics, when
    present, must agree with the block — both are read from the same
    :class:`~repro.sim.parallel.PdesRunInfo` at snapshot time.
    """
    pdes = run.get("pdes")
    if pdes is None:
        return
    if not isinstance(pdes, dict):
        errors.append(f"{prefix}: pdes is not an object")
        return
    mode = pdes.get("mode")
    if mode not in ("partitioned", "sequential"):
        errors.append(f"{prefix}: pdes.mode {mode!r} not in "
                      f"('partitioned', 'sequential')")
    if mode == "partitioned":
        if not isinstance(pdes.get("partitions"), int) or pdes["partitions"] < 2:
            errors.append(
                f"{prefix}: partitioned pdes run with partitions="
                f"{pdes.get('partitions')!r} (want an int >= 2)"
            )
        if pdes.get("fallback") is not None:
            errors.append(
                f"{prefix}: partitioned pdes run carries a fallback "
                f"reason ({pdes.get('fallback')!r})"
            )
        if not pdes.get("rounds"):
            errors.append(f"{prefix}: partitioned pdes run with no rounds")
        per_part = pdes.get("events_per_partition")
        if isinstance(per_part, list) and len(per_part) != pdes.get("partitions"):
            errors.append(
                f"{prefix}: events_per_partition has {len(per_part)} "
                f"entries for {pdes.get('partitions')} partitions"
            )
    elif mode == "sequential" and not pdes.get("fallback"):
        errors.append(
            f"{prefix}: sequential pdes record without a fallback reason"
        )
    lookahead = pdes.get("lookahead_ns")
    if isinstance(lookahead, (int, float)) and lookahead <= 0:
        errors.append(f"{prefix}: pdes.lookahead_ns must be positive, "
                      f"got {lookahead}")
    metrics = run.get("metrics")
    reg = metrics.get("metrics", {}) if isinstance(metrics, dict) else {}
    for mname, field in (
        ("pdes.null_messages", "null_messages"),
        ("pdes.wire_messages", "wire_messages"),
        ("pdes.rounds", "rounds"),
    ):
        entry = reg.get(mname)
        if isinstance(entry, dict) and entry.get("value") != pdes.get(field):
            errors.append(
                f"{prefix}: registry {mname} ({entry.get('value')}) "
                f"disagrees with pdes.{field} ({pdes.get(field)})"
            )


#: Schema tag a run's timeline block must carry (see repro.obs.timeline).
_TIMELINE_SCHEMA = "repro.obs.timeline/1"

#: Relative tolerance for the final-sample ≡ snapshot-counter check.
#: Both are computed from the same live objects within one
#: ``run_snapshot`` call, so they agree exactly for counters; the
#: tolerance only absorbs float-summation differences in derived
#: gauges.
_TIMELINE_REL_TOL = 1e-9


def _check_timeline(prefix: str, run: dict, errors: List[str]) -> None:
    """Internal-consistency checks on a run's flight-recorder block:
    schema tag, monotone sample times, parallel series columns, and
    final-sample agreement with the snapshot's metrics registry."""
    tl = run.get("timeline")
    if tl is None:
        return
    if not isinstance(tl, dict):
        errors.append(f"{prefix}: timeline is not an object")
        return
    if tl.get("schema") != _TIMELINE_SCHEMA:
        errors.append(
            f"{prefix}: timeline schema mismatch: expected "
            f"{_TIMELINE_SCHEMA!r}, got {tl.get('schema')!r}"
        )
    for key in ("cadence_ns", "times_ns", "series", "final"):
        if key not in tl:
            errors.append(f"{prefix}: timeline missing {key!r}")
    times = tl.get("times_ns")
    if not isinstance(times, list):
        return
    if any(b <= a for a, b in zip(times, times[1:])):
        errors.append(f"{prefix}: timeline sample times are not "
                      f"strictly increasing")
    n = tl.get("n_samples")
    if n is not None and n != len(times):
        errors.append(f"{prefix}: timeline n_samples ({n}) != "
                      f"len(times_ns) ({len(times)})")
    capacity = tl.get("capacity")
    if isinstance(capacity, int) and len(times) > capacity:
        errors.append(f"{prefix}: timeline holds {len(times)} samples, "
                      f"over its capacity of {capacity}")
    series = tl.get("series")
    if isinstance(series, dict):
        for name, col in series.items():
            if not isinstance(col, list) or len(col) != len(times):
                errors.append(
                    f"{prefix}: timeline series {name!r} has "
                    f"{len(col) if isinstance(col, list) else '?'} points, "
                    f"expected {len(times)}"
                )
    final = tl.get("final")
    if not isinstance(final, dict):
        return
    t_final = final.get("time_ns")
    if times and isinstance(t_final, (int, float)) and t_final < times[-1]:
        errors.append(f"{prefix}: timeline final.time_ns ({t_final}) "
                      f"precedes last sample ({times[-1]})")
    # Final-sample ≡ snapshot-counter agreement: every timeline series
    # that shadows a metrics-registry entry must report the same final
    # value the registry snapshot recorded.
    metrics = run.get("metrics")
    reg = metrics.get("metrics", {}) if isinstance(metrics, dict) else {}
    values = final.get("values")
    if not isinstance(values, dict):
        return
    for name, val in values.items():
        entry = reg.get(name)
        if not isinstance(entry, dict):
            continue
        ref = entry.get("value")
        if not isinstance(ref, (int, float)) or not isinstance(
            val, (int, float)
        ):
            continue
        tol = _TIMELINE_REL_TOL * max(abs(ref), 1.0)
        if abs(val - ref) > tol:
            errors.append(
                f"{prefix}: timeline final sample for {name!r} ({val}) "
                f"disagrees with snapshot counter ({ref})"
            )


_PROVENANCE_POINT_KEYS = ("index", "cache_hit", "worker", "wall_s", "seed")


def _check_provenance(prov: Any, errors: List[str]) -> None:
    if prov is None:
        return
    if not isinstance(prov, dict):
        errors.append("'provenance' is not an object")
        return
    pdes = prov.get("pdes")
    if pdes is not None:
        if not isinstance(pdes, dict):
            errors.append("provenance.pdes is not an object")
        else:
            if not isinstance(pdes.get("sim_parallel"), int) or pdes[
                "sim_parallel"
            ] < 2:
                errors.append(
                    "provenance.pdes.sim_parallel must be an int >= 2, got "
                    f"{pdes.get('sim_parallel')!r}"
                )
            for key in ("runs_partitioned", "runs_sequential"):
                if not isinstance(pdes.get(key), int):
                    errors.append(f"provenance.pdes missing {key!r}")
            reasons = pdes.get("fallback_reasons")
            if not isinstance(reasons, dict):
                errors.append("provenance.pdes missing 'fallback_reasons'")
            elif isinstance(pdes.get("runs_sequential"), int) and sum(
                v for v in reasons.values() if isinstance(v, int)
            ) != pdes["runs_sequential"]:
                errors.append(
                    "provenance.pdes.fallback_reasons do not account for "
                    "runs_sequential"
                )
    points = prov.get("points")
    if not isinstance(points, list):
        # A run under --sim-parallel with no pool activity records
        # pdes-only provenance; pool point records are then absent.
        if points is None and pdes is not None:
            return
        errors.append("provenance missing 'points' list")
        return
    for i, point in enumerate(points):
        if not isinstance(point, dict):
            errors.append(f"provenance.points[{i}]: not an object")
            continue
        for key in _PROVENANCE_POINT_KEYS:
            if key not in point:
                errors.append(f"provenance.points[{i}]: missing {key!r}")
    summary = prov.get("summary")
    if isinstance(summary, dict):
        if summary.get("n_points") != len(points):
            errors.append("provenance.summary.n_points != len(points)")
        poisoned = sum(
            1
            for p in points
            if isinstance(p, dict) and p.get("status") == "poisoned"
        )
        hits = sum(
            1
            for p in points
            if isinstance(p, dict)
            and p.get("cache_hit")
            and p.get("status") != "poisoned"
        )
        if summary.get("cache_hits") != hits:
            errors.append(
                "provenance.summary.cache_hits does not match points"
            )
        if summary.get("executed") != len(points) - hits - poisoned:
            errors.append("provenance.summary.executed does not match points")
        # Supervisor-era summaries (with a "poisoned" key) must close
        # the conservation exactly; older /2 artifacts predate it.
        if "poisoned" in summary:
            if summary.get("poisoned") != poisoned:
                errors.append(
                    "provenance.summary.poisoned does not match points"
                )
            total = (
                summary.get("cache_hits", 0)
                + summary.get("executed", 0)
                + summary.get("poisoned", 0)
            )
            if total != summary.get("n_points"):
                errors.append(
                    "provenance conservation violated: n_points != "
                    "cache_hits + executed + poisoned "
                    f"({summary.get('n_points')} != {total})"
                )
            for i, point in enumerate(points):
                if (
                    isinstance(point, dict)
                    and point.get("status") == "poisoned"
                    and not point.get("error")
                ):
                    errors.append(
                        f"provenance.points[{i}]: poisoned without an error"
                    )


def validate_metrics_payload(payload: Any) -> List[str]:
    """Check a parsed artifact against the schema; returns problems.

    An empty list means the payload is well-formed. Checks cover the
    envelope, per-run required keys, the utilization/bottleneck block,
    and the stage-partition identity on every scheme that carries a
    stage breakdown.
    """
    errors: List[str] = []
    if not isinstance(payload, dict):
        return ["payload is not a JSON object"]
    schema = payload.get("schema")
    if schema not in _ACCEPTED_SCHEMAS:
        errors.append(
            f"schema mismatch: expected one of {_ACCEPTED_SCHEMAS!r}, "
            f"got {schema!r}"
        )
    # /1 artifacts may legitimately omit disabled optional blocks.
    strict_optional = schema == METRICS_SCHEMA
    for key in ("target", "profile", "runs", "summary"):
        if key not in payload:
            errors.append(f"missing top-level key {key!r}")
    runs = payload.get("runs")
    if runs is not None and not isinstance(runs, list):
        errors.append("'runs' is not a list")
        runs = None
    for i, run in enumerate(runs or ()):
        _check_run(f"runs[{i}]", run, errors, strict_optional=strict_optional)
    summary = payload.get("summary")
    if isinstance(summary, dict):
        if runs is not None and summary.get("n_runs") != len(runs):
            errors.append("summary.n_runs does not match len(runs)")
    elif summary is not None:
        errors.append("'summary' is not an object")
    _check_provenance(payload.get("provenance"), errors)
    return errors
