"""Programmatic reproduction validation.

Each paper figure's qualitative claim is encoded as a checker over the
regenerated :class:`~repro.harness.experiment.FigureData`;
:func:`validate_reproduction` runs them and reports pass/fail — the
library-level equivalent of the benchmark suite's assertions, usable
from the CLI (``tramlib-repro validate``) or from code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import HarnessError
from repro.harness.experiment import FigureData
from repro.harness.figures import FIGURES, run_figure
from repro.util.tables import render_table

Checker = Callable[[FigureData], Tuple[bool, str]]


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one figure's shape check."""

    fig_id: str
    passed: bool
    details: str


def _last(data: FigureData, name: str) -> float:
    return data.series_by_name(name).y[-1]


# ----------------------------------------------------------------------
# Checkers (shape rules; quick-profile-safe thresholds)
# ----------------------------------------------------------------------
def _check_fig1(d: FigureData):
    y = d.series_by_name("one_way_us").y
    flat = abs(y[1] - y[0]) / y[0] < 0.2
    bw = y[-1] > 10 * y[0]
    return flat and bw, f"small={y[0]:.2f}us large={y[-1]:.1f}us"


def _check_fig3(d: FigureData):
    y = d.series_by_name("time_ms").y
    ok = y[1] > 1.5 * y[0] and y[-1] < 1.3 * y[0]
    return ok, f"nonSMP={y[0]:.3f} SMP1={y[1]:.3f} best={y[-1]:.3f} ms"


def _check_fig8(d: FigureData):
    y = d.series_by_name("time_ms").y
    return min(y[1:]) < 1.2 * y[0], f"nonSMP={y[0]:.3f} bestSMP={min(y[1:]):.3f}"


def _check_fig9(d: FigureData):
    ww, wps = _last(d, "WW"), _last(d, "WPs")
    ww0 = d.series_by_name("WW").y[0]
    wps0 = d.series_by_name("WPs").y[0]
    ok = wps <= ww and (ww / ww0) > (wps / wps0)
    return ok, f"WW {ww0:.3f}->{ww:.3f}, WPs {wps0:.3f}->{wps:.3f} ms"


def _check_fig10(d: FigureData):
    wps = d.series_by_name("WPs").y
    return wps[0] > wps[-1], f"WPs g-sweep {wps[0]:.3f}->{wps[-1]:.3f} ms"


def _check_fig11(d: FigureData):
    ww, wps = _last(d, "WW"), _last(d, "WPs")
    return ww > 1.3 * wps, f"WW={ww:.3f} WPs={wps:.3f} ms at largest"


def _check_fig12(d: FigureData):
    pp, wps, ww = _last(d, "PP"), _last(d, "WPs"), _last(d, "WW")
    return pp < wps < ww, f"PP={pp:.1f} WPs={wps:.1f} WW={ww:.1f} us"


def _check_fig13(d: FigureData):
    ww = _last(d, "WW")
    best = min(_last(d, s.name) for s in d.series)
    return ww >= best, f"WW={ww:.3f} best={best:.3f} ms"


def _check_fig14(d: FigureData):
    return _last(d, "PP") <= _last(d, "WW"), (
        f"PP={_last(d, 'PP'):.3f} WW={_last(d, 'WW'):.3f} ms"
    )


def _check_fig15(d: FigureData):
    return _last(d, "PP") <= 1.0, f"PP={_last(d, 'PP'):.3f} (norm WW=1)"


def _check_fig16(d: FigureData):
    return _last(d, "WPs") <= 1.05 * _last(d, "WW"), (
        f"WPs={_last(d, 'WPs'):.3f} WW={_last(d, 'WW'):.3f} ms"
    )


def _check_fig17(d: FigureData):
    values = [_last(d, s.name) for s in d.series]
    ok = all(0.7 <= v <= 1.15 for v in values)
    return ok, f"normalized spread {min(values):.2f}..{max(values):.2f}"


def _check_fig18(d: FigureData):
    rejected = dict(zip(d.x, d.series_by_name("rejected").y))
    ok = rejected["PP"] < 0.95 * rejected["WW"]
    return ok, f"PP={rejected['PP']:.0f} WW={rejected['WW']:.0f}"


def _check_tabA(d: FigureData):
    measured = d.series_by_name("measured").y
    analytic = d.series_by_name("analytic_max").y
    ok = all(m <= a for m, a in zip(measured, analytic))
    return ok, "measured <= analytic for all schemes"


def _check_tabB(d: FigureData):
    lower = d.series_by_name("lower_bound").y
    measured = d.series_by_name("measured").y
    upper = d.series_by_name("upper_bound").y
    ok = all(lo <= m <= hi for lo, m, hi in zip(lower, measured, upper))
    return ok, "bounds hold for all schemes"


def _check_extA(d: FigureData):
    msgs = dict(zip(d.x, d.series_by_name("messages").y))
    ok = msgs["WW"] > msgs["WPs"] > msgs["WNs"] and msgs["PP"] > msgs["NN"]
    return ok, f"WW={msgs['WW']:.0f} ... NN={msgs['NN']:.0f}"


def _check_extB(d: FigureData):
    bufs = dict(zip(d.x, d.series_by_name("buffers").y))
    lat = dict(zip(d.x, d.series_by_name("latency_us").y))
    ok = bufs["R2D"] < bufs["WPs"] and lat["R2D"] > lat["WPs"]
    return ok, (
        f"buffers R2D={bufs['R2D']:.0f}<WPs={bufs['WPs']:.0f}, "
        f"latency R2D={lat['R2D']:.1f}>WPs={lat['WPs']:.1f}us"
    )


def _check_extC(d: FigureData):
    # Column 0 is k=0: no crash fabric, everything must be delivered.
    # Columns with k>0 lose something to the crashes but never
    # everything — failover routing and loss accounting keep the run
    # finishing with a partial (not empty, not silently complete)
    # delivery; the generator itself raises on an unbalanced ledger.
    ok = True
    worst = 1.0
    for s in d.series:
        if s.y[0] != 1.0:
            ok = False
        for frac in s.y[1:]:
            worst = min(worst, frac)
            if not 0.0 < frac < 1.0:
                ok = False
    return ok, f"k=0 fraction 1.0 everywhere, worst crashed fraction {worst:.2f}"


CHECKERS: Dict[str, Checker] = {
    "fig1": _check_fig1,
    "fig3": _check_fig3,
    "fig8": _check_fig8,
    "fig9": _check_fig9,
    "fig10": _check_fig10,
    "fig11": _check_fig11,
    "fig12": _check_fig12,
    "fig13": _check_fig13,
    "fig14": _check_fig14,
    "fig15": _check_fig15,
    "fig16": _check_fig16,
    "fig17": _check_fig17,
    "fig18": _check_fig18,
    "tabA": _check_tabA,
    "tabB": _check_tabB,
    "extA": _check_extA,
    "extB": _check_extB,
    "extC": _check_extC,
}


def validate_figure(
    fig_id: str,
    profile: str = "quick",
    parallel: int = 1,
    cache_dir=None,
    retries: int = 0,
    point_timeout_s=None,
) -> CheckResult:
    """Regenerate one figure and check its shape claim.

    ``parallel``/``cache_dir`` configure the sweep pool for the
    figure's grid points (identical data, less wall-clock);
    ``retries``/``point_timeout_s`` make a long validation run survive
    worker crashes and hangs (see :mod:`repro.harness.pool`).
    """
    checker = CHECKERS.get(fig_id)
    if checker is None:
        raise HarnessError(f"no checker for {fig_id!r}")
    data = run_figure(
        fig_id, profile, parallel=parallel, cache_dir=cache_dir,
        retries=retries, point_timeout_s=point_timeout_s,
    )
    passed, details = checker(data)
    return CheckResult(fig_id=fig_id, passed=passed, details=details)


def validate_reproduction(
    profile: str = "quick",
    figures: Optional[Iterable[str]] = None,
    parallel: int = 1,
    cache_dir=None,
    retries: int = 0,
    point_timeout_s=None,
) -> List[CheckResult]:
    """Check the shape claims of the given figures (default: all)."""
    ids = list(figures) if figures is not None else list(FIGURES)
    return [
        validate_figure(
            fig_id, profile, parallel=parallel, cache_dir=cache_dir,
            retries=retries, point_timeout_s=point_timeout_s,
        )
        for fig_id in ids
    ]


def render_results(results: List[CheckResult]) -> str:
    """Human-readable PASS/FAIL table."""
    rows = [
        [r.fig_id, "PASS" if r.passed else "FAIL", r.details]
        for r in results
    ]
    return render_table(["experiment", "status", "details"], rows)
