"""`repro timeline-plot`: stacked time-series figures from an artifact.

Reads a ``repro.run-metrics`` JSON artifact produced with ``--timeline``
and renders each run's flight-recorder block as per-track stacked ASCII
area charts — comm-thread backlog, NIC backlog, credit-gate occupancy,
parked messages, per-scheme buffered items, queued bytes and the
overload flag — so a run's time structure (a backlog ramp under an
overload window, gates saturating before shedding starts) is visible
straight from the terminal, no plotting stack required.

Charts are stacked: at every time column the series are drawn on top of
each other, so the silhouette is the total and the bands are the
per-entity shares.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

#: Symbols assigned to series within one track, in legend order.
_SYMBOLS = "#*o+x%@=~^"

#: Chart geometry.
_WIDTH = 72
_HEIGHT = 8

#: Track definitions: (title, unit, predicate on series name). Order is
#: presentation order; a series lands in the first track that claims it.
_TRACKS: List[Tuple[str, str, object]] = [
    ("comm-thread backlog", "ns",
     lambda n: n.startswith("ct.") and n.endswith(".backlog_ns")),
    ("NIC tx backlog", "ns",
     lambda n: n.startswith("nic.") and n.endswith(".tx_backlog_ns")),
    ("NIC rx backlog", "ns",
     lambda n: n.startswith("nic.") and n.endswith(".rx_backlog_ns")),
    ("credit-gate in-flight", "messages",
     lambda n: n.startswith("gate.") and n.endswith(".in_flight_msgs")),
    ("parked at gates", "messages",
     lambda n: n.startswith("gate.") and n.endswith(".parked")),
    ("buffered items per scheme", "items",
     lambda n: n.startswith("tram.") and n.endswith(".pending_items")),
    ("worker queued bytes", "bytes", lambda n: n == "workers.queued_bytes"),
    ("in-flight reliability window", "messages",
     lambda n: n == "reliability.pending_messages"),
    ("overload state", "0/1", lambda n: n == "flow.overloaded"),
    ("oldest park age", "ns", lambda n: n == "flow.oldest_park_age_ns"),
    ("PDES coordinator stalls", "ns",
     lambda n: n == "pdes.horizon_stalls_ns"),
    ("PDES null messages", "messages", lambda n: n == "pdes.null_messages"),
]


def group_tracks(series: Dict[str, List[float]]) -> List[Tuple[str, str, Dict[str, List[float]]]]:
    """Partition series into presentation tracks; drops cumulative
    counters (their stacked areas would just be monotone wedges)."""
    out = []
    claimed = set()
    for title, unit, wants in _TRACKS:
        members = {
            name: col
            for name, col in series.items()
            if name not in claimed and wants(name)
        }
        if not members or all(not any(col) for col in members.values()):
            continue
        claimed.update(members)
        out.append((title, unit, dict(sorted(members.items()))))
    return out


def _resample(times: Sequence[float], col: Sequence[float], grid: Sequence[float]) -> List[float]:
    """Sample-and-hold ``col`` onto ``grid`` (0 before the first sample)."""
    out = []
    i = -1
    for t in grid:
        while i + 1 < len(times) and times[i + 1] <= t:
            i += 1
        out.append(col[i] if i >= 0 else 0.0)
    return out


def _fmt(v: float) -> str:
    if v >= 1e9:
        return f"{v / 1e9:.3g}G"
    if v >= 1e6:
        return f"{v / 1e6:.3g}M"
    if v >= 1e3:
        return f"{v / 1e3:.3g}k"
    return f"{v:.3g}"


def render_track(
    title: str,
    unit: str,
    times: Sequence[float],
    members: Dict[str, List[float]],
    *,
    width: int = _WIDTH,
    height: int = _HEIGHT,
) -> str:
    """One stacked ASCII area chart with axis labels and a legend."""
    t0, t1 = times[0], times[-1]
    span = (t1 - t0) or 1.0
    grid = [t0 + span * j / (width - 1) for j in range(width)]
    names = list(members)
    resampled = [_resample(times, members[n], grid) for n in names]
    # Stacked: cumulative top edge of each band per column.
    tops: List[List[float]] = []
    acc = [0.0] * width
    for col in resampled:
        acc = [a + v for a, v in zip(acc, col)]
        tops.append(list(acc))
    peak = max(acc) or 1.0
    rows = []
    for r in range(height, 0, -1):
        # Cell is filled by the lowest band whose top reaches this row.
        lo = peak * (r - 0.5) / height
        cells = []
        for j in range(width):
            ch = " "
            for si in range(len(names)):
                if tops[si][j] >= lo:
                    ch = _SYMBOLS[si % len(_SYMBOLS)]
                    break
            cells.append(ch)
        label = _fmt(peak * r / height) if r in (height, height // 2) else ""
        rows.append(f"{label:>8} |" + "".join(cells))
    rows.append(f"{'0':>8} +" + "-" * width)
    rows.append(
        f"{'':>9}{_fmt(t0)}ns{'':<{max(1, width - 18)}}{_fmt(t1)}ns"
    )
    legend = "  ".join(
        f"{_SYMBOLS[i % len(_SYMBOLS)]}={n}" for i, n in enumerate(names)
    )
    head = f"-- {title} ({unit}, peak {_fmt(peak)}) --"
    return "\n".join([head] + rows + [f"  {legend}"])


def render_timeline(tl: dict, *, width: int = _WIDTH) -> str:
    """All tracks of one run's timeline block."""
    times = tl.get("times_ns") or []
    series = tl.get("series") or {}
    if not times:
        return "(timeline has no samples)"
    parts = [
        f"timeline: {len(times)} sample(s) @ {_fmt(tl.get('cadence_ns', 0))}ns"
        f" cadence (stride {tl.get('stride', 1)}, "
        f"{tl.get('decimations', 0)} decimation(s))"
    ]
    tracks = group_tracks(series)
    if not tracks:
        parts.append("(no non-zero gauge series to plot)")
    for title, unit, members in tracks:
        parts.append("")
        parts.append(render_track(title, unit, times, members, width=width))
    return "\n".join(parts)


def run_timeline_plot(path: Optional[Path], out: Optional[Path] = None) -> int:
    """CLI body: render every timeline-bearing run in an artifact."""
    if path is None:
        print("error: timeline-plot needs an artifact path", file=sys.stderr)
        return 2
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, ValueError) as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        return 2
    runs = payload.get("runs") or []
    plotted = 0
    reports = []
    for i, run in enumerate(runs):
        tl = run.get("timeline") if isinstance(run, dict) else None
        if not tl:
            continue
        plotted += 1
        block = f"== run {i} ==\n{render_timeline(tl)}"
        print(block)
        print()
        reports.append((i, block))
    if not plotted:
        print(
            f"error: no timeline blocks in {path} — re-run the harness "
            f"with --timeline to record them",
            file=sys.stderr,
        )
        return 1
    if out is not None:
        out.mkdir(parents=True, exist_ok=True)
        stem = Path(path).stem
        dest = out / f"timeline_{stem}.txt"
        dest.write_text(
            "\n\n".join(block for _, block in reports) + "\n"
        )
        print(f"[wrote {dest}]")
    print(f"[plotted {plotted} of {len(runs)} run(s)]")
    return 0
