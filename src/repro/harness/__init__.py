"""Experiment harness: regenerate every data figure of the paper.

``python -m repro.harness list`` shows the registry;
``python -m repro.harness fig9`` runs one experiment and prints the
table of series the paper's figure plots; ``all`` runs everything.
Profiles: ``paper`` (default, minutes) and ``quick`` (seconds, used by
the pytest benchmarks).
"""

from repro.harness.artifact import (
    METRICS_SCHEMA,
    build_metrics_payload,
    validate_metrics_payload,
    write_metrics_json,
)
from repro.harness.experiment import FigureData, Series
from repro.harness.figures import FIGURES, run_figure
from repro.harness.metrics import UtilizationReport, utilization
from repro.harness.report import write_report
from repro.harness.sweep import SweepCell, SweepResult, run_sweep
from repro.harness.validate import CheckResult, validate_figure, validate_reproduction

__all__ = [
    "FIGURES",
    "METRICS_SCHEMA",
    "FigureData",
    "Series",
    "SweepCell",
    "SweepResult",
    "CheckResult",
    "UtilizationReport",
    "build_metrics_payload",
    "run_figure",
    "run_sweep",
    "utilization",
    "validate_figure",
    "validate_metrics_payload",
    "write_metrics_json",
    "write_report",
]
