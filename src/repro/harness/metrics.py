"""Post-run utilization metrics for a simulated machine.

After ``rt.run()`` these helpers turn the component counters into the
quantities a performance engineer would ask for: how busy were the
worker PEs, the comm threads and the NICs — i.e. *where is the
bottleneck*. The paper's §III-A diagnosis ("the comm thread itself
becomes a serializing bottleneck") is literally a read of this report.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, List

from repro.util.tables import render_table

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.system import RuntimeSystem


@dataclass(frozen=True)
class UtilizationReport:
    """Busy fractions over one completed run."""

    total_time_ns: float
    #: Mean busy fraction over all worker PEs.
    worker_mean: float
    #: Busiest single worker PE.
    worker_max: float
    #: Mean busy fraction over comm threads (0.0 in non-SMP mode).
    commthread_mean: float
    commthread_max: float
    #: Mean tx-side NIC utilization across nodes.
    nic_tx_mean: float
    nic_rx_mean: float
    #: Total simulated ns messages spent queued behind comm threads.
    commthread_queue_wait_ns: float
    #: Total simulated ns messages spent queued behind NICs.
    nic_queue_wait_ns: float
    #: Worst booked-ahead horizon any comm thread reached (0.0 in
    #: non-SMP mode) — overload shows up here even with flow control off.
    commthread_max_backlog_ns: float = 0.0
    #: Largest PE-side receive-queue occupancy any worker reached.
    worker_queued_bytes_hwm: int = 0
    #: Channels the reliability layer gave up on: degraded to direct
    #: traffic plus torn down after a peer-death confirmation. Reported
    #: (in ``to_dict``/``bottleneck_detail``) only when nonzero so
    #: trip-free artifacts keep their exact pre-existing shape.
    channels_tripped: int = 0
    #: Items that travelled as unaggregated direct sends because their
    #: destination pair had degraded.
    degraded_direct_items: int = 0

    def bottleneck(self) -> str:
        """Name the most-utilized component class."""
        candidates = {
            "workers": self.worker_max,
            "commthreads": self.commthread_max,
            "nic_tx": self.nic_tx_mean,
            "nic_rx": self.nic_rx_mean,
        }
        return max(candidates, key=candidates.get)

    def bottleneck_detail(self) -> str:
        """The verdict plus the high-water backlog behind it."""
        verdict = self.bottleneck()
        if verdict == "commthreads" and self.commthread_max_backlog_ns > 0:
            verdict = (
                f"{verdict} (max backlog "
                f"{self.commthread_max_backlog_ns:,.0f} ns)"
            )
        if self.channels_tripped:
            verdict += (
                f" [{self.channels_tripped} channels tripped to direct, "
                f"{self.degraded_direct_items} items sent unaggregated]"
            )
        return verdict

    def to_dict(self) -> dict:
        """All fields as a plain dict (JSON-serializable)."""
        out = asdict(self)
        if not self.channels_tripped:
            del out["channels_tripped"]
            del out["degraded_direct_items"]
        return out

    def to_table(self) -> str:
        rows = [
            ["workers (mean/max)", f"{self.worker_mean:.1%}",
             f"{self.worker_max:.1%}"],
            ["comm threads (mean/max)", f"{self.commthread_mean:.1%}",
             f"{self.commthread_max:.1%}"],
            ["NIC tx / rx (mean)", f"{self.nic_tx_mean:.1%}",
             f"{self.nic_rx_mean:.1%}"],
            ["comm-thread queue wait (total ns)",
             f"{self.commthread_queue_wait_ns:,.0f}", ""],
            ["NIC queue wait (total ns)",
             f"{self.nic_queue_wait_ns:,.0f}", ""],
            ["comm-thread max backlog (ns)",
             f"{self.commthread_max_backlog_ns:,.0f}", ""],
            ["worker queued bytes (high-water)",
             f"{self.worker_queued_bytes_hwm:,}", ""],
        ]
        return render_table(["component", "mean", "max"], rows)


def utilization(rt: "RuntimeSystem") -> UtilizationReport:
    """Compute the utilization report for a finished run.

    Raises
    ------
    ValueError
        If the run never advanced simulated time.
    """
    total = rt.engine.now
    if total <= 0:
        raise ValueError("run the simulation before asking for utilization")
    worker_fracs = [w.stats.busy_ns / total for w in rt.workers]

    ct_fracs: List[float] = []
    ct_wait = 0.0
    ct_backlog = 0.0
    for proc in rt.processes:
        ct = proc.commthread
        if ct is not None:
            ct_fracs.append(ct.stats.busy_ns / total)
            ct_wait += ct.stats.queue_wait_ns
            if ct.stats.max_backlog_ns > ct_backlog:
                ct_backlog = ct.stats.max_backlog_ns

    costs = rt.costs
    tx_fracs, rx_fracs = [], []
    nic_wait = 0.0
    for node in rt.nodes:
        for nic in node.nics:
            tx_busy = (
                nic.stats.tx_messages * costs.nic_msg_ns
                + nic.stats.tx_bytes * costs.beta_ns_per_byte
            )
            rx_busy = (
                nic.stats.rx_messages * costs.nic_msg_ns
                + nic.stats.rx_bytes * costs.beta_ns_per_byte
            )
            tx_fracs.append(tx_busy / total)
            rx_fracs.append(rx_busy / total)
            nic_wait += nic.stats.tx_queue_wait_ns + nic.stats.rx_queue_wait_ns

    def mean(xs):
        return sum(xs) / len(xs) if xs else 0.0

    return UtilizationReport(
        total_time_ns=total,
        worker_mean=mean(worker_fracs),
        worker_max=max(worker_fracs) if worker_fracs else 0.0,
        commthread_mean=mean(ct_fracs),
        commthread_max=max(ct_fracs) if ct_fracs else 0.0,
        nic_tx_mean=mean(tx_fracs),
        nic_rx_mean=mean(rx_fracs),
        commthread_queue_wait_ns=ct_wait,
        nic_queue_wait_ns=nic_wait,
        commthread_max_backlog_ns=ct_backlog,
        worker_queued_bytes_hwm=max(
            (w.stats.queued_bytes_hwm for w in rt.workers), default=0
        ),
        channels_tripped=(
            rt.reliable.stats.channels_degraded
            + rt.reliable.stats.channels_torn_down
            if rt.reliable is not None
            else 0
        ),
        degraded_direct_items=sum(
            s.stats.direct_fallback_sends for s in rt.schemes
        ),
    )


def pool_summary(points: List[dict], restarts: int = 0) -> dict:
    """Aggregate sweep-pool provenance into an efficiency report.

    ``points`` are the per-point provenance dicts the pool records
    (index, cache_hit, worker, wall_s, status, retries, ...). The
    summary answers the fleet questions: how many points were free
    cache hits, how the executed work spread across workers, how much
    execution wall-clock the pool absorbed (``exec_wall_s`` is the
    *sum* over points — with N busy workers the elapsed time is
    roughly 1/N of it; the gap between them is the parallel win), and
    — under faults — how many points needed retries, how many were
    quarantined as ``poisoned``, and how many workers were respawned.

    Conservation: ``n_points == cache_hits + executed + poisoned``
    always holds exactly (``retried_ok`` points are counted inside
    ``executed``); the artifact validator enforces it.
    """
    poisoned = [p for p in points if p.get("status") == "poisoned"]
    executed = [
        p
        for p in points
        if not p.get("cache_hit") and p.get("status") != "poisoned"
    ]
    per_worker: dict = {}
    for p in executed:
        stats = per_worker.setdefault(
            str(p.get("worker", 0)), {"points": 0, "wall_s": 0.0}
        )
        stats["points"] += 1
        stats["wall_s"] += p.get("wall_s", 0.0)
    return {
        "n_points": len(points),
        "cache_hits": len(points) - len(executed) - len(poisoned),
        "executed": len(executed),
        "poisoned": len(poisoned),
        "retried_ok": sum(1 for p in executed if p.get("retries")),
        "retries": sum(int(p.get("retries") or 0) for p in points),
        "restarts": int(restarts),
        "exec_wall_s": sum(p.get("wall_s", 0.0) for p in executed),
        "workers": dict(sorted(per_worker.items())),
    }
