"""One-shot reproduction report.

``write_report`` regenerates a set of experiments and writes a single
Markdown document with every data table, the paper's expectation for
each, and the run configuration — the artifact you attach to a
reproduction claim. The CLI exposes it as ``tramlib-repro report``.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Iterable, Optional, Union

from repro.harness.figures import FIGURES, run_figure


def _figure_markdown(fig_id: str, profile: str) -> str:
    t0 = time.perf_counter()
    data = run_figure(fig_id, profile)
    elapsed = time.perf_counter() - t0
    lines = [
        f"## {fig_id} — {data.title}",
        "",
        "```text",
        data.to_table(),
        "```",
        "",
        f"*y-axis*: {data.ylabel}.",
    ]
    if data.expected:
        lines.append(f"*Paper expectation*: {data.expected}.")
    if data.notes:
        lines.append(f"*Notes*: {data.notes}.")
    lines.append(f"*Regenerated in {elapsed:.1f}s wall.*")
    lines.append("")
    return "\n".join(lines)


def write_report(
    path: Union[str, Path],
    *,
    profile: str = "paper",
    figures: Optional[Iterable[str]] = None,
) -> Path:
    """Regenerate experiments and write a Markdown report.

    Parameters
    ----------
    path:
        Output file (created/overwritten).
    profile:
        ``paper`` or ``quick``.
    figures:
        Experiment ids to include; defaults to the full registry.

    Returns
    -------
    Path
        The written file.
    """
    ids = list(figures) if figures is not None else list(FIGURES)
    header = [
        "# Reproduction report",
        "",
        "*Shared Memory-Aware Latency-Sensitive Message Aggregation for "
        "Fine-Grained Communication* (SC 2024) — regenerated on the "
        "simulated SMP cluster.",
        "",
        f"Profile: `{profile}`. Experiments: {', '.join(ids)}.",
        "",
        "All values are **simulated time**; compare shapes against the "
        "paper, not absolute numbers (see EXPERIMENTS.md).",
        "",
    ]
    body = [_figure_markdown(fig_id, profile) for fig_id in ids]
    out = Path(path)
    out.write_text("\n".join(header + body))
    return out
