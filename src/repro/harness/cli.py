"""Command-line entry point: ``python -m repro.harness`` / ``tramlib-repro``.

Examples::

    tramlib-repro list
    tramlib-repro fig9
    tramlib-repro fig12 --profile quick
    tramlib-repro all --profile quick --out results/
    tramlib-repro fig9 --parallel 8
    tramlib-repro sweep --app histogram \\
        --axes "nodes=1,2,4;scheme=WW,WPs,PP" --seeds 0,1 \\
        --parallel 8 --metrics-out sweep.json
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.harness.figures import FIGURES, run_figure


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tramlib-repro",
        description=(
            "Regenerate the figures of 'Shared Memory-Aware "
            "Latency-Sensitive Message Aggregation for Fine-Grained "
            "Communication' (SC 2024) on the simulated SMP cluster."
        ),
    )
    parser.add_argument(
        "target",
        help=(
            "figure id (e.g. fig9), 'all', 'sweep', 'report', 'validate', "
            "'validate-metrics', 'timeline-plot', or 'list'"
        ),
    )
    parser.add_argument(
        "path",
        nargs="?",
        type=Path,
        default=None,
        help="artifact to read (validate-metrics / timeline-plot targets)",
    )
    parser.add_argument(
        "--profile",
        choices=["paper", "quick"],
        default="paper",
        help="sweep size: 'paper' (default) or 'quick'",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="directory to also write per-figure .txt reports into",
    )
    parser.add_argument(
        "--metrics-out",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "write a machine-readable JSON artifact (schema "
            "repro.run-metrics/2) with per-run stage breakdowns, "
            "utilization and the bottleneck verdict; for 'all', PATH is "
            "a directory with one <fig>.json per figure"
        ),
    )
    parser.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help=(
            "run figures under seeded fault injection + reliable "
            "delivery; SPEC is comma-separated key=value pairs, e.g. "
            "'drop=0.01,dup=0.005,corrupt=0.001,reorder=0.02'"
        ),
    )
    parser.add_argument(
        "--flow",
        default=None,
        metavar="SPEC",
        help=(
            "run figures under credit-based flow control (bounded "
            "comm-thread/NIC occupancy, backpressure, overload "
            "escalation); SPEC is comma-separated key=value pairs, e.g. "
            "'ct_msgs=64,ct_bytes=1048576,overload=200000,shed=2000000'"
        ),
    )
    telemetry = parser.add_argument_group("time-series telemetry")
    telemetry.add_argument(
        "--timeline",
        action="store_true",
        help=(
            "attach the flight recorder to every simulated run: "
            "periodic samples of queue depth, backlog, credit-gate "
            "occupancy, overload state, retransmit/shed counts and "
            "per-scheme buffered items, embedded as a 'timeline' block "
            "in the metrics artifact (off by default; deterministic — "
            "sampled on the simulated clock, not wall time)"
        ),
    )
    telemetry.add_argument(
        "--timeline-cadence",
        type=float,
        default=50_000.0,
        metavar="NS",
        help="simulated-time sampling cadence in ns (default: 50000)",
    )
    telemetry.add_argument(
        "--timeline-capacity",
        type=int,
        default=512,
        metavar="N",
        help=(
            "flight-recorder ring capacity in samples; on overflow the "
            "recorder decimates (keeps every other sample and doubles "
            "its stride) so memory stays bounded (default: 512)"
        ),
    )
    telemetry.add_argument(
        "--status",
        action="store_true",
        help="render a live fleet-status line (queue depth, hit rate, "
        "throughput, ETA) to stderr while sweep points run",
    )
    telemetry.add_argument(
        "--status-json",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "rewrite PATH atomically with live fleet status (schema "
            "repro.fleet-status/2) as sweep points complete — the "
            "machine-readable surface for external monitors"
        ),
    )
    parallel = parser.add_argument_group("parallel execution and caching")
    parallel.add_argument(
        "--parallel",
        type=int,
        default=1,
        metavar="N",
        help=(
            "dispatch sweep/figure grid points to N worker processes "
            "(work-stealing pool; results are merged deterministically "
            "by grid index, so output is identical to a serial run)"
        ),
    )
    parallel.add_argument(
        "--sim-parallel",
        type=int,
        default=1,
        metavar="P",
        help=(
            "run every simulation's event loop itself in parallel: the "
            "conservative PDES core shards the simulated machine by "
            "node across P forked partitions (null-message protocol, "
            "lookahead = min inter-node wire latency); results and "
            "metrics artifacts are byte-identical to sequential "
            "execution modulo the pdes provenance/metrics blocks"
        ),
    )
    parallel.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help=(
            "content-addressed result cache directory; completed points "
            "are persisted there and identical re-runs are free "
            "(default for 'sweep': .repro-cache/sweep)"
        ),
    )
    parallel.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the result cache entirely (no reads, no writes)",
    )
    parallel.add_argument(
        "--fresh",
        action="store_true",
        help="ignore existing cache entries (still writes fresh ones)",
    )
    parallel.add_argument(
        "--resume",
        action="store_true",
        help=(
            "resume an interrupted sweep: replay the crash-consistent "
            "journal (and the result cache) before executing anything, "
            "so only the points the previous run never resolved are run"
        ),
    )
    fault = parser.add_argument_group("fault tolerance (sweep execution)")
    fault.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help=(
            "retry a failed point up to N times with seeded exponential "
            "backoff; a point that fails every attempt is quarantined "
            "as 'poisoned' (null in the artifact) instead of failing "
            "the sweep (default: 0 — fail fast)"
        ),
    )
    fault.add_argument(
        "--point-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "wall-clock budget per point in parallel runs; a worker "
            "stuck past it is killed and the attempt counts as a "
            "failure (retried/quarantined per --retries)"
        ),
    )
    fault.add_argument(
        "--journal",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "append-only JSONL journal of resolved points, fsync'd per "
            "record (default for 'sweep' with caching on: "
            "<cache-dir>/sweep-journal.jsonl); --resume replays it"
        ),
    )
    sweep = parser.add_argument_group("generic sweeps ('sweep' target)")
    sweep.add_argument(
        "--app",
        default="histogram",
        metavar="NAME",
        help="benchmark app to sweep (histogram, indexgather, alltoall, "
        "phold, pingack)",
    )
    sweep.add_argument(
        "--axes",
        default=None,
        metavar="SPEC",
        help=(
            "swept axes as 'name=v1,v2,...;name2=...' — e.g. "
            "'nodes=1,2,4;scheme=WW,WPs,PP'"
        ),
    )
    sweep.add_argument(
        "--fixed",
        default=None,
        metavar="SPEC",
        help="constant app parameters, 'name=value,name=value' — e.g. "
        "'updates_per_pe=2000,buffer_items=64'",
    )
    sweep.add_argument(
        "--seeds",
        default="0",
        metavar="LIST",
        help="comma-separated seeds replicating every cell (default: 0)",
    )
    sweep.add_argument(
        "--metric",
        default="total_time_ns",
        metavar="NAME",
        help="result attribute to record per point (default: total_time_ns)",
    )
    sweep.add_argument(
        "--max-points",
        type=int,
        default=None,
        metavar="N",
        help="execute at most N points then stop (cache hits are free); "
        "an interrupted sweep resumes from its cache",
    )
    return parser


# ----------------------------------------------------------------------
# Sweep-spec parsing
# ----------------------------------------------------------------------
def _coerce(text: str):
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def _parse_axes(spec: str) -> dict:
    axes = {}
    for part in spec.split(";"):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValueError(f"bad axis {part!r} (want name=v1,v2,...)")
        name, values = part.split("=", 1)
        axes[name.strip()] = [_coerce(v.strip()) for v in values.split(",") if v.strip()]
    if not axes:
        raise ValueError("no axes given")
    return axes


def _parse_fixed(spec: str) -> dict:
    fixed = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValueError(f"bad parameter {part!r} (want name=value)")
        name, value = part.split("=", 1)
        fixed[name.strip()] = _coerce(value.strip())
    return fixed


def _timeline_config(args):
    """The :class:`~repro.obs.TimelineConfig` the flags ask for, or None."""
    if not getattr(args, "timeline", False):
        return None
    from repro.obs import TimelineConfig

    return TimelineConfig(
        cadence_ns=args.timeline_cadence, capacity=args.timeline_capacity
    )


def _run_sweep_cmd(args) -> int:
    import functools
    import json as _json

    from repro.errors import HarnessError
    from repro.harness.pool import SweepInterrupted, run_app_point
    from repro.harness.sweep import run_sweep

    if not args.axes:
        print("error: sweep needs --axes 'name=v1,v2;...'", file=sys.stderr)
        return 2
    try:
        axes = _parse_axes(args.axes)
        fixed = _parse_fixed(args.fixed) if args.fixed else {}
        seeds = [int(s) for s in args.seeds.split(",") if s.strip()]
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    fn = functools.partial(run_app_point, args.app, args.metric, **fixed)
    # The fixed parameters are folded into the cache tag (they are not
    # part of the per-point params), so differently-pinned sweeps never
    # share cache entries.
    tag = f"app:{args.app}:{args.metric}:" + _json.dumps(
        fixed, sort_keys=True, separators=(",", ":")
    )
    cache_dir = None
    if not args.no_cache:
        cache_dir = (
            args.cache_dir
            if args.cache_dir is not None
            else Path(".repro-cache") / "sweep"
        )
    journal = args.journal
    if journal is None and cache_dir is not None:
        journal = cache_dir / "sweep-journal.jsonl"
    t0 = time.perf_counter()
    try:
        result = run_sweep(
            fn,
            axes,
            seeds=seeds,
            metric=args.metric,
            metrics_path=args.metrics_out,
            flow=args.flow,
            timeline=_timeline_config(args),
            parallel=args.parallel,
            cache_dir=cache_dir,
            fresh=args.fresh,
            tag=tag,
            max_executions=args.max_points,
            status=args.status,
            status_json=args.status_json,
            retries=args.retries,
            point_timeout_s=args.point_timeout,
            journal=journal,
            resume=args.resume,
            drain_signals=True,
            sim_parallel=args.sim_parallel,
        )
    except SweepInterrupted as exc:
        print(f"sweep interrupted: {exc}", file=sys.stderr)
        return 3
    except HarnessError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - t0
    table = result.to_table()
    print(table)
    summary = result.pool_summary_text()
    if summary:
        print(summary)
    hits, points = result.total_cache_hits, result.total_points
    print(
        f"[swept {points} point(s) in {elapsed:.1f}s wall with "
        f"--parallel {args.parallel}: {hits} cache hit(s), "
        f"{points - hits} executed]"
    )
    if args.metrics_out is not None:
        print(f"[metrics artifact written to {args.metrics_out}]")
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        (args.out / f"sweep_{args.app}_{args.metric}.txt").write_text(
            table + "\n"
        )
    return 0


def _run_one(
    fig_id: str,
    profile: str,
    out: Optional[Path],
    metrics_out: Optional[Path] = None,
    faults: Optional[str] = None,
    flow: Optional[str] = None,
    parallel: int = 1,
    cache_dir: Optional[Path] = None,
    fresh: bool = False,
    timeline=None,
    status: bool = False,
    status_json: Optional[Path] = None,
    retries: int = 0,
    point_timeout_s: Optional[float] = None,
    sim_parallel: int = 1,
) -> None:
    t0 = time.perf_counter()
    data = run_figure(
        fig_id, profile, metrics_path=metrics_out, faults=faults, flow=flow,
        timeline=timeline, parallel=parallel, cache_dir=cache_dir,
        fresh=fresh, status=status, status_json=status_json,
        retries=retries, point_timeout_s=point_timeout_s,
        sim_parallel=sim_parallel,
    )
    elapsed = time.perf_counter() - t0
    report = data.render()
    print(report)
    suffix = f" under faults '{faults}'" if faults else ""
    if flow:
        suffix += f" with flow control '{flow}'"
    if parallel != 1:
        suffix += f" at --parallel {parallel}"
    if sim_parallel != 1:
        suffix += f" at --sim-parallel {sim_parallel}"
    print(f"[{fig_id} regenerated in {elapsed:.1f}s wall{suffix}]")
    if metrics_out is not None:
        print(f"[metrics artifact written to {metrics_out}]")
    print()
    if out is not None:
        out.mkdir(parents=True, exist_ok=True)
        (out / f"{fig_id}.txt").write_text(report + "\n")


def _validate_metrics(path: Optional[Path]) -> int:
    import json

    from repro.harness.artifact import validate_metrics_payload

    if path is None:
        print("error: validate-metrics needs a path argument", file=sys.stderr)
        return 2
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, ValueError) as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        return 2
    errors = validate_metrics_payload(payload)
    if errors:
        for err in errors:
            print(f"INVALID: {err}")
        return 1
    runs = payload.get("runs", [])
    verdict = (payload.get("summary") or {}).get("bottleneck")
    line = (
        f"OK: {path} ({payload.get('target')}, {len(runs)} run(s), "
        f"bottleneck: {verdict})"
    )
    partitioned = sum(
        1
        for run in runs
        if isinstance(run, dict)
        and isinstance(run.get("pdes"), dict)
        and run["pdes"].get("mode") == "partitioned"
    )
    if partitioned:
        parts = {
            run["pdes"].get("partitions")
            for run in runs
            if isinstance(run, dict)
            and isinstance(run.get("pdes"), dict)
            and run["pdes"].get("mode") == "partitioned"
        }
        line += (
            f" [pdes: {partitioned} partitioned run(s), "
            f"partitions={sorted(parts)}]"
        )
    print(line)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if getattr(args, "faults", None) is not None:
        from repro.errors import FaultInjectionError
        from repro.faults import FaultPlan

        try:
            FaultPlan.parse(args.faults)
        except FaultInjectionError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if getattr(args, "flow", None) is not None:
        from repro.errors import FlowControlError
        from repro.flow import FlowConfig

        try:
            FlowConfig.parse(args.flow)
        except FlowControlError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if args.target == "list":
        width = max(len(k) for k in FIGURES)
        for fig_id, (_, desc) in FIGURES.items():
            print(f"{fig_id.ljust(width)}  {desc}")
        return 0
    if args.target == "validate-metrics":
        return _validate_metrics(args.path)
    if args.target == "timeline-plot":
        from repro.harness.timeline_plot import run_timeline_plot

        return run_timeline_plot(args.path, out=args.out)
    if args.target == "sweep":
        return _run_sweep_cmd(args)
    fig_cache = None if args.no_cache else args.cache_dir
    if args.target == "all":
        for fig_id in FIGURES:
            metrics_out = (
                args.metrics_out / f"{fig_id}.json"
                if args.metrics_out is not None
                else None
            )
            _run_one(
                fig_id, args.profile, args.out, metrics_out, args.faults,
                args.flow, args.parallel, fig_cache, args.fresh,
                _timeline_config(args), args.status, args.status_json,
                args.retries, args.point_timeout, args.sim_parallel,
            )
        return 0
    if args.target == "validate":
        from repro.harness.validate import render_results, validate_reproduction

        results = validate_reproduction(
            profile=args.profile, parallel=args.parallel, cache_dir=fig_cache,
            retries=args.retries, point_timeout_s=args.point_timeout,
        )
        print(render_results(results))
        failed = [r for r in results if not r.passed]
        print(f"\n{len(results) - len(failed)}/{len(results)} checks passed")
        return 1 if failed else 0
    if args.target == "report":
        from repro.harness.report import write_report

        outdir = args.out if args.out is not None else Path("results")
        outdir.mkdir(parents=True, exist_ok=True)
        path = write_report(outdir / "REPORT.md", profile=args.profile)
        print(f"wrote {path}")
        return 0
    if args.target not in FIGURES:
        print(
            f"error: unknown target {args.target!r} "
            f"(known: {', '.join(FIGURES)}, all, sweep, report, validate, "
            f"validate-metrics, timeline-plot, list)",
            file=sys.stderr,
        )
        return 2
    _run_one(
        args.target, args.profile, args.out, args.metrics_out, args.faults,
        args.flow, args.parallel, fig_cache, args.fresh,
        _timeline_config(args), args.status, args.status_json,
        args.retries, args.point_timeout, args.sim_parallel,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
