"""Command-line entry point: ``python -m repro.harness`` / ``tramlib-repro``.

Examples::

    tramlib-repro list
    tramlib-repro fig9
    tramlib-repro fig12 --profile quick
    tramlib-repro all --profile quick --out results/
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.harness.figures import FIGURES, run_figure


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tramlib-repro",
        description=(
            "Regenerate the figures of 'Shared Memory-Aware "
            "Latency-Sensitive Message Aggregation for Fine-Grained "
            "Communication' (SC 2024) on the simulated SMP cluster."
        ),
    )
    parser.add_argument(
        "target",
        help="figure id (e.g. fig9), 'all', 'report', 'validate', or 'list'",
    )
    parser.add_argument(
        "--profile",
        choices=["paper", "quick"],
        default="paper",
        help="sweep size: 'paper' (default) or 'quick'",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="directory to also write per-figure .txt reports into",
    )
    return parser


def _run_one(fig_id: str, profile: str, out: Optional[Path]) -> None:
    t0 = time.perf_counter()
    data = run_figure(fig_id, profile)
    elapsed = time.perf_counter() - t0
    report = data.render()
    print(report)
    print(f"[{fig_id} regenerated in {elapsed:.1f}s wall]")
    print()
    if out is not None:
        out.mkdir(parents=True, exist_ok=True)
        (out / f"{fig_id}.txt").write_text(report + "\n")


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.target == "list":
        width = max(len(k) for k in FIGURES)
        for fig_id, (_, desc) in FIGURES.items():
            print(f"{fig_id.ljust(width)}  {desc}")
        return 0
    if args.target == "all":
        for fig_id in FIGURES:
            _run_one(fig_id, args.profile, args.out)
        return 0
    if args.target == "validate":
        from repro.harness.validate import render_results, validate_reproduction

        results = validate_reproduction(profile=args.profile)
        print(render_results(results))
        failed = [r for r in results if not r.passed]
        print(f"\n{len(results) - len(failed)}/{len(results)} checks passed")
        return 1 if failed else 0
    if args.target == "report":
        from repro.harness.report import write_report

        outdir = args.out if args.out is not None else Path("results")
        outdir.mkdir(parents=True, exist_ok=True)
        path = write_report(outdir / "REPORT.md", profile=args.profile)
        print(f"wrote {path}")
        return 0
    if args.target not in FIGURES:
        print(
            f"error: unknown target {args.target!r} "
            f"(known: {', '.join(FIGURES)}, all, list)",
            file=sys.stderr,
        )
        return 2
    _run_one(args.target, args.profile, args.out)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
