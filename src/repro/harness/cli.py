"""Command-line entry point: ``python -m repro.harness`` / ``tramlib-repro``.

Examples::

    tramlib-repro list
    tramlib-repro fig9
    tramlib-repro fig12 --profile quick
    tramlib-repro all --profile quick --out results/
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.harness.figures import FIGURES, run_figure


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tramlib-repro",
        description=(
            "Regenerate the figures of 'Shared Memory-Aware "
            "Latency-Sensitive Message Aggregation for Fine-Grained "
            "Communication' (SC 2024) on the simulated SMP cluster."
        ),
    )
    parser.add_argument(
        "target",
        help=(
            "figure id (e.g. fig9), 'all', 'report', 'validate', "
            "'validate-metrics', or 'list'"
        ),
    )
    parser.add_argument(
        "path",
        nargs="?",
        type=Path,
        default=None,
        help="artifact to check (validate-metrics target only)",
    )
    parser.add_argument(
        "--profile",
        choices=["paper", "quick"],
        default="paper",
        help="sweep size: 'paper' (default) or 'quick'",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="directory to also write per-figure .txt reports into",
    )
    parser.add_argument(
        "--metrics-out",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "write a machine-readable JSON artifact (schema "
            "repro.run-metrics/1) with per-run stage breakdowns, "
            "utilization and the bottleneck verdict; for 'all', PATH is "
            "a directory with one <fig>.json per figure"
        ),
    )
    parser.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help=(
            "run figures under seeded fault injection + reliable "
            "delivery; SPEC is comma-separated key=value pairs, e.g. "
            "'drop=0.01,dup=0.005,corrupt=0.001,reorder=0.02'"
        ),
    )
    parser.add_argument(
        "--flow",
        default=None,
        metavar="SPEC",
        help=(
            "run figures under credit-based flow control (bounded "
            "comm-thread/NIC occupancy, backpressure, overload "
            "escalation); SPEC is comma-separated key=value pairs, e.g. "
            "'ct_msgs=64,ct_bytes=1048576,overload=200000,shed=2000000'"
        ),
    )
    return parser


def _run_one(
    fig_id: str,
    profile: str,
    out: Optional[Path],
    metrics_out: Optional[Path] = None,
    faults: Optional[str] = None,
    flow: Optional[str] = None,
) -> None:
    t0 = time.perf_counter()
    data = run_figure(
        fig_id, profile, metrics_path=metrics_out, faults=faults, flow=flow
    )
    elapsed = time.perf_counter() - t0
    report = data.render()
    print(report)
    suffix = f" under faults '{faults}'" if faults else ""
    if flow:
        suffix += f" with flow control '{flow}'"
    print(f"[{fig_id} regenerated in {elapsed:.1f}s wall{suffix}]")
    if metrics_out is not None:
        print(f"[metrics artifact written to {metrics_out}]")
    print()
    if out is not None:
        out.mkdir(parents=True, exist_ok=True)
        (out / f"{fig_id}.txt").write_text(report + "\n")


def _validate_metrics(path: Optional[Path]) -> int:
    import json

    from repro.harness.artifact import validate_metrics_payload

    if path is None:
        print("error: validate-metrics needs a path argument", file=sys.stderr)
        return 2
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, ValueError) as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        return 2
    errors = validate_metrics_payload(payload)
    if errors:
        for err in errors:
            print(f"INVALID: {err}")
        return 1
    runs = payload.get("runs", [])
    verdict = (payload.get("summary") or {}).get("bottleneck")
    print(
        f"OK: {path} ({payload.get('target')}, {len(runs)} run(s), "
        f"bottleneck: {verdict})"
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if getattr(args, "faults", None) is not None:
        from repro.errors import FaultInjectionError
        from repro.faults import FaultPlan

        try:
            FaultPlan.parse(args.faults)
        except FaultInjectionError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if getattr(args, "flow", None) is not None:
        from repro.errors import FlowControlError
        from repro.flow import FlowConfig

        try:
            FlowConfig.parse(args.flow)
        except FlowControlError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if args.target == "list":
        width = max(len(k) for k in FIGURES)
        for fig_id, (_, desc) in FIGURES.items():
            print(f"{fig_id.ljust(width)}  {desc}")
        return 0
    if args.target == "validate-metrics":
        return _validate_metrics(args.path)
    if args.target == "all":
        for fig_id in FIGURES:
            metrics_out = (
                args.metrics_out / f"{fig_id}.json"
                if args.metrics_out is not None
                else None
            )
            _run_one(
                fig_id, args.profile, args.out, metrics_out, args.faults,
                args.flow,
            )
        return 0
    if args.target == "validate":
        from repro.harness.validate import render_results, validate_reproduction

        results = validate_reproduction(profile=args.profile)
        print(render_results(results))
        failed = [r for r in results if not r.passed]
        print(f"\n{len(results) - len(failed)}/{len(results)} checks passed")
        return 1 if failed else 0
    if args.target == "report":
        from repro.harness.report import write_report

        outdir = args.out if args.out is not None else Path("results")
        outdir.mkdir(parents=True, exist_ok=True)
        path = write_report(outdir / "REPORT.md", profile=args.profile)
        print(f"wrote {path}")
        return 0
    if args.target not in FIGURES:
        print(
            f"error: unknown target {args.target!r} "
            f"(known: {', '.join(FIGURES)}, all, report, validate, "
            f"validate-metrics, list)",
            file=sys.stderr,
        )
        return 2
    _run_one(
        args.target, args.profile, args.out, args.metrics_out, args.faults,
        args.flow,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
