"""Live fleet telemetry for the sweep pool.

The pool in :mod:`repro.harness.pool` runs hundreds of points across
worker processes; until now its progress was invisible until the final
artifact landed. This module is the parent-side aggregator for the
worker heartbeats that now share the result channel: it tracks queue
depth, cache-hit rate and per-worker throughput as points complete, and
surfaces them two ways —

* a throttled single-line status rendered to ``stderr`` (``--status``),
* a machine-readable JSON file rewritten atomically on every update
  (``--status-json``), the fleet-status surface the ROADMAP's
  ``repro serve`` front end polls.

Everything here runs on the parent's wall clock and never touches the
artifact payload, so enabling it cannot perturb the canonical-byte
identity between serial and parallel sweeps.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, TextIO

#: Schema tag stamped into every ``--status-json`` document.
#: /2 added the supervision counters (retries, poisoned, restarts) and
#: later grew an *optional* ``channel_trips`` key, present only when at
#: least one completed point reported reliability channels tripped to
#: direct traffic — trip-free sweeps keep the exact /2 shape.
STATUS_SCHEMA = "repro.fleet-status/2"


def channel_trips_of(records: Any) -> int:
    """Total reliability channel trips across a point's run snapshots.

    ``records`` is the per-point list of run-snapshot dicts the pool
    carries in :class:`~repro.harness.pool.PointOutcome.records`. A
    *trip* is a channel the reliability layer gave up on: degraded to
    direct traffic, or torn down after a peer-death confirmation (the
    latter key only exists when the crash fabric was armed).
    """
    trips = 0
    for rec in records or ():
        if not isinstance(rec, Mapping):
            continue
        rel = rec.get("reliability")
        if not isinstance(rel, Mapping):
            continue
        trips += int(rel.get("channels_degraded", 0) or 0)
        trips += int(rel.get("channels_torn_down", 0) or 0)
    return trips


class FleetStatus:
    """Aggregates pool progress and emits throttled status updates.

    Parameters
    ----------
    total:
        Total number of points in this dispatch (hits + executions).
    cache_hits:
        Points already resolved from the cache before dispatch.
    nworkers:
        Worker process count (0 = the serial in-process path).
    interval_s:
        Minimum wall-clock spacing between emitted updates; terminal
        and file writes share the throttle.
    stream:
        Where the status line goes (default ``sys.stderr``); ``None``
        disables line rendering.
    path:
        Status-JSON file path; ``None`` disables the file.
    """

    def __init__(
        self,
        total: int,
        *,
        cache_hits: int = 0,
        nworkers: int = 0,
        interval_s: float = 0.5,
        stream: Optional[TextIO] = None,
        path: Optional[Path] = None,
    ) -> None:
        self.total = total
        self.cache_hits = cache_hits
        self.done = cache_hits
        self.executed = 0
        #: Failed attempts that were sent back for retry.
        self.retries = 0
        #: Points quarantined after exhausting their retry budget.
        self.poisoned = 0
        #: Worker processes respawned after a crash, kill, or hang.
        self.restarts = 0
        #: Reliability channels that tripped to direct traffic (or were
        #: torn down by the crash fabric) across all completed points.
        self.channel_trips = 0
        self.nworkers = nworkers
        self.interval_s = interval_s
        self.stream = stream
        self.path = Path(path) if path is not None else None
        self.t0 = time.perf_counter()
        self._last_emit = 0.0
        self._line_open = False
        #: Per-worker progress: points completed, cumulative wall,
        #: and the point currently being executed (from heartbeats).
        self.workers: Dict[int, Dict[str, Any]] = {}

    # ------------------------------------------------------------------
    # Event intake
    # ------------------------------------------------------------------
    def _worker(self, worker_id: int) -> Dict[str, Any]:
        return self.workers.setdefault(
            worker_id, {"points": 0, "wall_s": 0.0, "current": None}
        )

    def on_heartbeat(self, worker_id: int, info: Mapping[str, Any]) -> None:
        """A worker announced the point it is starting."""
        state = self._worker(worker_id)
        state["current"] = info.get("params")
        self.maybe_emit()

    def on_point_done(
        self,
        worker_id: int,
        wall_s: float,
        *,
        cache_hit: bool = False,
        channel_trips: int = 0,
    ) -> None:
        """A point finished (executed or replayed from cache)."""
        self.done += 1
        self.channel_trips += channel_trips
        if cache_hit:
            self.cache_hits += 1
        else:
            self.executed += 1
            state = self._worker(worker_id)
            state["points"] += 1
            state["wall_s"] += wall_s
            state["current"] = None
        self.maybe_emit()

    def on_retry(self, slot: int) -> None:
        """A point attempt failed and was queued for retry."""
        self.retries += 1
        self.maybe_emit()

    def on_poisoned(self, worker_id: int) -> None:
        """A point exhausted its retry budget and was quarantined."""
        self.done += 1
        self.poisoned += 1
        state = self._worker(worker_id)
        state["current"] = None
        self.maybe_emit()

    def on_restart(self, why: str) -> None:
        """The supervisor replaced a dead or hung worker."""
        self.restarts += 1
        self.maybe_emit()

    # ------------------------------------------------------------------
    # Derived state
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Points not yet completed."""
        return max(0, self.total - self.done)

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.total if self.total else 0.0

    def throughput(self) -> float:
        """Executed points per wall-clock second so far."""
        elapsed = time.perf_counter() - self.t0
        return self.executed / elapsed if elapsed > 0 else 0.0

    def eta_s(self) -> Optional[float]:
        """Remaining-time estimate; None before any point completes."""
        rate = self.throughput()
        if rate <= 0:
            return None
        return self.queue_depth / rate

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def status_payload(self) -> dict:
        """The ``--status-json`` document."""
        elapsed = time.perf_counter() - self.t0
        eta = self.eta_s()
        payload = {
            "schema": STATUS_SCHEMA,
            "points_total": self.total,
            "points_done": self.done,
            "queue_depth": self.queue_depth,
            "cache_hits": self.cache_hits,
            "hit_rate": round(self.hit_rate, 6),
            "executed": self.executed,
            "retries": self.retries,
            "poisoned": self.poisoned,
            "restarts": self.restarts,
            "elapsed_s": round(elapsed, 3),
            "throughput_pts_per_s": round(self.throughput(), 3),
            "eta_s": round(eta, 3) if eta is not None else None,
            "workers": {
                str(wid): {
                    "points": st["points"],
                    "wall_s": round(st["wall_s"], 3),
                    "current": st["current"],
                }
                for wid, st in sorted(self.workers.items())
            },
        }
        if self.channel_trips:
            payload["channel_trips"] = self.channel_trips
        return payload

    def render_line(self) -> str:
        """One-line human status, e.g.
        ``[sweep 12/64] queue 52 | hits 8 (12%) | 3.1 pt/s | eta 17s``."""
        parts = [
            f"[sweep {self.done}/{self.total}]",
            f"queue {self.queue_depth}",
            f"hits {self.cache_hits} ({self.hit_rate:.0%})",
        ]
        rate = self.throughput()
        if rate > 0:
            parts.append(f"{rate:.1f} pt/s")
        if self.retries or self.poisoned or self.restarts:
            parts.append(
                f"retries {self.retries} | poisoned {self.poisoned} "
                f"| restarts {self.restarts}"
            )
        if self.channel_trips:
            parts.append(f"trips {self.channel_trips}")
        eta = self.eta_s()
        if eta is not None:
            parts.append(f"eta {eta:.0f}s")
        if self.nworkers > 1:
            busy = sum(
                1 for st in self.workers.values() if st["current"] is not None
            )
            parts.append(f"workers {busy}/{self.nworkers}")
        return " | ".join(parts)

    def _write_json(self) -> None:
        if self.path is None:
            return
        # The serve front end polls this file across crashes, so the
        # write must be durable before it becomes visible: create the
        # directory if a caller points into one that does not exist yet,
        # and fsync the temp file before the atomic replace so a power
        # cut can never leave a visible-but-empty status document.
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(f".tmp.{os.getpid()}")
        with tmp.open("w", encoding="utf-8") as fh:
            fh.write(json.dumps(self.status_payload(), indent=2) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)

    def maybe_emit(self, force: bool = False) -> None:
        """Emit the status line / JSON file, at most once per interval."""
        now = time.perf_counter()
        if not force and now - self._last_emit < self.interval_s:
            return
        self._last_emit = now
        if self.stream is not None:
            self.stream.write("\r\x1b[2K" + self.render_line())
            self.stream.flush()
            self._line_open = True
        self._write_json()

    def finish(self) -> None:
        """Force a final emission and close the status line."""
        self.maybe_emit(force=True)
        if self.stream is not None and self._line_open:
            self.stream.write("\n")
            self.stream.flush()
            self._line_open = False


def make_fleet_status(
    config: Any, total: int, cache_hits: int, nworkers: int
) -> Optional[FleetStatus]:
    """Build a :class:`FleetStatus` from a pool config, or ``None``
    when neither ``status`` nor ``status_json`` is requested."""
    status = getattr(config, "status", False)
    status_json = getattr(config, "status_json", None)
    if not status and status_json is None:
        return None
    return FleetStatus(
        total,
        cache_hits=cache_hits,
        nworkers=nworkers,
        interval_s=getattr(config, "status_interval_s", 0.5),
        stream=sys.stderr if status else None,
        path=status_json,
    )
