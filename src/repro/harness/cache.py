"""Content-addressed result cache for sweep points.

Every sweep point — one ``fn(seed=..., **params)`` invocation — is
keyed by a stable hash over everything that determines its result:

* the point *tag* (a stable name for the metric function),
* the resolved parameters and the seed,
* the cost-model constants (so recalibrating the simulator invalidates
  every cached point automatically),
* the ambient fault plan and flow-control config, when active.

Completed points are persisted as individual JSON artifacts under a
cache directory (``<root>/<key[:2]>/<key>.json``, written atomically),
so re-runs of identical points are free and an interrupted sweep is
resumable: the next invocation finds the finished points on disk and
executes only the missing ones.

The simulator is deterministic per seed, which is what makes caching by
inputs sound: a hit replays the exact value (and observability records)
the execution would have produced.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Iterator, Mapping, Optional

#: Bump on any change that invalidates previously cached points
#: (entry layout, key ingredients, record semantics).
CACHE_SCHEMA = "repro.sweep-cache/1"


def _jsonable(obj: Any) -> Any:
    """JSON fallback mirroring :mod:`repro.harness.artifact`."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return dataclasses.asdict(obj)
    if hasattr(obj, "item"):  # numpy scalar
        return obj.item()
    if hasattr(obj, "tolist"):  # numpy array
        return obj.tolist()
    if isinstance(obj, Path):
        return str(obj)
    raise TypeError(f"not JSON-serializable: {type(obj).__name__}")


def cost_model_fingerprint(costs: Any = None) -> Dict[str, Any]:
    """The cost-model constants that feed every simulated result.

    ``None`` fingerprints the default :class:`~repro.machine.costs.CostModel`,
    so editing any calibration constant in the source invalidates the
    cache without manual intervention.
    """
    from repro.machine.costs import CostModel

    model = costs if costs is not None else CostModel()
    return dataclasses.asdict(model)


def point_key(
    *,
    tag: str,
    params: Mapping[str, Any],
    seed: int,
    costs: Any = None,
    faults: Any = None,
    flow: Any = None,
    obs: Any = None,
) -> str:
    """Stable content hash identifying one sweep point.

    ``faults`` / ``flow`` are the ambient :class:`~repro.faults.FaultPlan`
    and :class:`~repro.flow.FlowConfig` (or ``None``); they are folded in
    as dataclass dicts so a degraded or flow-controlled sweep never
    shares entries with a clean one. ``obs`` is the ambient
    :class:`~repro.obs.TimelineConfig` when the flight recorder is on:
    timeline-bearing records must not replay into (or from) plain runs.
    It is folded in only when set, so enabling the recorder never
    invalidates existing plain-run caches.
    """
    payload = {
        "schema": CACHE_SCHEMA,
        "tag": tag,
        "params": dict(params),
        "seed": int(seed),
        "costs": cost_model_fingerprint(costs),
        "faults": faults,
        "flow": flow,
    }
    if obs is not None:
        payload["obs"] = obs
    blob = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=_jsonable
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """Directory of per-point result artifacts, addressed by content key.

    Entries are plain JSON documents::

        {"schema": "repro.sweep-cache/1", "key": ..., "tag": ...,
         "params": {...}, "seed": 0, "value": <metric payload>,
         "records": [<run snapshot>, ...], "meta": {"wall_s": ..., ...}}

    Reads tolerate missing/corrupt/foreign files (they count as misses);
    a corrupt or mismatched entry is additionally quarantined once —
    renamed to ``<key>.bad`` — so every later run misses it by file
    absence instead of re-parsing the same broken JSON, and the evidence
    survives for inspection. Writes are atomic (tempfile +
    ``os.replace``) so a killed sweep never leaves a half-written entry
    behind.
    """

    def __init__(self, root: Any) -> None:
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside (once) so it never re-parses."""
        try:
            os.replace(path, path.with_suffix(".bad"))
        except OSError:  # pragma: no cover - raced or read-only cache
            pass

    def get(self, key: str) -> Optional[dict]:
        """The cached entry for ``key``, or ``None`` on any miss."""
        path = self.path_for(key)
        try:
            text = path.read_text()
        except OSError:
            return None  # plain miss: nothing to quarantine
        try:
            entry = json.loads(text)
        except ValueError:
            self._quarantine(path)
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("schema") != CACHE_SCHEMA
            or entry.get("key") != key
        ):
            self._quarantine(path)
            return None
        return entry

    def put(self, key: str, entry: Mapping[str, Any]) -> Path:
        """Persist one completed point atomically. Returns its path."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = dict(entry)
        doc["schema"] = CACHE_SCHEMA
        doc["key"] = key
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(doc, default=_jsonable) + "\n")
        os.replace(tmp, path)
        return path

    def keys(self) -> Iterator[str]:
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob("*/*.json")):
            yield path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for key in list(self.keys()):
            try:
                self.path_for(key).unlink()
                removed += 1
            except OSError:
                pass
        return removed
