"""Parallel sweep executor: a supervised work-stealing pool over grid points.

PR 5 made a single simulated run fast on one core; this module makes
*sweeps* fast on all of them — and keeps them alive when workers are
not. A sweep (or figure) is enumerated into self-describing point specs
— ``fn(seed=..., **params)`` with a grid index — and :func:`map_points`
dispatches them:

* **Supervised work-stealing dispatch.** The parent assigns point
  indices to whichever worker process is idle (so skewed point costs
  never serialize the tail behind a static partition) and multiplexes
  the result channel with every worker's ``Process.sentinel`` plus the
  heartbeat messages workers emit as they pick up points. A worker that
  is SIGKILLed, segfaults, or hangs past the per-point timeout is
  detected, its in-flight point is requeued, and a replacement worker is
  forked — up to a capped number of restarts.
* **Retry with seeded backoff, then quarantine.** A point that fails
  (exception, worker death, or timeout) is retried up to
  ``PoolConfig.retries`` times with seeded exponential backoff. A point
  that exhausts its budget is — when ``quarantine`` is on — recorded as
  a ``poisoned`` outcome carrying the final traceback instead of
  killing the sweep; provenance keeps the exact conservation
  ``points == cache_hits + executed + poisoned``.
* **Deterministic merge.** Results (metric values *and* per-run
  observability snapshots) are shipped back and merged strictly by grid
  index, so the aggregated :class:`~repro.harness.sweep.SweepResult`
  and the ``repro.run-metrics`` artifact are identical to a serial run
  under every failure mode that ends in success (see
  :func:`repro.harness.artifact.canonical_metrics_bytes`).
* **Content-addressed caching and a crash-consistent journal.** With a
  cache directory configured, every completed point is persisted under
  its :func:`~repro.harness.cache.point_key`; with a journal path
  configured, every *resolved* point (executed or poisoned) is also
  appended — fsync'd — to an append-only JSONL journal
  (:mod:`repro.harness.journal`), so a parent crash or SIGTERM resumes
  exactly where it left off.
* **Graceful drain.** With ``drain_signals`` on, SIGINT/SIGTERM stop
  new dispatch, let in-flight points finish (journaled and cached),
  flush fleet status, and raise :class:`SweepInterrupted` — the CLI
  maps that to exit code 3.
* **Seed hygiene.** Every executor (the serial path and each worker
  process) scrambles the ambient global RNGs (``random``,
  ``numpy.random``) before running points, with a *different* token per
  worker. A point function that leaks dependence on ambient global
  state therefore diverges between ``--parallel 1`` and ``--parallel
  8`` and trips the byte-identity tests — results must derive only
  from the point spec's seed.

Processes are forked lazily per :func:`map_points` call, so ambient
sessions (:class:`~repro.faults.FaultSession`,
:class:`~repro.flow.FlowSession`, :class:`~repro.obs.ObsSession`)
entered by the caller are inherited by the workers; fork is also what
lets arbitrary in-process callables (closures, partials) run in workers
without pickling. On platforms without ``fork`` the executor degrades
to the serial path.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import signal
import threading
import time
import traceback
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro.errors import HarnessError
from repro.harness.cache import ResultCache, point_key
from repro.harness.fleet import channel_trips_of

#: Scramble bases for the ambient-RNG guard (arbitrary, fixed).
_GUARD_SEED = 0x5EED_CA5E

#: Exit code a worker uses after reporting a terminal failure.
_WORKER_DIED_EXIT = 70

#: How long the parent waits for workers to exit after their sentinel.
_JOIN_GRACE_S = 5.0


class SweepInterrupted(HarnessError):
    """A sweep stopped early — point budget exhausted or drain signal.

    Completed points were already persisted to the cache and journal, so
    re-invoking the same sweep with the same cache directory resumes
    where it stopped (``repro sweep --resume``).
    """

    def __init__(
        self, executed: int, remaining: int, reason: str = "budget"
    ) -> None:
        what = (
            "drained after a termination signal"
            if reason == "signal"
            else "interrupted after exhausting its point budget"
        )
        super().__init__(
            f"sweep {what}: {executed} executed point(s), "
            f"{remaining} point(s) remain — re-run with the same cache "
            f"directory to resume"
        )
        self.executed = executed
        self.remaining = remaining
        self.reason = reason


@dataclass(frozen=True)
class PointSpec:
    """One self-describing grid point of a sweep."""

    index: int
    params: Mapping[str, Any]
    seed: int
    #: Content-address of the point (None when caching is off).
    key: Optional[str] = None


@dataclass
class PointOutcome:
    """The merged result of one point, in grid-index order."""

    spec: PointSpec
    value: Any
    #: Per-run observability snapshots produced by this point.
    records: List[dict] = field(default_factory=list)
    cache_hit: bool = False
    #: Executor id: 0 = the parent (serial path), 1..N = pool workers.
    worker: int = 0
    wall_s: float = 0.0
    #: ``"ok"`` or ``"poisoned"`` (failed every attempt, quarantined).
    status: str = "ok"
    #: Final traceback for poisoned points (None otherwise).
    error: Optional[str] = None
    #: Failed attempts that preceded this resolution.
    retries: int = 0
    #: Where the result came from: ``exec``, ``cache`` or ``journal``.
    source: str = "exec"


@dataclass
class PoolConfig:
    """How a pool session executes points."""

    #: Number of worker processes; <=1 runs points in-process.
    parallel: int = 1
    #: Cache directory; ``None`` disables persistence entirely.
    cache_dir: Optional[Path] = None
    #: Read previously cached points (turned off by ``--fresh``).
    cache_read: bool = True
    #: Persist newly executed points.
    cache_write: bool = True
    #: Execute at most this many points (cache hits are free), then
    #: raise :class:`SweepInterrupted` — the resumability test hook.
    max_executions: Optional[int] = None
    #: Render a throttled fleet-status line to stderr while running.
    status: bool = False
    #: Rewrite this JSON file (atomically) with live fleet status —
    #: queue depth, hit rate, per-worker throughput, ETA.
    status_json: Optional[Path] = None
    #: Minimum wall-clock seconds between status updates.
    status_interval_s: float = 0.5
    # ------------------------------------------------------- supervision
    #: Extra attempts per point after the first failure.
    retries: int = 0
    #: Wall-clock budget per point; a worker stuck past it is killed
    #: and the point counts as a failed attempt. Parallel runs only —
    #: the serial in-process path cannot preempt a running point.
    point_timeout_s: Optional[float] = None
    #: First-retry backoff; doubles per attempt (seeded +/-50% jitter).
    backoff_base_s: float = 0.05
    #: Cap on a single backoff delay.
    backoff_max_s: float = 2.0
    #: Worker respawn budget for the whole dispatch; ``None`` means
    #: ``2 * nworkers + 2``.
    max_restarts: Optional[int] = None
    #: Quarantine points that exhaust their retry budget as
    #: ``poisoned`` outcomes instead of failing the sweep.
    quarantine: bool = False
    #: Append-only JSONL journal of resolved points (crash recovery).
    journal: Optional[Path] = None
    #: Replay matching journal entries before executing anything.
    resume: bool = False
    #: Handle SIGINT/SIGTERM as a graceful drain: finish in-flight
    #: points, flush journal + fleet status, raise SweepInterrupted.
    drain_signals: bool = False


class PoolContext:
    """Ambient state for one sweep/figure invocation."""

    def __init__(self, config: PoolConfig) -> None:
        self.config = config
        self.cache: Optional[ResultCache] = (
            ResultCache(config.cache_dir) if config.cache_dir is not None else None
        )
        #: Per-point provenance dicts, in completion-merge order.
        self.provenance: List[dict] = []
        self.executed = 0
        self.cache_hits = 0
        #: Points quarantined after exhausting their retry budget.
        self.poisoned = 0
        #: Executed points that needed at least one retry to succeed.
        self.retried_ok = 0
        #: Total failed attempts across all points.
        self.retry_attempts = 0
        #: Worker processes respawned after a crash, kill, or hang.
        self.worker_restarts = 0

    # ------------------------------------------------------------------
    def budget_remaining(self) -> Optional[int]:
        if self.config.max_executions is None:
            return None
        return max(0, self.config.max_executions - self.executed)

    def record(self, tag: str, outcome: PointOutcome) -> None:
        self.provenance.append(
            {
                "index": outcome.spec.index,
                "tag": tag,
                "params": dict(outcome.spec.params),
                "seed": outcome.spec.seed,
                "key": outcome.spec.key,
                "cache_hit": outcome.cache_hit,
                "worker": outcome.worker,
                "wall_s": outcome.wall_s,
                "status": outcome.status,
                "retries": outcome.retries,
                "error": outcome.error,
                "source": outcome.source,
            }
        )
        self.retry_attempts += outcome.retries
        if outcome.status == "poisoned":
            self.poisoned += 1
        elif outcome.cache_hit:
            self.cache_hits += 1
        else:
            self.executed += 1
            if outcome.retries:
                self.retried_ok += 1

    def provenance_payload(self) -> Optional[dict]:
        """The artifact's provenance block (None when nothing ran)."""
        if not self.provenance:
            return None
        from repro.harness.metrics import pool_summary

        return {
            "parallel": self.config.parallel,
            "cache_dir": (
                str(self.config.cache_dir)
                if self.config.cache_dir is not None
                else None
            ),
            "points": list(self.provenance),
            "summary": pool_summary(
                self.provenance, restarts=self.worker_restarts
            ),
        }


_active: Optional[PoolContext] = None


@contextmanager
def pool_session(config: Optional[PoolConfig] = None):
    """Install a :class:`PoolContext` as the ambient executor.

    Sessions nest; the innermost wins, mirroring the obs/fault/flow
    session idiom.
    """
    global _active
    ctx = PoolContext(config if config is not None else PoolConfig())
    prev = _active
    _active = ctx
    try:
        yield ctx
    finally:
        _active = prev


def active_pool() -> Optional[PoolContext]:
    """The innermost active pool context, if any."""
    return _active


# ----------------------------------------------------------------------
# Point execution
# ----------------------------------------------------------------------
def _scramble_ambient_rng(token: int) -> None:
    """Deterministically perturb the global RNGs, per executor.

    Point results must be functions of the point spec alone. Serial and
    parallel executors scramble to *different* states, so any point
    function secretly reading ambient global randomness produces
    diverging sweeps and fails the parallel-vs-serial identity tests
    instead of silently passing.
    """
    random.seed(_GUARD_SEED ^ token)
    try:
        import numpy as np

        np.random.seed((_GUARD_SEED ^ token) % (2**32))
    except ImportError:  # pragma: no cover
        pass


def _fn_tag(fn: Callable[..., Any]) -> Optional[str]:
    """A stable cache tag for ``fn``, or None when there isn't one."""
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if not module or not qualname:
        return None
    if "<lambda>" in qualname or "<locals>" in qualname:
        return None
    return f"{module}.{qualname}"


def _backoff_s(config: PoolConfig, spec: PointSpec, attempt: int) -> float:
    """Seeded exponential backoff before retry number ``attempt``.

    Deterministic in (point seed, grid index, attempt) so two runs of
    the same degraded sweep pace their retries identically.
    """
    rng = random.Random((spec.seed << 20) ^ (spec.index << 4) ^ attempt)
    base = config.backoff_base_s * (2.0 ** (attempt - 1))
    return min(config.backoff_max_s, base) * (0.5 + rng.random())


def _execute_point(
    fn: Callable[..., Any], spec: PointSpec, collect_obs: bool
):
    """Run one point, capturing its obs records and wall time.

    Inside an active :class:`~repro.obs.ObsSession` the point's runs
    report there naturally and the new tail of ``records`` is the
    capture; otherwise (when records are still needed, e.g. to populate
    a cache entry) the point runs under its own private session.
    """
    from repro.obs import ObsConfig, ObsSession, active_session

    session = active_session()
    own: Optional[ObsSession] = None
    if collect_obs and session is None:
        own = ObsSession(ObsConfig())
        own.__enter__()
        session = own
    try:
        before = len(session.records) if session is not None else 0
        t0 = time.perf_counter()
        value = fn(seed=spec.seed, **spec.params)
        wall = time.perf_counter() - t0
        records = session.records[before:] if session is not None else []
    finally:
        if own is not None:
            own.__exit__(None, None, None)
    return value, records, wall


def _worker_main(worker_id, fn, specs, collect_obs, conn, resq, stale_conns):
    """Serve assigned point indices from ``conn`` until a None sentinel.

    Messages on ``resq`` are tagged tuples:

    * ``("hb", worker_id, info)`` — announced right after a point is
      picked up; drives the parent's liveness tracking and the live
      fleet-status display.
    * ``("done", slot, worker_id, value, records, wall, err)`` — a
      completed point (``err`` carries the traceback on failure).
    * ``("died", worker_id, traceback)`` — the worker hit a failure
      outside point execution and is exiting; nothing vanishes
      silently (the parent requeues the in-flight point).

    SIGINT is ignored so a terminal Ctrl-C drains through the parent's
    supervisor instead of killing in-flight points mid-simulation.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    # Close inherited ends of *other* workers' task pipes so that a
    # sibling's EOF detection (and orphan self-termination after a
    # parent SIGKILL) is not held open by this process.
    for other in stale_conns:
        try:
            other.close()
        except OSError:  # pragma: no cover - best effort
            pass
    _scramble_ambient_rng(worker_id)
    points_done = 0
    try:
        while True:
            try:
                slot = conn.recv()
            except EOFError:
                return  # parent is gone; nothing left to serve
            if slot is None:
                return
            spec = specs[slot]
            resq.put((
                "hb",
                worker_id,
                {"slot": slot, "params": dict(spec.params),
                 "points_done": points_done},
            ))
            try:
                value, records, wall = _execute_point(fn, spec, collect_obs)
            except BaseException:
                resq.put(
                    ("done", slot, worker_id, None, [], 0.0,
                     traceback.format_exc())
                )
            else:
                points_done += 1
                resq.put(("done", slot, worker_id, value, records, wall, None))
    except BaseException:
        # Terminal failure outside point execution: ship the traceback
        # before dying so the parent can surface it in the outcome
        # instead of seeing a bare sentinel.
        try:
            resq.put(("died", worker_id, traceback.format_exc()))
        except Exception:  # pragma: no cover - result channel broken
            pass
        os._exit(_WORKER_DIED_EXIT)


class _WorkerHandle:
    """Parent-side state for one live worker process."""

    __slots__ = ("wid", "proc", "conn", "slot", "dispatched_at", "dying")

    def __init__(self, wid, proc, conn) -> None:
        self.wid = wid
        self.proc = proc
        self.conn = conn
        #: Grid slot currently assigned, or None when idle.
        self.slot: Optional[int] = None
        self.dispatched_at = 0.0
        #: Set when a "died" message preceded the sentinel.
        self.dying = False


class _Supervisor:
    """Fault-tolerant dispatch of grid slots across worker processes.

    The supervision loop multiplexes three event sources with
    :func:`multiprocessing.connection.wait`:

    * the shared result queue (completions, heartbeats, death notices),
    * every worker's ``Process.sentinel`` (crash/kill detection),
    * a wall-clock timeout derived from pending retry backoffs and
      per-point deadlines (hang detection).

    Failures — a point exception, a dead worker, a hung worker — all
    funnel into :meth:`_fail_attempt`, which retries with seeded
    exponential backoff until the budget is spent and then either
    quarantines the point (``quarantine``) or aborts the sweep.
    """

    def __init__(
        self,
        fn: Callable[..., Any],
        specs: Sequence[PointSpec],
        todo: Sequence[int],
        nworkers: int,
        collect_obs: bool,
        config: PoolConfig,
        ctx: PoolContext,
        on_done: Callable[[int, PointOutcome], None],
        fleet: Optional[Any],
        drain_state: Dict[str, bool],
    ) -> None:
        self.fn = fn
        self.specs = specs
        self.todo = list(todo)
        self.nworkers = nworkers
        self.collect_obs = collect_obs
        self.config = config
        self.ctx = ctx
        self.on_done = on_done
        self.fleet = fleet
        self.drain_state = drain_state

        self.mp = multiprocessing.get_context("fork")
        self.resq = self.mp.SimpleQueue()
        self.workers: Dict[int, _WorkerHandle] = {}
        self.next_wid = 1
        self.ready = deque(self.todo)
        #: (due monotonic time, slot) pairs waiting out a backoff.
        self.backoffs: List[tuple] = []
        self.attempts: Dict[int, int] = {}
        self.assignee: Dict[int, int] = {}
        self.resolved: set = set()
        self.restarts = 0
        self.max_restarts = (
            config.max_restarts
            if config.max_restarts is not None
            else 2 * nworkers + 2
        )
        self.failure: Optional[str] = None
        self.draining = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def run(self) -> None:
        for _ in range(self.nworkers):
            self._spawn()
        try:
            self._loop()
        finally:
            self._shutdown()
        if self.failure is not None:
            raise HarnessError(
                f"sweep point failed in worker:\n{self.failure}"
            )
        if self.draining and len(self.resolved) < len(self.todo):
            raise SweepInterrupted(
                executed=self.ctx.executed,
                remaining=len(self.todo) - len(self.resolved),
                reason="signal",
            )

    def _spawn(self) -> Optional[_WorkerHandle]:
        wid = self.next_wid
        self.next_wid += 1
        stale = [h.conn for h in self.workers.values()]
        parent_conn, child_conn = self.mp.Pipe()
        proc = self.mp.Process(
            target=_worker_main,
            args=(wid, self.fn, self.specs, self.collect_obs, child_conn,
                  self.resq, stale),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        handle = _WorkerHandle(wid, proc, parent_conn)
        self.workers[wid] = handle
        return handle

    def _loop(self) -> None:
        from multiprocessing.connection import wait as conn_wait

        while len(self.resolved) < len(self.todo) and self.failure is None:
            if self.drain_state.get("requested") and not self.draining:
                self._begin_drain()
            if self.draining and not any(
                h.slot is not None for h in self.workers.values()
            ):
                break
            self._requeue_due_backoffs()
            self._dispatch()
            if self.failure is not None:
                break
            if len(self.resolved) >= len(self.todo):
                break
            waitables = [self.resq._reader]
            waitables.extend(h.proc.sentinel for h in self.workers.values())
            try:
                conn_wait(waitables, self._wakeup_timeout())
            except OSError:  # pragma: no cover - fd race on worker exit
                pass
            self._drain_resq()
            self._reap_dead()
            self._kill_hung()

    def _begin_drain(self) -> None:
        """Stop dispatching; in-flight points run to completion."""
        self.draining = True
        self.ready.clear()
        self.backoffs.clear()

    def _shutdown(self) -> None:
        deadline = time.monotonic() + _JOIN_GRACE_S
        for handle in self.workers.values():
            if handle.proc.is_alive():
                try:
                    handle.conn.send(None)
                except (OSError, ValueError):
                    pass
        for handle in self.workers.values():
            timeout = max(0.0, deadline - time.monotonic())
            handle.proc.join(timeout)
            if handle.proc.is_alive():
                handle.proc.terminate()
                handle.proc.join()
            try:
                handle.conn.close()
            except OSError:  # pragma: no cover
                pass

    # ------------------------------------------------------------------
    # Dispatch and timing
    # ------------------------------------------------------------------
    def _dispatch(self) -> None:
        for handle in self.workers.values():
            if not self.ready:
                return
            if handle.slot is not None or handle.dying:
                continue
            if not handle.proc.is_alive():
                continue
            slot = self.ready.popleft()
            try:
                handle.conn.send(slot)
            except (OSError, ValueError):
                # Worker raced us to death; its sentinel will be reaped.
                self.ready.appendleft(slot)
                continue
            handle.slot = slot
            handle.dispatched_at = time.monotonic()
            self.assignee[slot] = handle.wid
            if self.fleet is not None:
                self.fleet.on_heartbeat(
                    handle.wid,
                    {"slot": slot,
                     "params": dict(self.specs[slot].params)},
                )

    def _wakeup_timeout(self) -> Optional[float]:
        now = time.monotonic()
        candidates: List[float] = []
        if self.backoffs:
            candidates.append(min(due for due, _ in self.backoffs) - now)
        if self.config.point_timeout_s is not None:
            for handle in self.workers.values():
                if handle.slot is not None:
                    candidates.append(
                        handle.dispatched_at
                        + self.config.point_timeout_s
                        - now
                    )
        if not candidates:
            return None
        return max(0.01, min(candidates))

    def _requeue_due_backoffs(self) -> None:
        if not self.backoffs:
            return
        now = time.monotonic()
        due = [slot for t, slot in self.backoffs if t <= now]
        if due:
            self.backoffs = [
                (t, slot) for t, slot in self.backoffs if t > now
            ]
            self.ready.extend(due)

    # ------------------------------------------------------------------
    # Event intake
    # ------------------------------------------------------------------
    def _drain_resq(self) -> None:
        while not self.resq.empty():
            msg = self.resq.get()
            kind = msg[0]
            if kind == "hb":
                _, wid, info = msg
                handle = self.workers.get(wid)
                if handle is not None and handle.slot == info.get("slot"):
                    if self.fleet is not None:
                        self.fleet.on_heartbeat(wid, info)
                continue
            if kind == "died":
                _, wid, tb = msg
                handle = self.workers.get(wid)
                if handle is not None:
                    handle.dying = True
                    if handle.slot is not None:
                        slot = handle.slot
                        handle.slot = None
                        self.assignee.pop(slot, None)
                        self._fail_attempt(slot, wid, tb)
                continue
            _, slot, wid, value, records, wall, err = msg
            handle = self.workers.get(wid)
            if (
                slot in self.resolved
                or handle is None
                or handle.slot != slot
            ):
                continue  # stale result from a worker we already wrote off
            handle.slot = None
            self.assignee.pop(slot, None)
            if err is not None:
                self._fail_attempt(slot, wid, err)
                continue
            self._resolve_ok(slot, wid, value, records, wall)

    def _reap_dead(self) -> None:
        for wid in list(self.workers):
            handle = self.workers[wid]
            if handle.proc.is_alive():
                continue
            del self.workers[wid]
            try:
                handle.conn.close()
            except OSError:  # pragma: no cover
                pass
            slot = handle.slot
            if slot is None and handle.dying:
                self._maybe_respawn()
                continue
            if slot is None:
                # Idle worker vanished (e.g. external kill): replace it
                # if there is still work to serve.
                self._note_restart(
                    f"worker {wid} died while idle "
                    f"(exit {handle.proc.exitcode})"
                )
                continue
            self.assignee.pop(slot, None)
            self._fail_attempt(
                slot,
                wid,
                f"worker {wid} died mid-point "
                f"(exit code {handle.proc.exitcode})",
            )
            self._note_restart(f"worker {wid} died")

    def _kill_hung(self) -> None:
        timeout = self.config.point_timeout_s
        if timeout is None:
            return
        now = time.monotonic()
        for wid in list(self.workers):
            handle = self.workers[wid]
            if handle.slot is None:
                continue
            if now - handle.dispatched_at <= timeout:
                continue
            slot = handle.slot
            handle.slot = None
            self.assignee.pop(slot, None)
            handle.proc.kill()
            handle.proc.join()
            del self.workers[wid]
            try:
                handle.conn.close()
            except OSError:  # pragma: no cover
                pass
            self._fail_attempt(
                slot,
                wid,
                f"point timed out after {timeout:g}s wall-clock "
                f"(worker {wid} killed)",
            )
            self._note_restart(f"worker {wid} hung")

    def _note_restart(self, why: str) -> None:
        if self.failure is not None:
            return
        unresolved = len(self.todo) - len(self.resolved)
        inflight = sum(
            1 for h in self.workers.values() if h.slot is not None
        )
        if unresolved - inflight <= 0 and not self.ready:
            return  # remaining work is already being served
        self.restarts += 1
        self.ctx.worker_restarts += 1
        if self.restarts > self.max_restarts:
            self.failure = (
                f"gave up after {self.restarts - 1} worker restart(s) "
                f"(cap {self.max_restarts}); last cause: {why}"
            )
            return
        if len(self.workers) < self.nworkers and not self.draining:
            self._spawn()
        if self.fleet is not None:
            self.fleet.on_restart(why)

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def _resolve_ok(self, slot, wid, value, records, wall) -> None:
        self.resolved.add(slot)
        outcome = PointOutcome(
            spec=self.specs[slot],
            value=value,
            records=records,
            worker=wid,
            wall_s=wall,
            retries=self.attempts.get(slot, 0),
        )
        if self.fleet is not None:
            self.fleet.on_point_done(
                wid, wall, channel_trips=channel_trips_of(records)
            )
        self.on_done(slot, outcome)

    def _fail_attempt(self, slot: int, wid: int, err: str) -> None:
        if slot in self.resolved:
            return
        attempt = self.attempts.get(slot, 0) + 1
        self.attempts[slot] = attempt
        if not self.draining and attempt <= self.config.retries:
            delay = _backoff_s(self.config, self.specs[slot], attempt)
            self.backoffs.append((time.monotonic() + delay, slot))
            if self.fleet is not None:
                self.fleet.on_retry(slot)
            return
        if self.draining and attempt <= self.config.retries:
            return  # drained before the retry budget ran out: unresolved
        if self.config.quarantine:
            self.resolved.add(slot)
            outcome = PointOutcome(
                spec=self.specs[slot],
                value=None,
                records=[],
                worker=wid,
                status="poisoned",
                error=err,
                retries=attempt - 1,
            )
            if self.fleet is not None:
                self.fleet.on_poisoned(wid)
            self.on_done(slot, outcome)
            return
        if self.failure is None:
            self.failure = err


def _fork_available() -> bool:
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover
        return False


# ----------------------------------------------------------------------
# Drain-signal plumbing
# ----------------------------------------------------------------------
@contextmanager
def _drain_handler(enabled: bool):
    """Install SIGINT/SIGTERM handlers that request a graceful drain.

    Yields the shared state dict the supervisor (and the serial loop)
    polls. Handlers are only installed from the main thread; elsewhere
    the state simply never triggers.
    """
    state: Dict[str, bool] = {"requested": False}
    if not enabled or threading.current_thread() is not threading.main_thread():
        yield state
        return

    def _request(signum, frame):  # pragma: no cover - exercised via CLI
        state["requested"] = True

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, _request)
        except (ValueError, OSError):  # pragma: no cover
            pass
    try:
        yield state
    finally:
        for signum, old in previous.items():
            try:
                signal.signal(signum, old)
            except (ValueError, OSError):  # pragma: no cover
                pass


# ----------------------------------------------------------------------
# The executor front door
# ----------------------------------------------------------------------
def map_points(
    fn: Callable[..., Any],
    grid: Sequence[Mapping[str, Any]],
    *,
    tag: Optional[str] = None,
    seeds: Sequence[int] = (0,),
    pool: Optional[PoolContext] = None,
) -> List[PointOutcome]:
    """Evaluate ``fn(seed=s, **params)`` for every (params, seed) point.

    Points are enumerated in grid-major order (all seeds of a cell are
    adjacent) and the returned outcomes are in that exact order no
    matter how execution was scheduled. Uses the ambient pool context
    (serial, cache off) when none is active or passed.

    When the context carries a cache, hits are replayed (value + obs
    records) without executing, and completed points are persisted as
    they finish — which is what makes interrupted sweeps resumable.
    When it carries a journal, resolved points are additionally fsync'd
    to an append-only JSONL file that ``resume`` replays, covering the
    cases the cache cannot (poisoned points, cacheless sweeps, a parent
    killed between completions).
    """
    ctx = pool if pool is not None else active_pool()
    if ctx is None:
        ctx = PoolContext(PoolConfig())
    cache = ctx.cache
    resolved_tag = tag or _fn_tag(fn)
    if cache is not None and resolved_tag is None:
        raise HarnessError(
            "result caching needs a stable point tag: pass tag=... when "
            "the metric fn is a lambda, a closure or a partial"
        )
    if resolved_tag is None:
        resolved_tag = repr(fn)

    # Observability records are captured per point whenever the caller
    # is collecting them (active ObsSession) or the cache needs them to
    # make entries replayable.
    from repro.obs import active_session

    parent_session = active_session()
    collect_obs = (
        parent_session is not None
        or cache is not None
        or ctx.config.journal is not None
    )

    faults_plan = flow_cfg = obs_cfg = None
    if cache is not None:
        from repro.faults.context import active_fault_plan
        from repro.flow.context import active_flow_config

        faults_plan = active_fault_plan()
        flow_cfg = active_flow_config()
        # Timeline-bearing records are shaped differently from plain
        # ones, so the flight-recorder config is part of the point's
        # content address (only when on — plain caches stay valid).
        if parent_session is not None:
            tl = parent_session.config.timeline
            if tl is not None and tl.enabled:
                obs_cfg = tl

    specs: List[PointSpec] = []
    for params in grid:
        for seed in seeds:
            key = None
            if cache is not None:
                key = point_key(
                    tag=resolved_tag,
                    params=params,
                    seed=seed,
                    costs=params.get("costs"),
                    faults=faults_plan,
                    flow=flow_cfg,
                    obs=obs_cfg,
                )
            specs.append(
                PointSpec(
                    index=len(specs), params=dict(params), seed=seed, key=key
                )
            )

    outcomes: List[Optional[PointOutcome]] = [None] * len(specs)

    # Journal replay first: it also covers poisoned points and sweeps
    # running without a cache.
    journal = None
    if ctx.config.journal is not None:
        from repro.harness.journal import SweepJournal, journal_fingerprint

        fingerprint = journal_fingerprint(resolved_tag, specs)
        if ctx.config.resume:
            for index, entry in SweepJournal.replay(
                ctx.config.journal, fingerprint
            ).items():
                if index >= len(specs):
                    continue
                outcomes[index] = PointOutcome(
                    spec=specs[index],
                    value=entry.get("value"),
                    records=list(entry.get("records") or ()),
                    cache_hit=True,
                    status=entry.get("status", "ok"),
                    error=entry.get("error"),
                    retries=int(entry.get("retries") or 0),
                    source="journal",
                )
        journal = SweepJournal.open(
            ctx.config.journal,
            fingerprint,
            len(specs),
            resume=ctx.config.resume,
        )

    # Resolve cache hits up front; only misses are dispatched.
    todo: List[int] = []
    for spec in specs:
        if outcomes[spec.index] is not None:
            continue
        entry = None
        if cache is not None and ctx.config.cache_read and spec.key:
            entry = cache.get(spec.key)
        if entry is not None:
            outcomes[spec.index] = PointOutcome(
                spec=spec,
                value=entry.get("value"),
                records=list(entry.get("records") or ()),
                cache_hit=True,
                source="cache",
            )
        else:
            todo.append(spec.index)

    budget = ctx.budget_remaining()
    deferred = 0
    if budget is not None and len(todo) > budget:
        deferred = len(todo) - budget
        todo = todo[:budget]

    def finish(slot: int, outcome: PointOutcome) -> None:
        if (
            cache is not None
            and ctx.config.cache_write
            and outcome.spec.key
            and outcome.status == "ok"
        ):
            cache.put(
                outcome.spec.key,
                {
                    "tag": resolved_tag,
                    "params": dict(outcome.spec.params),
                    "seed": outcome.spec.seed,
                    "value": outcome.value,
                    "records": outcome.records,
                    "meta": {"wall_s": outcome.wall_s, "worker": outcome.worker},
                },
            )
        if journal is not None:
            journal.record_point(outcome)
        outcomes[slot] = outcome

    # Execute and merge. Observability snapshots must land in the
    # parent session in strict grid-index order regardless of schedule
    # and cache state, so artifacts never depend on either.
    nworkers = min(max(1, ctx.config.parallel), max(1, len(todo)))
    from repro.harness.fleet import make_fleet_status

    hits_upfront = len(specs) - len(todo) - deferred
    fleet = make_fleet_status(ctx.config, len(specs), hits_upfront, nworkers)
    try:
        with _drain_handler(ctx.config.drain_signals) as drain_state:
            if todo and nworkers > 1 and _fork_available():
                # Parallel: workers report nothing to the parent session
                # during execution; absorb every point's records
                # afterwards, in order.
                supervisor = _Supervisor(
                    fn, specs, todo, nworkers, collect_obs,
                    ctx.config, ctx, finish, fleet, drain_state,
                )
                try:
                    supervisor.run()
                finally:
                    if parent_session is not None:
                        for outcome in outcomes:
                            if outcome is not None:
                                parent_session.absorb(outcome.records)
            else:
                _run_serial(
                    fn, specs, todo, collect_obs, ctx, finish,
                    fleet, drain_state, outcomes, parent_session,
                )
    finally:
        if journal is not None:
            if all(o is not None for o in outcomes):
                journal.complete()
            journal.close()
        if fleet is not None:
            fleet.finish()

    done: List[PointOutcome] = []
    for outcome in outcomes:
        if outcome is None:
            continue
        ctx.record(resolved_tag, outcome)
        done.append(outcome)

    if deferred:
        raise SweepInterrupted(executed=ctx.executed, remaining=deferred)
    return done


def _run_serial(
    fn, specs, todo, collect_obs, ctx, finish, fleet, drain_state,
    outcomes, parent_session,
) -> None:
    """In-process execution: index order, cache-hit replays interleaved.

    Retries and quarantine apply exactly as in the parallel path;
    per-point timeouts do not (a running point cannot be preempted
    in-process) and a drain signal takes effect between points.
    """
    config = ctx.config
    todo_set = set(todo)
    if todo_set:
        _scramble_ambient_rng(0)
    done_so_far = 0
    for spec in specs:
        outcome = outcomes[spec.index]
        if outcome is not None:
            if parent_session is not None:
                parent_session.absorb(outcome.records)
            continue
        if spec.index not in todo_set:
            continue
        if drain_state.get("requested"):
            remaining = len(todo) - done_so_far
            raise SweepInterrupted(
                executed=ctx.executed, remaining=remaining, reason="signal"
            )
        if fleet is not None:
            fleet.on_heartbeat(0, {"params": dict(spec.params)})
        err = None
        for attempt in range(config.retries + 1):
            try:
                value, records, wall = _execute_point(
                    fn, spec, collect_obs
                )
            except Exception:
                err = traceback.format_exc()
                if attempt < config.retries:
                    if fleet is not None:
                        fleet.on_retry(spec.index)
                    time.sleep(_backoff_s(config, spec, attempt + 1))
                    continue
                break
            else:
                if fleet is not None:
                    fleet.on_point_done(
                        0, wall, channel_trips=channel_trips_of(records)
                    )
                finish(
                    spec.index,
                    PointOutcome(
                        spec=spec, value=value, records=records,
                        wall_s=wall, retries=attempt,
                    ),
                )
                done_so_far += 1
                err = None
                break
        if err is not None:
            if not config.quarantine:
                raise HarnessError(
                    f"sweep point failed in worker:\n{err}"
                )
            if fleet is not None:
                fleet.on_poisoned(0)
            finish(
                spec.index,
                PointOutcome(
                    spec=spec, value=None, status="poisoned",
                    error=err, retries=config.retries,
                ),
            )
            done_so_far += 1


# ----------------------------------------------------------------------
# App-backed sweep points (the `repro sweep` CLI's metric functions)
# ----------------------------------------------------------------------
#: Benchmark apps the generic sweep CLI can drive. Values: (runner
#: import path, takes a scheme argument).
SWEEP_APPS = {
    "histogram": ("repro.apps", "run_histogram", True),
    "indexgather": ("repro.apps", "run_indexgather", True),
    "alltoall": ("repro.apps", "run_alltoall", True),
    "phold": ("repro.apps", "run_phold", True),
    "pingack": ("repro.apps", "run_pingack", False),
}


def run_app_point(app: str, metric: str, seed: int = 0, **params: Any) -> float:
    """One CLI sweep point: run ``app`` and read ``metric`` off its result.

    Machine axes ``nodes``/``ppn``/``wpp`` (defaults 2/2/4, the
    harness's scaled Delta node) and a ``scheme`` axis are recognized;
    every other parameter is passed to the app runner unchanged.
    """
    import importlib

    try:
        mod_name, fn_name, takes_scheme = SWEEP_APPS[app]
    except KeyError:
        raise HarnessError(
            f"unknown sweep app {app!r}; known: {', '.join(sorted(SWEEP_APPS))}"
        ) from None
    runner = getattr(importlib.import_module(mod_name), fn_name)

    from repro.machine import MachineConfig

    kwargs = dict(params)
    machine = MachineConfig(
        nodes=int(kwargs.pop("nodes", 2)),
        processes_per_node=int(kwargs.pop("ppn", 2)),
        workers_per_process=int(kwargs.pop("wpp", 4)),
    )
    scheme = kwargs.pop("scheme", "WPs")
    args = (machine, scheme) if takes_scheme else (machine,)
    result = runner(*args, seed=seed, **kwargs)
    try:
        value = getattr(result, metric)
    except AttributeError:
        raise HarnessError(
            f"app {app!r} result has no metric {metric!r}"
        ) from None
    return float(value)
